//! Property test for the crash-safe snapshot seam (DESIGN.md §12).
//!
//! Pausing a run at a REF boundary, serializing the [`System`],
//! restoring into a *freshly constructed* System of the same
//! configuration, and running to completion must be bit-identical to
//! the uninterrupted run — across every registered engine, both
//! simulation kernels, and randomized fault plans.

use mopac::EngineRegistry;
use mopac_sim::campaign::fault_matrix;
use mopac_sim::experiment::build_traces;
use mopac_sim::{KernelMode, RunResult, System, SystemConfig};
use mopac_types::geometry::DramGeometry;
use mopac_types::rng::DetRng;

/// Runs `cfg` once uninterrupted and once split at `pause_refs`
/// refreshes via snapshot + restore-into-fresh-system; returns both
/// final results.
fn run_split(cfg: &SystemConfig, pause_refs: u64) -> (RunResult, RunResult, bool) {
    let reference = System::new(cfg.clone(), build_traces("xz", cfg).unwrap())
        .unwrap()
        .run()
        .unwrap();

    let mut first = System::new(cfg.clone(), build_traces("xz", cfg).unwrap()).unwrap();
    let paused = first.run_until_refs(pause_refs).unwrap();
    let (resumed, split) = if let Some(done) = paused {
        // The run finished before the pause point ever arrived; the
        // "split" run is just the whole run.
        (done, false)
    } else {
        let snap = first.snapshot();
        drop(first);
        let mut second = System::new(cfg.clone(), build_traces("xz", cfg).unwrap()).unwrap();
        second.restore(&snap).unwrap();
        (second.run_to_completion().unwrap(), true)
    };
    (reference, resumed, split)
}

#[test]
fn restored_runs_are_bit_identical_across_engines_kernels_and_faults() {
    let mut rng = DetRng::from_seed(0x5E57_0001);
    let plans = fault_matrix();
    let mut splits = 0u32;
    let mut cells = 0u32;
    for spec in EngineRegistry::builtin().specs() {
        for kernel in [KernelMode::EventDriven, KernelMode::Lockstep] {
            let mut cfg = SystemConfig::paper_default((spec.preset)(500), 20_000);
            cfg.geometry = DramGeometry::tiny();
            cfg.enable_checker = true;
            cfg.kernel = kernel;
            cfg.livelock_window = 2_000_000;
            cfg.seed = rng.next_u64();
            // Roughly half the cells run under a randomly drawn fault
            // plan — faulted state (injector cursor, corruption RNG)
            // must survive the snapshot too.
            let plan = if rng.next_u64().is_multiple_of(2) {
                let pick = usize::try_from(rng.next_u64()).unwrap_or(0) % plans.len();
                Some(&plans[pick])
            } else {
                None
            };
            if let Some((_, p)) = plan {
                cfg.fault_plan = Some(p.clone());
            }
            let pause_refs = 1 + rng.next_u64() % 6;
            let (reference, resumed, split) = run_split(&cfg, pause_refs);
            cells += 1;
            splits += u32::from(split);
            assert_eq!(
                reference,
                resumed,
                "snapshot/restore diverged: engine={} kernel={kernel:?} fault={:?} pause_refs={pause_refs}",
                spec.name,
                plan.map(|p| p.0),
            );
        }
    }
    // The property is vacuous if every run finished before its pause
    // point; most cells must genuinely exercise snapshot + restore.
    assert!(
        splits * 2 >= cells,
        "only {splits}/{cells} cells actually split at a REF boundary"
    );
}

#[test]
fn restore_rejects_cross_topology_snapshots() {
    use mopac::config::MitigationConfig;
    use mopac_types::error::MopacError;

    let mut cfg = SystemConfig::paper_default(MitigationConfig::prac(500), 20_000);
    cfg.geometry = DramGeometry::tiny();
    let mut src = System::new(cfg.clone(), build_traces("xz", &cfg).unwrap()).unwrap();
    assert!(src.run_until_refs(2).unwrap().is_none(), "run ended early");
    let snap = src.snapshot();

    // Same config except the channel count: the restore must fail with
    // a typed snapshot error before touching any state, not deserialize
    // one channel's controller into another topology's system.
    let mut wide_cfg = cfg.clone();
    wide_cfg.geometry.channels = 2;
    let mut wide = System::new(wide_cfg.clone(), build_traces("xz", &wide_cfg).unwrap()).unwrap();
    let err = wide.restore(&snap).expect_err("cross-topology restore succeeded");
    assert!(
        matches!(&err, MopacError::Snapshot { .. }),
        "wrong error kind: {err:?}"
    );
    assert!(
        err.to_string().contains("topology mismatch"),
        "unhelpful error: {err}"
    );

    // A rank mismatch changes bank folding, so it must be rejected too.
    let mut ranked_cfg = cfg.clone();
    ranked_cfg.geometry.ranks = 2;
    let mut ranked =
        System::new(ranked_cfg.clone(), build_traces("xz", &ranked_cfg).unwrap()).unwrap();
    assert!(ranked.restore(&snap).is_err(), "rank mismatch accepted");

    // The matching topology still restores and finishes bit-identically
    // to the uninterrupted reference.
    let reference = System::new(cfg.clone(), build_traces("xz", &cfg).unwrap())
        .unwrap()
        .run()
        .unwrap();
    let mut same = System::new(cfg.clone(), build_traces("xz", &cfg).unwrap()).unwrap();
    same.restore(&snap).unwrap();
    assert_eq!(reference, same.run_to_completion().unwrap());
}

/// A snapshot taken on the flat-bank layout must refuse to restore into
/// a subarray-split PRACtical system (and the reverse), with a typed
/// snapshot error — the subarray state has nowhere to come from.
#[test]
fn restore_rejects_cross_subarray_shape_snapshots() {
    use mopac::config::MitigationConfig;
    use mopac_types::error::MopacError;

    let mut flat_cfg = SystemConfig::paper_default(MitigationConfig::prac(500), 20_000);
    flat_cfg.geometry = DramGeometry::tiny();
    let mut flat = System::new(flat_cfg.clone(), build_traces("xz", &flat_cfg).unwrap()).unwrap();
    assert!(flat.run_until_refs(2).unwrap().is_none(), "run ended early");
    let flat_snap = flat.snapshot();

    let mut sub_cfg = SystemConfig::paper_default(MitigationConfig::practical(500), 20_000);
    sub_cfg.geometry = DramGeometry::tiny();
    sub_cfg.geometry.subarrays_per_bank = 8;
    let mut sub = System::new(sub_cfg.clone(), build_traces("xz", &sub_cfg).unwrap()).unwrap();
    let err = sub
        .restore(&flat_snap)
        .expect_err("flat snapshot restored into a subarray shape");
    assert!(
        matches!(&err, MopacError::Snapshot { .. }),
        "wrong error kind: {err:?}"
    );

    // Reverse direction: subarray-shape snapshot into the flat config.
    let mut sub_src =
        System::new(sub_cfg.clone(), build_traces("xz", &sub_cfg).unwrap()).unwrap();
    assert!(sub_src.run_until_refs(2).unwrap().is_none(), "run ended early");
    let sub_snap = sub_src.snapshot();
    let mut flat_dst =
        System::new(flat_cfg.clone(), build_traces("xz", &flat_cfg).unwrap()).unwrap();
    assert!(
        flat_dst.restore(&sub_snap).is_err(),
        "subarray snapshot restored into the flat shape"
    );

    // The matching subarray shape still restores and finishes
    // bit-identically to its uninterrupted reference.
    let reference = System::new(sub_cfg.clone(), build_traces("xz", &sub_cfg).unwrap())
        .unwrap()
        .run()
        .unwrap();
    let mut same = System::new(sub_cfg.clone(), build_traces("xz", &sub_cfg).unwrap()).unwrap();
    same.restore(&sub_snap).unwrap();
    assert_eq!(reference, same.run_to_completion().unwrap());
}
