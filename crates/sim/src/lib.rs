//! Full-system simulation harness for the MoPAC reproduction.
//!
//! Assembles the substrates — trace-driven cores (`mopac-cpu`), the
//! memory controller (`mopac-memctrl`) and the DDR5 device with embedded
//! mitigation engines (`mopac-dram`) — into the paper's Table 3 system
//! ([`system`]), provides workload-level experiment helpers and the
//! weighted-speedup metric ([`experiment`]), and a maximum-rate attack
//! driver for the security and performance-attack studies ([`attack`]).
//!
//! # Examples
//!
//! ```no_run
//! use mopac::config::MitigationConfig;
//! use mopac_sim::experiment::run_workload;
//!
//! let base = run_workload("xz", MitigationConfig::baseline(), 100_000);
//! let prac = run_workload("xz", MitigationConfig::prac(500), 100_000);
//! println!("PRAC slowdown on xz: {:.1}%", prac.slowdown_vs(&base) * 100.0);
//! ```

pub mod attack;
pub mod experiment;
pub mod system;

pub use attack::{run_attack, AttackConfig, AttackResult};
pub use experiment::{mean_slowdown, run_workload, slowdown_sweep};
pub use system::{RunResult, System, SystemConfig};
