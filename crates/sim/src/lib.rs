//! Full-system simulation harness for the MoPAC reproduction.
//!
//! Assembles the substrates — trace-driven cores (`mopac-cpu`), the
//! memory controller (`mopac-memctrl`) and the DDR5 device with embedded
//! mitigation engines (`mopac-dram`) — into the paper's Table 3 system
//! ([`system`]), provides workload-level experiment helpers and the
//! weighted-speedup metric ([`experiment`]), and a maximum-rate attack
//! driver for the security and performance-attack studies ([`attack`]).
//!
//! Robustness infrastructure rides alongside: deterministic fault
//! injection ([`fault`]) and a panic-isolated, timeout-guarded
//! experiment runner ([`runner`]).
//!
//! # Examples
//!
//! ```no_run
//! use mopac::config::MitigationConfig;
//! use mopac_sim::experiment::run_workload;
//! use mopac_types::MopacResult;
//!
//! fn headline() -> MopacResult<()> {
//!     let base = run_workload("xz", MitigationConfig::baseline(), 100_000)?;
//!     let prac = run_workload("xz", MitigationConfig::prac(500), 100_000)?;
//!     println!("PRAC slowdown on xz: {:.1}%", prac.slowdown_vs(&base) * 100.0);
//!     Ok(())
//! }
//! ```

// The robustness contract (see DESIGN.md): library code surfaces
// failures as `MopacResult`, never by unwrapping. Tests are exempt
// via clippy.toml (`allow-unwrap-in-tests`).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod attack;
pub mod campaign;
pub mod experiment;
pub mod fault;
pub mod runner;
pub mod shard;
pub mod system;

pub use attack::{run_attack, run_attack_instrumented, AttackConfig, AttackResult, AttackRun};
pub use campaign::{
    run_fault_campaign, run_fault_campaign_cells, run_fault_campaign_cells_from,
    CheckpointSummary, CheckpointedFaultCampaign, FaultCampaignSpec, FaultCellOutcome,
    ParallelCampaign,
};
pub use experiment::{mean_slowdown, run_workload, slowdown_sweep};
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultSpec};
pub use runner::{IsolatedRunner, RunReport, RunStatus};
pub use shard::{resolve_shard_threads, ChannelSet};
pub use system::{KernelMode, RunResult, System, SystemConfig};
