//! The attack driver (Sections 2.1 and 7).
//!
//! Drives an [`AttackPattern`] through the memory controller at maximum
//! rate — close-page policy, a deep window of outstanding requests, no
//! instruction gaps — measuring activation throughput, ALERT rate, and
//! security-oracle violations.

use mopac::config::MitigationConfig;
use mopac_dram::device::{DramConfig, DramDevice, DramStats};
use mopac_dram::flip::{FlipPlaneConfig, FlipStats};
use mopac_memctrl::controller::{AccessKind, McConfig, MemRequest, MemoryController, PagePolicy};
use mopac_types::error::{MopacError, MopacResult};
use mopac_types::geometry::DramGeometry;
use mopac_types::obs::{Gauge, Hist, MetricsSink, MetricsSnapshot, SinkConfig};
use mopac_types::time::Cycle;
use mopac_workloads::attack::AttackPattern;

/// Attack-run configuration.
#[derive(Debug, Clone)]
pub struct AttackConfig {
    /// DRAM organization.
    pub geometry: DramGeometry,
    /// Mitigation under attack.
    pub mitigation: MitigationConfig,
    /// How many DRAM cycles to run.
    pub cycles: Cycle,
    /// Outstanding requests the attacker keeps in flight per
    /// sub-channel.
    pub window: usize,
    /// Enable the Rowhammer oracle (on by default — attacks are the
    /// security tests).
    pub enable_checker: bool,
    /// Seed.
    pub seed: u64,
    /// Victim-data bit-flip plane (`None`, the default, disables it and
    /// keeps the run bit-identical to a plane-less simulator).
    pub flip: Option<FlipPlaneConfig>,
}

impl AttackConfig {
    /// Default attack setup on the paper's geometry.
    #[must_use]
    pub fn new(mitigation: MitigationConfig, cycles: Cycle) -> Self {
        Self {
            geometry: DramGeometry::ddr5_32gb(),
            mitigation,
            cycles,
            window: 32,
            enable_checker: true,
            seed: 0xA77AC4,
            flip: None,
        }
    }
}

/// Results of an attack run.
#[derive(Debug, Clone)]
pub struct AttackResult {
    /// Total activations achieved by the attacker.
    pub activations: u64,
    /// Cycles simulated.
    pub cycles: Cycle,
    /// DRAM statistics (alerts, RFMs, mitigations...).
    pub dram: DramStats,
    /// Security-oracle violations (must be 0 for a secure config).
    pub violations: u64,
    /// Victim-data flip-plane statistics (all-zero when the plane is
    /// disabled). `corrupted_reads` only reflects victim rows the run
    /// actually read — call [`AttackRun::verify_readback`] before
    /// finishing to model the attacker's post-hammer verification pass.
    pub flip: FlipStats,
}

impl AttackResult {
    /// The attack's real verdict: did any read return corrupted data?
    /// Oracle violations say the *mitigation* failed; this says the
    /// *attack* succeeded against the modeled cells (after ECC).
    #[must_use]
    pub fn attack_success(&self) -> bool {
        self.flip.attack_success()
    }

    /// Activations per ALERT (the `N` in the slowdown model
    /// `7 / (N + 7)`), or `None` if no ALERT fired.
    #[must_use]
    pub fn acts_per_alert(&self) -> Option<f64> {
        let alerts = self.dram.alerts();
        (alerts > 0).then(|| self.activations as f64 / alerts as f64)
    }

    /// Activation throughput in ACTs per cycle.
    #[must_use]
    pub fn act_throughput(&self) -> f64 {
        self.activations as f64 / self.cycles.max(1) as f64
    }

    /// Throughput loss relative to a reference run (typically the same
    /// pattern against an inert mitigation).
    #[must_use]
    pub fn throughput_loss_vs(&self, reference: &AttackResult) -> f64 {
        1.0 - self.act_throughput() / reference.act_throughput()
    }
}

/// One attack configuration per registered engine that tracks
/// activations (the baseline has no security claim to test), at
/// threshold `t_rh`. Callers can override the geometry with struct
/// update syntax, as the tests do.
#[must_use]
pub fn attack_suite_configs(t_rh: u64, cycles: Cycle) -> Vec<(&'static str, AttackConfig)> {
    mopac::EngineRegistry::builtin()
        .specs()
        .iter()
        .filter(|s| s.tracks())
        .map(|s| (s.name, AttackConfig::new((s.preset)(t_rh), cycles)))
        .collect()
}

/// Runs `pattern` against the configured mitigation at maximum rate.
///
/// # Errors
///
/// Propagates [`mopac_types::MopacError::TimingProtocol`] if the
/// controller drives the device into an illegal sequence (never in a
/// healthy configuration).
pub fn run_attack(cfg: &AttackConfig, pattern: &mut dyn AttackPattern) -> MopacResult<AttackResult> {
    run_attack_inner(cfg, pattern, None).map(|(r, _)| r)
}

/// Like [`run_attack`] but with the observability sink enabled:
/// returns the attack result together with a [`MetricsSnapshot`]
/// carrying the protocol trace ring, command histograms (inter-ACT
/// gap, ABO service time, per-bank SRQ occupancy) and all registry
/// counters. The simulation itself is bit-identical to [`run_attack`]
/// — the sink only records alongside it.
///
/// # Errors
///
/// See [`run_attack`]; additionally returns
/// [`MopacError::Internal`] if the enabled sink produced no snapshot
/// (unreachable in practice).
pub fn run_attack_instrumented(
    cfg: &AttackConfig,
    pattern: &mut dyn AttackPattern,
    sink_cfg: SinkConfig,
) -> MopacResult<(AttackResult, MetricsSnapshot)> {
    let (result, snapshot) = run_attack_inner(cfg, pattern, Some(sink_cfg))?;
    let snapshot = snapshot.ok_or_else(|| {
        MopacError::internal("instrumented attack run produced no metrics snapshot")
    })?;
    Ok((result, snapshot))
}

/// Section tag for an [`AttackRun`] snapshot ("ATK\x01").
const SNAP_ATTACK: u32 = 0x4154_4B01;

/// A resumable attack run: the same maximum-rate drive loop as
/// [`run_attack`], but steppable in cycle increments and snapshottable
/// at any step boundary.
///
/// The replay tooling (`alert_replay`) uses this to re-materialize the
/// machine state shortly before a trace-ring event and re-run the
/// window around it: [`AttackRun::snapshot`] captures the controller,
/// device, mitigation engine, metrics sink, pattern cursor, and drive
/// loop state; [`AttackRun::restore`] into a freshly constructed run of
/// the same configuration continues bit-identically.
pub struct AttackRun<'p> {
    cfg: AttackConfig,
    mc: MemoryController,
    pattern: &'p mut dyn AttackPattern,
    done: Vec<mopac_memctrl::controller::Completion>,
    id: u64,
    now: Cycle,
}

impl std::fmt::Debug for AttackRun<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AttackRun")
            .field("pattern", &self.pattern.name())
            .field("now", &self.now)
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl<'p> AttackRun<'p> {
    /// Builds the run (device + controller) without executing a cycle.
    #[must_use]
    pub fn new(cfg: &AttackConfig, pattern: &'p mut dyn AttackPattern) -> Self {
        let dram = DramDevice::new(DramConfig {
            geometry: cfg.geometry.channel_view(),
            mitigation: cfg.mitigation,
            enable_checker: cfg.enable_checker,
            seed: cfg.seed,
            channel: 0,
            flip: cfg.flip,
        });
        let mc = MemoryController::new(
            dram,
            McConfig {
                // Threat model: the attacker picks the policy that suits
                // the attack; close-page turns every access into an
                // activation.
                page_policy: PagePolicy::Closed,
                read_queue_capacity: cfg.window,
                write_queue_capacity: 8,
                starvation_cycles: 100_000,
                seed: cfg.seed ^ 0xF00,
            },
        );
        Self {
            cfg: cfg.clone(),
            mc,
            pattern,
            done: Vec::new(),
            id: 0,
            now: 0,
        }
    }

    /// Enables the observability sink (call before the first step).
    pub fn enable_metrics(&mut self, sink_cfg: SinkConfig) {
        self.mc.enable_metrics(sink_cfg);
    }

    /// The next cycle to execute.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The configured run length.
    #[must_use]
    pub fn end(&self) -> Cycle {
        self.cfg.cycles
    }

    /// Runs cycles `[now, end)` (clamped to the configured length).
    ///
    /// # Errors
    ///
    /// See [`run_attack`].
    pub fn run_until(&mut self, end: Cycle) -> MopacResult<()> {
        let end = end.min(self.cfg.cycles);
        while self.now < end {
            let now = self.now;
            // Keep the window full.
            while self.mc.queued() < self.cfg.window {
                let target = self.pattern.next_target();
                if !self.mc.enqueue(
                    MemRequest {
                        id: self.id,
                        kind: AccessKind::Read,
                        addr: target,
                    },
                    now,
                ) {
                    break;
                }
                self.id += 1;
            }
            self.done.clear();
            self.mc.tick(now, &mut self.done)?;
            self.now += 1;
        }
        Ok(())
    }

    /// Runs to the configured end and reports the result.
    ///
    /// # Errors
    ///
    /// See [`run_attack`].
    pub fn finish(mut self) -> MopacResult<AttackResult> {
        self.run_until(self.cfg.cycles)?;
        Ok(self.result())
    }

    /// The result as of the cycles executed so far.
    #[must_use]
    pub fn result(&self) -> AttackResult {
        AttackResult {
            activations: self.mc.dram().stats().activates,
            cycles: self.now,
            dram: self.mc.dram().stats(),
            violations: self.mc.dram().violations(),
            flip: self.mc.dram().flip_stats(),
        }
    }

    /// The attacker's post-hammer verification pass: reads back every
    /// victim row holding flipped bits through the ECC path, so flips
    /// the hammer kernel never touched become *observed* corruption in
    /// [`AttackResult::flip`]. No-op when the flip plane is disabled.
    pub fn verify_readback(&mut self) {
        self.mc.dram_mut().flip_readback_sweep();
    }

    /// The device under the controller (flip-plane inspection in
    /// tests).
    #[must_use]
    pub fn dram(&self) -> &DramDevice {
        self.mc.dram()
    }

    /// Drains the metrics sink into a merged [`MetricsSnapshot`] (see
    /// [`run_attack_instrumented`]); `None` when metrics are disabled.
    pub fn metrics_snapshot(&mut self, sink_cfg: SinkConfig) -> Option<MetricsSnapshot> {
        self.mc.export_metrics();
        let mut merged = MetricsSink::enabled(sink_cfg);
        merged.absorb(self.mc.metrics());
        merged.absorb(self.mc.dram().metrics());
        merged.set_gauge(Gauge::Cycles, self.now);
        merged.set_gauge(Gauge::McQueued, self.mc.queued() as u64);
        merged.set_gauge(Gauge::OracleViolations, self.mc.dram().violations());
        let srq_max = merged
            .registry()
            .map_or(0, |r| r.hist_merged(Hist::SrqOccupancy).max());
        merged.set_gauge(Gauge::EngineSrqOccupancyMax, srq_max);
        merged.snapshot()
    }

    /// Serializes the full run state at the current step boundary.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        use mopac_types::snapshot::Snapshottable;
        let mut w = mopac_types::snapshot::SnapshotWriter::new();
        w.begin_section(SNAP_ATTACK);
        w.put_u64(self.now);
        w.put_u64(self.id);
        self.mc.save_state(&mut w);
        self.pattern.save_state(&mut w);
        w.end_section();
        w.finish()
    }

    /// Restores state captured by [`AttackRun::snapshot`] into a run
    /// freshly constructed with the same configuration and pattern.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on corrupt input or a
    /// configuration mismatch.
    pub fn restore(&mut self, bytes: &[u8]) -> MopacResult<()> {
        use mopac_types::snapshot::Snapshottable;
        let mut r = mopac_types::snapshot::SnapshotReader::new(bytes)?;
        r.begin_section(SNAP_ATTACK)?;
        self.now = r.take_u64()?;
        self.id = r.take_u64()?;
        self.mc.load_state(&mut r)?;
        self.pattern.load_state(&mut r)?;
        r.end_section()?;
        mopac_types::snapshot::expect_exhausted(&r)
    }
}

fn run_attack_inner(
    cfg: &AttackConfig,
    pattern: &mut dyn AttackPattern,
    metrics: Option<SinkConfig>,
) -> MopacResult<(AttackResult, Option<MetricsSnapshot>)> {
    let mut run = AttackRun::new(cfg, pattern);
    if let Some(sink_cfg) = metrics {
        run.enable_metrics(sink_cfg);
    }
    run.run_until(cfg.cycles)?;
    let snapshot = metrics.and_then(|sink_cfg| run.metrics_snapshot(sink_cfg));
    Ok((run.result(), snapshot))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopac_types::geometry::BankRef;
    use mopac_workloads::attack::{DoubleSidedHammer, SrqFillAttack};

    fn tiny(mit: MitigationConfig, cycles: Cycle) -> AttackConfig {
        AttackConfig {
            geometry: DramGeometry::tiny(),
            ..AttackConfig::new(mit, cycles)
        }
    }

    #[test]
    fn double_sided_on_prac_never_violates() {
        let cfg = tiny(MitigationConfig::prac(500), 400_000);
        let mut p = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
        let r = run_attack(&cfg, &mut p).unwrap();
        assert_eq!(r.violations, 0);
        assert!(r.dram.alerts() > 0, "attack never triggered ALERT");
        assert!(r.dram.mitigations > 0);
    }

    #[test]
    fn double_sided_on_broken_config_violates() {
        // Failure injection: ATH far above T_RH must let the attack win.
        let broken = MitigationConfig::prac(500).with_alert_threshold(50_000);
        let cfg = tiny(broken, 400_000);
        let mut p = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
        let r = run_attack(&cfg, &mut p).unwrap();
        assert!(r.violations > 0, "oracle should have caught the attack");
    }

    #[test]
    fn srq_fill_forces_alerts_on_mopac_d() {
        let mit = MitigationConfig::mopac_d(500)
            .with_chips(1)
            .with_drain_on_ref(0);
        let cfg = tiny(mit, 300_000);
        let mut p = SrqFillAttack::new(BankRef::new(0, 0), 512);
        let r = run_attack(&cfg, &mut p).unwrap();
        assert_eq!(r.violations, 0);
        assert!(r.dram.alerts_srq_full > 0);
        // Expected pace: one ALERT per ~(drained 5) / p = 40 ACTs, with
        // some slack for refresh interference.
        let per = r.acts_per_alert().unwrap();
        assert!((20.0..90.0).contains(&per), "ACTs per ALERT {per}");
    }

    #[test]
    fn restored_attack_run_is_bit_identical() {
        let cfg = tiny(MitigationConfig::mopac_c(500), 120_000);
        let mut p_ref = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
        let reference = run_attack(&cfg, &mut p_ref).unwrap();

        let mut p_a = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
        let mut a = AttackRun::new(&cfg, &mut p_a);
        a.run_until(50_000).unwrap();
        let snap = a.snapshot();

        let mut p_b = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
        let mut b = AttackRun::new(&cfg, &mut p_b);
        b.restore(&snap).unwrap();
        assert_eq!(b.now(), 50_000);
        let resumed = b.finish().unwrap();

        assert_eq!(resumed.activations, reference.activations);
        assert_eq!(resumed.violations, reference.violations);
        assert_eq!(resumed.dram, reference.dram);
    }

    #[test]
    fn throughput_loss_positive_under_alerts() {
        let base_cfg = tiny(MitigationConfig::baseline(), 150_000);
        let mut p0 = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
        let base = run_attack(&base_cfg, &mut p0).unwrap();
        let cfg = tiny(MitigationConfig::mopac_c(500), 150_000);
        let mut p1 = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
        let hit = run_attack(&cfg, &mut p1).unwrap();
        assert!(hit.throughput_loss_vs(&base) > 0.0);
    }
}
