//! Per-channel controller set and intra-run channel sharding.
//!
//! A multi-channel topology is simulated as one independent
//! [`MemoryController`] (owning its [`DramDevice`]) per channel: DDR
//! channels share no command bus, no timing gates, no ALERT wiring and
//! no mitigation state, so a channel is a natural parallelism unit.
//! [`ChannelSet`] owns the per-channel controllers and exposes the
//! merged views the system layer needs (wake, stats, idle accounting).
//!
//! ## Sharded ticking
//!
//! `MOPAC_SHARD_THREADS` (or [`SystemConfig::shard_threads`]) > 1
//! shards [`ChannelSet::tick_all`] across a persistent worker pool:
//! each cycle is a fork-join — channels tick concurrently, then the
//! system's serial phases (completion delivery, fetch, retire) run on
//! the merged result. Determinism is structural, not timing-dependent:
//! every channel's controller is a sequential deterministic machine
//! touching only its own state (RNG streams, metrics sinks, trace
//! rings included), and the per-channel completion buffers are merged
//! in channel-index order — so results are bit-identical at any thread
//! count, including 1 (the serial loop). The expected speedup needs
//! multiple hardware cores; on a single-CPU host the sharded path is
//! merely not-wrong (see DESIGN.md §13).
//!
//! [`DramDevice`]: mopac_dram::device::DramDevice
//! [`SystemConfig::shard_threads`]: crate::system::SystemConfig::shard_threads

use mopac_memctrl::controller::{AccessKind, Completion, McStats, MemRequest, MemoryController};
use mopac_types::error::MopacResult;
use mopac_types::time::Cycle;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// Resolves the worker-thread count for intra-run channel sharding: an
/// explicit non-zero `shard_threads` wins; 0 consults the
/// `MOPAC_SHARD_THREADS` environment variable, defaulting to 1 (the
/// serial loop).
#[must_use]
pub fn resolve_shard_threads(shard_threads: usize) -> usize {
    if shard_threads != 0 {
        return shard_threads;
    }
    std::env::var("MOPAC_SHARD_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(1)
}

/// One cycle's work for one channel, lent to a worker for the duration
/// of a fork-join round.
struct Job {
    mc: *mut MemoryController,
    out: *mut Vec<Completion>,
    now: Cycle,
}

// SAFETY: the pointers reference distinct `ChannelSet`-owned values
// (one controller and one buffer per channel, no aliasing), and the
// main thread neither touches them nor returns from `tick_all` until
// it has received the worker's reply for the round — the reply channel
// is the happens-before edge.
unsafe impl Send for Job {}

struct Worker {
    job_tx: mpsc::Sender<Job>,
    reply_rx: mpsc::Receiver<MopacResult<u32>>,
    handle: Option<JoinHandle<()>>,
}

/// Persistent fork-join worker pool for channel ticking. Workers park
/// in a blocking receive between cycles; dropping the pool closes the
/// job channels and joins every thread.
struct ShardPool {
    workers: Vec<Worker>,
}

impl ShardPool {
    fn new(workers: usize) -> Self {
        let workers = (0..workers)
            .map(|i| {
                let (job_tx, job_rx) = mpsc::channel::<Job>();
                let (reply_tx, reply_rx) = mpsc::channel::<MopacResult<u32>>();
                let spawned = std::thread::Builder::new()
                    .name(format!("mopac-shard-{i}"))
                    .spawn(move || {
                        for job in job_rx {
                            // SAFETY: see `Job` — exclusive for the round.
                            let mc = unsafe { &mut *job.mc };
                            let out = unsafe { &mut *job.out };
                            let r = mc.tick(job.now, out);
                            if reply_tx.send(r).is_err() {
                                break;
                            }
                        }
                    });
                let handle = match spawned {
                    Ok(h) => h,
                    Err(e) => panic!("spawning shard worker {i}: {e}"),
                };
                Worker {
                    job_tx,
                    reply_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        Self { workers }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Replace the sender with a dead one so the worker's
            // receive loop ends, then join.
            let (dead, _) = mpsc::channel();
            w.job_tx = dead;
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// The per-channel memory controllers of one system, with serial and
/// sharded fork-join ticking (see the module docs for the determinism
/// argument).
pub struct ChannelSet {
    mcs: Vec<MemoryController>,
    /// Per-channel completion buffers for the sharded path; merged in
    /// channel-index order after the join.
    bufs: Vec<Vec<Completion>>,
    pool: Option<ShardPool>,
}

impl ChannelSet {
    /// Wraps per-channel controllers; `threads > 1` (clamped to the
    /// channel count) enables the sharded tick path.
    #[must_use]
    pub fn new(mcs: Vec<MemoryController>, threads: usize) -> Self {
        assert!(!mcs.is_empty(), "a system needs at least one channel");
        let bufs = mcs.iter().map(|_| Vec::new()).collect();
        let threads = threads.min(mcs.len());
        // The main thread is worker 0; the pool holds the extras.
        let pool = (threads > 1).then(|| ShardPool::new(threads - 1));
        Self { mcs, bufs, pool }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.mcs.len()
    }

    /// One channel's controller.
    #[must_use]
    pub fn channel(&self, ch: u32) -> &MemoryController {
        &self.mcs[ch as usize]
    }

    /// Mutable access to one channel's controller (fault hooks,
    /// restore).
    pub fn channel_mut(&mut self, ch: u32) -> &mut MemoryController {
        &mut self.mcs[ch as usize]
    }

    /// Iterates the controllers in channel order.
    pub fn iter(&self) -> impl Iterator<Item = &MemoryController> {
        self.mcs.iter()
    }

    /// Iterates the controllers mutably in channel order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut MemoryController> {
        self.mcs.iter_mut()
    }

    /// Ticks every channel for cycle `now`, appending finished reads to
    /// `out` grouped by ascending channel (within a channel, the
    /// controller's own issue order). Returns the total commands
    /// issued.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-channel tick error; on the sharded path
    /// every channel still completes its round first (the join is
    /// unconditional), so an error leaves no worker holding state.
    pub fn tick_all(&mut self, now: Cycle, out: &mut Vec<Completion>) -> MopacResult<u32> {
        let Some(pool) = &self.pool else {
            let mut issued = 0;
            for mc in &mut self.mcs {
                issued += mc.tick(now, out)?;
            }
            return Ok(issued);
        };
        // Fork: channel `ch` runs on worker `ch % threads`; worker 0 is
        // this thread. Buffers are cleared up front so the merge below
        // sees exactly this round's completions.
        let threads = pool.workers.len() + 1;
        for buf in &mut self.bufs {
            buf.clear();
        }
        let mut results: Vec<Option<MopacResult<u32>>> = (0..self.mcs.len()).map(|_| None).collect();
        for (ch, (mc, buf)) in self.mcs.iter_mut().zip(&mut self.bufs).enumerate() {
            let worker = ch % threads;
            if worker == 0 {
                results[ch] = Some(mc.tick(now, buf));
            } else {
                let job = Job {
                    mc: std::ptr::from_mut(mc),
                    out: std::ptr::from_mut(buf),
                    now,
                };
                pool.workers[worker - 1]
                    .job_tx
                    .send(job)
                    .map_err(|_| worker_died())?;
            }
        }
        // Join: collect every remote reply before touching any lent
        // state. Replies arrive per worker in that worker's channel
        // order, so pairing them back up is deterministic.
        for (ch, slot) in results.iter_mut().enumerate() {
            let worker = ch % threads;
            if worker != 0 {
                *slot = Some(
                    pool.workers[worker - 1]
                        .reply_rx
                        .recv()
                        .map_err(|_| worker_died())?,
                );
            }
        }
        let mut issued = 0;
        for slot in results {
            match slot {
                Some(Ok(n)) => issued += n,
                Some(Err(e)) => return Err(e),
                None => unreachable!("every channel was assigned a worker"),
            }
        }
        for buf in &mut self.bufs {
            out.append(buf);
        }
        Ok(issued)
    }

    /// Earliest wake across channels ([`MemoryController::next_wake`]).
    #[must_use]
    pub fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        self.mcs.iter().filter_map(|mc| mc.next_wake(now)).min()
    }

    /// Bulk idle-stat compensation on every channel
    /// ([`MemoryController::note_idle_cycles`]).
    pub fn note_idle_cycles(&mut self, from: Cycle, cycles: u64) {
        for mc in &mut self.mcs {
            mc.note_idle_cycles(from, cycles);
        }
    }

    /// Total queued requests across channels.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.mcs.iter().map(MemoryController::queued).sum()
    }

    /// Whether channel `ch` can accept a request on sub-channel `sc`.
    #[must_use]
    pub fn can_accept(&self, ch: u32, sc: u32, kind: AccessKind) -> bool {
        self.mcs[ch as usize].can_accept(sc, kind)
    }

    /// Enqueues onto the request's channel (`req.addr.bank.channel`).
    pub fn enqueue(&mut self, req: MemRequest, now: Cycle) -> bool {
        self.mcs[req.addr.bank.channel as usize].enqueue(req, now)
    }

    /// Merged controller statistics (field-wise sums; the latency mean
    /// of the merged struct is read-count weighted).
    #[must_use]
    pub fn stats(&self) -> McStats {
        let mut total = McStats::default();
        for mc in &self.mcs {
            total.accumulate(&mc.stats());
        }
        total
    }

    /// Merged device statistics across channels.
    #[must_use]
    pub fn dram_stats(&self) -> mopac_dram::device::DramStats {
        let mut total = mopac_dram::device::DramStats::default();
        for mc in &self.mcs {
            total.accumulate(&mc.dram().stats());
        }
        total
    }

    /// Merged mitigation-engine statistics across channels.
    #[must_use]
    pub fn mitigation_stats(&self) -> mopac::bank::MitigationStats {
        let mut total = mopac::bank::MitigationStats::default();
        for mc in &self.mcs {
            total.accumulate(&mc.dram().mitigation_stats());
        }
        total
    }

    /// Total Rowhammer-oracle violations across channels.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.mcs.iter().map(|mc| mc.dram().violations()).sum()
    }

    /// Total REF commands executed across channels (the
    /// `run_until_refs` pause currency).
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.mcs.iter().map(|mc| mc.dram().stats().refreshes).sum()
    }
}

fn worker_died() -> mopac_types::error::MopacError {
    mopac_types::error::MopacError::internal(
        "a shard worker thread died mid-run (panicked while ticking its channel)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopac::config::MitigationConfig;
    use mopac_dram::device::{DramConfig, DramDevice};
    use mopac_memctrl::controller::McConfig;
    use mopac_types::addr::DecodedAddr;
    use mopac_types::geometry::{BankRef, DramGeometry};

    fn set(channels: u32, threads: usize) -> ChannelSet {
        let geom = DramGeometry {
            channels,
            ..DramGeometry::tiny()
        };
        let mcs = (0..channels)
            .map(|ch| {
                let dram = DramDevice::new(DramConfig {
                    geometry: geom.channel_view(),
                    mitigation: MitigationConfig::prac(500),
                    enable_checker: false,
                    seed: 0xD0_5E_ED ^ u64::from(ch),
                    channel: ch,
                });
                MemoryController::new(dram, McConfig::default())
            })
            .collect();
        ChannelSet::new(mcs, threads)
    }

    fn drive(mut cs: ChannelSet, cycles: Cycle) -> (Vec<Completion>, McStats) {
        let mut done = Vec::new();
        let mut id = 0u64;
        for now in 0..cycles {
            // Keep every channel busy with row-conflict traffic.
            for ch in 0..cs.channels() as u32 {
                if cs.can_accept(ch, 0, AccessKind::Read) {
                    id += 1;
                    let addr = DecodedAddr::new(
                        BankRef::on_channel(ch, 0, (id % 4) as u32),
                        (id * 37 % 701) as u32,
                        0,
                    );
                    cs.enqueue(
                        MemRequest {
                            id,
                            kind: AccessKind::Read,
                            addr,
                        },
                        now,
                    );
                }
            }
            cs.tick_all(now, &mut done).unwrap();
        }
        let stats = cs.stats();
        (done, stats)
    }

    #[test]
    fn sharded_tick_is_bit_identical_to_serial() {
        let (serial, s_stats) = drive(set(4, 1), 4000);
        for threads in [2, 4] {
            let (sharded, stats) = drive(set(4, threads), 4000);
            assert_eq!(serial, sharded, "completion stream @ {threads} threads");
            assert_eq!(s_stats, stats, "merged stats @ {threads} threads");
        }
    }

    #[test]
    fn completions_merge_in_channel_order() {
        let (done, stats) = drive(set(2, 2), 6000);
        assert!(stats.reads_done > 0, "no reads completed");
        assert_eq!(done.len() as u64, stats.reads_done);
    }

    #[test]
    fn merged_stats_sum_channels() {
        let cs = {
            let mut cs = set(3, 1);
            let mut done = Vec::new();
            let mut id = 0;
            for now in 0..2000 {
                for ch in 0..3 {
                    id += 1;
                    let addr =
                        DecodedAddr::new(BankRef::on_channel(ch, 0, 0), (id % 64) as u32, 0);
                    cs.enqueue(
                        MemRequest {
                            id,
                            kind: AccessKind::Read,
                            addr,
                        },
                        now,
                    );
                }
                cs.tick_all(now, &mut done).unwrap();
            }
            cs
        };
        let per_channel: u64 = cs.iter().map(|mc| mc.stats().reads_done).sum();
        assert_eq!(cs.stats().reads_done, per_channel);
        let refs: u64 = cs.iter().map(|mc| mc.dram().stats().refreshes).sum();
        assert_eq!(cs.refreshes(), refs);
    }
}
