//! Per-channel controller set and intra-run channel sharding.
//!
//! A multi-channel topology is simulated as one independent
//! [`MemoryController`] (owning its [`DramDevice`]) per channel: DDR
//! channels share no command bus, no timing gates, no ALERT wiring and
//! no mitigation state, so a channel is a natural parallelism unit.
//! [`ChannelSet`] owns the per-channel controllers and exposes the
//! merged views the system layer needs (wake, stats, idle accounting).
//!
//! ## Macro-batched sharding
//!
//! Forking per DRAM cycle costs a fork-join round-trip (µs) per cycle
//! (ns) — measured as a 6-9x *slowdown* on a busy single-CPU host. So
//! [`ChannelSet::tick_all`] (one cycle) is always serial, and the
//! worker pool (`MOPAC_SHARD_THREADS` / [`SystemConfig::shard_threads`]
//! above 1) is engaged only by [`ChannelSet::tick_range`], which hands
//! each
//! worker a whole cycle *range* in one message when the range is long
//! enough ([`ChannelSet::set_fork_min`]) to amortize the handoff.
//! Inside a range each channel applies its own controller `next_wake`
//! ([`MemoryController::tick_until`]), so the event kernel's
//! time-skipping composes with sharding instead of being defeated by a
//! shared per-cycle barrier. `System::batch_horizon` computes the safe
//! range: no cross-channel coupling (completion delivery, core fetch,
//! fault injection, REF pause) occurs inside it (DESIGN.md §15).
//!
//! Determinism is structural, not timing-dependent: every channel's
//! controller is a sequential deterministic machine touching only its
//! own state (RNG streams, metrics sinks, trace rings included);
//! completions land in per-channel buffers that are merged in
//! channel-index order and then stable-sorted by due cycle — which
//! reproduces the per-cycle loop's cycle-major, channel-minor push
//! order exactly, because read completion latency is a constant (CAS +
//! burst) so due order equals issue order. Results are bit-identical
//! at any thread count, including 1 (the serial loop). The expected
//! speedup needs multiple hardware cores; on a single-CPU host the
//! sharded path is merely not-slower once batched (see DESIGN.md §13,
//! §15).
//!
//! [`DramDevice`]: mopac_dram::device::DramDevice
//! [`SystemConfig::shard_threads`]: crate::system::SystemConfig::shard_threads

use mopac_memctrl::controller::{AccessKind, Completion, McStats, MemRequest, MemoryController};
use mopac_types::error::{MopacError, MopacResult};
use mopac_types::time::Cycle;
use std::sync::mpsc;
use std::sync::OnceLock;
use std::thread::JoinHandle;

/// Below this many cycles a range is ticked serially even when a
/// worker pool exists: a fork-join round-trip costs on the order of a
/// few µs, so short batches must not pay it.
const DEFAULT_FORK_MIN: Cycle = 64;

/// Parses a `MOPAC_SHARD_THREADS` value: `None` input means the
/// variable is unset (`Ok(None)`); a set value must be an integer of
/// at least 1. Pure so it is unit-testable without touching the process
/// environment (the cached resolver below reads the env only once).
///
/// # Errors
///
/// Returns a description of the rejected value when it is not a
/// positive integer.
pub fn parse_shard_threads(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    match raw.trim().parse::<usize>() {
        Ok(0) => Err(format!(
            "MOPAC_SHARD_THREADS must be >= 1 (got `{raw}`); unset it for the serial loop"
        )),
        Ok(n) => Ok(Some(n)),
        Err(_) => Err(format!(
            "MOPAC_SHARD_THREADS must be a positive integer, got `{raw}`"
        )),
    }
}

static SHARD_THREADS_ENV: OnceLock<Result<Option<usize>, String>> = OnceLock::new();

/// Resolves the worker-thread count for intra-run channel sharding: an
/// explicit non-zero `shard_threads` wins; 0 consults the
/// `MOPAC_SHARD_THREADS` environment variable (read and parsed once
/// per process, then cached), defaulting to 1 (the serial loop).
///
/// # Errors
///
/// [`MopacError::Config`] when the variable is set but is not a
/// positive integer — a typo must fail loudly, not silently run
/// serial.
///
/// [`MopacError::Config`]: mopac_types::error::MopacError
pub fn resolve_shard_threads(shard_threads: usize) -> MopacResult<usize> {
    if shard_threads != 0 {
        return Ok(shard_threads);
    }
    let cached = SHARD_THREADS_ENV
        .get_or_init(|| parse_shard_threads(std::env::var("MOPAC_SHARD_THREADS").ok().as_deref()));
    match cached {
        Ok(n) => Ok(n.unwrap_or(1)),
        Err(msg) => Err(MopacError::config(msg.clone())),
    }
}

/// One cycle range's work for one channel, lent to a worker for the
/// duration of a fork-join round.
struct Job {
    mc: *mut MemoryController,
    out: *mut Vec<Completion>,
    from: Cycle,
    to: Cycle,
}

// SAFETY: the pointers reference distinct `ChannelSet`-owned values
// (one controller and one buffer per channel, no aliasing), and the
// main thread neither touches them nor returns from `tick_range` until
// it has received the worker's reply for the round — the reply channel
// is the happens-before edge.
unsafe impl Send for Job {}

struct Worker {
    job_tx: mpsc::Sender<Job>,
    reply_rx: mpsc::Receiver<MopacResult<u32>>,
    handle: Option<JoinHandle<()>>,
}

/// Persistent fork-join worker pool for channel ticking. Workers park
/// in a blocking receive between rounds; dropping the pool closes the
/// job channels and joins every thread.
struct ShardPool {
    workers: Vec<Worker>,
}

impl ShardPool {
    fn new(workers: usize) -> Self {
        let workers = (0..workers)
            .map(|i| {
                let (job_tx, job_rx) = mpsc::channel::<Job>();
                let (reply_tx, reply_rx) = mpsc::channel::<MopacResult<u32>>();
                let spawned = std::thread::Builder::new()
                    .name(format!("mopac-shard-{i}"))
                    .spawn(move || {
                        for job in job_rx {
                            // SAFETY: see `Job` — exclusive for the round.
                            let mc = unsafe { &mut *job.mc };
                            let out = unsafe { &mut *job.out };
                            let r = mc.tick_until(job.from, job.to, out);
                            if reply_tx.send(r).is_err() {
                                break;
                            }
                        }
                    });
                let handle = match spawned {
                    Ok(h) => h,
                    Err(e) => panic!("spawning shard worker {i}: {e}"),
                };
                Worker {
                    job_tx,
                    reply_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        Self { workers }
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for w in &mut self.workers {
            // Replace the sender with a dead one so the worker's
            // receive loop ends, then join.
            let (dead, _) = mpsc::channel();
            w.job_tx = dead;
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

/// The per-channel memory controllers of one system, with serial
/// per-cycle ticking and macro-batched fork-join range ticking (see
/// the module docs for the determinism argument).
pub struct ChannelSet {
    mcs: Vec<MemoryController>,
    /// Per-channel completion buffers for the range path; merged in
    /// channel-index order after the join, then stable-sorted by due
    /// cycle.
    bufs: Vec<Vec<Completion>>,
    pool: Option<ShardPool>,
    fork_min: Cycle,
}

impl ChannelSet {
    /// Wraps per-channel controllers; `threads > 1` (clamped to the
    /// channel count) enables the sharded range path.
    #[must_use]
    pub fn new(mcs: Vec<MemoryController>, threads: usize) -> Self {
        assert!(!mcs.is_empty(), "a system needs at least one channel");
        let bufs = mcs.iter().map(|_| Vec::new()).collect();
        let threads = threads.min(mcs.len());
        // The main thread is worker 0; the pool holds the extras.
        let pool = (threads > 1).then(|| ShardPool::new(threads - 1));
        Self {
            mcs,
            bufs,
            pool,
            fork_min: DEFAULT_FORK_MIN,
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.mcs.len()
    }

    /// One channel's controller.
    #[must_use]
    pub fn channel(&self, ch: u32) -> &MemoryController {
        &self.mcs[ch as usize]
    }

    /// Mutable access to one channel's controller (fault hooks,
    /// restore).
    pub fn channel_mut(&mut self, ch: u32) -> &mut MemoryController {
        &mut self.mcs[ch as usize]
    }

    /// Iterates the controllers in channel order.
    pub fn iter(&self) -> impl Iterator<Item = &MemoryController> {
        self.mcs.iter()
    }

    /// Iterates the controllers mutably in channel order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut MemoryController> {
        self.mcs.iter_mut()
    }

    /// Overrides the minimum range length at which [`tick_range`]
    /// forks to the worker pool (default 64 cycles). Benches and the
    /// batch-equivalence property test set 1 to force the fork path
    /// onto adversarially short ranges.
    ///
    /// [`tick_range`]: ChannelSet::tick_range
    pub fn set_fork_min(&mut self, fork_min: Cycle) {
        self.fork_min = fork_min.max(1);
    }

    /// Ticks every channel for cycle `now`, appending finished reads to
    /// `out` grouped by ascending channel (within a channel, the
    /// controller's own issue order). Always serial — one cycle of work
    /// per channel is far too little to amortize a fork-join round-trip
    /// (use [`ChannelSet::tick_range`] for batches). Returns the total
    /// commands issued.
    ///
    /// # Errors
    ///
    /// Propagates the lowest-channel tick error.
    pub fn tick_all(&mut self, now: Cycle, out: &mut Vec<Completion>) -> MopacResult<u32> {
        let mut issued = 0;
        for mc in &mut self.mcs {
            issued += mc.tick(now, out)?;
        }
        Ok(issued)
    }

    /// Ticks every channel from `from` (inclusive) to `to` (exclusive)
    /// in one round, appending finished reads to `out` in exactly the
    /// order `to - from` successive [`tick_all`] calls would have
    /// (cycle-major, channel-minor; see the module docs). Forks the
    /// range across the worker pool when one exists and the range is at
    /// least [`set_fork_min`] cycles; channel `ch` runs on worker
    /// `ch % threads`, worker 0 being this thread. Returns the total
    /// commands issued.
    ///
    /// The caller guarantees nothing arrives at any channel inside
    /// `[from, to)` — the horizon contract computed by
    /// `System::batch_horizon`.
    ///
    /// [`tick_all`]: ChannelSet::tick_all
    /// [`set_fork_min`]: ChannelSet::set_fork_min
    ///
    /// # Errors
    ///
    /// Propagates the lowest-channel tick error; on the forked path
    /// every channel still completes its round first (the join is
    /// unconditional), so an error leaves no worker holding state.
    pub fn tick_range(
        &mut self,
        from: Cycle,
        to: Cycle,
        out: &mut Vec<Completion>,
    ) -> MopacResult<u32> {
        debug_assert!(from < to, "empty batch range [{from}, {to})");
        for buf in &mut self.bufs {
            buf.clear();
        }
        let base = out.len();
        let issued = match &self.pool {
            Some(pool) if to - from >= self.fork_min => {
                fork_range(pool, &mut self.mcs, &mut self.bufs, from, to)?
            }
            _ => {
                let mut issued = 0;
                for (mc, buf) in self.mcs.iter_mut().zip(&mut self.bufs) {
                    issued += mc.tick_until(from, to, buf)?;
                }
                issued
            }
        };
        for buf in &mut self.bufs {
            out.extend_from_slice(buf);
        }
        // Per-channel buffers are channel-major; the per-cycle
        // reference is cycle-major. Completion latency is constant, so
        // a stable sort by due cycle (ties keep channel order)
        // reproduces the reference push order bit-for-bit.
        out[base..].sort_by_key(|c| c.at);
        Ok(issued)
    }

    /// Earliest wake across channels ([`MemoryController::next_wake`]).
    #[must_use]
    pub fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        self.mcs.iter().filter_map(|mc| mc.next_wake(now)).min()
    }

    /// Minimum read completion latency across channels
    /// ([`MemoryController::min_read_latency`]).
    #[must_use]
    pub fn min_read_latency(&self) -> Cycle {
        self.mcs
            .iter()
            .map(MemoryController::min_read_latency)
            .min()
            .unwrap_or(1)
    }

    /// Earliest scheduled refresh deadline across channels
    /// ([`MemoryController::next_ref_floor`]): no REF can fire anywhere
    /// before this cycle.
    #[must_use]
    pub fn next_ref_floor(&self) -> Cycle {
        self.mcs
            .iter()
            .map(MemoryController::next_ref_floor)
            .min()
            .unwrap_or(Cycle::MAX)
    }

    /// Bulk idle-stat compensation on every channel
    /// ([`MemoryController::note_idle_cycles`]).
    pub fn note_idle_cycles(&mut self, from: Cycle, cycles: u64) {
        for mc in &mut self.mcs {
            mc.note_idle_cycles(from, cycles);
        }
    }

    /// Total queued requests across channels.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.mcs.iter().map(MemoryController::queued).sum()
    }

    /// Whether channel `ch` can accept a request on sub-channel `sc`.
    #[must_use]
    pub fn can_accept(&self, ch: u32, sc: u32, kind: AccessKind) -> bool {
        self.mcs[ch as usize].can_accept(sc, kind)
    }

    /// Enqueues onto the request's channel (`req.addr.bank.channel`).
    pub fn enqueue(&mut self, req: MemRequest, now: Cycle) -> bool {
        self.mcs[req.addr.bank.channel as usize].enqueue(req, now)
    }

    /// Merged controller statistics (field-wise sums; the latency mean
    /// of the merged struct is read-count weighted).
    #[must_use]
    pub fn stats(&self) -> McStats {
        let mut total = McStats::default();
        for mc in &self.mcs {
            total.accumulate(&mc.stats());
        }
        total
    }

    /// Merged device statistics across channels.
    #[must_use]
    pub fn dram_stats(&self) -> mopac_dram::device::DramStats {
        let mut total = mopac_dram::device::DramStats::default();
        for mc in &self.mcs {
            total.accumulate(&mc.dram().stats());
        }
        total
    }

    /// Merged mitigation-engine statistics across channels.
    #[must_use]
    pub fn mitigation_stats(&self) -> mopac::bank::MitigationStats {
        let mut total = mopac::bank::MitigationStats::default();
        for mc in &self.mcs {
            total.accumulate(&mc.dram().mitigation_stats());
        }
        total
    }

    /// Total Rowhammer-oracle violations across channels.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.mcs.iter().map(|mc| mc.dram().violations()).sum()
    }

    /// Total REF commands executed across channels (the
    /// `run_until_refs` pause currency).
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.mcs.iter().map(|mc| mc.dram().stats().refreshes).sum()
    }
}

/// The fork-join round of [`ChannelSet::tick_range`]: sends one range
/// job per remote channel first (so remote workers run concurrently
/// with this thread), ticks worker 0's channels inline, then collects
/// every reply before returning — no lent state is touched until its
/// worker has replied.
fn fork_range(
    pool: &ShardPool,
    mcs: &mut [MemoryController],
    bufs: &mut [Vec<Completion>],
    from: Cycle,
    to: Cycle,
) -> MopacResult<u32> {
    let threads = pool.workers.len() + 1;
    let mut results: Vec<Option<MopacResult<u32>>> = (0..mcs.len()).map(|_| None).collect();
    let mut locals = Vec::new();
    for (ch, (mc, buf)) in mcs.iter_mut().zip(bufs.iter_mut()).enumerate() {
        let worker = ch % threads;
        if worker == 0 {
            locals.push((ch, mc, buf));
        } else {
            // SAFETY: see `Job` — `ch % threads` partitions channels
            // across workers, so each controller/buffer pair is lent to
            // exactly one worker; the reply receive below is the
            // happens-before edge before the lent state is touched
            // again.
            let job = Job {
                mc: std::ptr::from_mut(mc),
                out: std::ptr::from_mut(buf),
                from,
                to,
            };
            pool.workers[worker - 1]
                .job_tx
                .send(job)
                .map_err(|_| worker_died())?;
        }
    }
    for (ch, mc, buf) in locals {
        results[ch] = Some(mc.tick_until(from, to, buf));
    }
    // Join: replies arrive per worker in that worker's channel order,
    // so pairing them back up is deterministic.
    for (ch, slot) in results.iter_mut().enumerate() {
        let worker = ch % threads;
        if worker != 0 {
            *slot = Some(
                pool.workers[worker - 1]
                    .reply_rx
                    .recv()
                    .map_err(|_| worker_died())?,
            );
        }
    }
    let mut issued = 0;
    for slot in results {
        match slot {
            Some(Ok(n)) => issued += n,
            Some(Err(e)) => return Err(e),
            None => unreachable!("every channel was assigned a worker"),
        }
    }
    Ok(issued)
}

fn worker_died() -> MopacError {
    MopacError::internal(
        "a shard worker thread died mid-run (panicked while ticking its channel)",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopac::config::MitigationConfig;
    use mopac_dram::device::{DramConfig, DramDevice};
    use mopac_memctrl::controller::McConfig;
    use mopac_types::addr::DecodedAddr;
    use mopac_types::geometry::{BankRef, DramGeometry};

    fn set(channels: u32, threads: usize) -> ChannelSet {
        let geom = DramGeometry {
            channels,
            ..DramGeometry::tiny()
        };
        let mcs = (0..channels)
            .map(|ch| {
                let dram = DramDevice::new(DramConfig {
                    geometry: geom.channel_view(),
                    mitigation: MitigationConfig::prac(500),
                    enable_checker: false,
                    seed: 0xD0_5E_ED ^ u64::from(ch),
                    channel: ch,
                    flip: None,
                });
                MemoryController::new(dram, McConfig::default())
            })
            .collect();
        ChannelSet::new(mcs, threads)
    }

    fn enqueue_conflicts(cs: &mut ChannelSet, now: Cycle, id: &mut u64) {
        // Keep every channel busy with row-conflict traffic.
        for ch in 0..cs.channels() as u32 {
            if cs.can_accept(ch, 0, AccessKind::Read) {
                *id += 1;
                let addr = DecodedAddr::new(
                    BankRef::on_channel(ch, 0, (*id % 4) as u32),
                    (*id * 37 % 701) as u32,
                    0,
                );
                cs.enqueue(
                    MemRequest {
                        id: *id,
                        kind: AccessKind::Read,
                        addr,
                    },
                    now,
                );
            }
        }
    }

    fn drive(mut cs: ChannelSet, cycles: Cycle) -> (Vec<Completion>, McStats) {
        let mut done = Vec::new();
        let mut id = 0u64;
        for now in 0..cycles {
            enqueue_conflicts(&mut cs, now, &mut id);
            cs.tick_all(now, &mut done).unwrap();
        }
        let stats = cs.stats();
        (done, stats)
    }

    /// Same workload as `drive`, but every cycle goes through
    /// `tick_range` with H=1 and `fork_min` 1 — the adversarially
    /// short batch that still exercises the full fork/merge machinery.
    fn drive_ranged(mut cs: ChannelSet, cycles: Cycle) -> (Vec<Completion>, McStats) {
        cs.set_fork_min(1);
        let mut done = Vec::new();
        let mut id = 0u64;
        for now in 0..cycles {
            enqueue_conflicts(&mut cs, now, &mut id);
            cs.tick_range(now, now + 1, &mut done).unwrap();
        }
        let stats = cs.stats();
        (done, stats)
    }

    #[test]
    fn forked_range_is_bit_identical_to_serial() {
        let (serial, s_stats) = drive(set(4, 1), 4000);
        for threads in [1, 2, 4] {
            let (sharded, stats) = drive_ranged(set(4, threads), 4000);
            assert_eq!(serial, sharded, "completion stream @ {threads} threads");
            assert_eq!(s_stats, stats, "merged stats @ {threads} threads");
        }
    }

    #[test]
    fn long_range_matches_per_cycle_loop() {
        // One burst of arrivals at cycle 0, then a quiet span: the
        // whole span is a legal batch (nothing arrives inside it).
        let cycles = 5000;
        let reference = {
            let mut cs = set(4, 1);
            let mut done = Vec::new();
            let mut id = 0u64;
            enqueue_conflicts(&mut cs, 0, &mut id);
            for now in 0..cycles {
                cs.tick_all(now, &mut done).unwrap();
            }
            (done, cs.stats())
        };
        for threads in [1, 2, 4] {
            let mut cs = set(4, threads);
            let mut done = Vec::new();
            let mut id = 0u64;
            enqueue_conflicts(&mut cs, 0, &mut id);
            cs.tick_range(0, cycles, &mut done).unwrap();
            assert_eq!(reference.0, done, "completion stream @ {threads} threads");
            assert_eq!(reference.1, cs.stats(), "merged stats @ {threads} threads");
        }
    }

    #[test]
    fn completions_merge_in_channel_order() {
        let (done, stats) = drive_ranged(set(2, 2), 6000);
        assert!(stats.reads_done > 0, "no reads completed");
        assert_eq!(done.len() as u64, stats.reads_done);
    }

    #[test]
    fn merged_stats_sum_channels() {
        let cs = {
            let mut cs = set(3, 1);
            let mut done = Vec::new();
            let mut id = 0;
            for now in 0..2000 {
                for ch in 0..3 {
                    id += 1;
                    let addr =
                        DecodedAddr::new(BankRef::on_channel(ch, 0, 0), (id % 64) as u32, 0);
                    cs.enqueue(
                        MemRequest {
                            id,
                            kind: AccessKind::Read,
                            addr,
                        },
                        now,
                    );
                }
                cs.tick_all(now, &mut done).unwrap();
            }
            cs
        };
        let per_channel: u64 = cs.iter().map(|mc| mc.stats().reads_done).sum();
        assert_eq!(cs.stats().reads_done, per_channel);
        let refs: u64 = cs.iter().map(|mc| mc.dram().stats().refreshes).sum();
        assert_eq!(cs.refreshes(), refs);
    }

    #[test]
    fn parse_shard_threads_contract() {
        assert_eq!(parse_shard_threads(None), Ok(None));
        assert_eq!(parse_shard_threads(Some("1")), Ok(Some(1)));
        assert_eq!(parse_shard_threads(Some(" 4 ")), Ok(Some(4)));
        assert!(parse_shard_threads(Some("0")).is_err());
        assert!(parse_shard_threads(Some("four")).is_err());
        assert!(parse_shard_threads(Some("")).is_err());
        assert!(parse_shard_threads(Some("-2")).is_err());
    }

    #[test]
    fn explicit_thread_count_skips_env() {
        assert_eq!(resolve_shard_threads(3).unwrap(), 3);
    }
}
