//! Deterministic fault injection for robustness testing.
//!
//! A [`FaultPlan`] is a seed plus a list of [`FaultSpec`]s — *what* goes
//! wrong and *when* (in DRAM cycles). The [`System`](crate::system::System)
//! expands the plan into a [`FaultInjector`] and applies due events at
//! the top of every cycle, before the memory controller ticks, so a run
//! with the same plan, seed and traces is exactly reproducible.
//!
//! Faults model the failure modes a PRAC/ABO memory system is exposed
//! to: spurious or storming ALERT assertions, RFMs that the device drops
//! or services late, soft errors in the in-DRAM activation counters,
//! rows wedged open past their timing window, and corrupted trace
//! inputs. Injection never aborts the simulation — consequences surface
//! as structured statistics ([`mopac_dram::DramStats::injected_faults`],
//! oracle violation counts) or as typed [`MopacError`]s from the run.
//!
//! # Examples
//!
//! ```
//! use mopac_sim::fault::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::new(0xFA_07)
//!     .with(10_000, FaultKind::AlertStorm { subchannel: 0, period: 600, count: 8 })
//!     .with(50_000, FaultKind::DropRfm { count: 2 });
//! assert_eq!(plan.faults().len(), 2);
//! ```

use mopac_cpu::trace::{TraceRecord, TraceSource};
use mopac_memctrl::controller::MemoryController;
use mopac_types::addr::PhysAddr;
use mopac_types::error::{MopacError, MopacResult};
use mopac_types::rng::DetRng;
use mopac_types::time::Cycle;

/// One kind of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Assert the ALERT line on `subchannel` `count` times, `period`
    /// cycles apart, regardless of any counter crossing a threshold
    /// (a glitching open-drain ALERT_n pin).
    AlertStorm {
        /// Sub-channel whose ALERT line glitches.
        subchannel: u32,
        /// Cycles between consecutive spurious assertions.
        period: Cycle,
        /// Number of assertions.
        count: u32,
    },
    /// The device silently swallows the next `count` RFM commands: the
    /// bus transaction happens (banks stall) but no mitigation work is
    /// performed and ALERT re-asserts.
    DropRfm {
        /// How many future RFMs to drop.
        count: u32,
    },
    /// Every subsequent RFM takes `extra_cycles` longer than tRFM
    /// (a slow mitigation engine); cumulative across events.
    DelayRfm {
        /// Extra stall cycles added to each RFM.
        extra_cycles: Cycle,
    },
    /// Flip bit `bit` of the PRAC counter of a uniformly random row in
    /// (`subchannel`, `bank`) — a soft error in the in-row counter
    /// storage. The row is drawn from the plan's deterministic RNG.
    CounterBitFlip {
        /// Target sub-channel.
        subchannel: u32,
        /// Target bank.
        bank: u32,
        /// Bit index to flip (wraps above 31).
        bit: u32,
    },
    /// Wedge (`subchannel`, `bank`) for `duration` cycles: an open row
    /// cannot be precharged (stuck-open), a closed bank cannot be
    /// activated.
    StuckBank {
        /// Target sub-channel.
        subchannel: u32,
        /// Target bank.
        bank: u32,
        /// Cycles the bank stays wedged from the event cycle.
        duration: Cycle,
    },
    /// Corrupt trace records fed to every core: each record's address
    /// has random line-index bits XORed in with probability `rate`.
    /// Applied from the first record (the event cycle is ignored —
    /// traces have no cycle clock) by wrapping the trace sources.
    TraceCorruption {
        /// Per-record corruption probability in `[0, 1]`.
        rate: f64,
    },
}

impl FaultKind {
    /// Short human label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::AlertStorm { .. } => "alert-storm",
            FaultKind::DropRfm { .. } => "drop-rfm",
            FaultKind::DelayRfm { .. } => "delay-rfm",
            FaultKind::CounterBitFlip { .. } => "counter-bitflip",
            FaultKind::StuckBank { .. } => "stuck-bank",
            FaultKind::TraceCorruption { .. } => "trace-corruption",
        }
    }
}

/// A fault scheduled at a specific cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// DRAM cycle at which the fault fires.
    pub at: Cycle,
    /// What goes wrong.
    pub kind: FaultKind,
}

/// A deterministic, seed-driven fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan drawing randomness (bit-flip rows) from `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            faults: Vec::new(),
        }
    }

    /// Adds a fault at cycle `at` (builder style).
    #[must_use]
    pub fn with(mut self, at: Cycle, kind: FaultKind) -> Self {
        self.faults.push(FaultSpec { at, kind });
        self
    }

    /// The plan's RNG seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled faults, in insertion order.
    #[must_use]
    pub fn faults(&self) -> &[FaultSpec] {
        &self.faults
    }

    /// The trace-corruption rate, if the plan includes one (the maximum
    /// across `TraceCorruption` entries).
    #[must_use]
    pub fn trace_corruption_rate(&self) -> Option<f64> {
        self.faults
            .iter()
            .filter_map(|f| match f.kind {
                FaultKind::TraceCorruption { rate } => Some(rate),
                _ => None,
            })
            .reduce(f64::max)
    }
}

/// Expanded, cycle-ordered injector state built from a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultInjector {
    /// Remaining events, ascending by cycle; popped from the front.
    events: Vec<FaultSpec>,
    next_idx: usize,
    rng: DetRng,
    applied: u64,
}

impl FaultInjector {
    /// Expands `plan` into a cycle-ordered event list (an `AlertStorm`
    /// becomes `count` single assertions; `TraceCorruption` is handled
    /// at trace-construction time and skipped here).
    #[must_use]
    pub fn new(plan: &FaultPlan) -> Self {
        let mut events = Vec::new();
        for f in plan.faults() {
            match f.kind {
                FaultKind::AlertStorm {
                    subchannel,
                    period,
                    count,
                } => {
                    for i in 0..count {
                        events.push(FaultSpec {
                            at: f.at + Cycle::from(i) * period,
                            kind: FaultKind::AlertStorm {
                                subchannel,
                                period,
                                count: 1,
                            },
                        });
                    }
                }
                FaultKind::TraceCorruption { .. } => {}
                _ => events.push(*f),
            }
        }
        events.sort_by_key(|e| e.at);
        Self {
            events,
            next_idx: 0,
            rng: DetRng::from_seed(plan.seed()).fork(0xFA17),
            applied: 0,
        }
    }

    /// Number of events applied so far.
    #[must_use]
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Whether all scheduled events have fired.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.next_idx >= self.events.len()
    }

    /// The cycle of the next scheduled event, if any remain — an event-
    /// driven kernel must not skip past it.
    #[must_use]
    pub fn next_due(&self) -> Option<Cycle> {
        self.events.get(self.next_idx).map(|e| e.at)
    }

    /// Applies every event due at or before `now` to the controller's
    /// device.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Config`] if an event targets a sub-channel
    /// or bank outside the device geometry.
    pub fn apply(&mut self, now: Cycle, mc: &mut MemoryController) -> MopacResult<()> {
        while let Some(ev) = self.events.get(self.next_idx) {
            if ev.at > now {
                break;
            }
            let ev = *ev;
            self.next_idx += 1;
            self.applied += 1;
            match ev.kind {
                FaultKind::AlertStorm { subchannel, .. } => {
                    mc.dram_mut().inject_alert(subchannel, now)?;
                }
                FaultKind::DropRfm { count } => {
                    mc.dram_mut().inject_rfm_drop(count);
                }
                FaultKind::DelayRfm { extra_cycles } => {
                    mc.dram_mut().inject_rfm_delay(extra_cycles);
                }
                FaultKind::CounterBitFlip {
                    subchannel,
                    bank,
                    bit,
                } => {
                    let rows = mc.dram().config().geometry.rows_per_bank;
                    let row = self.rng.below(u64::from(rows.max(1))) as u32;
                    mc.dram_mut().inject_counter_flip(subchannel, bank, row, bit)?;
                }
                FaultKind::StuckBank {
                    subchannel,
                    bank,
                    duration,
                } => {
                    mc.dram_mut()
                        .inject_stuck_bank(subchannel, bank, now + duration)?;
                }
                FaultKind::TraceCorruption { .. } => {
                    return Err(MopacError::internal(
                        "TraceCorruption events are expanded at trace construction",
                    ));
                }
            }
        }
        Ok(())
    }
}

impl mopac_types::snapshot::Snapshottable for FaultInjector {
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_usize(self.events.len());
        w.put_usize(self.next_idx);
        self.rng.save_state(w);
        w.put_u64(self.applied);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> MopacResult<()> {
        let events = r.take_usize()?;
        if events != self.events.len() {
            return Err(MopacError::snapshot(format!(
                "fault injector has {events} events in snapshot but {} expanded from plan",
                self.events.len(),
            )));
        }
        let next_idx = r.take_usize()?;
        if next_idx > self.events.len() {
            return Err(MopacError::snapshot(format!(
                "fault injector cursor {next_idx} past {} events",
                self.events.len(),
            )));
        }
        self.next_idx = next_idx;
        self.rng.load_state(r)?;
        self.applied = r.take_u64()?;
        Ok(())
    }
}

/// A [`TraceSource`] wrapper that corrupts records on the way through:
/// with probability `rate` per record, random bits are XORed into the
/// line index (the address mapper decodes modulo the device capacity,
/// so a corrupted address is still a *valid* address — it just lands on
/// the wrong row/bank, exactly like a flipped address bus bit).
pub struct CorruptingTrace {
    inner: Box<dyn TraceSource>,
    rate: f64,
    line_bytes: u32,
    rng: DetRng,
    corrupted: u64,
}

impl CorruptingTrace {
    /// Wraps `inner`, corrupting each record with probability `rate`.
    /// `stream` decorrelates the per-core RNGs of a shared plan seed.
    #[must_use]
    pub fn new(inner: Box<dyn TraceSource>, rate: f64, line_bytes: u32, seed: u64, stream: u64) -> Self {
        Self {
            inner,
            rate,
            line_bytes,
            rng: DetRng::from_seed(seed).fork(0xC0_44 ^ stream),
            corrupted: 0,
        }
    }

    /// Records corrupted so far.
    #[must_use]
    pub fn corrupted(&self) -> u64 {
        self.corrupted
    }
}

impl TraceSource for CorruptingTrace {
    fn next_record(&mut self) -> TraceRecord {
        let mut rec = self.inner.next_record();
        if self.rng.bernoulli(self.rate) {
            let line = rec.addr.line_index(self.line_bytes) ^ self.rng.next_u64();
            rec.addr = PhysAddr::from_line_index(line, self.line_bytes);
            self.corrupted += 1;
        }
        rec
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn corrupted_records(&self) -> u64 {
        self.corrupted
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        use mopac_types::snapshot::Snapshottable;
        self.inner.save_state(w);
        self.rng.save_state(w);
        w.put_u64(self.corrupted);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> MopacResult<()> {
        use mopac_types::snapshot::Snapshottable;
        self.inner.load_state(r)?;
        self.rng.load_state(r)?;
        self.corrupted = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopac::config::MitigationConfig;
    use mopac_dram::device::{DramConfig, DramDevice};
    use mopac_memctrl::controller::McConfig;

    fn tiny_mc() -> MemoryController {
        let dram = DramDevice::new(DramConfig::tiny(MitigationConfig::prac(500)));
        MemoryController::new(dram, McConfig::default())
    }

    #[test]
    fn storm_expands_to_count_events() {
        let plan = FaultPlan::new(1).with(
            100,
            FaultKind::AlertStorm {
                subchannel: 0,
                period: 50,
                count: 4,
            },
        );
        let mut inj = FaultInjector::new(&plan);
        let mut mc = tiny_mc();
        inj.apply(99, &mut mc).unwrap();
        assert_eq!(inj.applied(), 0);
        inj.apply(100 + 3 * 50, &mut mc).unwrap();
        assert_eq!(inj.applied(), 4);
        assert!(inj.exhausted());
        assert!(mc.dram().stats().injected_faults >= 1);
    }

    #[test]
    fn bitflip_row_is_deterministic_per_seed() {
        let plan = FaultPlan::new(7).with(
            0,
            FaultKind::CounterBitFlip {
                subchannel: 0,
                bank: 0,
                bit: 3,
            },
        );
        let mut a = tiny_mc();
        let mut b = tiny_mc();
        FaultInjector::new(&plan).apply(0, &mut a).unwrap();
        FaultInjector::new(&plan).apply(0, &mut b).unwrap();
        assert_eq!(a.dram().stats().injected_faults, 1);
        assert_eq!(
            a.dram().stats().injected_faults,
            b.dram().stats().injected_faults
        );
    }

    #[test]
    fn out_of_range_target_is_a_config_error() {
        let plan = FaultPlan::new(1).with(
            0,
            FaultKind::StuckBank {
                subchannel: 99,
                bank: 0,
                duration: 10,
            },
        );
        let mut mc = tiny_mc();
        let err = FaultInjector::new(&plan).apply(0, &mut mc).unwrap_err();
        assert!(matches!(err, MopacError::Config { .. }), "{err}");
    }

    #[test]
    fn corrupting_trace_flips_some_addresses() {
        use mopac_cpu::trace::ReplayTrace;
        let records: Vec<TraceRecord> = (0..512u64)
            .map(|i| TraceRecord {
                gap: 1,
                addr: PhysAddr::new(i * 64),
                is_write: false,
            })
            .collect();
        let inner = Box::new(ReplayTrace::new("unit", records.clone()));
        let mut t = CorruptingTrace::new(inner, 0.25, 64, 9, 0);
        let mut changed = 0;
        for r in &records {
            if t.next_record().addr != r.addr {
                changed += 1;
            }
        }
        assert_eq!(changed, t.corrupted());
        assert!((50..200).contains(&changed), "corrupted {changed}/512");
        // Zero rate is the identity.
        let inner = Box::new(ReplayTrace::new("unit", records.clone()));
        let mut t = CorruptingTrace::new(inner, 0.0, 64, 9, 0);
        assert!(records.iter().all(|r| t.next_record().addr == r.addr));
    }

    #[test]
    fn trace_corruption_rate_takes_max() {
        let plan = FaultPlan::new(1)
            .with(0, FaultKind::TraceCorruption { rate: 0.1 })
            .with(0, FaultKind::TraceCorruption { rate: 0.4 });
        assert_eq!(plan.trace_corruption_rate(), Some(0.4));
        // And the injector ignores them entirely.
        let mut inj = FaultInjector::new(&plan);
        let mut mc = tiny_mc();
        inj.apply(u64::MAX, &mut mc).unwrap();
        assert_eq!(inj.applied(), 0);
    }
}
