//! The full-system simulator: 8 trace-driven cores, optional shared LLC,
//! the memory controller and the DRAM device, advanced on the DRAM
//! clock by one of two kernels:
//!
//! * [`KernelMode::EventDriven`] (the default) ticks normally while
//!   anything is happening, but when a cycle makes *zero* progress (no
//!   fault event, no DRAM command, no completion delivery, no fetch, no
//!   retire) it jumps `now` straight to the earliest external wake —
//!   the minimum of the fault injector's next event, the earliest
//!   in-flight completion, and [`MemoryController::next_wake`] — and
//!   compensates the per-cycle statistics in bulk. Skipped cycles are
//!   provably no-ops, so the results are bit-identical to lockstep.
//! * [`KernelMode::Lockstep`] ticks every DRAM cycle; it is the golden
//!   reference the equivalence suite checks the fast kernel against.

use crate::fault::{CorruptingTrace, FaultInjector, FaultPlan};
use crate::shard::{resolve_shard_threads, ChannelSet};
use mopac::config::MitigationConfig;
use mopac_cpu::core::{Core, CoreParams};
use mopac_cpu::llc::{CacheAccess, Llc};
use mopac_cpu::prefetch::StreamPrefetcher;
use mopac_cpu::trace::TraceSource;
use mopac_dram::device::{DramConfig, DramDevice, DramStats};
use mopac_memctrl::controller::{AccessKind, Completion, McConfig, MemRequest, MemoryController};
use mopac_memctrl::mapping::{AddressMapper, Mapping};
use mopac_types::addr::PhysAddr;
use mopac_types::collections::DetMap;
use mopac_types::error::{MopacError, MopacResult};
use mopac_types::geometry::DramGeometry;
use mopac_types::obs::{
    Counter, Gauge, Hist, MetricsRegistry, MetricsSink, MetricsSnapshot, SinkConfig,
};
use mopac_types::rng::DetRng;
use mopac_types::snapshot::{expect_exhausted, SnapshotReader, SnapshotWriter, Snapshottable};
use mopac_types::time::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the system advances time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Skip provably idle cycles by jumping to the next wake point.
    #[default]
    EventDriven,
    /// Tick every DRAM cycle (the golden reference kernel).
    Lockstep,
}

/// System-level configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// DRAM organization (Table 3 default).
    pub geometry: DramGeometry,
    /// Mitigation under test.
    pub mitigation: MitigationConfig,
    /// Memory-controller configuration (page policy etc.).
    pub mc: McConfig,
    /// Address mapping.
    pub mapping: Mapping,
    /// Instructions each core must retire.
    pub instrs_per_core: u64,
    /// Route traces through the shared LLC (calibrated Table 4 traces
    /// bypass it; raw-address applications enable it).
    pub use_llc: bool,
    /// Run the Rowhammer oracle during the run.
    pub enable_checker: bool,
    /// Master seed.
    pub seed: u64,
    /// Hard cycle cap (safety net for misconfigured runs).
    pub max_cycles: Cycle,
    /// Stream-prefetcher lookahead in lines (0 disables prefetching).
    pub prefetch_distance: u64,
    /// Stream trackers per core.
    pub prefetch_trackers: usize,
    /// Livelock watchdog: error out if no core retires an instruction
    /// for this many consecutive cycles (0 disables the watchdog).
    pub livelock_window: Cycle,
    /// Optional deterministic fault schedule applied during the run.
    pub fault_plan: Option<FaultPlan>,
    /// Simulation kernel (event-driven by default; lockstep is the
    /// golden reference).
    pub kernel: KernelMode,
    /// Observability: `Some` enables the metrics sink (registry +
    /// trace ring) on the controller and device. `None` (the default)
    /// keeps every sink call a no-op; runs are bit-identical either
    /// way — the sink only records alongside the simulation.
    pub metrics: Option<SinkConfig>,
    /// Worker threads for intra-run channel sharding: 1 ticks channels
    /// serially, `n > 1` fans the per-channel controller ticks across
    /// `min(n, channels)` threads each cycle, and 0 (the default)
    /// reads `MOPAC_SHARD_THREADS` (unset → serial). Results are
    /// bit-identical at every value (see [`crate::shard`]).
    pub shard_threads: usize,
}

impl SystemConfig {
    /// The paper's system with the given mitigation and a per-core
    /// instruction budget.
    #[must_use]
    pub fn paper_default(mitigation: MitigationConfig, instrs_per_core: u64) -> Self {
        Self {
            geometry: DramGeometry::ddr5_32gb(),
            mitigation,
            mc: McConfig::default(),
            mapping: Mapping::paper_default(),
            instrs_per_core,
            use_llc: false,
            enable_checker: false,
            seed: 0x5151,
            max_cycles: 2_000_000_000,
            prefetch_distance: 16,
            prefetch_trackers: 8,
            livelock_window: 10_000_000,
            fault_plan: None,
            kernel: KernelMode::EventDriven,
            metrics: None,
            shard_threads: 0,
        }
    }
}

/// Per-core results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreResult {
    /// Instructions retired when the budget was reached.
    pub instructions: u64,
    /// Cycle at which the budget was crossed.
    pub finish_cycle: Cycle,
    /// Instructions per DRAM cycle up to the finish.
    pub ipc: f64,
}

/// Prefetcher effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch requests sent to memory.
    pub issued: u64,
    /// Demand reads fully absorbed by a completed prefetch.
    pub hits: u64,
    /// Demand reads that piggybacked on an in-flight prefetch.
    pub late_hits: u64,
}

impl PrefetchStats {
    /// Publishes these counters onto a metrics registry under the
    /// `prefetch.*` namespace. The struct stays the source of truth;
    /// this overwrites the registry copies at export time (DESIGN.md
    /// §11).
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.set_counter(Counter::PrefetchIssued, self.issued);
        reg.set_counter(Counter::PrefetchHits, self.hits);
        reg.set_counter(Counter::PrefetchLateHits, self.late_hits);
    }
}

/// Results of one simulation run. `PartialEq` is exact (including the
/// `f64` fields): the kernel-equivalence suite asserts the event-driven
/// and lockstep kernels produce bit-identical results.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Per-core outcomes.
    pub cores: Vec<CoreResult>,
    /// Total cycles simulated (last finisher).
    pub cycles: Cycle,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Aggregated mitigation statistics.
    pub mitigation: mopac::bank::MitigationStats,
    /// Rowhammer oracle violations (0 when disabled).
    pub violations: u64,
    /// Mean read latency (cycles).
    pub avg_read_latency: f64,
    /// Prefetcher counters.
    pub prefetch: PrefetchStats,
    /// Fault-injection events applied during the run.
    pub faults_applied: u64,
    /// Trace records corrupted by an injected `TraceCorruption` fault.
    pub trace_corruptions: u64,
}

impl RunResult {
    /// Weighted speedup of this run relative to `base` (mean per-core
    /// IPC ratio); the paper's performance metric.
    #[must_use]
    pub fn weighted_speedup_vs(&self, base: &RunResult) -> f64 {
        assert_eq!(self.cores.len(), base.cores.len(), "core count mismatch");
        let n = self.cores.len() as f64;
        self.cores
            .iter()
            .zip(&base.cores)
            .map(|(a, b)| a.ipc / b.ipc)
            .sum::<f64>()
            / n
    }

    /// Slowdown relative to `base` (1 - weighted speedup). Positive
    /// values mean this run is slower.
    #[must_use]
    pub fn slowdown_vs(&self, base: &RunResult) -> f64 {
        1.0 - self.weighted_speedup_vs(base)
    }

    /// Row-buffer hit rate observed at the DRAM (column commands that
    /// did not need a fresh activation).
    #[must_use]
    pub fn rbhr(&self) -> f64 {
        let cols = self.dram.reads + self.dram.writes;
        if cols == 0 {
            0.0
        } else {
            1.0 - self.dram.activates.min(cols) as f64 / cols as f64
        }
    }

    /// Turns oracle escapes into a structured diagnostic: `Ok(())` when
    /// the run saw no Rowhammer-checker violations, otherwise
    /// [`MopacError::OracleViolation`] carrying the count. Fault
    /// campaigns report this instead of asserting.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::OracleViolation`] if any row crossed the
    /// Rowhammer threshold without mitigation.
    pub fn check_oracle(&self) -> MopacResult<()> {
        if self.violations == 0 {
            Ok(())
        } else {
            Err(MopacError::OracleViolation {
                violations: self.violations,
                detail: format!(
                    "{} row(s) crossed the Rowhammer threshold unmitigated \
                     ({} fault event(s) were injected)",
                    self.violations, self.faults_applied
                ),
            })
        }
    }

    /// Activations per refresh interval per bank (Table 4's APRI).
    #[must_use]
    pub fn apri(&self, banks: u32) -> f64 {
        let refs_per_sc = self.dram.refreshes.max(1) / 2;
        self.dram.activates as f64 / refs_per_sc as f64 / f64::from(banks)
    }
}

/// State of one prefetched line.
#[derive(Debug, Clone, Copy)]
struct PfEntry {
    ready: bool,
    /// ROB load waiting for this prefetch to land, if any.
    rob_waiter: Option<u64>,
}

/// Min-heap entry for an in-flight completion: ordered by completion
/// cycle with a monotonic sequence tiebreak, so same-cycle completions
/// deliver in issue order — exactly the order the previous sorted-Vec
/// insert (`partition_point` on `at <= c.at`) preserved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InflightEntry {
    at: Cycle,
    seq: u64,
    completion: Completion,
}

impl Ord for InflightEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `seq` is unique per entry, so this total order never reports
        // two distinct entries equal.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl PartialOrd for InflightEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// In-flight read completions, keyed on completion cycle. Replaces the
/// O(n) sorted-Vec insert with an O(log n) binary heap.
#[derive(Debug, Default)]
struct InflightHeap {
    heap: BinaryHeap<Reverse<InflightEntry>>,
    seq: u64,
}

impl InflightHeap {
    fn push(&mut self, c: Completion) {
        self.heap.push(Reverse(InflightEntry {
            at: c.at,
            seq: self.seq,
            completion: c,
        }));
        self.seq += 1;
    }

    /// The earliest completion cycle, if any reads are in flight.
    fn peek_at(&self) -> Option<Cycle> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops the earliest completion if it is due at or before `now`.
    fn pop_due(&mut self, now: Cycle) -> Option<Completion> {
        if self.heap.peek().is_some_and(|Reverse(e)| e.at <= now) {
            self.heap.pop().map(|Reverse(e)| e.completion)
        } else {
            None
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

struct CoreDriver {
    core: Core,
    trace: Box<dyn TraceSource>,
    fetch_credit: f64,
    gap_left: u32,
    pending: Option<(PhysAddr, bool)>,
    seq: u64,
    prefetcher: Option<StreamPrefetcher>,
    /// Prefetched lines by line index. A [`DetMap`] so per-core
    /// prefetch state is deterministic regardless of hasher seeding.
    pf_lines: DetMap<PfEntry>,
    /// In-flight prefetch request id -> line.
    pf_by_id: DetMap<u64>,
}

impl CoreDriver {
    /// The driver's next wake cycle: `Some(now + 1)` while the core can
    /// still fetch or retire on its own next cycle, `None` once it is
    /// blocked on an external event — a completion delivery or memory-
    /// controller queue space — which only the system-level wake sources
    /// (in-flight completions, MC commands) can provide. A step that
    /// made zero progress must leave every driver returning `None`;
    /// the event kernel debug-asserts this before skipping.
    fn next_wake(
        &self,
        now: Cycle,
        mapper: &AddressMapper,
        chans: &ChannelSet,
        line_bytes: u32,
    ) -> Option<Cycle> {
        if self.core.retire_ready() {
            return Some(now + 1);
        }
        if self.gap_left > 0 {
            return (self.core.rob_free() > 0).then_some(now + 1);
        }
        if let Some((addr, is_write)) = self.pending {
            if self.core.rob_free() == 0 {
                return None;
            }
            if !is_write {
                // A ready prefetched line absorbs the read; an in-flight
                // one without a waiter registers a late hit. Both count
                // as fetch progress.
                if let Some(e) = self.pf_lines.get(addr.line_index(line_bytes)) {
                    if e.ready || e.rob_waiter.is_none() {
                        return Some(now + 1);
                    }
                }
            }
            let decoded = mapper.decode(addr);
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            return chans
                .can_accept(decoded.bank.channel, decoded.bank.subchannel, kind)
                .then_some(now + 1);
        }
        // No gap and nothing pending: a fresh trace record is always
        // available (traces are infinite), so the next fetch makes
        // progress unconditionally.
        Some(now + 1)
    }

    /// [`CoreDriver::next_wake`] arm-for-arm, but classifying the
    /// blocked (`None`) arms by unblocking event — the macro-batch
    /// precondition check. Must mirror `next_wake` exactly: a driver
    /// this reports [`DriverBlock::Runnable`] vetoes the batch, and a
    /// misclassified blocked driver would let a batch skip a cycle the
    /// reference loop acts on.
    fn block_class(
        &self,
        mapper: &AddressMapper,
        chans: &ChannelSet,
        line_bytes: u32,
    ) -> DriverBlock {
        if self.core.retire_ready() {
            return DriverBlock::Runnable;
        }
        if self.gap_left > 0 {
            // Blocked mid-gap means a full ROB whose head is an
            // outstanding load (a retirable head would be
            // `retire_ready`): delivery-coupled.
            return if self.core.rob_free() > 0 {
                DriverBlock::Runnable
            } else {
                DriverBlock::Delivery
            };
        }
        if let Some((addr, is_write)) = self.pending {
            if self.core.rob_free() == 0 {
                return DriverBlock::Delivery;
            }
            if !is_write {
                if let Some(e) = self.pf_lines.get(addr.line_index(line_bytes)) {
                    if e.ready || e.rob_waiter.is_none() {
                        return DriverBlock::Runnable;
                    }
                }
            }
            let decoded = mapper.decode(addr);
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            return if chans.can_accept(decoded.bank.channel, decoded.bank.subchannel, kind) {
                DriverBlock::Runnable
            } else {
                DriverBlock::Queue
            };
        }
        DriverBlock::Runnable
    }
}

/// Snapshot section tags ([`mopac_types::snapshot`]).
const SNAP_SYSTEM: u32 = 0x5359_5301; // "SYS\x01"
const SNAP_DRIVER: u32 = 0x4452_5601; // "DRV\x01"
const SNAP_MC: u32 = 0x4D43_5401; // "MCT\x01"

/// Minimum of two optional cycles, treating `None` as "no constraint".
fn min_opt(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

/// Why a driver cannot make progress on the next cycle — the blocked
/// arms of [`CoreDriver::next_wake`], split by which external event
/// unblocks them. The distinction decides which horizon bound applies
/// ([`System::batch_horizon`]): delivery-blocked drivers couple only to
/// the in-flight completion heap, queue-blocked drivers couple to the
/// channels' next command (a column issue frees queue space).
#[derive(Clone, Copy, PartialEq, Eq)]
enum DriverBlock {
    /// `next_wake` would return `Some`: the driver acts next cycle.
    Runnable,
    /// Blocked until a completion delivery (directly, or via the ROB
    /// head draining after one).
    Delivery,
    /// Blocked on memory-controller queue space (`can_accept` false).
    Queue,
}

/// Macro-batch controls: always-on defaults for production runs, with
/// `#[doc(hidden)]` hooks for the equivalence tests and benches to
/// disable batching, cap horizons, or randomize them adversarially.
struct BatchCtl {
    enabled: bool,
    /// Minimum cycles a batch must cover to be worth taking (a batch of
    /// 1 is a plain step with extra bookkeeping). Test hooks drop it
    /// to 1 so H=1 batches are exercised.
    min_len: Cycle,
    /// Optional horizon cap (exact, or the `below` bound when `rng` is
    /// set).
    cap: Option<Cycle>,
    /// Randomized-horizon mode: each batch draws its cap from `[1,
    /// cap]`.
    rng: Option<DetRng>,
}

impl Default for BatchCtl {
    fn default() -> Self {
        Self {
            enabled: true,
            min_len: 2,
            cap: None,
            rng: None,
        }
    }
}

/// The assembled system.
pub struct System {
    cfg: SystemConfig,
    mapper: AddressMapper,
    chans: ChannelSet,
    llc: Option<Llc>,
    drivers: Vec<CoreDriver>,
    inflight: InflightHeap,
    scratch: Vec<Completion>,
    now: Cycle,
    pf_stats: PrefetchStats,
    injector: Option<FaultInjector>,
    /// Livelock-watchdog state: instructions retired at the last
    /// observed progress, and the cycle it was observed. Fields (not
    /// run-loop locals) so a snapshot preserves the watchdog's phase and
    /// a restored run trips it at exactly the cycle an uninterrupted run
    /// would have.
    last_retired: u64,
    last_progress_at: Cycle,
    /// Progress-source bitmask of the last step (diagnostics only for
    /// bits 1/4/8/16; bit 2 alone — DRAM commands with a quiescent CPU
    /// side — is the macro-batch trigger).
    dbg_sources: u32,
    /// Macro-batch controls (see [`BatchCtl`]).
    batch: BatchCtl,
    /// System-level kernel metrics (sync rounds, batch lengths). Kept
    /// out of [`System::snapshot`] deliberately: kernel bookkeeping is
    /// not simulation state, and batched vs per-cycle runs must produce
    /// identical snapshot digests.
    kernel_sink: MetricsSink,
}

impl System {
    /// Builds a system running one trace per core.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Config`] if `traces` is empty.
    pub fn new(cfg: SystemConfig, traces: Vec<Box<dyn TraceSource>>) -> MopacResult<Self> {
        if traces.is_empty() {
            return Err(MopacError::config("need at least one core trace"));
        }
        let injector = cfg.fault_plan.as_ref().map(FaultInjector::new);
        let corruption = cfg
            .fault_plan
            .as_ref()
            .and_then(FaultPlan::trace_corruption_rate);
        let traces: Vec<Box<dyn TraceSource>> = match corruption {
            None => traces,
            Some(rate) => {
                let seed = cfg.fault_plan.as_ref().map_or(0, FaultPlan::seed);
                let line_bytes = cfg.geometry.line_bytes;
                traces
                    .into_iter()
                    .enumerate()
                    .map(|(i, t)| {
                        Box::new(CorruptingTrace::new(t, rate, line_bytes, seed, i as u64))
                            as Box<dyn TraceSource>
                    })
                    .collect()
            }
        };
        let mapper = AddressMapper::new(cfg.geometry, cfg.mapping);
        // One controller+device per channel. Channel 0 uses the
        // historical seed derivations exactly (salt 0), so a 1-channel
        // system is bit-identical to the pre-topology simulator; the
        // other channels salt every seed with a channel-indexed odd
        // multiplier so no two channels share an RNG stream.
        let mcs = (0..cfg.geometry.channels)
            .map(|ch| {
                let salt = 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(ch));
                let dram = DramDevice::new(DramConfig {
                    geometry: cfg.geometry.channel_view(),
                    mitigation: cfg.mitigation,
                    enable_checker: cfg.enable_checker,
                    seed: (cfg.seed ^ 0xD8A3) ^ salt,
                    channel: ch,
                    flip: None,
                });
                let mut mc_cfg = cfg.mc;
                mc_cfg.seed = (cfg.seed ^ 0x3C) ^ salt;
                let mut mc = MemoryController::new(dram, mc_cfg);
                if let Some(sink_cfg) = cfg.metrics {
                    mc.enable_metrics(sink_cfg);
                }
                mc
            })
            .collect();
        let chans = ChannelSet::new(mcs, resolve_shard_threads(cfg.shard_threads)?);
        let drivers = traces
            .into_iter()
            .map(|trace| CoreDriver {
                core: Core::new(CoreParams::paper_default()),
                trace,
                fetch_credit: 0.0,
                gap_left: 0,
                pending: None,
                seq: 0,
                prefetcher: (cfg.prefetch_distance > 0).then(|| {
                    StreamPrefetcher::new(cfg.prefetch_trackers, cfg.prefetch_distance)
                }),
                pf_lines: DetMap::new(),
                pf_by_id: DetMap::new(),
            })
            .collect();
        let llc = cfg.use_llc.then(Llc::paper_default);
        let kernel_sink = match cfg.metrics {
            Some(sink_cfg) => MetricsSink::enabled(sink_cfg),
            None => MetricsSink::disabled(),
        };
        Ok(Self {
            cfg,
            mapper,
            chans,
            llc,
            drivers,
            inflight: InflightHeap::default(),
            scratch: Vec::new(),
            now: 0,
            pf_stats: PrefetchStats::default(),
            injector,
            last_retired: 0,
            last_progress_at: 0,
            dbg_sources: 0,
            batch: BatchCtl::default(),
            kernel_sink,
        })
    }

    /// Like [`System::run`] but also returns the memory controller's
    /// statistics (diagnostics and reporting).
    ///
    /// # Errors
    ///
    /// See [`System::run`].
    pub fn run_with_mc_stats(
        self,
    ) -> MopacResult<(RunResult, mopac_memctrl::controller::McStats)> {
        let mut me = self;
        let result = me.run_inner()?;
        let stats = me.chans.stats();
        Ok((result, stats))
    }

    /// Like [`System::run`] but also returns the merged metrics
    /// snapshot (`None` unless [`SystemConfig::metrics`] was set).
    ///
    /// # Errors
    ///
    /// See [`System::run`].
    pub fn run_with_metrics(self) -> MopacResult<(RunResult, Option<MetricsSnapshot>)> {
        let mut me = self;
        let result = me.run_inner()?;
        let snapshot = me.metrics_snapshot();
        Ok((result, snapshot))
    }

    /// Exports every subsystem's statistics onto the sinks and returns
    /// one merged [`MetricsSnapshot`]: controller counters + latency
    /// histograms, device counters + protocol trace events + per-bank
    /// engine histograms, LLC and prefetcher counters, and the
    /// system-level gauges. Returns `None` when metrics are disabled.
    pub fn metrics_snapshot(&mut self) -> Option<MetricsSnapshot> {
        let sink_cfg = self.cfg.metrics?;
        let mut merged = MetricsSink::enabled(sink_cfg);
        // Channel-index order keeps the merged snapshot (counters,
        // histogram merges, trace-ring interleaving) deterministic and
        // independent of the shard thread count.
        for mc in self.chans.iter_mut() {
            mc.export_metrics();
        }
        for mc in self.chans.iter() {
            merged.absorb(mc.metrics());
            merged.absorb(mc.dram().metrics());
        }
        merged.absorb(&self.kernel_sink);
        let pf = self.pf_stats;
        let llc = self.llc.as_ref().map(Llc::stats);
        if let Some(reg) = merged.registry_mut() {
            pf.export_metrics(reg);
            if let Some(stats) = llc {
                stats.export_metrics(reg);
            }
        }
        merged.set_gauge(Gauge::Cycles, self.now);
        merged.set_gauge(Gauge::McQueued, self.chans.queued() as u64);
        merged.set_gauge(Gauge::OracleViolations, self.chans.violations());
        let srq_max = merged
            .registry()
            .map_or(0, |r| r.hist_merged(Hist::SrqOccupancy).max());
        merged.set_gauge(Gauge::EngineSrqOccupancyMax, srq_max);
        merged.snapshot()
    }

    /// Runs to completion (all cores reach the instruction budget) and
    /// returns the results.
    ///
    /// # Errors
    ///
    /// - [`MopacError::CycleCapExceeded`] if `max_cycles` elapses first.
    /// - [`MopacError::Livelock`] if the watchdog sees no retired
    ///   instruction for `livelock_window` consecutive cycles.
    /// - [`MopacError::TimingProtocol`] if an (injected or internal)
    ///   fault drives the device into an illegal command sequence.
    pub fn run(mut self) -> MopacResult<RunResult> {
        self.run_inner()
    }

    /// Runs until the device has executed at least `refs` REF commands
    /// (cumulative since construction), pausing at that boundary, or to
    /// completion if every core finishes first.
    ///
    /// Returns `Ok(None)` on a pause — the system is between cycles and
    /// can be [`snapshot`](System::snapshot)ted, resumed with a further
    /// `run_until_refs`, or driven to the end with
    /// [`run_to_completion`](System::run_to_completion) — and
    /// `Ok(Some(result))` when the run completed before the boundary.
    ///
    /// # Errors
    ///
    /// See [`System::run`].
    pub fn run_until_refs(&mut self, refs: u64) -> MopacResult<Option<RunResult>> {
        self.run_loop(Some(refs))
    }

    /// Runs a (possibly restored) system to completion; the borrowing
    /// counterpart of [`System::run`] for checkpointed flows.
    ///
    /// # Errors
    ///
    /// See [`System::run`].
    pub fn run_to_completion(&mut self) -> MopacResult<RunResult> {
        self.run_inner()
    }

    fn run_inner(&mut self) -> MopacResult<RunResult> {
        self.run_loop(None)?.ok_or_else(|| {
            MopacError::internal("run without a pause boundary returned no result")
        })
    }

    fn run_loop(&mut self, pause_at_refs: Option<u64>) -> MopacResult<Option<RunResult>> {
        let budget = self.cfg.instrs_per_core;
        let n_cores = self.drivers.len();
        let event_driven = self.cfg.kernel == KernelMode::EventDriven;
        // Diagnostic mode (`MOPAC_PARANOID_SKIP=1`): instead of jumping
        // over a skip region, tick through it and panic on the first
        // cycle that makes progress — i.e. on any wake the event kernel
        // would have computed too late. Used by the equivalence suite's
        // failure triage; costs lockstep speed.
        let paranoid = event_driven
            && std::env::var("MOPAC_PARANOID_SKIP").is_ok_and(|v| v == "1");
        let mut pending_skip: Option<Cycle> = None;
        // Consecutive zero-progress steps. The wake computation
        // (`skip_target`) scans both sub-channel queues, which costs
        // more than a lockstep tick; under a saturated bus most stalls
        // last one or two cycles, so attempting a jump on the first
        // stalled cycle is a net loss. Deferring the attempt until the
        // second consecutive stall keeps saturated workloads at
        // lockstep speed — the deferred cycles are genuine `step`s, so
        // equivalence is unaffected — while idle regions still pay only
        // one extra tick before the jump.
        let mut stall_streak = 0u32;
        let mut finished = 0usize;
        let trace_kernel = std::env::var("MOPAC_TRACE_KERNEL").is_ok_and(|v| v == "1");
        while finished < n_cores {
            // Pause boundary: between full cycles every invariant the
            // snapshot relies on holds (scratch empty, no half-delivered
            // completion), so this is the only place a pause can land.
            if pause_at_refs.is_some_and(|t| self.chans.refreshes() >= t) {
                return Ok(None);
            }
            // Macro batch: the last step's only progress was DRAM
            // commands (bit 2 alone) — the CPU side is quiescent, so if
            // every driver is verifiably blocked, the channels can tick
            // a whole horizon in one fork-join round (DESIGN.md §15).
            // The guards after the batch mirror the per-step guards
            // below in the same order; the horizon is clamped to their
            // deadlines so they fire at the exact reference cycle.
            if event_driven
                && !paranoid
                && self.dbg_sources == 2
                && self.batch.enabled
                && finished < n_cores
            {
                if let Some(end) = self.batch_horizon(pause_at_refs) {
                    self.run_batch(end)?;
                    if self.cfg.livelock_window > 0
                        && self.now - self.last_progress_at >= self.cfg.livelock_window
                    {
                        return Err(MopacError::Livelock {
                            cycle: self.now,
                            stalled_for: self.now - self.last_progress_at,
                            retired: self.last_retired,
                        });
                    }
                    if self.now >= self.cfg.max_cycles {
                        return Err(MopacError::CycleCapExceeded {
                            cap: self.cfg.max_cycles,
                            finished_cores: finished,
                            total_cores: n_cores,
                        });
                    }
                    stall_streak = 0;
                    continue;
                }
            }
            let progress = self.step()?;
            if trace_kernel && progress {
                let retired: u64 = self.drivers.iter().map(|d| d.core.retired()).sum();
                let credit: f64 = self.drivers.iter().map(|d| d.fetch_credit).sum();
                eprintln!(
                    "K {} s={:02b} r={retired} q={} i={} fc={credit:.3}",
                    self.now - 1,
                    self.dbg_sources,
                    self.chans.queued(),
                    self.inflight.len(),
                );
            }
            if let Some(t) = pending_skip {
                assert!(
                    !(progress && self.now - 1 < t),
                    "late wake: progress at cycle {} inside skip region ending at {t} \
                     (queued {}, inflight {})",
                    self.now - 1,
                    self.chans.queued(),
                    self.inflight.len(),
                );
                if self.now >= t {
                    pending_skip = None;
                }
            }
            finished = self
                .drivers
                .iter_mut()
                .map(|d| usize::from(d.core.check_finished(budget, self.now)))
                .sum();
            if self.cfg.livelock_window > 0 {
                let retired: u64 = self.drivers.iter().map(|d| d.core.retired()).sum();
                if retired > self.last_retired {
                    self.last_retired = retired;
                    self.last_progress_at = self.now;
                } else if self.now - self.last_progress_at >= self.cfg.livelock_window {
                    return Err(MopacError::Livelock {
                        cycle: self.now,
                        stalled_for: self.now - self.last_progress_at,
                        retired,
                    });
                }
            }
            if self.now >= self.cfg.max_cycles {
                return Err(MopacError::CycleCapExceeded {
                    cap: self.cfg.max_cycles,
                    finished_cores: finished,
                    total_cores: n_cores,
                });
            }
            // Quiescent fast-forward: while every driver is deep inside
            // an instruction gap, the machine's only per-cycle work is
            // driver arithmetic (fetch credit, ROB pushes, retirement).
            // Run those cycles through a tight loop that skips the
            // controller tick, the completion heap, and the fault
            // injector — all provably idle until the earliest external
            // wake — instead of full `step`s.
            if event_driven && !paranoid && progress && finished < n_cores {
                let bound = self.quiescent_bound();
                if bound >= 16 {
                    let prev = self.now - 1;
                    let mut wake = self.chans.next_wake(prev);
                    if let Some(inj) = self.injector.as_ref() {
                        wake = min_opt(wake, inj.next_due());
                    }
                    wake = min_opt(wake, self.inflight.peek_at());
                    let end = wake
                        .map_or(self.now + bound, |w| w.min(self.now + bound))
                        .max(self.now);
                    if end > self.now + 8 {
                        self.fast_forward_gaps(end, budget, &mut finished)?;
                        continue;
                    }
                }
            }
            stall_streak = if progress { 0 } else { stall_streak + 1 };
            if event_driven && !progress && stall_streak >= 2 {
                if let Some(target) = self.skip_target(self.last_progress_at) {
                    if paranoid {
                        pending_skip = Some(target);
                        continue;
                    }
                    self.skip_to(target);
                    // Re-run the guards: the jump is clamped to the
                    // watchdog and cycle-cap deadlines, so landing on
                    // one must trip it at exactly the cycle — and with
                    // exactly the fields — the lockstep kernel would
                    // have reported.
                    if self.cfg.livelock_window > 0
                        && self.now - self.last_progress_at >= self.cfg.livelock_window
                    {
                        return Err(MopacError::Livelock {
                            cycle: self.now,
                            stalled_for: self.now - self.last_progress_at,
                            retired: self.last_retired,
                        });
                    }
                    if self.now >= self.cfg.max_cycles {
                        return Err(MopacError::CycleCapExceeded {
                            cap: self.cfg.max_cycles,
                            finished_cores: finished,
                            total_cores: n_cores,
                        });
                    }
                }
            }
        }
        let cores = self
            .drivers
            .iter()
            .map(|d| {
                let finish = d.core.finished_at().ok_or_else(|| {
                    MopacError::internal("core counted finished without a finish cycle")
                })?;
                Ok(CoreResult {
                    instructions: budget,
                    finish_cycle: finish,
                    ipc: budget as f64 / finish.max(1) as f64,
                })
            })
            .collect::<MopacResult<Vec<_>>>()?;
        Ok(Some(RunResult {
            cores,
            cycles: self.now,
            dram: self.chans.dram_stats(),
            mitigation: self.chans.mitigation_stats(),
            violations: self.chans.violations(),
            avg_read_latency: self.chans.stats().avg_read_latency(),
            prefetch: self.pf_stats,
            faults_applied: self.injector.as_ref().map_or(0, FaultInjector::applied),
            trace_corruptions: self
                .drivers
                .iter()
                .map(|d| d.trace.corrupted_records())
                .sum(),
        }))
    }

    /// Test/diagnostic hook: advances one cycle.
    ///
    /// # Errors
    ///
    /// Propagates [`System::run`]'s per-cycle errors.
    #[doc(hidden)]
    pub fn debug_step(&mut self) -> MopacResult<()> {
        self.step().map(|_| ())
    }

    /// Test/diagnostic hook: per-core retired instruction counts.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_retired(&self) -> Vec<u64> {
        self.drivers.iter().map(|d| d.core.retired()).collect()
    }

    /// Test/diagnostic hook: total queued requests in the MC.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_queued(&self) -> usize {
        self.chans.queued()
    }

    /// Test/diagnostic hook: in-flight read completions.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Serializes the system's full mutable state — cores, traces,
    /// prefetchers, LLC, in-flight completions, fault injector, memory
    /// controller, device and every RNG stream — into a self-describing
    /// snapshot ([`mopac_types::snapshot`]). Call only between cycles
    /// (e.g. at a [`System::run_until_refs`] pause); a restored system
    /// of the same configuration continues bit-identically.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.begin_section(SNAP_SYSTEM);
        // Topology header: restore validates shape before touching any
        // state, so a snapshot cannot be loaded into a system with a
        // different channel/rank/bank organization.
        let g = &self.cfg.geometry;
        w.put_u32(g.channels);
        w.put_u32(g.ranks);
        w.put_u32(g.subchannels);
        w.put_u32(g.banks_per_subchannel);
        w.put_u32(g.rows_per_bank);
        w.put_u64(self.now);
        w.put_u64(self.last_retired);
        w.put_u64(self.last_progress_at);
        w.put_u64(self.pf_stats.issued);
        w.put_u64(self.pf_stats.hits);
        w.put_u64(self.pf_stats.late_hits);
        w.put_usize(self.drivers.len());
        for d in &self.drivers {
            w.begin_section(SNAP_DRIVER);
            d.core.save_state(&mut w);
            d.trace.save_state(&mut w);
            w.put_f64(d.fetch_credit);
            w.put_u32(d.gap_left);
            match d.pending {
                Some((addr, is_write)) => {
                    w.put_bool(true);
                    w.put_u64(addr.get());
                    w.put_bool(is_write);
                }
                None => w.put_bool(false),
            }
            w.put_u64(d.seq);
            match d.prefetcher.as_ref() {
                Some(pf) => {
                    w.put_bool(true);
                    pf.save_state(&mut w);
                }
                None => w.put_bool(false),
            }
            d.pf_lines.save_state_with(&mut w, |e, w| {
                w.put_bool(e.ready);
                w.put_opt_u64(e.rob_waiter);
            });
            d.pf_by_id.save_state_with(&mut w, |v, w| w.put_u64(*v));
            w.end_section();
        }
        // In-flight completions in (at, seq) order: the heap's internal
        // layout is not deterministic, the delivery order is.
        let mut entries: Vec<InflightEntry> = self
            .inflight
            .heap
            .iter()
            .map(|Reverse(e)| *e)
            .collect();
        entries.sort_unstable();
        w.put_usize(entries.len());
        for e in &entries {
            w.put_u64(e.seq);
            w.put_u64(e.completion.id);
            w.put_u64(e.completion.at);
        }
        w.put_u64(self.inflight.seq);
        match self.llc.as_ref() {
            Some(llc) => {
                w.put_bool(true);
                llc.save_state(&mut w);
            }
            None => w.put_bool(false),
        }
        match self.injector.as_ref() {
            Some(inj) => {
                w.put_bool(true);
                inj.save_state(&mut w);
            }
            None => w.put_bool(false),
        }
        for mc in self.chans.iter() {
            w.begin_section(SNAP_MC);
            mc.save_state(&mut w);
            w.end_section();
        }
        w.end_section();
        w.finish()
    }

    /// Restores a snapshot taken by [`System::snapshot`] into this
    /// system, which must be freshly constructed with the same
    /// configuration and traces.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on a corrupt or truncated
    /// snapshot, or when its shape does not match this system's
    /// configuration (core count, LLC/prefetcher/injector presence,
    /// geometry).
    pub fn restore(&mut self, bytes: &[u8]) -> MopacResult<()> {
        let mut r = SnapshotReader::new(bytes)?;
        r.begin_section(SNAP_SYSTEM)?;
        let snap_topo = (
            r.take_u32()?,
            r.take_u32()?,
            r.take_u32()?,
            r.take_u32()?,
            r.take_u32()?,
        );
        let g = &self.cfg.geometry;
        let cfg_topo = (
            g.channels,
            g.ranks,
            g.subchannels,
            g.banks_per_subchannel,
            g.rows_per_bank,
        );
        if snap_topo != cfg_topo {
            return Err(MopacError::snapshot(format!(
                "topology mismatch: snapshot was taken on {}ch x {}rk x {}sc x {}banks x \
                 {}rows but this system is {}ch x {}rk x {}sc x {}banks x {}rows",
                snap_topo.0,
                snap_topo.1,
                snap_topo.2,
                snap_topo.3,
                snap_topo.4,
                cfg_topo.0,
                cfg_topo.1,
                cfg_topo.2,
                cfg_topo.3,
                cfg_topo.4,
            )));
        }
        self.now = r.take_u64()?;
        self.last_retired = r.take_u64()?;
        self.last_progress_at = r.take_u64()?;
        self.pf_stats.issued = r.take_u64()?;
        self.pf_stats.hits = r.take_u64()?;
        self.pf_stats.late_hits = r.take_u64()?;
        let cores = r.take_usize()?;
        if cores != self.drivers.len() {
            return Err(MopacError::snapshot(format!(
                "snapshot has {cores} cores but {} configured",
                self.drivers.len(),
            )));
        }
        for d in &mut self.drivers {
            r.begin_section(SNAP_DRIVER)?;
            d.core.load_state(&mut r)?;
            d.trace.load_state(&mut r)?;
            d.fetch_credit = r.take_f64()?;
            d.gap_left = r.take_u32()?;
            d.pending = if r.take_bool()? {
                let addr = PhysAddr::new(r.take_u64()?);
                let is_write = r.take_bool()?;
                Some((addr, is_write))
            } else {
                None
            };
            d.seq = r.take_u64()?;
            match (r.take_bool()?, d.prefetcher.as_mut()) {
                (true, Some(pf)) => pf.load_state(&mut r)?,
                (false, None) => {}
                (snap, _) => {
                    return Err(MopacError::snapshot(format!(
                        "prefetcher presence mismatch: snapshot {snap}, configured {}",
                        d.prefetcher.is_some(),
                    )));
                }
            }
            d.pf_lines.load_state_with(&mut r, |r| {
                Ok(PfEntry {
                    ready: r.take_bool()?,
                    rob_waiter: r.take_opt_u64()?,
                })
            })?;
            d.pf_by_id.load_state_with(&mut r, |r| r.take_u64())?;
            r.end_section()?;
        }
        let inflight = r.take_usize()?;
        self.inflight.heap.clear();
        for _ in 0..inflight {
            let seq = r.take_u64()?;
            let id = r.take_u64()?;
            let at = r.take_u64()?;
            self.inflight.heap.push(Reverse(InflightEntry {
                at,
                seq,
                completion: Completion { id, at },
            }));
        }
        self.inflight.seq = r.take_u64()?;
        match (r.take_bool()?, self.llc.as_mut()) {
            (true, Some(llc)) => llc.load_state(&mut r)?,
            (false, None) => {}
            (snap, _) => {
                return Err(MopacError::snapshot(format!(
                    "LLC presence mismatch: snapshot {snap}, configured {}",
                    self.llc.is_some(),
                )));
            }
        }
        match (r.take_bool()?, self.injector.as_mut()) {
            (true, Some(inj)) => inj.load_state(&mut r)?,
            (false, None) => {}
            (snap, _) => {
                return Err(MopacError::snapshot(format!(
                    "fault-injector presence mismatch: snapshot {snap}, configured {}",
                    self.injector.is_some(),
                )));
            }
        }
        for mc in self.chans.iter_mut() {
            r.begin_section(SNAP_MC)?;
            mc.load_state(&mut r)?;
            r.end_section()?;
        }
        r.end_section()?;
        expect_exhausted(&r)
    }

    /// Advances one DRAM cycle. Returns whether the cycle made any
    /// progress: a fault event fired, the controller issued a command,
    /// a completion was delivered, a core fetched, or a core retired.
    /// A `false` return is the event kernel's licence to skip: every
    /// state change left in the machine is idempotent under further
    /// ticks, so the cycle would replay identically until an external
    /// wake.
    fn step(&mut self) -> MopacResult<bool> {
        let now = self.now;
        let mut progress = false;
        self.dbg_sources = 0;
        // Scheduled faults fire before the controllers see the cycle.
        // The injector's addressing predates the channel dimension, so
        // its events land on channel 0 (which is the whole machine in a
        // single-channel run).
        if let Some(inj) = self.injector.as_mut() {
            let before = inj.applied();
            inj.apply(now, self.chans.channel_mut(0))?;
            progress |= inj.applied() != before;
        }
        if progress {
            self.dbg_sources |= 1;
        }
        // Every channel's controller issues commands (concurrently when
        // sharding is on); reads may complete.
        self.scratch.clear();
        if self.chans.tick_all(now, &mut self.scratch)? > 0 {
            progress = true;
            self.dbg_sources |= 2;
        }
        self.kernel_sink.add(Counter::KernelSyncRounds, 1);
        for c in self.scratch.drain(..) {
            self.inflight.push(c);
        }
        // Deliver due completions (demand loads and prefetches).
        while let Some(c) = self.inflight.pop_due(now) {
            progress = true;
            self.dbg_sources |= 4;
            let d = &mut self.drivers[(c.id >> 48) as usize];
            if let Some(line) = d.pf_by_id.remove(c.id) {
                if let Some(entry) = d.pf_lines.get_mut(line) {
                    entry.ready = true;
                    if let Some(waiter) = entry.rob_waiter {
                        d.core.on_complete(waiter);
                        // Consumed by the demand stream.
                        d.pf_lines.remove(line);
                    }
                }
            } else {
                d.core.on_complete(c.id);
            }
        }
        // Fetch in rotating order so no core monopolizes a nearly-full
        // queue, then retire.
        let n = self.drivers.len();
        let start = (now as usize) % n;
        for k in 0..n {
            if self.fetch_core((start + k) % n, now) {
                progress = true;
                self.dbg_sources |= 8;
            }
        }
        for d in &mut self.drivers {
            if d.core.retire() > 0 {
                progress = true;
                self.dbg_sources |= 16;
            }
        }
        self.now += 1;
        Ok(progress)
    }

    /// The cycle the event kernel jumps to after a zero-progress step:
    /// the earliest external wake among the fault injector's next
    /// event, the earliest in-flight completion, and the memory
    /// controller's [`MemoryController::next_wake`] — clamped to the
    /// livelock-watchdog and cycle-cap deadlines so those guards fire
    /// at exactly the cycle lockstep would have reached. Returns `None`
    /// when the wake is the very next cycle (nothing to skip).
    fn skip_target(&self, last_progress_at: Cycle) -> Option<Cycle> {
        // `step` already bumped `now`; the zero-progress tick happened
        // at `now - 1`, and the wake sources speak in "strictly after
        // the cycle I last saw" terms.
        let prev = self.now - 1;
        let mut wake = self.chans.next_wake(prev);
        // A zero-progress step must leave every driver blocked on an
        // external event; merging the driver wakes anyway means a
        // progress-detection bug degrades to lockstep for a cycle
        // instead of skipping state changes.
        let line_bytes = self.cfg.geometry.line_bytes;
        for d in &self.drivers {
            if let Some(w) = d.next_wake(prev, &self.mapper, &self.chans, line_bytes) {
                debug_assert!(false, "zero-progress step left a runnable core");
                wake = min_opt(wake, Some(w));
            }
        }
        if let Some(inj) = self.injector.as_ref() {
            wake = min_opt(wake, inj.next_due());
        }
        wake = min_opt(wake, self.inflight.peek_at());
        let mut target = wake?.max(self.now);
        if self.cfg.livelock_window > 0 {
            target = target.min(last_progress_at + self.cfg.livelock_window);
        }
        target = target.min(self.cfg.max_cycles);
        (target > self.now).then_some(target)
    }

    /// Upper bound on cycles that can be fast-forwarded through the
    /// driver-only loop: every driver must stay in its gap-push phase
    /// (`gap_left` cannot reach zero, so no trace record is pulled and
    /// the memory controller sees no new request). Two independently
    /// safe bounds on instructions issued, taken at their max: a cycle
    /// pushes at most 64 (the fetch-credit cap), and over `k` cycles at
    /// most `64 + k*r` issue (worst-case initial credit plus accrual at
    /// the retire rate `r`). Returns 0 when any driver is already
    /// touching the memory system.
    fn quiescent_bound(&self) -> Cycle {
        let r = CoreParams::paper_default().retire_per_dram_cycle;
        let mut bound = Cycle::MAX;
        for d in &self.drivers {
            if d.gap_left <= 64 {
                return 0;
            }
            let g = u64::from(d.gap_left);
            let by_cap = (g - 1) / 64;
            let by_accrual = ((g - 65) as f64 / r) as u64;
            bound = bound.min(by_cap.max(by_accrual));
        }
        bound
    }

    /// Runs cycles `[self.now, end)` through a driver-only loop that is
    /// cycle-for-cycle identical to [`System::step`] restricted to the
    /// gap-push phase: fetch-credit accrual, ROB pushes, retirement,
    /// and the finish/livelock/cycle-cap guards in the same order the
    /// main loop applies them. The caller guarantees (via
    /// [`System::quiescent_bound`] and the external wake sources) that
    /// the skipped subsystems are no-ops across the region: the
    /// controller's next action lies at or beyond `end`
    /// ([`MemoryController::next_wake`]), no completion is due and no
    /// fault fires before `end`, and no driver pulls a trace record.
    /// The controller's per-cycle idle statistics are compensated in
    /// bulk afterwards ([`MemoryController::note_idle_cycles`]).
    fn fast_forward_gaps(
        &mut self,
        end: Cycle,
        budget: u64,
        finished: &mut usize,
    ) -> MopacResult<()> {
        let start = self.now;
        let n_cores = self.drivers.len();
        let r = CoreParams::paper_default().retire_per_dram_cycle;
        // Bulk sub-regions: when every core is either plain (ROB holds
        // only instruction runs — [`Core::run_plain`]) or head-stalled
        // on an outstanding load ([`Core::run_stalled_fetch`]), a whole
        // stretch of cycles is scalar arithmetic, one call per core.
        // The per-cycle guards collapse: a plain core retires at least
        // one instruction per cycle (`r >= 1`, non-empty gap), so with
        // any plain core present the livelock watchdog resets each
        // cycle and ends the region at `last_progress_at = now`; with
        // every core stalled nothing retires, so the region is clamped
        // to the watchdog deadline and the error is emitted at the
        // exact cycle the per-cycle check would have fired. The region
        // is also clamped so the run cannot terminate inside it — below
        // the cycle cap, and shorter than any unfinished plain core's
        // minimum cycles to finish (at most 16 instructions retire per
        // cycle, conservatively; stalled cores retire nothing).
        //
        // Eligibility changes as cores retire (a short instruction run
        // in front of an outstanding load drains within a few cycles),
        // so after an ineligible probe the per-cycle loop only runs a
        // small chunk before probing again.
        const RECHECK: u32 = 8;
        let mut chunk_left = 0u32;
        while self.now < end {
            if chunk_left == 0 {
                chunk_left = RECHECK;
                if r >= 1.0
                    && self
                        .drivers
                        .iter()
                        .all(|d| d.core.is_plain() || d.core.head_stalled())
                {
                    let bstart = self.now;
                    let any_plain = self.drivers.iter().any(|d| d.core.is_plain());
                    let mut cycles =
                        (end - bstart).min(self.cfg.max_cycles.saturating_sub(bstart));
                    if any_plain {
                        for d in &self.drivers {
                            if d.core.is_plain() {
                                let remaining = budget.saturating_sub(d.core.retired());
                                if remaining > 0 {
                                    cycles = cycles.min(remaining / 16);
                                }
                            }
                        }
                    } else if self.cfg.livelock_window > 0 {
                        let deadline = self.last_progress_at + self.cfg.livelock_window;
                        cycles = cycles.min(deadline.saturating_sub(bstart));
                    }
                    if cycles >= 16 {
                        for d in &mut self.drivers {
                            if d.core.is_plain() {
                                d.core.run_plain(
                                    cycles,
                                    &mut d.gap_left,
                                    &mut d.fetch_credit,
                                    budget,
                                    bstart,
                                );
                            } else {
                                d.core.run_stalled_fetch(
                                    cycles,
                                    &mut d.gap_left,
                                    &mut d.fetch_credit,
                                );
                            }
                        }
                        self.now = bstart + cycles;
                        *finished = self
                            .drivers
                            .iter_mut()
                            .map(|d| usize::from(d.core.check_finished(budget, self.now)))
                            .sum();
                        if self.cfg.livelock_window > 0 {
                            if any_plain {
                                self.last_retired =
                                    self.drivers.iter().map(|d| d.core.retired()).sum();
                                self.last_progress_at = self.now;
                            } else if self.now - self.last_progress_at
                                >= self.cfg.livelock_window
                            {
                                self.chans.note_idle_cycles(start, self.now - start);
                                return Err(MopacError::Livelock {
                                    cycle: self.now,
                                    stalled_for: self.now - self.last_progress_at,
                                    retired: self.last_retired,
                                });
                            }
                        }
                        if self.now >= self.cfg.max_cycles {
                            self.chans.note_idle_cycles(start, self.now - start);
                            return Err(MopacError::CycleCapExceeded {
                                cap: self.cfg.max_cycles,
                                finished_cores: *finished,
                                total_cores: n_cores,
                            });
                        }
                        continue;
                    }
                }
            }
            chunk_left -= 1;
            for d in &mut self.drivers {
                d.fetch_credit = (d.fetch_credit + r).min(64.0);
                loop {
                    if d.fetch_credit < 1.0 {
                        break;
                    }
                    let free = d.core.rob_free() as u32;
                    let n = d.gap_left.min(d.fetch_credit as u32).min(free);
                    if n == 0 {
                        break;
                    }
                    d.core.push_instrs(n);
                    d.gap_left -= n;
                    d.fetch_credit -= f64::from(n);
                }
                d.core.retire();
            }
            self.now += 1;
            *finished = self
                .drivers
                .iter_mut()
                .map(|d| usize::from(d.core.check_finished(budget, self.now)))
                .sum();
            if self.cfg.livelock_window > 0 {
                let retired: u64 = self.drivers.iter().map(|d| d.core.retired()).sum();
                if retired > self.last_retired {
                    self.last_retired = retired;
                    self.last_progress_at = self.now;
                } else if self.now - self.last_progress_at >= self.cfg.livelock_window {
                    self.chans.note_idle_cycles(start, self.now - start);
                    return Err(MopacError::Livelock {
                        cycle: self.now,
                        stalled_for: self.now - self.last_progress_at,
                        retired,
                    });
                }
            }
            if self.now >= self.cfg.max_cycles {
                self.chans.note_idle_cycles(start, self.now - start);
                return Err(MopacError::CycleCapExceeded {
                    cap: self.cfg.max_cycles,
                    finished_cores: *finished,
                    total_cores: n_cores,
                });
            }
            if *finished >= n_cores {
                break;
            }
        }
        self.chans.note_idle_cycles(start, self.now - start);
        Ok(())
    }

    /// Jumps `now` to `target`, reproducing in bulk exactly what
    /// `target - now` zero-progress lockstep cycles would have done:
    /// per-cycle controller statistics
    /// ([`MemoryController::note_idle_cycles`]), per-core fetch-credit
    /// accumulation (the per-cycle `min(credit + r, 64)` fold, iterated
    /// until it saturates — at most `ceil(64 / r)` steps — because
    /// floating-point addition is not associative and a closed form
    /// would drift), and per-core stall accounting
    /// ([`Core::skip_idle`]).
    fn skip_to(&mut self, target: Cycle) {
        let skipped = target - self.now;
        self.chans.note_idle_cycles(self.now, skipped);
        self.advance_drivers_idle(skipped);
        self.now = target;
    }

    /// The driver half of a bulk jump over `skipped` cycles in which no
    /// driver fetches or retires: per-core fetch-credit accumulation
    /// (the per-cycle `min(credit + r, 64)` fold, iterated until it
    /// saturates — at most `ceil(64 / r)` steps — because
    /// floating-point addition is not associative and a closed form
    /// would drift) and per-core stall accounting
    /// ([`Core::skip_idle`]). Shared by [`System::skip_to`] (which also
    /// compensates the controllers) and [`System::run_batch`] (where
    /// [`MemoryController::tick_until`] already did its own
    /// accounting).
    fn advance_drivers_idle(&mut self, skipped: Cycle) {
        let r = CoreParams::paper_default().retire_per_dram_cycle;
        for d in &mut self.drivers {
            for _ in 0..skipped {
                let next = (d.fetch_credit + r).min(64.0);
                if next == d.fetch_credit {
                    break;
                }
                d.fetch_credit = next;
            }
            d.core.skip_idle(skipped);
        }
    }

    /// The macro-batch horizon: the last cycle boundary `end` such that
    /// ticking every channel through `[now, end)` in one fork-join
    /// round — with no completion delivery, no fetch, no retire, no
    /// fault event and no pause observation in between — is
    /// bit-identical to `end - now` reference steps. Returns `None`
    /// when no batch of at least `batch.min_len` cycles is safe (the
    /// loop falls back to a plain step).
    ///
    /// Preconditions checked here (the `dbg_sources == 2` trigger is
    /// only a cheap filter): every driver must be verifiably blocked
    /// *against current queue state* — the previous step's MC commands
    /// may have freed queue space, so the progress bitmask alone cannot
    /// prove the CPU side stays quiescent at `now`.
    ///
    /// Each bound maps to a coupling source (DESIGN.md §15):
    /// - earliest in-flight completion: its delivery unblocks cores;
    /// - `now + min_read_latency`: reads issued *inside* the batch
    ///   complete no earlier than this, so they stay undeliverable
    ///   within it;
    /// - fault injector's next event: it mutates controller state;
    /// - channels' `next_wake` (only when a driver is queue-blocked): a
    ///   column issue frees queue space the same cycle, so the batch
    ///   must end before the first possible command;
    /// - `next_ref_floor` (only when pausing at a REF count): the pause
    ///   check must observe the refresh counter at the same cycle the
    ///   per-step loop would;
    /// - watchdog deadline and cycle cap: the guards after the batch
    ///   must fire at the exact reference cycle with identical fields.
    fn batch_horizon(&mut self, pause_at_refs: Option<u64>) -> Option<Cycle> {
        let prev = self.now - 1;
        let line_bytes = self.cfg.geometry.line_bytes;
        let mut any_queue_blocked = false;
        for d in &self.drivers {
            match d.block_class(&self.mapper, &self.chans, line_bytes) {
                DriverBlock::Runnable => return None,
                DriverBlock::Queue => any_queue_blocked = true,
                DriverBlock::Delivery => {}
            }
        }
        let mut end = self.now + self.chans.min_read_latency();
        if let Some(at) = self.inflight.peek_at() {
            end = end.min(at);
        }
        if let Some(due) = self.injector.as_ref().and_then(FaultInjector::next_due) {
            end = end.min(due);
        }
        if any_queue_blocked {
            if let Some(w) = self.chans.next_wake(prev) {
                end = end.min(w);
            }
        }
        if pause_at_refs.is_some() {
            end = end.min(self.chans.next_ref_floor());
        }
        if self.cfg.livelock_window > 0 {
            end = end.min(self.last_progress_at + self.cfg.livelock_window);
        }
        end = end.min(self.cfg.max_cycles);
        if let Some(cap) = self.batch.cap {
            let cap = match self.batch.rng.as_mut() {
                Some(rng) => 1 + rng.below(cap),
                None => cap,
            };
            end = end.min(self.now + cap);
        }
        (end >= self.now + self.batch.min_len).then_some(end)
    }

    /// Executes one macro batch over `[now, end)`: every channel ticks
    /// the whole range in one fork-join round
    /// ([`ChannelSet::tick_range`]), completions land on the in-flight
    /// heap in reference push order, and the drivers advance through
    /// their (provably idle) cycles in bulk. The caller computed `end`
    /// via [`System::batch_horizon`] and re-runs the watchdog/cap
    /// guards afterwards.
    fn run_batch(&mut self, end: Cycle) -> MopacResult<()> {
        let from = self.now;
        self.scratch.clear();
        self.chans.tick_range(from, end, &mut self.scratch)?;
        for c in self.scratch.drain(..) {
            self.inflight.push(c);
        }
        self.advance_drivers_idle(end - from);
        self.now = end;
        self.kernel_sink.add(Counter::KernelSyncRounds, 1);
        self.kernel_sink.record(Hist::KernelBatchLen, 0, end - from);
        Ok(())
    }

    /// Test hook: enables/disables macro batching (per-cycle stepping
    /// when disabled — the reference the batch-equivalence suite and
    /// the `MOPAC_SHARD_BATCH=0` ci leg compare against).
    #[doc(hidden)]
    pub fn debug_set_batching(&mut self, enabled: bool) {
        self.batch.enabled = enabled;
    }

    /// Test hook: caps every batch at `cap` cycles and allows H=1
    /// batches (adversarially short horizons stay bit-identical).
    #[doc(hidden)]
    pub fn debug_cap_batch_len(&mut self, cap: Cycle) {
        self.batch.cap = Some(cap.max(1));
        self.batch.min_len = 1;
    }

    /// Test hook: draws every batch's cap from `[1, max]` with a
    /// deterministic RNG, and allows H=1 batches.
    #[doc(hidden)]
    pub fn debug_randomize_batch(&mut self, seed: u64, max: Cycle) {
        self.batch.cap = Some(max.max(1));
        self.batch.rng = Some(DetRng::from_seed(seed));
        self.batch.min_len = 1;
    }

    /// Test hook: forwards to [`ChannelSet::set_fork_min`] so short
    /// batches exercise the fork path.
    #[doc(hidden)]
    pub fn debug_set_fork_min(&mut self, fork_min: Cycle) {
        self.chans.set_fork_min(fork_min);
    }

    /// Feeds the prefetcher with a demand line and issues any candidate
    /// prefetches whose target channel's controller can accept them.
    fn run_prefetcher(
        stats: &mut PrefetchStats,
        d: &mut CoreDriver,
        idx: usize,
        line: u64,
        mapper: &AddressMapper,
        chans: &mut ChannelSet,
        now: Cycle,
    ) {
        let Some(pf) = d.prefetcher.as_mut() else {
            return;
        };
        // Bound outstanding prefetch state per core.
        const MAX_PF_LINES: usize = 512;
        for cand in pf.observe(line) {
            if d.pf_lines.len() >= MAX_PF_LINES || d.pf_lines.contains_key(cand) {
                continue;
            }
            let addr = PhysAddr::from_line_index(cand, mapper.geometry().line_bytes);
            let decoded = mapper.decode(addr);
            if !chans.can_accept(decoded.bank.channel, decoded.bank.subchannel, AccessKind::Read)
            {
                continue;
            }
            let id = ((idx as u64) << 48) | d.seq;
            d.seq += 1;
            let ok = chans.enqueue(
                MemRequest {
                    id,
                    kind: AccessKind::Read,
                    addr: decoded,
                },
                now,
            );
            debug_assert!(ok);
            d.pf_by_id.insert(id, cand);
            d.pf_lines.insert(
                cand,
                PfEntry {
                    ready: false,
                    rob_waiter: None,
                },
            );
            stats.issued += 1;
        }
    }

    /// Fetches for one core; returns whether any fetch progress was
    /// made (instructions pushed, a request issued or absorbed, or a
    /// trace record pulled).
    fn fetch_core(&mut self, idx: usize, now: Cycle) -> bool {
        let mut progress = false;
        let d = &mut self.drivers[idx];
        d.fetch_credit =
            (d.fetch_credit + CoreParams::paper_default().retire_per_dram_cycle).min(64.0);
        loop {
            if d.fetch_credit < 1.0 {
                break;
            }
            if d.gap_left > 0 {
                let free = d.core.rob_free() as u32;
                let n = d.gap_left.min(d.fetch_credit as u32).min(free);
                if n == 0 {
                    break;
                }
                progress = true;
                d.core.push_instrs(n);
                d.gap_left -= n;
                d.fetch_credit -= f64::from(n);
                continue;
            }
            if let Some((addr, is_write)) = d.pending {
                if d.core.rob_free() == 0 {
                    break;
                }
                let line = addr.line_index(self.cfg.geometry.line_bytes);
                // Demand read absorbed by the prefetcher?
                if !is_write {
                    match d.pf_lines.get_mut(line) {
                        Some(e) if e.ready => {
                            progress = true;
                            d.pf_lines.remove(line);
                            self.pf_stats.hits += 1;
                            d.core.push_instrs(1);
                            d.fetch_credit -= 1.0;
                            d.pending = None;
                            Self::run_prefetcher(
                                &mut self.pf_stats,
                                d,
                                idx,
                                line,
                                &self.mapper,
                                &mut self.chans,
                                now,
                            );
                            continue;
                        }
                        Some(e) if e.rob_waiter.is_none() => {
                            progress = true;
                            let id = ((idx as u64) << 48) | d.seq;
                            d.seq += 1;
                            e.rob_waiter = Some(id);
                            self.pf_stats.late_hits += 1;
                            d.core.push_read(id);
                            d.fetch_credit -= 1.0;
                            d.pending = None;
                            Self::run_prefetcher(
                                &mut self.pf_stats,
                                d,
                                idx,
                                line,
                                &self.mapper,
                                &mut self.chans,
                                now,
                            );
                            continue;
                        }
                        _ => {}
                    }
                }
                let decoded = self.mapper.decode(addr);
                let kind = if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                if !self
                    .chans
                    .can_accept(decoded.bank.channel, decoded.bank.subchannel, kind)
                {
                    break;
                }
                progress = true;
                let id = ((idx as u64) << 48) | d.seq;
                d.seq += 1;
                let ok = self.chans.enqueue(
                    MemRequest {
                        id,
                        kind,
                        addr: decoded,
                    },
                    now,
                );
                debug_assert!(ok);
                if is_write {
                    d.core.push_instrs(1);
                } else {
                    d.core.push_read(id);
                }
                d.fetch_credit -= 1.0;
                d.pending = None;
                if !is_write {
                    Self::run_prefetcher(
                        &mut self.pf_stats,
                        d,
                        idx,
                        line,
                        &self.mapper,
                        &mut self.chans,
                        now,
                    );
                }
                continue;
            }
            // Pull the next trace record (through the LLC if enabled).
            progress = true;
            let rec = d.trace.next_record();
            d.gap_left = rec.gap;
            match self.llc.as_mut() {
                None => d.pending = Some((rec.addr, rec.is_write)),
                Some(llc) => match llc.access(rec.addr, rec.is_write) {
                    CacheAccess::Hit => {
                        // Hit: the access is one ordinary instruction.
                        d.gap_left = d.gap_left.saturating_add(1);
                    }
                    CacheAccess::Miss => {
                        // Allocate on write too: the demand fill is a
                        // read; dirty data leaves later.
                        d.pending = Some((rec.addr, false));
                    }
                    CacheAccess::MissDirtyEviction(victim) => {
                        d.pending = Some((rec.addr, false));
                        // Post the writeback without ROB involvement.
                        let decoded = self.mapper.decode(victim);
                        let id = ((idx as u64) << 48) | d.seq;
                        d.seq += 1;
                        let _ = self.chans.enqueue(
                            MemRequest {
                                id,
                                kind: AccessKind::Write,
                                addr: decoded,
                            },
                            now,
                        );
                    }
                },
            }
        }
        progress
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopac_cpu::trace::{ReplayTrace, TraceRecord};

    fn stream_trace(stride: u64, gap: u32) -> Box<dyn TraceSource> {
        let records = (0..256u64)
            .map(|i| TraceRecord {
                gap,
                addr: PhysAddr::new(i * stride),
                is_write: false,
            })
            .collect();
        Box::new(ReplayTrace::new("unit", records))
    }

    fn tiny_cfg(mit: MitigationConfig, instrs: u64) -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(mit, instrs);
        cfg.geometry = DramGeometry::tiny();
        cfg
    }

    #[test]
    fn single_core_completes() {
        let cfg = tiny_cfg(MitigationConfig::baseline(), 20_000);
        let sys = System::new(cfg, vec![stream_trace(64, 20)]).unwrap();
        let r = sys.run().unwrap();
        assert_eq!(r.cores.len(), 1);
        assert!(r.cores[0].ipc > 0.1, "ipc {}", r.cores[0].ipc);
        assert!(r.dram.reads > 0);
    }

    #[test]
    fn prac_is_slower_than_baseline() {
        // Row-conflict-heavy pattern: every access a different row in
        // the same banks.
        let mk = || {
            let records = (0..512u64)
                .map(|i| TraceRecord {
                    gap: 6,
                    addr: PhysAddr::new(i * 64 * 1024 * 8), // unique rows
                    is_write: false,
                })
                .collect();
            Box::new(ReplayTrace::new("conflict", records)) as Box<dyn TraceSource>
        };
        let base = System::new(tiny_cfg(MitigationConfig::baseline(), 30_000), vec![mk()]).unwrap().run().unwrap();
        let prac = System::new(tiny_cfg(MitigationConfig::prac(500), 30_000), vec![mk()]).unwrap().run().unwrap();
        let slow = prac.slowdown_vs(&base);
        assert!(slow > 0.02, "PRAC slowdown only {slow}");
    }

    #[test]
    fn eight_core_rate_mode_runs() {
        let cfg = tiny_cfg(MitigationConfig::baseline(), 5_000);
        let traces = (0..8).map(|_| stream_trace(64, 10)).collect();
        let r = System::new(cfg, traces).unwrap().run().unwrap();
        assert_eq!(r.cores.len(), 8);
        assert!(r.cycles > 0);
    }

    #[test]
    fn llc_filters_repeated_lines() {
        let mut cfg = tiny_cfg(MitigationConfig::baseline(), 20_000);
        cfg.use_llc = true;
        cfg.prefetch_distance = 0; // isolate the LLC path
        // A working set that fits in the LLC: after warmup, no DRAM
        // traffic.
        let records = (0..64u64)
            .map(|i| TraceRecord {
                gap: 10,
                addr: PhysAddr::new(i * 64),
                is_write: false,
            })
            .collect();
        let sys = System::new(
            cfg,
            vec![Box::new(ReplayTrace::new("resident", records)) as Box<dyn TraceSource>],
        )
        .unwrap();
        let r = sys.run().unwrap();
        assert!(r.dram.reads <= 64, "reads {}", r.dram.reads);
    }

    #[test]
    fn weighted_speedup_of_identical_runs_is_one() {
        let mk = || {
            let cfg = tiny_cfg(MitigationConfig::baseline(), 10_000);
            System::new(cfg, vec![stream_trace(64, 10)]).unwrap().run().unwrap()
        };
        let a = mk();
        let b = mk();
        assert!((a.weighted_speedup_vs(&b) - 1.0).abs() < 1e-9);
        assert!(a.slowdown_vs(&b).abs() < 1e-9);
    }
}
