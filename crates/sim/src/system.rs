//! The full-system simulator: 8 trace-driven cores, optional shared LLC,
//! the memory controller and the DRAM device, advanced in lockstep on
//! the DRAM clock.

use crate::fault::{CorruptingTrace, FaultInjector, FaultPlan};
use mopac::config::MitigationConfig;
use mopac_cpu::core::{Core, CoreParams};
use mopac_cpu::llc::{CacheAccess, Llc};
use mopac_cpu::prefetch::StreamPrefetcher;
use mopac_cpu::trace::TraceSource;
use mopac_dram::device::{DramConfig, DramDevice, DramStats};
use mopac_memctrl::controller::{AccessKind, Completion, McConfig, MemRequest, MemoryController};
use mopac_memctrl::mapping::{AddressMapper, Mapping};
use mopac_types::addr::PhysAddr;
use mopac_types::error::{MopacError, MopacResult};
use mopac_types::geometry::DramGeometry;
use mopac_types::time::Cycle;
use std::collections::{HashMap, VecDeque};

/// System-level configuration.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// DRAM organization (Table 3 default).
    pub geometry: DramGeometry,
    /// Mitigation under test.
    pub mitigation: MitigationConfig,
    /// Memory-controller configuration (page policy etc.).
    pub mc: McConfig,
    /// Address mapping.
    pub mapping: Mapping,
    /// Instructions each core must retire.
    pub instrs_per_core: u64,
    /// Route traces through the shared LLC (calibrated Table 4 traces
    /// bypass it; raw-address applications enable it).
    pub use_llc: bool,
    /// Run the Rowhammer oracle during the run.
    pub enable_checker: bool,
    /// Master seed.
    pub seed: u64,
    /// Hard cycle cap (safety net for misconfigured runs).
    pub max_cycles: Cycle,
    /// Stream-prefetcher lookahead in lines (0 disables prefetching).
    pub prefetch_distance: u64,
    /// Stream trackers per core.
    pub prefetch_trackers: usize,
    /// Livelock watchdog: error out if no core retires an instruction
    /// for this many consecutive cycles (0 disables the watchdog).
    pub livelock_window: Cycle,
    /// Optional deterministic fault schedule applied during the run.
    pub fault_plan: Option<FaultPlan>,
}

impl SystemConfig {
    /// The paper's system with the given mitigation and a per-core
    /// instruction budget.
    #[must_use]
    pub fn paper_default(mitigation: MitigationConfig, instrs_per_core: u64) -> Self {
        Self {
            geometry: DramGeometry::ddr5_32gb(),
            mitigation,
            mc: McConfig::default(),
            mapping: Mapping::paper_default(),
            instrs_per_core,
            use_llc: false,
            enable_checker: false,
            seed: 0x5151,
            max_cycles: 2_000_000_000,
            prefetch_distance: 16,
            prefetch_trackers: 8,
            livelock_window: 10_000_000,
            fault_plan: None,
        }
    }
}

/// Per-core results.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreResult {
    /// Instructions retired when the budget was reached.
    pub instructions: u64,
    /// Cycle at which the budget was crossed.
    pub finish_cycle: Cycle,
    /// Instructions per DRAM cycle up to the finish.
    pub ipc: f64,
}

/// Prefetcher effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// Prefetch requests sent to memory.
    pub issued: u64,
    /// Demand reads fully absorbed by a completed prefetch.
    pub hits: u64,
    /// Demand reads that piggybacked on an in-flight prefetch.
    pub late_hits: u64,
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Per-core outcomes.
    pub cores: Vec<CoreResult>,
    /// Total cycles simulated (last finisher).
    pub cycles: Cycle,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Aggregated mitigation statistics.
    pub mitigation: mopac::bank::MitigationStats,
    /// Rowhammer oracle violations (0 when disabled).
    pub violations: u64,
    /// Mean read latency (cycles).
    pub avg_read_latency: f64,
    /// Prefetcher counters.
    pub prefetch: PrefetchStats,
    /// Fault-injection events applied during the run.
    pub faults_applied: u64,
    /// Trace records corrupted by an injected `TraceCorruption` fault.
    pub trace_corruptions: u64,
}

impl RunResult {
    /// Weighted speedup of this run relative to `base` (mean per-core
    /// IPC ratio); the paper's performance metric.
    #[must_use]
    pub fn weighted_speedup_vs(&self, base: &RunResult) -> f64 {
        assert_eq!(self.cores.len(), base.cores.len(), "core count mismatch");
        let n = self.cores.len() as f64;
        self.cores
            .iter()
            .zip(&base.cores)
            .map(|(a, b)| a.ipc / b.ipc)
            .sum::<f64>()
            / n
    }

    /// Slowdown relative to `base` (1 - weighted speedup). Positive
    /// values mean this run is slower.
    #[must_use]
    pub fn slowdown_vs(&self, base: &RunResult) -> f64 {
        1.0 - self.weighted_speedup_vs(base)
    }

    /// Row-buffer hit rate observed at the DRAM (column commands that
    /// did not need a fresh activation).
    #[must_use]
    pub fn rbhr(&self) -> f64 {
        let cols = self.dram.reads + self.dram.writes;
        if cols == 0 {
            0.0
        } else {
            1.0 - self.dram.activates.min(cols) as f64 / cols as f64
        }
    }

    /// Turns oracle escapes into a structured diagnostic: `Ok(())` when
    /// the run saw no Rowhammer-checker violations, otherwise
    /// [`MopacError::OracleViolation`] carrying the count. Fault
    /// campaigns report this instead of asserting.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::OracleViolation`] if any row crossed the
    /// Rowhammer threshold without mitigation.
    pub fn check_oracle(&self) -> MopacResult<()> {
        if self.violations == 0 {
            Ok(())
        } else {
            Err(MopacError::OracleViolation {
                violations: self.violations,
                detail: format!(
                    "{} row(s) crossed the Rowhammer threshold unmitigated \
                     ({} fault event(s) were injected)",
                    self.violations, self.faults_applied
                ),
            })
        }
    }

    /// Activations per refresh interval per bank (Table 4's APRI).
    #[must_use]
    pub fn apri(&self, banks: u32) -> f64 {
        let refs_per_sc = self.dram.refreshes.max(1) / 2;
        self.dram.activates as f64 / refs_per_sc as f64 / f64::from(banks)
    }
}

/// State of one prefetched line.
#[derive(Debug, Clone, Copy)]
struct PfEntry {
    ready: bool,
    /// ROB load waiting for this prefetch to land, if any.
    rob_waiter: Option<u64>,
}

struct CoreDriver {
    core: Core,
    trace: Box<dyn TraceSource>,
    fetch_credit: f64,
    gap_left: u32,
    pending: Option<(PhysAddr, bool)>,
    seq: u64,
    prefetcher: Option<StreamPrefetcher>,
    /// Prefetched lines by line index.
    pf_lines: HashMap<u64, PfEntry>,
    /// In-flight prefetch request id -> line.
    pf_by_id: HashMap<u64, u64>,
}

/// The assembled system.
pub struct System {
    cfg: SystemConfig,
    mapper: AddressMapper,
    mc: MemoryController,
    llc: Option<Llc>,
    drivers: Vec<CoreDriver>,
    inflight: VecDeque<Completion>,
    scratch: Vec<Completion>,
    now: Cycle,
    pf_stats: PrefetchStats,
    injector: Option<FaultInjector>,
}

impl System {
    /// Builds a system running one trace per core.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Config`] if `traces` is empty.
    pub fn new(cfg: SystemConfig, traces: Vec<Box<dyn TraceSource>>) -> MopacResult<Self> {
        if traces.is_empty() {
            return Err(MopacError::config("need at least one core trace"));
        }
        let injector = cfg.fault_plan.as_ref().map(FaultInjector::new);
        let corruption = cfg
            .fault_plan
            .as_ref()
            .and_then(FaultPlan::trace_corruption_rate);
        let traces: Vec<Box<dyn TraceSource>> = match corruption {
            None => traces,
            Some(rate) => {
                let seed = cfg.fault_plan.as_ref().map_or(0, FaultPlan::seed);
                let line_bytes = cfg.geometry.line_bytes;
                traces
                    .into_iter()
                    .enumerate()
                    .map(|(i, t)| {
                        Box::new(CorruptingTrace::new(t, rate, line_bytes, seed, i as u64))
                            as Box<dyn TraceSource>
                    })
                    .collect()
            }
        };
        let mapper = AddressMapper::new(cfg.geometry, cfg.mapping);
        let dram = DramDevice::new(DramConfig {
            geometry: cfg.geometry,
            mitigation: cfg.mitigation,
            enable_checker: cfg.enable_checker,
            seed: cfg.seed ^ 0xD8A3,
        });
        let mut mc_cfg = cfg.mc;
        mc_cfg.seed = cfg.seed ^ 0x3C;
        let mc = MemoryController::new(dram, mc_cfg);
        let drivers = traces
            .into_iter()
            .map(|trace| CoreDriver {
                core: Core::new(CoreParams::paper_default()),
                trace,
                fetch_credit: 0.0,
                gap_left: 0,
                pending: None,
                seq: 0,
                prefetcher: (cfg.prefetch_distance > 0).then(|| {
                    StreamPrefetcher::new(cfg.prefetch_trackers, cfg.prefetch_distance)
                }),
                pf_lines: HashMap::new(),
                pf_by_id: HashMap::new(),
            })
            .collect();
        let llc = cfg.use_llc.then(Llc::paper_default);
        Ok(Self {
            cfg,
            mapper,
            mc,
            llc,
            drivers,
            inflight: VecDeque::new(),
            scratch: Vec::new(),
            now: 0,
            pf_stats: PrefetchStats::default(),
            injector,
        })
    }

    /// Like [`System::run`] but also returns the memory controller's
    /// statistics (diagnostics and reporting).
    ///
    /// # Errors
    ///
    /// See [`System::run`].
    pub fn run_with_mc_stats(
        self,
    ) -> MopacResult<(RunResult, mopac_memctrl::controller::McStats)> {
        let mut me = self;
        let result = me.run_inner()?;
        let stats = me.mc.stats();
        Ok((result, stats))
    }

    /// Runs to completion (all cores reach the instruction budget) and
    /// returns the results.
    ///
    /// # Errors
    ///
    /// - [`MopacError::CycleCapExceeded`] if `max_cycles` elapses first.
    /// - [`MopacError::Livelock`] if the watchdog sees no retired
    ///   instruction for `livelock_window` consecutive cycles.
    /// - [`MopacError::TimingProtocol`] if an (injected or internal)
    ///   fault drives the device into an illegal command sequence.
    pub fn run(mut self) -> MopacResult<RunResult> {
        self.run_inner()
    }

    fn run_inner(&mut self) -> MopacResult<RunResult> {
        let budget = self.cfg.instrs_per_core;
        let n_cores = self.drivers.len();
        let mut finished = 0usize;
        let mut last_retired = 0u64;
        let mut last_progress_at: Cycle = 0;
        while finished < n_cores {
            self.step()?;
            finished = self
                .drivers
                .iter_mut()
                .map(|d| usize::from(d.core.check_finished(budget, self.now)))
                .sum();
            if self.cfg.livelock_window > 0 {
                let retired: u64 = self.drivers.iter().map(|d| d.core.retired()).sum();
                if retired > last_retired {
                    last_retired = retired;
                    last_progress_at = self.now;
                } else if self.now - last_progress_at >= self.cfg.livelock_window {
                    return Err(MopacError::Livelock {
                        cycle: self.now,
                        stalled_for: self.now - last_progress_at,
                        retired,
                    });
                }
            }
            if self.now >= self.cfg.max_cycles {
                return Err(MopacError::CycleCapExceeded {
                    cap: self.cfg.max_cycles,
                    finished_cores: finished,
                    total_cores: n_cores,
                });
            }
        }
        let cores = self
            .drivers
            .iter()
            .map(|d| {
                let finish = d.core.finished_at().ok_or_else(|| {
                    MopacError::internal("core counted finished without a finish cycle")
                })?;
                Ok(CoreResult {
                    instructions: budget,
                    finish_cycle: finish,
                    ipc: budget as f64 / finish.max(1) as f64,
                })
            })
            .collect::<MopacResult<Vec<_>>>()?;
        Ok(RunResult {
            cores,
            cycles: self.now,
            dram: self.mc.dram().stats(),
            mitigation: self.mc.dram().mitigation_stats(),
            violations: self.mc.dram().violations(),
            avg_read_latency: self.mc.stats().avg_read_latency(),
            prefetch: self.pf_stats,
            faults_applied: self.injector.as_ref().map_or(0, FaultInjector::applied),
            trace_corruptions: self
                .drivers
                .iter()
                .map(|d| d.trace.corrupted_records())
                .sum(),
        })
    }

    /// Test/diagnostic hook: advances one cycle.
    ///
    /// # Errors
    ///
    /// Propagates [`System::run`]'s per-cycle errors.
    #[doc(hidden)]
    pub fn debug_step(&mut self) -> MopacResult<()> {
        self.step()
    }

    /// Test/diagnostic hook: per-core retired instruction counts.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_retired(&self) -> Vec<u64> {
        self.drivers.iter().map(|d| d.core.retired()).collect()
    }

    /// Test/diagnostic hook: total queued requests in the MC.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_queued(&self) -> usize {
        self.mc.queued()
    }

    /// Test/diagnostic hook: in-flight read completions.
    #[doc(hidden)]
    #[must_use]
    pub fn debug_inflight(&self) -> usize {
        self.inflight.len()
    }

    /// Advances one DRAM cycle.
    fn step(&mut self) -> MopacResult<()> {
        let now = self.now;
        // Scheduled faults fire before the controller sees the cycle.
        if let Some(inj) = self.injector.as_mut() {
            inj.apply(now, &mut self.mc)?;
        }
        // Memory controller issues commands; reads may complete.
        self.scratch.clear();
        self.mc.tick(now, &mut self.scratch)?;
        for c in self.scratch.drain(..) {
            // Insert keeping ascending completion order.
            let pos = self.inflight.partition_point(|x| x.at <= c.at);
            self.inflight.insert(pos, c);
        }
        // Deliver due completions (demand loads and prefetches).
        while self.inflight.front().is_some_and(|c| c.at <= now) {
            let Some(c) = self.inflight.pop_front() else {
                break;
            };
            let d = &mut self.drivers[(c.id >> 48) as usize];
            if let Some(line) = d.pf_by_id.remove(&c.id) {
                if let Some(entry) = d.pf_lines.get_mut(&line) {
                    entry.ready = true;
                    if let Some(waiter) = entry.rob_waiter {
                        d.core.on_complete(waiter);
                        // Consumed by the demand stream.
                        d.pf_lines.remove(&line);
                    }
                }
            } else {
                d.core.on_complete(c.id);
            }
        }
        // Fetch in rotating order so no core monopolizes a nearly-full
        // queue, then retire.
        let n = self.drivers.len();
        let start = (now as usize) % n;
        for k in 0..n {
            self.fetch_core((start + k) % n, now);
        }
        for d in &mut self.drivers {
            d.core.retire();
        }
        self.now += 1;
        Ok(())
    }

    /// Feeds the prefetcher with a demand line and issues any candidate
    /// prefetches the memory controller can accept.
    fn run_prefetcher(
        stats: &mut PrefetchStats,
        d: &mut CoreDriver,
        idx: usize,
        line: u64,
        mapper: &AddressMapper,
        mc: &mut MemoryController,
        now: Cycle,
    ) {
        let Some(pf) = d.prefetcher.as_mut() else {
            return;
        };
        // Bound outstanding prefetch state per core.
        const MAX_PF_LINES: usize = 512;
        for cand in pf.observe(line) {
            if d.pf_lines.len() >= MAX_PF_LINES || d.pf_lines.contains_key(&cand) {
                continue;
            }
            let addr = PhysAddr::from_line_index(cand, mapper.geometry().line_bytes);
            let decoded = mapper.decode(addr);
            if !mc.can_accept(decoded.bank.subchannel, AccessKind::Read) {
                continue;
            }
            let id = ((idx as u64) << 48) | d.seq;
            d.seq += 1;
            let ok = mc.enqueue(
                MemRequest {
                    id,
                    kind: AccessKind::Read,
                    addr: decoded,
                },
                now,
            );
            debug_assert!(ok);
            d.pf_by_id.insert(id, cand);
            d.pf_lines.insert(
                cand,
                PfEntry {
                    ready: false,
                    rob_waiter: None,
                },
            );
            stats.issued += 1;
        }
    }

    fn fetch_core(&mut self, idx: usize, now: Cycle) {
        let d = &mut self.drivers[idx];
        d.fetch_credit =
            (d.fetch_credit + CoreParams::paper_default().retire_per_dram_cycle).min(64.0);
        loop {
            if d.fetch_credit < 1.0 {
                break;
            }
            if d.gap_left > 0 {
                let free = d.core.rob_free() as u32;
                let n = d.gap_left.min(d.fetch_credit as u32).min(free);
                if n == 0 {
                    break;
                }
                d.core.push_instrs(n);
                d.gap_left -= n;
                d.fetch_credit -= f64::from(n);
                continue;
            }
            if let Some((addr, is_write)) = d.pending {
                if d.core.rob_free() == 0 {
                    break;
                }
                let line = addr.line_index(self.cfg.geometry.line_bytes);
                // Demand read absorbed by the prefetcher?
                if !is_write {
                    match d.pf_lines.get_mut(&line) {
                        Some(e) if e.ready => {
                            d.pf_lines.remove(&line);
                            self.pf_stats.hits += 1;
                            d.core.push_instrs(1);
                            d.fetch_credit -= 1.0;
                            d.pending = None;
                            Self::run_prefetcher(
                                &mut self.pf_stats,
                                d,
                                idx,
                                line,
                                &self.mapper,
                                &mut self.mc,
                                now,
                            );
                            continue;
                        }
                        Some(e) if e.rob_waiter.is_none() => {
                            let id = ((idx as u64) << 48) | d.seq;
                            d.seq += 1;
                            e.rob_waiter = Some(id);
                            self.pf_stats.late_hits += 1;
                            d.core.push_read(id);
                            d.fetch_credit -= 1.0;
                            d.pending = None;
                            Self::run_prefetcher(
                                &mut self.pf_stats,
                                d,
                                idx,
                                line,
                                &self.mapper,
                                &mut self.mc,
                                now,
                            );
                            continue;
                        }
                        _ => {}
                    }
                }
                let decoded = self.mapper.decode(addr);
                let sc = decoded.bank.subchannel;
                let kind = if is_write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                if !self.mc.can_accept(sc, kind) {
                    break;
                }
                let id = ((idx as u64) << 48) | d.seq;
                d.seq += 1;
                let ok = self.mc.enqueue(
                    MemRequest {
                        id,
                        kind,
                        addr: decoded,
                    },
                    now,
                );
                debug_assert!(ok);
                if is_write {
                    d.core.push_instrs(1);
                } else {
                    d.core.push_read(id);
                }
                d.fetch_credit -= 1.0;
                d.pending = None;
                if !is_write {
                    Self::run_prefetcher(
                        &mut self.pf_stats,
                        d,
                        idx,
                        line,
                        &self.mapper,
                        &mut self.mc,
                        now,
                    );
                }
                continue;
            }
            // Pull the next trace record (through the LLC if enabled).
            let rec = d.trace.next_record();
            d.gap_left = rec.gap;
            match self.llc.as_mut() {
                None => d.pending = Some((rec.addr, rec.is_write)),
                Some(llc) => match llc.access(rec.addr, rec.is_write) {
                    CacheAccess::Hit => {
                        // Hit: the access is one ordinary instruction.
                        d.gap_left = d.gap_left.saturating_add(1);
                    }
                    CacheAccess::Miss => {
                        // Allocate on write too: the demand fill is a
                        // read; dirty data leaves later.
                        d.pending = Some((rec.addr, false));
                    }
                    CacheAccess::MissDirtyEviction(victim) => {
                        d.pending = Some((rec.addr, false));
                        // Post the writeback without ROB involvement.
                        let decoded = self.mapper.decode(victim);
                        let id = ((idx as u64) << 48) | d.seq;
                        d.seq += 1;
                        let _ = self.mc.enqueue(
                            MemRequest {
                                id,
                                kind: AccessKind::Write,
                                addr: decoded,
                            },
                            now,
                        );
                    }
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopac_cpu::trace::{ReplayTrace, TraceRecord};

    fn stream_trace(stride: u64, gap: u32) -> Box<dyn TraceSource> {
        let records = (0..256u64)
            .map(|i| TraceRecord {
                gap,
                addr: PhysAddr::new(i * stride),
                is_write: false,
            })
            .collect();
        Box::new(ReplayTrace::new("unit", records))
    }

    fn tiny_cfg(mit: MitigationConfig, instrs: u64) -> SystemConfig {
        let mut cfg = SystemConfig::paper_default(mit, instrs);
        cfg.geometry = DramGeometry::tiny();
        cfg
    }

    #[test]
    fn single_core_completes() {
        let cfg = tiny_cfg(MitigationConfig::baseline(), 20_000);
        let sys = System::new(cfg, vec![stream_trace(64, 20)]).unwrap();
        let r = sys.run().unwrap();
        assert_eq!(r.cores.len(), 1);
        assert!(r.cores[0].ipc > 0.1, "ipc {}", r.cores[0].ipc);
        assert!(r.dram.reads > 0);
    }

    #[test]
    fn prac_is_slower_than_baseline() {
        // Row-conflict-heavy pattern: every access a different row in
        // the same banks.
        let mk = || {
            let records = (0..512u64)
                .map(|i| TraceRecord {
                    gap: 6,
                    addr: PhysAddr::new(i * 64 * 1024 * 8), // unique rows
                    is_write: false,
                })
                .collect();
            Box::new(ReplayTrace::new("conflict", records)) as Box<dyn TraceSource>
        };
        let base = System::new(tiny_cfg(MitigationConfig::baseline(), 30_000), vec![mk()]).unwrap().run().unwrap();
        let prac = System::new(tiny_cfg(MitigationConfig::prac(500), 30_000), vec![mk()]).unwrap().run().unwrap();
        let slow = prac.slowdown_vs(&base);
        assert!(slow > 0.02, "PRAC slowdown only {slow}");
    }

    #[test]
    fn eight_core_rate_mode_runs() {
        let cfg = tiny_cfg(MitigationConfig::baseline(), 5_000);
        let traces = (0..8).map(|_| stream_trace(64, 10)).collect();
        let r = System::new(cfg, traces).unwrap().run().unwrap();
        assert_eq!(r.cores.len(), 8);
        assert!(r.cycles > 0);
    }

    #[test]
    fn llc_filters_repeated_lines() {
        let mut cfg = tiny_cfg(MitigationConfig::baseline(), 20_000);
        cfg.use_llc = true;
        cfg.prefetch_distance = 0; // isolate the LLC path
        // A working set that fits in the LLC: after warmup, no DRAM
        // traffic.
        let records = (0..64u64)
            .map(|i| TraceRecord {
                gap: 10,
                addr: PhysAddr::new(i * 64),
                is_write: false,
            })
            .collect();
        let sys = System::new(
            cfg,
            vec![Box::new(ReplayTrace::new("resident", records)) as Box<dyn TraceSource>],
        )
        .unwrap();
        let r = sys.run().unwrap();
        assert!(r.dram.reads <= 64, "reads {}", r.dram.reads);
    }

    #[test]
    fn weighted_speedup_of_identical_runs_is_one() {
        let mk = || {
            let cfg = tiny_cfg(MitigationConfig::baseline(), 10_000);
            System::new(cfg, vec![stream_trace(64, 10)]).unwrap().run().unwrap()
        };
        let a = mk();
        let b = mk();
        assert!((a.weighted_speedup_vs(&b) - 1.0).abs() < 1e-9);
        assert!(a.slowdown_vs(&b).abs() < 1e-9);
    }
}
