//! Experiment-level helpers: build and run the paper's workloads against
//! a mitigation configuration and compute slowdowns.

use crate::system::{RunResult, System, SystemConfig};
use mopac::config::MitigationConfig;
use mopac_cpu::trace::TraceSource;
use mopac_memctrl::mapping::AddressMapper;
use mopac_types::error::{MopacError, MopacResult};
use mopac_workloads::generator::CalibratedTrace;
use mopac_workloads::spec::{self, MIXES};

/// Number of cores in the paper's system.
pub const CORES: usize = 8;

/// Default per-core instruction budget for experiments. The paper runs
/// 100 M instructions per core; slowdown ratios for these steady-state
/// workloads converge much earlier, so the bench harness defaults to a
/// smaller budget (override with the `MOPAC_INSTRS` environment
/// variable).
#[must_use]
pub fn default_instrs_per_core() -> u64 {
    std::env::var("MOPAC_INSTRS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(250_000)
}

/// Every name [`build_traces`] accepts: the 23 single workloads plus
/// the `mix1`–`mix6` assignments.
#[must_use]
pub fn valid_workload_names() -> Vec<String> {
    let mut names: Vec<String> = spec::all_names()
        .iter()
        .map(|s| (*s).to_string())
        .chain(MIXES.iter().map(|(n, _)| (*n).to_string()))
        .collect();
    // `spec::all_names` already lists the mixes; drop the duplicates
    // while keeping the original ordering.
    let mut seen = std::collections::HashSet::new();
    names.retain(|n| seen.insert(n.clone()));
    names
}

fn unknown_workload(name: &str) -> MopacError {
    MopacError::UnknownWorkload {
        name: name.to_string(),
        valid: valid_workload_names(),
    }
}

/// Looks up a registered mitigation engine by name and instantiates
/// its preset at the given Rowhammer threshold.
///
/// # Errors
///
/// Returns [`MopacError::Config`] — listing every registered engine —
/// if `name` is not in the [`mopac::EngineRegistry`].
pub fn mitigation_preset(name: &str, t_rh: u64) -> MopacResult<MitigationConfig> {
    let registry = mopac::EngineRegistry::builtin();
    registry.get(name).map(|spec| (spec.preset)(t_rh)).ok_or_else(|| {
        MopacError::config(format!(
            "unknown mitigation engine '{name}' (registered: {})",
            registry.names().join(", ")
        ))
    })
}

/// Builds the 8 per-core traces for a named workload: rate mode (eight
/// copies) for plain workloads, the fixed assignment for `mix1`–`mix6`.
///
/// # Errors
///
/// Returns [`MopacError::UnknownWorkload`] — listing every valid name —
/// if `name` matches neither a workload nor a mix.
pub fn build_traces(name: &str, cfg: &SystemConfig) -> MopacResult<Vec<Box<dyn TraceSource>>> {
    let mapper = AddressMapper::new(cfg.geometry, cfg.mapping);
    if let Some((_, assignment)) = MIXES.iter().find(|(n, _)| *n == name) {
        assignment
            .iter()
            .enumerate()
            .map(|(core, wname)| {
                let spec = spec::find(wname).ok_or_else(|| unknown_workload(wname))?;
                Ok(Box::new(CalibratedTrace::new(spec, mapper, core as u32, cfg.seed))
                    as Box<dyn TraceSource>)
            })
            .collect()
    } else {
        let spec = spec::find(name).ok_or_else(|| unknown_workload(name))?;
        Ok((0..CORES)
            .map(|core| {
                Box::new(CalibratedTrace::new(spec, mapper, core as u32, cfg.seed))
                    as Box<dyn TraceSource>
            })
            .collect())
    }
}

/// Runs one workload under one mitigation and returns the result.
///
/// # Errors
///
/// Returns [`MopacError::UnknownWorkload`] for a bad name, or any error
/// surfaced by [`System::run`].
pub fn run_workload(name: &str, mitigation: MitigationConfig, instrs: u64) -> MopacResult<RunResult> {
    let cfg = SystemConfig::paper_default(mitigation, instrs);
    run_workload_with(name, cfg)
}

/// Runs one workload with a fully custom system configuration.
///
/// # Errors
///
/// Returns [`MopacError::UnknownWorkload`] for a bad name, or any error
/// surfaced by [`System::run`].
pub fn run_workload_with(name: &str, cfg: SystemConfig) -> MopacResult<RunResult> {
    let traces = build_traces(name, &cfg)?;
    System::new(cfg, traces)?.run()
}

/// A (workload, slowdown) pair produced by a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownRow {
    /// Workload name.
    pub workload: String,
    /// Fractional slowdown vs the baseline (positive = slower).
    pub slowdown: f64,
}

/// Runs `mitigation` and the unprotected baseline over the given
/// workloads and reports per-workload slowdowns plus the geometric-mean
/// row ("gmean" in the paper's figures uses the arithmetic mean of
/// slowdowns; we report the arithmetic mean, matching "on average").
///
/// # Panics
///
/// # Errors
///
/// Fails on unknown workload names or on any run error.
pub fn slowdown_sweep(
    workloads: &[&str],
    mitigation: MitigationConfig,
    instrs: u64,
) -> MopacResult<Vec<SlowdownRow>> {
    let mut rows = Vec::with_capacity(workloads.len() + 1);
    let mut total = 0.0;
    for w in workloads {
        let base = run_workload(w, MitigationConfig::baseline(), instrs)?;
        let test = run_workload(w, mitigation, instrs)?;
        let s = test.slowdown_vs(&base);
        total += s;
        rows.push(SlowdownRow {
            workload: (*w).to_string(),
            slowdown: s,
        });
    }
    rows.push(SlowdownRow {
        workload: "mean".to_string(),
        slowdown: total / workloads.len() as f64,
    });
    Ok(rows)
}

/// The mean slowdown across all 23 paper workloads — the headline number
/// of Figures 2, 9, 11 and 17.
///
/// # Errors
///
/// Fails if a workload is missing from the catalog or a run errors.
pub fn mean_slowdown(mitigation: MitigationConfig, instrs: u64) -> MopacResult<f64> {
    let names = spec::all_names();
    let rows = slowdown_sweep(&names, mitigation, instrs)?;
    rows.last()
        .map(|r| r.slowdown)
        .ok_or_else(|| MopacError::internal("slowdown_sweep returned no rows"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_built_for_rate_mode_and_mixes() {
        let cfg = SystemConfig::paper_default(MitigationConfig::baseline(), 1000);
        assert_eq!(build_traces("xz", &cfg).unwrap().len(), 8);
        let mix = build_traces("mix1", &cfg).unwrap();
        assert_eq!(mix.len(), 8);
        assert_eq!(mix[0].name(), "parest");
        assert_eq!(mix[3].name(), "xz");
    }

    #[test]
    fn unknown_workload_is_a_typed_error_listing_names() {
        let cfg = SystemConfig::paper_default(MitigationConfig::baseline(), 1000);
        let err = build_traces("nope", &cfg).err().expect("must fail");
        let MopacError::UnknownWorkload { name, valid } = &err else {
            panic!("expected UnknownWorkload, got {err}");
        };
        assert_eq!(name, "nope");
        assert!(valid.iter().any(|v| v == "xz"));
        assert!(valid.iter().any(|v| v == "mix1"));
        // The rendered message carries the valid names.
        assert!(err.to_string().contains("xz"), "{err}");
    }

    #[test]
    fn small_run_produces_sane_slowdown() {
        // A fast smoke test: cam4 (low MPKI) under PRAC.
        let base = run_workload("cam4", MitigationConfig::baseline(), 20_000).unwrap();
        let prac = run_workload("cam4", MitigationConfig::prac(500), 20_000).unwrap();
        let s = prac.slowdown_vs(&base);
        assert!((-0.05..0.5).contains(&s), "slowdown {s}");
        assert_eq!(prac.violations, 0);
    }
}
