//! Deterministic parallel campaign driver.
//!
//! Experiment campaigns are matrices of independent cells (mitigation ×
//! fault, workload × config, …). [`ParallelCampaign`] fans the cells out
//! across worker threads — each cell still runs inside the panic-
//! isolated, timeout-guarded [`IsolatedRunner`] — while keeping the
//! output *bit-identical* to a sequential run:
//!
//! * **Seeding** — each cell's seed is derived from the campaign master
//!   seed and the cell *index* ([`DetRng::fork`]), never from thread
//!   identity or scheduling order.
//! * **Reduction** — workers deposit results into per-index slots; the
//!   submitting thread commits them to the caller's sink strictly in
//!   submission order, as soon as the next index is ready. A campaign
//!   killed mid-flight therefore still persists a clean prefix, and the
//!   committed rows are byte-identical at any thread count.
//!
//! Determinism holds as long as the cells themselves are deterministic
//! functions of `(cell, seed, attempt)`: the only wall-clock-dependent
//! paths are the runner's timeout and panic-retry, which change the
//! reported status for a cell that genuinely times out. Sinks that want
//! byte-identical output must not record wall-clock fields (e.g.
//! [`RunReport::elapsed`]).

use crate::experiment::build_traces;
use crate::fault::{FaultKind, FaultPlan};
use crate::runner::{IsolatedRunner, RunReport, RunStatus};
use crate::system::{RunResult, System, SystemConfig};
use mopac::config::MitigationConfig;
use mopac_types::geometry::DramGeometry;
use mopac_types::obs::{Hist, MetricsSnapshot, SinkConfig};
use mopac_types::rng::DetRng;
use mopac_types::snapshot::fnv1a64;
use mopac_types::MopacResult;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Worker-count default: `MOPAC_THREADS` if set and positive, else the
/// machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    std::env::var("MOPAC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(1, NonZeroUsize::get)
        })
}

/// Recovers a usable guard from a poisoned lock: campaign state is
/// plain data (slots of reports), valid even if a panicking thread was
/// holding the mutex.
fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A deterministic parallel fan-out over independent experiment cells.
#[derive(Debug, Clone)]
pub struct ParallelCampaign {
    runner: IsolatedRunner,
    threads: usize,
    master_seed: u64,
}

impl ParallelCampaign {
    /// A campaign with the default isolated runner and worker count.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        Self {
            runner: IsolatedRunner::default(),
            threads: default_threads(),
            master_seed,
        }
    }

    /// Replaces the per-cell isolated runner (timeout / retry policy).
    #[must_use]
    pub fn with_runner(mut self, runner: IsolatedRunner) -> Self {
        self.runner = runner;
        self
    }

    /// Overrides the worker count (`0` restores the default).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        self
    }

    /// The worker count this campaign will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The deterministic seed for cell `idx`: a function of the master
    /// seed and the index only, independent of thread count and order.
    #[must_use]
    pub fn cell_seed(&self, idx: usize) -> u64 {
        DetRng::from_seed(self.master_seed).fork(idx as u64).next_u64()
    }

    /// Runs every cell, in parallel, committing each [`RunReport`] to
    /// `sink` strictly in cell order (index 0, 1, 2, …) as soon as that
    /// index has finished. `work` receives the cell, its derived seed,
    /// and the runner's attempt index; `label` names the cell for the
    /// runner's diagnostics.
    ///
    /// The `Clone + 'static` bounds come from [`IsolatedRunner::run`]:
    /// a timed-out attempt's thread outlives the call, so each attempt
    /// owns its inputs.
    pub fn run<C, T, L, F, S>(&self, cells: &[C], label: L, work: F, sink: S)
    where
        C: Clone + Send + Sync + 'static,
        T: Send + 'static,
        L: Fn(&C) -> String + Sync,
        F: Fn(C, u64, u32) -> mopac_types::MopacResult<T> + Clone + Send + Sync + 'static,
        S: FnMut(usize, RunReport<T>),
    {
        self.run_with_offset(0, cells, label, work, sink);
    }

    /// Like [`ParallelCampaign::run`] but for a tail of a larger
    /// campaign: `cells` are the cells at global indices `offset..`,
    /// and both the derived seeds and the indices handed to `sink` use
    /// those *global* indices. A checkpointed campaign resumed at cell
    /// `k` therefore reproduces exactly the seeds — and so exactly the
    /// results — the uninterrupted campaign would have produced.
    pub fn run_with_offset<C, T, L, F, S>(
        &self,
        offset: usize,
        cells: &[C],
        label: L,
        work: F,
        mut sink: S,
    ) where
        C: Clone + Send + Sync + 'static,
        T: Send + 'static,
        L: Fn(&C) -> String + Sync,
        F: Fn(C, u64, u32) -> mopac_types::MopacResult<T> + Clone + Send + Sync + 'static,
        S: FnMut(usize, RunReport<T>),
    {
        let n = cells.len();
        if n == 0 {
            return;
        }
        let workers = self.threads.min(n).max(1);
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<RunReport<T>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let ready = Condvar::new();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let cell = cells[idx].clone();
                    let seed = self.cell_seed(offset + idx);
                    let name = label(&cell);
                    let w = work.clone();
                    let report = self
                        .runner
                        .run(&name, move |attempt| w(cell.clone(), seed, attempt));
                    lock_unpoisoned(&slots)[idx] = Some(report);
                    ready.notify_all();
                });
            }
            // In-order commit: index i is handed to the sink the moment
            // it (and everything before it) has finished.
            for idx in 0..n {
                let report = {
                    let mut guard = lock_unpoisoned(&slots);
                    loop {
                        if let Some(r) = guard[idx].take() {
                            break r;
                        }
                        guard = match ready.wait(guard) {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                    }
                };
                sink(offset + idx, report);
            }
        });
    }
}

/// CSV schema of the fault-injection campaign, shared by the
/// `fault_campaign` binary and the determinism test.
pub const FAULT_CAMPAIGN_HEADERS: [&str; 11] = [
    "mitigation",
    "fault",
    "status",
    "attempts",
    "violations",
    "faults_applied",
    "trace_corruptions",
    "alerts",
    "rfms",
    "cycles",
    "detail",
];

/// CSV schema when [`FaultCampaignSpec::collect_metrics`] is on: the
/// base columns plus merged histogram percentiles from each cell's
/// metrics snapshot. A separate constant so the default schema (and
/// the byte-identity tests joined against it) never moves.
pub const FAULT_CAMPAIGN_METRICS_HEADERS: [&str; 17] = [
    "mitigation",
    "fault",
    "status",
    "attempts",
    "violations",
    "faults_applied",
    "trace_corruptions",
    "alerts",
    "rfms",
    "cycles",
    "detail",
    "read_lat_p50",
    "read_lat_p95",
    "read_lat_p99",
    "act_gap_p50",
    "act_gap_p95",
    "act_gap_p99",
];

/// One (mitigation × fault) cell of the fault-injection campaign.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// Mitigation label for reports.
    pub mitigation_name: &'static str,
    /// Mitigation under test.
    pub mitigation: MitigationConfig,
    /// Fault-schedule label for reports.
    pub fault_name: &'static str,
    /// The fault schedule injected into this cell.
    pub plan: FaultPlan,
}

impl FaultCell {
    /// The cell's `mitigation/fault` label.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}", self.mitigation_name, self.fault_name)
    }
}

/// The fault schedules under test (≥5 kinds).
#[must_use]
pub fn fault_matrix() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "alert-storm",
            FaultPlan::new(0xFA01).with(
                2_000,
                FaultKind::AlertStorm {
                    subchannel: 0,
                    period: 1_100,
                    count: 20,
                },
            ),
        ),
        (
            // Pair the drop with spurious ALERTs so RFMs are actually
            // issued (and swallowed): the MC must recover via re-issue.
            "drop-rfm",
            FaultPlan::new(0xFA02)
                .with(1_000, FaultKind::DropRfm { count: 3 })
                .with(
                    2_000,
                    FaultKind::AlertStorm {
                        subchannel: 0,
                        period: 2_000,
                        count: 6,
                    },
                ),
        ),
        (
            "delay-rfm",
            FaultPlan::new(0xFA03)
                .with(0, FaultKind::DelayRfm { extra_cycles: 200 })
                .with(
                    2_000,
                    FaultKind::AlertStorm {
                        subchannel: 0,
                        period: 2_000,
                        count: 6,
                    },
                ),
        ),
        ("counter-bitflip", {
            let mut plan = FaultPlan::new(0xFA04);
            for i in 0..8u64 {
                plan = plan.with(
                    1_000 + i * 1_000,
                    FaultKind::CounterBitFlip {
                        subchannel: 0,
                        bank: (i % 4) as u32,
                        bit: 9,
                    },
                );
            }
            plan
        }),
        (
            "stuck-bank",
            FaultPlan::new(0xFA05).with(
                3_000,
                FaultKind::StuckBank {
                    subchannel: 0,
                    bank: 1,
                    duration: 10_000,
                },
            ),
        ),
        (
            "trace-corruption",
            FaultPlan::new(0xFA06).with(0, FaultKind::TraceCorruption { rate: 0.01 }),
        ),
    ]
}

/// The mitigations under test: every registered engine that actually
/// tracks activations (the inert baseline has nothing to fault), at
/// the paper's default threshold.
#[must_use]
pub fn campaign_mitigations() -> Vec<(&'static str, MitigationConfig)> {
    mopac::EngineRegistry::builtin()
        .specs()
        .iter()
        .filter(|s| s.tracks())
        .map(|s| (s.name, (s.preset)(500)))
        .collect()
}

/// The full campaign matrix in submission order.
#[must_use]
pub fn fault_cells() -> Vec<FaultCell> {
    let mut cells = Vec::new();
    for (mitigation_name, mitigation) in campaign_mitigations() {
        for (fault_name, plan) in fault_matrix() {
            cells.push(FaultCell {
                mitigation_name,
                mitigation,
                fault_name,
                plan: plan.clone(),
            });
        }
    }
    cells
}

/// Knobs for a fault-campaign run.
#[derive(Debug, Clone)]
pub struct FaultCampaignSpec {
    /// Master seed; each cell forks a seed from it by index.
    pub master_seed: u64,
    /// Per-core instructions per cell.
    pub instrs: u64,
    /// Per-attempt wall-clock budget.
    pub timeout: Duration,
    /// Worker threads (`0` = default / `MOPAC_THREADS`).
    pub threads: usize,
    /// Deliberately panic in the named `mitigation/fault` cell
    /// (isolation demo; `MOPAC_INJECT_PANIC`).
    pub inject_panic: Option<String>,
    /// Enable the per-cell metrics sink and append the percentile
    /// columns of [`FAULT_CAMPAIGN_METRICS_HEADERS`] to each row.
    /// Off by default: rows then match [`FAULT_CAMPAIGN_HEADERS`]
    /// byte-for-byte, and the cells run with every sink call a no-op.
    pub collect_metrics: bool,
}

impl Default for FaultCampaignSpec {
    fn default() -> Self {
        Self {
            master_seed: 0x5151,
            instrs: 40_000,
            timeout: Duration::from_secs(300),
            threads: 0,
            inject_panic: None,
            collect_metrics: false,
        }
    }
}

/// One committed campaign cell: the CSV row plus the fields the caller
/// needs for summaries, in submission order.
#[derive(Debug)]
pub struct FaultCellOutcome {
    /// `mitigation/fault` label.
    pub label: String,
    /// Terminal status of the cell's final attempt.
    pub status: RunStatus,
    /// Oracle violations observed (0 when the cell did not finish).
    pub violations: u64,
    /// The CSV row matching [`FAULT_CAMPAIGN_HEADERS`]. Deliberately
    /// excludes wall-clock fields so rows are byte-identical across
    /// thread counts and runs.
    pub row: Vec<String>,
}

/// One isolated cell run: workload `xz` on the tiny geometry with the
/// checker on and the fault plan active. `attempt` bumps the seed so a
/// retried cell does not replay the identical failure. The snapshot is
/// `None` unless `collect_metrics` was requested.
fn run_fault_cell(
    cell: &FaultCell,
    instrs: u64,
    seed: u64,
    attempt: u32,
    collect_metrics: bool,
) -> MopacResult<(RunResult, Option<MetricsSnapshot>)> {
    let mut cfg = SystemConfig::paper_default(cell.mitigation, instrs);
    cfg.geometry = DramGeometry::tiny();
    cfg.enable_checker = true;
    cfg.seed = seed.wrapping_add(u64::from(attempt));
    cfg.livelock_window = 2_000_000;
    cfg.fault_plan = Some(cell.plan.clone());
    cfg.metrics = collect_metrics.then(SinkConfig::default);
    let traces = build_traces("xz", &cfg)?;
    System::new(cfg, traces)?.run_with_metrics()
}

/// Appends the p50/p95/p99 of one merged histogram to `row` ("0"s when
/// the cell produced no snapshot or never recorded the histogram).
fn push_percentiles(row: &mut Vec<String>, snapshot: Option<&MetricsSnapshot>, h: Hist) {
    let (p50, p95, p99) = snapshot
        .and_then(|s| s.hist_merged(h))
        .map_or((0, 0, 0), |m| (m.p50, m.p95, m.p99));
    row.push(p50.to_string());
    row.push(p95.to_string());
    row.push(p99.to_string());
}

/// Stable string form of a [`RunStatus`] (CSV rows and checkpoint log).
#[must_use]
pub fn status_str(status: &RunStatus) -> &'static str {
    match status {
        RunStatus::Done => "done",
        RunStatus::Failed => "failed",
        RunStatus::Panicked => "panicked",
        RunStatus::TimedOut => "timed-out",
    }
}

/// Inverse of [`status_str`].
fn parse_status(s: &str) -> MopacResult<RunStatus> {
    match s {
        "done" => Ok(RunStatus::Done),
        "failed" => Ok(RunStatus::Failed),
        "panicked" => Ok(RunStatus::Panicked),
        "timed-out" => Ok(RunStatus::TimedOut),
        other => Err(mopac_types::MopacError::snapshot(format!(
            "unknown run status '{other}' in checkpoint log"
        ))),
    }
}

/// Renders one cell report into its CSV row.
fn fault_cell_outcome(
    cell: &FaultCell,
    report: &RunReport<(RunResult, Option<MetricsSnapshot>)>,
    collect_metrics: bool,
) -> FaultCellOutcome {
    let status = status_str(&report.status);
    let result = report.value.as_ref().map(|(r, _)| r);
    let snapshot = report.value.as_ref().and_then(|(_, s)| s.as_ref());
    let (violations, faults, corruptions, alerts, rfms, cycles) =
        result.map_or((0, 0, 0, 0, 0, 0), |r| {
            (
                r.violations,
                r.faults_applied,
                r.trace_corruptions,
                r.dram.alerts(),
                r.dram.rfms,
                r.cycles,
            )
        });
    // Oracle escapes become a structured note, never an abort.
    let detail = result.map_or_else(
        || {
            report
                .error
                .as_ref()
                .map_or(String::new(), std::string::ToString::to_string)
        },
        |r| {
            r.check_oracle()
                .err()
                .map_or(String::new(), |e| e.to_string())
        },
    );
    let mut row = vec![
        cell.mitigation_name.to_string(),
        cell.fault_name.to_string(),
        status.to_string(),
        report.attempts.to_string(),
        violations.to_string(),
        faults.to_string(),
        corruptions.to_string(),
        alerts.to_string(),
        rfms.to_string(),
        cycles.to_string(),
        detail,
    ];
    if collect_metrics {
        push_percentiles(&mut row, snapshot, Hist::ReadLatency);
        push_percentiles(&mut row, snapshot, Hist::InterActGap);
    }
    FaultCellOutcome {
        label: cell.label(),
        status: report.status.clone(),
        violations,
        row,
    }
}

/// Runs `cells` of the fault campaign in parallel and hands each
/// [`FaultCellOutcome`] to `sink` in submission order (so incremental
/// CSV output is byte-identical to a sequential run).
pub fn run_fault_campaign_cells(
    spec: &FaultCampaignSpec,
    cells: &[FaultCell],
    sink: impl FnMut(FaultCellOutcome),
) {
    run_fault_campaign_cells_from(spec, cells, 0, sink);
}

/// Runs the tail `cells[start..]` of the fault campaign, deriving each
/// cell's seed from its *global* index so the outcomes are identical to
/// the corresponding slice of an uninterrupted full run (the resume
/// primitive of [`CheckpointedFaultCampaign`]).
pub fn run_fault_campaign_cells_from(
    spec: &FaultCampaignSpec,
    cells: &[FaultCell],
    start: usize,
    mut sink: impl FnMut(FaultCellOutcome),
) {
    if start >= cells.len() {
        return;
    }
    let campaign = ParallelCampaign::new(spec.master_seed)
        .with_runner(IsolatedRunner::with_timeout(spec.timeout))
        .with_threads(spec.threads);
    let instrs = spec.instrs;
    let inject_panic = spec.inject_panic.clone();
    let collect_metrics = spec.collect_metrics;
    campaign.run_with_offset(
        start,
        &cells[start..],
        FaultCell::label,
        move |cell, seed, attempt| {
            assert!(
                inject_panic.as_deref() != Some(cell.label().as_str()),
                "MOPAC_INJECT_PANIC: simulated crash in cell (attempt {attempt})"
            );
            run_fault_cell(&cell, instrs, seed, attempt, collect_metrics)
        },
        |idx, report| sink(fault_cell_outcome(&cells[idx], &report, collect_metrics)),
    );
}

/// The full (mitigation × fault) campaign; see
/// [`run_fault_campaign_cells`].
pub fn run_fault_campaign(spec: &FaultCampaignSpec, sink: impl FnMut(FaultCellOutcome)) {
    run_fault_campaign_cells(spec, &fault_cells(), sink);
}

impl FaultCampaignSpec {
    /// A stable fingerprint of everything that determines the
    /// campaign's committed rows: master seed, instruction budget,
    /// metrics mode, panic injection, and the cell list. Thread count
    /// and timeout are deliberately excluded — rows are byte-identical
    /// across both, so a resume may change them.
    #[must_use]
    pub fn fingerprint(&self, cells: &[FaultCell]) -> u64 {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "fault-campaign v1|seed={:#x}|instrs={}|metrics={}|panic={:?}|cells={}",
            self.master_seed,
            self.instrs,
            self.collect_metrics,
            self.inject_panic,
            cells.len(),
        );
        for c in cells {
            let _ = write!(s, "|{}", c.label());
        }
        fnv1a64(s.as_bytes())
    }
}

/// Escapes a checkpoint-log field: the log is one line per cell with
/// tab-separated fields, so tabs, newlines and the escape character
/// itself are encoded.
fn esc_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`esc_field`].
fn unesc_field(s: &str) -> MopacResult<String> {
    let mut out = String::with_capacity(s.len());
    let mut it = s.chars();
    while let Some(c) = it.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match it.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            other => {
                return Err(mopac_types::MopacError::snapshot(format!(
                    "bad escape sequence in checkpoint log: \\{}",
                    other.map_or_else(|| "<eol>".to_string(), |c| c.to_string()),
                )));
            }
        }
    }
    Ok(out)
}

/// Renders one committed outcome as the checkpoint log's line payload
/// (everything after the digest field).
fn outcome_to_payload(idx: usize, o: &FaultCellOutcome) -> String {
    let mut fields = vec![
        idx.to_string(),
        esc_field(&o.label),
        status_str(&o.status).to_string(),
        o.violations.to_string(),
    ];
    fields.extend(o.row.iter().map(|c| esc_field(c)));
    fields.join("\t")
}

/// Parses a checkpoint log payload back into the outcome it recorded.
fn payload_to_outcome(payload: &str, expect_idx: usize) -> MopacResult<FaultCellOutcome> {
    let err = |what: &str| {
        mopac_types::MopacError::snapshot(format!("checkpoint log line: {what}"))
    };
    let mut parts = payload.split('\t');
    let idx: usize = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("missing cell index"))?;
    if idx != expect_idx {
        return Err(err(&format!("cell index {idx} where {expect_idx} expected")));
    }
    let label = unesc_field(parts.next().ok_or_else(|| err("missing label"))?)?;
    let status = parse_status(parts.next().ok_or_else(|| err("missing status"))?)?;
    let violations: u64 = parts
        .next()
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("missing violation count"))?;
    let row = parts.map(unesc_field).collect::<MopacResult<Vec<_>>>()?;
    Ok(FaultCellOutcome {
        label,
        status,
        violations,
        row,
    })
}

/// The checkpoint manifest, as parsed from `manifest.tsv`.
struct Manifest {
    spec: u64,
    cells: usize,
    digests: Vec<u64>,
}

fn write_manifest(
    path: &std::path::Path,
    spec: u64,
    cells: usize,
    digests: &[u64],
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut text = String::new();
    let _ = writeln!(text, "mopac-campaign v1");
    let _ = writeln!(text, "spec {spec:016x}");
    let _ = writeln!(text, "cells {cells}");
    let _ = writeln!(text, "done {}", digests.len());
    for (i, d) in digests.iter().enumerate() {
        let _ = writeln!(text, "digest {i} {d:016x}");
    }
    mopac_types::persist::atomic_write_str(path, &text)
}

fn load_manifest(path: &std::path::Path) -> MopacResult<Manifest> {
    let err =
        |what: &str| mopac_types::MopacError::snapshot(format!("campaign manifest: {what}"));
    let text = std::fs::read_to_string(path)?;
    let mut lines = text.lines();
    if lines.next() != Some("mopac-campaign v1") {
        return Err(err("bad header"));
    }
    let spec = lines
        .next()
        .and_then(|l| l.strip_prefix("spec "))
        .and_then(|v| u64::from_str_radix(v, 16).ok())
        .ok_or_else(|| err("bad spec line"))?;
    let cells: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("cells "))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("bad cells line"))?;
    let done: usize = lines
        .next()
        .and_then(|l| l.strip_prefix("done "))
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| err("bad done line"))?;
    let mut digests = Vec::with_capacity(done);
    for (i, line) in lines.enumerate() {
        let d = line
            .strip_prefix(&format!("digest {i} "))
            .and_then(|v| u64::from_str_radix(v, 16).ok())
            .ok_or_else(|| err(&format!("bad digest line {i}")))?;
        digests.push(d);
    }
    if digests.len() != done {
        return Err(err(&format!(
            "{} digest line(s) but done {done}",
            digests.len()
        )));
    }
    Ok(Manifest {
        spec,
        cells,
        digests,
    })
}

/// What a checkpointed campaign run did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointSummary {
    /// Cells replayed from the checkpoint (not re-executed).
    pub resumed: usize,
    /// Cells executed by this process.
    pub executed: usize,
}

/// Crash-safe fault campaign: the [`run_fault_campaign_cells`] fan-out
/// plus an on-disk checkpoint, so a campaign killed at any point (even
/// SIGKILL mid-write) resumes without re-running completed cells and
/// still produces byte-identical output.
///
/// Two files live in the checkpoint directory:
///
/// * `manifest.tsv` — atomically replaced after every committed cell:
///   the campaign fingerprint, cell count, completed-cell count, and a
///   per-cell result digest ([`fnv1a64`] of the log payload).
/// * `cells.log` — append-only, one fsync'd line per committed cell
///   carrying its digest and rendered outcome.
///
/// On start, [`CheckpointedFaultCampaign::run`] verifies the manifest
/// against the spec fingerprint, replays the verified log prefix to
/// the sink (a torn final line from a mid-append crash is dropped, so
/// the in-flight cell re-runs), and executes the remaining cells with
/// their original global indices — seeds, and therefore results, match
/// an uninterrupted run exactly, at any thread count.
#[derive(Debug, Clone)]
pub struct CheckpointedFaultCampaign {
    spec: FaultCampaignSpec,
    dir: std::path::PathBuf,
}

impl CheckpointedFaultCampaign {
    /// A checkpointed campaign persisting into `dir` (created on run).
    #[must_use]
    pub fn new(spec: FaultCampaignSpec, dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            spec,
            dir: dir.into(),
        }
    }

    /// The manifest path inside the checkpoint directory.
    #[must_use]
    pub fn manifest_path(&self) -> std::path::PathBuf {
        self.dir.join("manifest.tsv")
    }

    /// The append-only result log path.
    #[must_use]
    pub fn log_path(&self) -> std::path::PathBuf {
        self.dir.join("cells.log")
    }

    /// Runs (or resumes) the campaign over `cells`, handing every
    /// outcome — replayed and fresh alike — to `sink` in cell order.
    ///
    /// # Errors
    ///
    /// Returns [`mopac_types::MopacError::Snapshot`] when the directory
    /// holds a checkpoint of a *different* campaign or its files fail
    /// verification (digest mismatch), and [`mopac_types::MopacError::Io`]
    /// on filesystem failures. A verification error never silently
    /// re-runs cells: delete the directory to restart from scratch.
    pub fn run(
        &self,
        cells: &[FaultCell],
        mut sink: impl FnMut(FaultCellOutcome),
    ) -> MopacResult<CheckpointSummary> {
        use std::io::Write as _;
        std::fs::create_dir_all(&self.dir)?;
        let fp = self.spec.fingerprint(cells);
        let manifest_path = self.manifest_path();
        let log_path = self.log_path();
        let mut digests: Vec<u64> = Vec::new();
        let mut kept_lines: Vec<String> = Vec::new();
        let mut resumed: Vec<FaultCellOutcome> = Vec::new();
        if manifest_path.exists() {
            let m = load_manifest(&manifest_path)?;
            if m.spec != fp {
                return Err(mopac_types::MopacError::snapshot(format!(
                    "checkpoint in {} belongs to a different campaign \
                     (fingerprint {:016x}, this campaign is {fp:016x})",
                    self.dir.display(),
                    m.spec,
                )));
            }
            if m.cells != cells.len() {
                return Err(mopac_types::MopacError::snapshot(format!(
                    "checkpoint records {} cells but campaign has {}",
                    m.cells,
                    cells.len(),
                )));
            }
            // Only newline-terminated lines count: a SIGKILL mid-append
            // leaves a torn tail, which is dropped so that cell re-runs.
            let raw = std::fs::read_to_string(&log_path).unwrap_or_default();
            let complete: Vec<&str> = raw
                .char_indices()
                .filter(|&(_, c)| c == '\n')
                .scan(0usize, |start, (pos, _)| {
                    let line = &raw[*start..pos];
                    *start = pos + 1;
                    Some(line)
                })
                .collect();
            let usable = m.digests.len().min(complete.len());
            for (i, line) in complete.iter().take(usable).enumerate() {
                let (digest_hex, payload) = line.split_once('\t').ok_or_else(|| {
                    mopac_types::MopacError::snapshot(format!(
                        "checkpoint log line {i} has no digest field"
                    ))
                })?;
                let digest = u64::from_str_radix(digest_hex, 16).map_err(|_| {
                    mopac_types::MopacError::snapshot(format!(
                        "checkpoint log line {i} has a malformed digest"
                    ))
                })?;
                if digest != fnv1a64(payload.as_bytes()) || digest != m.digests[i] {
                    return Err(mopac_types::MopacError::snapshot(format!(
                        "checkpoint log line {i} fails digest verification"
                    )));
                }
                resumed.push(payload_to_outcome(payload, i)?);
                digests.push(digest);
                kept_lines.push((*line).to_string());
            }
        }
        let done = resumed.len();
        // Re-seal the on-disk state to exactly the verified prefix: the
        // log drops any torn tail (and any line the manifest never
        // committed), the manifest drops digests beyond the log.
        let mut log_text = kept_lines.join("\n");
        if !log_text.is_empty() {
            log_text.push('\n');
        }
        mopac_types::persist::atomic_write_str(&log_path, &log_text)?;
        write_manifest(&manifest_path, fp, cells.len(), &digests)?;
        for o in resumed {
            sink(o);
        }
        // Run the remainder; each cell is durably committed (log line
        // fsync'd, then manifest replaced) before the sink sees it.
        let mut log_file = std::fs::OpenOptions::new().append(true).open(&log_path)?;
        let mut idx = done;
        let mut io_err: Option<std::io::Error> = None;
        run_fault_campaign_cells_from(&self.spec, cells, done, |o| {
            if io_err.is_none() {
                let payload = outcome_to_payload(idx, &o);
                let digest = fnv1a64(payload.as_bytes());
                let committed = writeln!(log_file, "{digest:016x}\t{payload}")
                    .and_then(|()| log_file.sync_data())
                    .and_then(|()| {
                        digests.push(digest);
                        write_manifest(&manifest_path, fp, cells.len(), &digests)
                    });
                if let Err(e) = committed {
                    io_err = Some(e);
                }
            }
            idx += 1;
            sink(o);
        });
        if let Some(e) = io_err {
            return Err(e.into());
        }
        Ok(CheckpointSummary {
            resumed: done,
            executed: idx - done,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn campaign(threads: usize) -> ParallelCampaign {
        ParallelCampaign::new(0xC0FFEE)
            .with_runner(IsolatedRunner::with_timeout(Duration::from_secs(30)))
            .with_threads(threads)
    }

    /// Collects `(idx, seed, value)` triples through the sink.
    fn run_collect(threads: usize, cells: &[u64]) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        campaign(threads).run(
            cells,
            |c| format!("cell-{c}"),
            |cell, seed, _attempt| Ok(cell.wrapping_mul(3).wrapping_add(seed)),
            |idx, report: RunReport<u64>| out.push((idx, report.into_result().unwrap())),
        );
        out
    }

    #[test]
    fn commits_in_submission_order() {
        let cells: Vec<u64> = (0..32).collect();
        let out = run_collect(4, &cells);
        let indices: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let cells: Vec<u64> = (0..24).collect();
        let seq = run_collect(1, &cells);
        for threads in [2, 4, 7] {
            assert_eq!(seq, run_collect(threads, &cells), "threads={threads}");
        }
    }

    #[test]
    fn cell_seeds_depend_on_index_not_thread_count() {
        let a = campaign(1);
        let b = campaign(8);
        for idx in 0..16 {
            assert_eq!(a.cell_seed(idx), b.cell_seed(idx));
        }
        assert_ne!(a.cell_seed(0), a.cell_seed(1));
    }

    #[test]
    fn panicked_cell_does_not_lose_the_rest() {
        let cells: Vec<u64> = (0..8).collect();
        let calls = AtomicU32::new(0);
        let mut statuses = Vec::new();
        campaign(4).run(
            &cells,
            |c| format!("cell-{c}"),
            |cell, _seed, _attempt| {
                assert!(cell != 3, "deliberate cell panic");
                Ok(cell)
            },
            |idx, report: RunReport<u64>| {
                calls.fetch_add(1, Ordering::Relaxed);
                statuses.push((idx, report.status));
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 8);
        for (idx, status) in statuses {
            if idx == 3 {
                assert_eq!(status, crate::runner::RunStatus::Panicked);
            } else {
                assert_eq!(status, crate::runner::RunStatus::Done);
            }
        }
    }

    #[test]
    fn empty_campaign_is_a_noop() {
        let mut called = false;
        campaign(4).run(
            &[] as &[u64],
            |_| String::new(),
            |c, _, _| Ok(c),
            |_, _report: RunReport<u64>| called = true,
        );
        assert!(!called);
    }

    #[test]
    fn checkpoint_payload_roundtrip() {
        let o = FaultCellOutcome {
            label: "a\tb\\c\nd".to_string(),
            status: RunStatus::TimedOut,
            violations: 7,
            row: vec!["plain".into(), "tab\there".into(), String::new()],
        };
        let payload = outcome_to_payload(5, &o);
        assert!(!payload.contains('\n'));
        let back = payload_to_outcome(&payload, 5).unwrap();
        assert_eq!(back.label, o.label);
        assert_eq!(back.status, o.status);
        assert_eq!(back.violations, o.violations);
        assert_eq!(back.row, o.row);
        assert!(payload_to_outcome(&payload, 6).is_err());
    }

    fn small_spec() -> FaultCampaignSpec {
        FaultCampaignSpec {
            instrs: 2_000,
            timeout: Duration::from_secs(60),
            threads: 2,
            ..FaultCampaignSpec::default()
        }
    }

    fn temp_ckpt_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mopac-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn checkpoint_resumes_after_torn_write() {
        let spec = small_spec();
        let cells: Vec<FaultCell> = fault_cells().into_iter().take(3).collect();

        // Ground truth: an uninterrupted, uncheckpointed run.
        let mut full = Vec::new();
        run_fault_campaign_cells(&spec, &cells, |o| full.push(o.row.join(",")));
        assert_eq!(full.len(), 3);

        let dir = temp_ckpt_dir("resume");
        let ckpt = CheckpointedFaultCampaign::new(small_spec(), &dir);
        let mut first = Vec::new();
        let s = ckpt.run(&cells, |o| first.push(o.row.join(","))).unwrap();
        assert_eq!(
            s,
            CheckpointSummary {
                resumed: 0,
                executed: 3
            }
        );
        assert_eq!(first, full);

        // Simulate a crash after cell 0 committed: keep its log line,
        // append a torn (unterminated) line, roll the manifest to done=1.
        let log = std::fs::read_to_string(ckpt.log_path()).unwrap();
        let keep = log.lines().next().unwrap();
        std::fs::write(ckpt.log_path(), format!("{keep}\nffffffffffffffff\t1\ttorn")).unwrap();
        let manifest = std::fs::read_to_string(ckpt.manifest_path()).unwrap();
        let rolled: String = manifest
            .lines()
            .filter(|l| !l.starts_with("digest") || l.starts_with("digest 0 "))
            .map(|l| {
                if l.starts_with("done ") {
                    "done 1\n".to_string()
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        std::fs::write(ckpt.manifest_path(), rolled).unwrap();

        let mut second = Vec::new();
        let s = ckpt.run(&cells, |o| second.push(o.row.join(","))).unwrap();
        assert_eq!(
            s,
            CheckpointSummary {
                resumed: 1,
                executed: 2
            }
        );
        assert_eq!(second, full);

        // A finished checkpoint replays everything and runs nothing.
        let mut third = Vec::new();
        let s = ckpt.run(&cells, |o| third.push(o.row.join(","))).unwrap();
        assert_eq!(
            s,
            CheckpointSummary {
                resumed: 3,
                executed: 0
            }
        );
        assert_eq!(third, full);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rejects_a_different_campaign() {
        let cells: Vec<FaultCell> = fault_cells().into_iter().take(1).collect();
        let dir = temp_ckpt_dir("fp");
        CheckpointedFaultCampaign::new(small_spec(), &dir)
            .run(&cells, |_| {})
            .unwrap();
        let mut other = small_spec();
        other.master_seed ^= 1;
        let err = CheckpointedFaultCampaign::new(other, &dir)
            .run(&cells, |_| {})
            .unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_detects_tampered_log() {
        let cells: Vec<FaultCell> = fault_cells().into_iter().take(1).collect();
        let dir = temp_ckpt_dir("tamper");
        let ckpt = CheckpointedFaultCampaign::new(small_spec(), &dir);
        ckpt.run(&cells, |_| {}).unwrap();
        let log = std::fs::read_to_string(ckpt.log_path()).unwrap();
        std::fs::write(ckpt.log_path(), log.replace('0', "1")).unwrap();
        let err = ckpt.run(&cells, |_| {}).unwrap_err();
        assert!(err.to_string().contains("digest"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
