//! Deterministic parallel campaign driver.
//!
//! Experiment campaigns are matrices of independent cells (mitigation ×
//! fault, workload × config, …). [`ParallelCampaign`] fans the cells out
//! across worker threads — each cell still runs inside the panic-
//! isolated, timeout-guarded [`IsolatedRunner`] — while keeping the
//! output *bit-identical* to a sequential run:
//!
//! * **Seeding** — each cell's seed is derived from the campaign master
//!   seed and the cell *index* ([`DetRng::fork`]), never from thread
//!   identity or scheduling order.
//! * **Reduction** — workers deposit results into per-index slots; the
//!   submitting thread commits them to the caller's sink strictly in
//!   submission order, as soon as the next index is ready. A campaign
//!   killed mid-flight therefore still persists a clean prefix, and the
//!   committed rows are byte-identical at any thread count.
//!
//! Determinism holds as long as the cells themselves are deterministic
//! functions of `(cell, seed, attempt)`: the only wall-clock-dependent
//! paths are the runner's timeout and panic-retry, which change the
//! reported status for a cell that genuinely times out. Sinks that want
//! byte-identical output must not record wall-clock fields (e.g.
//! [`RunReport::elapsed`]).

use crate::experiment::build_traces;
use crate::fault::{FaultKind, FaultPlan};
use crate::runner::{IsolatedRunner, RunReport, RunStatus};
use crate::system::{RunResult, System, SystemConfig};
use mopac::config::MitigationConfig;
use mopac_types::geometry::DramGeometry;
use mopac_types::obs::{Hist, MetricsSnapshot, SinkConfig};
use mopac_types::rng::DetRng;
use mopac_types::MopacResult;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Worker-count default: `MOPAC_THREADS` if set and positive, else the
/// machine's available parallelism.
#[must_use]
pub fn default_threads() -> usize {
    std::env::var("MOPAC_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(1, NonZeroUsize::get)
        })
}

/// Recovers a usable guard from a poisoned lock: campaign state is
/// plain data (slots of reports), valid even if a panicking thread was
/// holding the mutex.
fn lock_unpoisoned<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A deterministic parallel fan-out over independent experiment cells.
#[derive(Debug, Clone)]
pub struct ParallelCampaign {
    runner: IsolatedRunner,
    threads: usize,
    master_seed: u64,
}

impl ParallelCampaign {
    /// A campaign with the default isolated runner and worker count.
    #[must_use]
    pub fn new(master_seed: u64) -> Self {
        Self {
            runner: IsolatedRunner::default(),
            threads: default_threads(),
            master_seed,
        }
    }

    /// Replaces the per-cell isolated runner (timeout / retry policy).
    #[must_use]
    pub fn with_runner(mut self, runner: IsolatedRunner) -> Self {
        self.runner = runner;
        self
    }

    /// Overrides the worker count (`0` restores the default).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 {
            default_threads()
        } else {
            threads
        };
        self
    }

    /// The worker count this campaign will use.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The deterministic seed for cell `idx`: a function of the master
    /// seed and the index only, independent of thread count and order.
    #[must_use]
    pub fn cell_seed(&self, idx: usize) -> u64 {
        DetRng::from_seed(self.master_seed).fork(idx as u64).next_u64()
    }

    /// Runs every cell, in parallel, committing each [`RunReport`] to
    /// `sink` strictly in cell order (index 0, 1, 2, …) as soon as that
    /// index has finished. `work` receives the cell, its derived seed,
    /// and the runner's attempt index; `label` names the cell for the
    /// runner's diagnostics.
    ///
    /// The `Clone + 'static` bounds come from [`IsolatedRunner::run`]:
    /// a timed-out attempt's thread outlives the call, so each attempt
    /// owns its inputs.
    pub fn run<C, T, L, F, S>(&self, cells: &[C], label: L, work: F, mut sink: S)
    where
        C: Clone + Send + Sync + 'static,
        T: Send + 'static,
        L: Fn(&C) -> String + Sync,
        F: Fn(C, u64, u32) -> mopac_types::MopacResult<T> + Clone + Send + Sync + 'static,
        S: FnMut(usize, RunReport<T>),
    {
        let n = cells.len();
        if n == 0 {
            return;
        }
        let workers = self.threads.min(n).max(1);
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<RunReport<T>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        let ready = Condvar::new();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let cell = cells[idx].clone();
                    let seed = self.cell_seed(idx);
                    let name = label(&cell);
                    let w = work.clone();
                    let report = self
                        .runner
                        .run(&name, move |attempt| w(cell.clone(), seed, attempt));
                    lock_unpoisoned(&slots)[idx] = Some(report);
                    ready.notify_all();
                });
            }
            // In-order commit: index i is handed to the sink the moment
            // it (and everything before it) has finished.
            for idx in 0..n {
                let report = {
                    let mut guard = lock_unpoisoned(&slots);
                    loop {
                        if let Some(r) = guard[idx].take() {
                            break r;
                        }
                        guard = match ready.wait(guard) {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                    }
                };
                sink(idx, report);
            }
        });
    }
}

/// CSV schema of the fault-injection campaign, shared by the
/// `fault_campaign` binary and the determinism test.
pub const FAULT_CAMPAIGN_HEADERS: [&str; 11] = [
    "mitigation",
    "fault",
    "status",
    "attempts",
    "violations",
    "faults_applied",
    "trace_corruptions",
    "alerts",
    "rfms",
    "cycles",
    "detail",
];

/// CSV schema when [`FaultCampaignSpec::collect_metrics`] is on: the
/// base columns plus merged histogram percentiles from each cell's
/// metrics snapshot. A separate constant so the default schema (and
/// the byte-identity tests joined against it) never moves.
pub const FAULT_CAMPAIGN_METRICS_HEADERS: [&str; 17] = [
    "mitigation",
    "fault",
    "status",
    "attempts",
    "violations",
    "faults_applied",
    "trace_corruptions",
    "alerts",
    "rfms",
    "cycles",
    "detail",
    "read_lat_p50",
    "read_lat_p95",
    "read_lat_p99",
    "act_gap_p50",
    "act_gap_p95",
    "act_gap_p99",
];

/// One (mitigation × fault) cell of the fault-injection campaign.
#[derive(Debug, Clone)]
pub struct FaultCell {
    /// Mitigation label for reports.
    pub mitigation_name: &'static str,
    /// Mitigation under test.
    pub mitigation: MitigationConfig,
    /// Fault-schedule label for reports.
    pub fault_name: &'static str,
    /// The fault schedule injected into this cell.
    pub plan: FaultPlan,
}

impl FaultCell {
    /// The cell's `mitigation/fault` label.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}", self.mitigation_name, self.fault_name)
    }
}

/// The fault schedules under test (≥5 kinds).
#[must_use]
pub fn fault_matrix() -> Vec<(&'static str, FaultPlan)> {
    vec![
        (
            "alert-storm",
            FaultPlan::new(0xFA01).with(
                2_000,
                FaultKind::AlertStorm {
                    subchannel: 0,
                    period: 1_100,
                    count: 20,
                },
            ),
        ),
        (
            // Pair the drop with spurious ALERTs so RFMs are actually
            // issued (and swallowed): the MC must recover via re-issue.
            "drop-rfm",
            FaultPlan::new(0xFA02)
                .with(1_000, FaultKind::DropRfm { count: 3 })
                .with(
                    2_000,
                    FaultKind::AlertStorm {
                        subchannel: 0,
                        period: 2_000,
                        count: 6,
                    },
                ),
        ),
        (
            "delay-rfm",
            FaultPlan::new(0xFA03)
                .with(0, FaultKind::DelayRfm { extra_cycles: 200 })
                .with(
                    2_000,
                    FaultKind::AlertStorm {
                        subchannel: 0,
                        period: 2_000,
                        count: 6,
                    },
                ),
        ),
        ("counter-bitflip", {
            let mut plan = FaultPlan::new(0xFA04);
            for i in 0..8u64 {
                plan = plan.with(
                    1_000 + i * 1_000,
                    FaultKind::CounterBitFlip {
                        subchannel: 0,
                        bank: (i % 4) as u32,
                        bit: 9,
                    },
                );
            }
            plan
        }),
        (
            "stuck-bank",
            FaultPlan::new(0xFA05).with(
                3_000,
                FaultKind::StuckBank {
                    subchannel: 0,
                    bank: 1,
                    duration: 10_000,
                },
            ),
        ),
        (
            "trace-corruption",
            FaultPlan::new(0xFA06).with(0, FaultKind::TraceCorruption { rate: 0.01 }),
        ),
    ]
}

/// The mitigations under test: every registered engine that actually
/// tracks activations (the inert baseline has nothing to fault), at
/// the paper's default threshold.
#[must_use]
pub fn campaign_mitigations() -> Vec<(&'static str, MitigationConfig)> {
    mopac::EngineRegistry::builtin()
        .specs()
        .iter()
        .filter(|s| s.tracks())
        .map(|s| (s.name, (s.preset)(500)))
        .collect()
}

/// The full campaign matrix in submission order.
#[must_use]
pub fn fault_cells() -> Vec<FaultCell> {
    let mut cells = Vec::new();
    for (mitigation_name, mitigation) in campaign_mitigations() {
        for (fault_name, plan) in fault_matrix() {
            cells.push(FaultCell {
                mitigation_name,
                mitigation,
                fault_name,
                plan: plan.clone(),
            });
        }
    }
    cells
}

/// Knobs for a fault-campaign run.
#[derive(Debug, Clone)]
pub struct FaultCampaignSpec {
    /// Master seed; each cell forks a seed from it by index.
    pub master_seed: u64,
    /// Per-core instructions per cell.
    pub instrs: u64,
    /// Per-attempt wall-clock budget.
    pub timeout: Duration,
    /// Worker threads (`0` = default / `MOPAC_THREADS`).
    pub threads: usize,
    /// Deliberately panic in the named `mitigation/fault` cell
    /// (isolation demo; `MOPAC_INJECT_PANIC`).
    pub inject_panic: Option<String>,
    /// Enable the per-cell metrics sink and append the percentile
    /// columns of [`FAULT_CAMPAIGN_METRICS_HEADERS`] to each row.
    /// Off by default: rows then match [`FAULT_CAMPAIGN_HEADERS`]
    /// byte-for-byte, and the cells run with every sink call a no-op.
    pub collect_metrics: bool,
}

impl Default for FaultCampaignSpec {
    fn default() -> Self {
        Self {
            master_seed: 0x5151,
            instrs: 40_000,
            timeout: Duration::from_secs(300),
            threads: 0,
            inject_panic: None,
            collect_metrics: false,
        }
    }
}

/// One committed campaign cell: the CSV row plus the fields the caller
/// needs for summaries, in submission order.
#[derive(Debug)]
pub struct FaultCellOutcome {
    /// `mitigation/fault` label.
    pub label: String,
    /// Terminal status of the cell's final attempt.
    pub status: RunStatus,
    /// Oracle violations observed (0 when the cell did not finish).
    pub violations: u64,
    /// The CSV row matching [`FAULT_CAMPAIGN_HEADERS`]. Deliberately
    /// excludes wall-clock fields so rows are byte-identical across
    /// thread counts and runs.
    pub row: Vec<String>,
}

/// One isolated cell run: workload `xz` on the tiny geometry with the
/// checker on and the fault plan active. `attempt` bumps the seed so a
/// retried cell does not replay the identical failure. The snapshot is
/// `None` unless `collect_metrics` was requested.
fn run_fault_cell(
    cell: &FaultCell,
    instrs: u64,
    seed: u64,
    attempt: u32,
    collect_metrics: bool,
) -> MopacResult<(RunResult, Option<MetricsSnapshot>)> {
    let mut cfg = SystemConfig::paper_default(cell.mitigation, instrs);
    cfg.geometry = DramGeometry::tiny();
    cfg.enable_checker = true;
    cfg.seed = seed.wrapping_add(u64::from(attempt));
    cfg.livelock_window = 2_000_000;
    cfg.fault_plan = Some(cell.plan.clone());
    cfg.metrics = collect_metrics.then(SinkConfig::default);
    let traces = build_traces("xz", &cfg)?;
    System::new(cfg, traces)?.run_with_metrics()
}

/// Appends the p50/p95/p99 of one merged histogram to `row` ("0"s when
/// the cell produced no snapshot or never recorded the histogram).
fn push_percentiles(row: &mut Vec<String>, snapshot: Option<&MetricsSnapshot>, h: Hist) {
    let (p50, p95, p99) = snapshot
        .and_then(|s| s.hist_merged(h))
        .map_or((0, 0, 0), |m| (m.p50, m.p95, m.p99));
    row.push(p50.to_string());
    row.push(p95.to_string());
    row.push(p99.to_string());
}

/// Renders one cell report into its CSV row.
fn fault_cell_outcome(
    cell: &FaultCell,
    report: &RunReport<(RunResult, Option<MetricsSnapshot>)>,
    collect_metrics: bool,
) -> FaultCellOutcome {
    let status = match report.status {
        RunStatus::Done => "done",
        RunStatus::Failed => "failed",
        RunStatus::Panicked => "panicked",
        RunStatus::TimedOut => "timed-out",
    };
    let result = report.value.as_ref().map(|(r, _)| r);
    let snapshot = report.value.as_ref().and_then(|(_, s)| s.as_ref());
    let (violations, faults, corruptions, alerts, rfms, cycles) =
        result.map_or((0, 0, 0, 0, 0, 0), |r| {
            (
                r.violations,
                r.faults_applied,
                r.trace_corruptions,
                r.dram.alerts(),
                r.dram.rfms,
                r.cycles,
            )
        });
    // Oracle escapes become a structured note, never an abort.
    let detail = result.map_or_else(
        || {
            report
                .error
                .as_ref()
                .map_or(String::new(), std::string::ToString::to_string)
        },
        |r| {
            r.check_oracle()
                .err()
                .map_or(String::new(), |e| e.to_string())
        },
    );
    let mut row = vec![
        cell.mitigation_name.to_string(),
        cell.fault_name.to_string(),
        status.to_string(),
        report.attempts.to_string(),
        violations.to_string(),
        faults.to_string(),
        corruptions.to_string(),
        alerts.to_string(),
        rfms.to_string(),
        cycles.to_string(),
        detail,
    ];
    if collect_metrics {
        push_percentiles(&mut row, snapshot, Hist::ReadLatency);
        push_percentiles(&mut row, snapshot, Hist::InterActGap);
    }
    FaultCellOutcome {
        label: cell.label(),
        status: report.status.clone(),
        violations,
        row,
    }
}

/// Runs `cells` of the fault campaign in parallel and hands each
/// [`FaultCellOutcome`] to `sink` in submission order (so incremental
/// CSV output is byte-identical to a sequential run).
pub fn run_fault_campaign_cells(
    spec: &FaultCampaignSpec,
    cells: &[FaultCell],
    mut sink: impl FnMut(FaultCellOutcome),
) {
    let campaign = ParallelCampaign::new(spec.master_seed)
        .with_runner(IsolatedRunner::with_timeout(spec.timeout))
        .with_threads(spec.threads);
    let instrs = spec.instrs;
    let inject_panic = spec.inject_panic.clone();
    let collect_metrics = spec.collect_metrics;
    campaign.run(
        cells,
        FaultCell::label,
        move |cell, seed, attempt| {
            assert!(
                inject_panic.as_deref() != Some(cell.label().as_str()),
                "MOPAC_INJECT_PANIC: simulated crash in cell (attempt {attempt})"
            );
            run_fault_cell(&cell, instrs, seed, attempt, collect_metrics)
        },
        |idx, report| sink(fault_cell_outcome(&cells[idx], &report, collect_metrics)),
    );
}

/// The full (mitigation × fault) campaign; see
/// [`run_fault_campaign_cells`].
pub fn run_fault_campaign(spec: &FaultCampaignSpec, sink: impl FnMut(FaultCellOutcome)) {
    run_fault_campaign_cells(spec, &fault_cells(), sink);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn campaign(threads: usize) -> ParallelCampaign {
        ParallelCampaign::new(0xC0FFEE)
            .with_runner(IsolatedRunner::with_timeout(Duration::from_secs(30)))
            .with_threads(threads)
    }

    /// Collects `(idx, seed, value)` triples through the sink.
    fn run_collect(threads: usize, cells: &[u64]) -> Vec<(usize, u64)> {
        let mut out = Vec::new();
        campaign(threads).run(
            cells,
            |c| format!("cell-{c}"),
            |cell, seed, _attempt| Ok(cell.wrapping_mul(3).wrapping_add(seed)),
            |idx, report: RunReport<u64>| out.push((idx, report.into_result().unwrap())),
        );
        out
    }

    #[test]
    fn commits_in_submission_order() {
        let cells: Vec<u64> = (0..32).collect();
        let out = run_collect(4, &cells);
        let indices: Vec<usize> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(indices, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn identical_results_across_thread_counts() {
        let cells: Vec<u64> = (0..24).collect();
        let seq = run_collect(1, &cells);
        for threads in [2, 4, 7] {
            assert_eq!(seq, run_collect(threads, &cells), "threads={threads}");
        }
    }

    #[test]
    fn cell_seeds_depend_on_index_not_thread_count() {
        let a = campaign(1);
        let b = campaign(8);
        for idx in 0..16 {
            assert_eq!(a.cell_seed(idx), b.cell_seed(idx));
        }
        assert_ne!(a.cell_seed(0), a.cell_seed(1));
    }

    #[test]
    fn panicked_cell_does_not_lose_the_rest() {
        let cells: Vec<u64> = (0..8).collect();
        let calls = AtomicU32::new(0);
        let mut statuses = Vec::new();
        campaign(4).run(
            &cells,
            |c| format!("cell-{c}"),
            |cell, _seed, _attempt| {
                assert!(cell != 3, "deliberate cell panic");
                Ok(cell)
            },
            |idx, report: RunReport<u64>| {
                calls.fetch_add(1, Ordering::Relaxed);
                statuses.push((idx, report.status));
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 8);
        for (idx, status) in statuses {
            if idx == 3 {
                assert_eq!(status, crate::runner::RunStatus::Panicked);
            } else {
                assert_eq!(status, crate::runner::RunStatus::Done);
            }
        }
    }

    #[test]
    fn empty_campaign_is_a_noop() {
        let mut called = false;
        campaign(4).run(
            &[] as &[u64],
            |_| String::new(),
            |c, _, _| Ok(c),
            |_, _report: RunReport<u64>| called = true,
        );
        assert!(!called);
    }
}
