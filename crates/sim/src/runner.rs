//! Panic-isolated, timeout-guarded experiment execution.
//!
//! Long fault campaigns must not lose an evening of results to one bad
//! cell. [`IsolatedRunner`] executes each experiment on its own thread
//! with three layers of protection:
//!
//! 1. **Panic isolation** — the closure runs under
//!    [`std::panic::catch_unwind`]; a panicking experiment is reported
//!    as [`RunStatus::Panicked`] with the payload message, and the
//!    campaign continues.
//! 2. **Wall-clock timeout** — the parent waits on a channel with
//!    [`std::sync::mpsc::Receiver::recv_timeout`]; an experiment that
//!    exceeds its budget is reported as [`RunStatus::TimedOut`]. The
//!    worker thread itself cannot be killed and is *detached* — it
//!    keeps burning its CPU until it finishes or the process exits, so
//!    timeouts should be generous and timed-out work is never retried
//!    in-process with the same budget expectations.
//! 3. **Retry** — transient failures (panic, timeout, or an error for
//!    which [`MopacError::is_retryable`] holds, e.g. a livelock) are
//!    retried up to [`IsolatedRunner::retries`] times with the attempt
//!    index passed back to the closure so it can bump its seed;
//!    deterministic failures (bad config, unknown workload) are not
//!    retried. When a retryable failure survives every retry the final
//!    error is wrapped in the typed [`MopacError::RetriesExhausted`],
//!    preserving the last underlying error. An optional exponential
//!    backoff ([`IsolatedRunner::with_backoff`]) spaces the retries;
//!    the sleep function is injectable
//!    ([`IsolatedRunner::with_sleeper`]) so tests can record the exact
//!    delays deterministically instead of sleeping.

use mopac_types::error::{MopacError, MopacResult};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How an isolated experiment ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunStatus {
    /// Finished and returned a value.
    Done,
    /// Returned a typed error.
    Failed,
    /// Panicked; the payload message is carried in the report.
    Panicked,
    /// Exceeded the wall-clock budget (worker left running, detached).
    TimedOut,
}

/// Outcome of one isolated experiment (after retries).
#[derive(Debug)]
pub struct RunReport<T> {
    /// Experiment label (used in errors and logs).
    pub label: String,
    /// Attempts made (1, or 2 after a retry).
    pub attempts: u32,
    /// Wall-clock time of the *final* attempt.
    pub elapsed: Duration,
    /// Terminal status of the final attempt.
    pub status: RunStatus,
    /// The value, if the final attempt succeeded.
    pub value: Option<T>,
    /// The error, if it failed / panicked / timed out.
    pub error: Option<MopacError>,
}

impl<T> RunReport<T> {
    /// Collapses the report into a plain `Result`.
    ///
    /// # Errors
    ///
    /// Returns the stored error when the final attempt did not finish.
    pub fn into_result(self) -> MopacResult<T> {
        match (self.value, self.error) {
            (Some(v), _) => Ok(v),
            (None, Some(e)) => Err(e),
            (None, None) => Err(MopacError::internal(format!(
                "experiment '{}' produced neither value nor error",
                self.label
            ))),
        }
    }
}

/// Executes experiments with panic isolation, timeouts and retries.
#[derive(Clone)]
pub struct IsolatedRunner {
    /// Wall-clock budget per attempt.
    pub timeout: Duration,
    /// Retries after a retryable failure (default 1).
    pub retries: u32,
    /// Base delay of the exponential backoff between retries: retry `k`
    /// waits `backoff_base * 2^(k-1)`. Zero (the default) retries
    /// immediately.
    pub backoff_base: Duration,
    /// The function that performs the backoff wait. Production uses
    /// [`std::thread::sleep`]; tests inject a recorder so the schedule
    /// is asserted deterministically without wall-clock sleeping.
    sleeper: Arc<dyn Fn(Duration) + Send + Sync>,
}

impl std::fmt::Debug for IsolatedRunner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IsolatedRunner")
            .field("timeout", &self.timeout)
            .field("retries", &self.retries)
            .field("backoff_base", &self.backoff_base)
            .finish_non_exhaustive()
    }
}

impl Default for IsolatedRunner {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(600),
            retries: 1,
            backoff_base: Duration::ZERO,
            sleeper: Arc::new(std::thread::sleep),
        }
    }
}

/// What a single attempt produced, as sent over the channel.
enum AttemptOutcome<T> {
    Value(MopacResult<T>),
    Panic(String),
}

impl IsolatedRunner {
    /// A runner with the given per-attempt budget and one retry.
    #[must_use]
    pub fn with_timeout(timeout: Duration) -> Self {
        Self {
            timeout,
            ..Self::default()
        }
    }

    /// Sets the retry budget (builder style).
    #[must_use]
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Sets the exponential-backoff base delay (builder style).
    #[must_use]
    pub fn with_backoff(mut self, base: Duration) -> Self {
        self.backoff_base = base;
        self
    }

    /// Replaces the backoff sleep function (builder style); tests use
    /// this to record the delay schedule instead of sleeping.
    #[must_use]
    pub fn with_sleeper(mut self, sleeper: impl Fn(Duration) + Send + Sync + 'static) -> Self {
        self.sleeper = Arc::new(sleeper);
        self
    }

    /// Runs `work` in isolation. The closure receives the attempt index
    /// (0 on the first try, 1 on the retry) so it can derive a bumped
    /// seed; it must be `Send + 'static` because a timed-out attempt's
    /// thread outlives this call.
    pub fn run<T, F>(&self, label: &str, work: F) -> RunReport<T>
    where
        T: Send + 'static,
        F: Fn(u32) -> MopacResult<T> + Send + Sync + Clone + 'static,
    {
        let mut attempts = 0;
        loop {
            attempts += 1;
            let attempt_idx = attempts - 1;
            let start = Instant::now();
            let (tx, rx) = mpsc::channel::<AttemptOutcome<T>>();
            let w = work.clone();
            // On spawn failure the closure (and `tx`) is dropped, which
            // surfaces below as a disconnected channel.
            let spawned = std::thread::Builder::new()
                .name(format!("mopac-exp-{label}-{attempt_idx}"))
                .spawn(move || {
                    let outcome = match catch_unwind(AssertUnwindSafe(|| w(attempt_idx))) {
                        Ok(r) => AttemptOutcome::Value(r),
                        Err(payload) => AttemptOutcome::Panic(panic_message(&*payload)),
                    };
                    // The parent may have timed out and gone away.
                    let _ = tx.send(outcome);
                });
            drop(spawned);
            let (status, value, error) = match rx.recv_timeout(self.timeout) {
                Ok(AttemptOutcome::Value(Ok(v))) => (RunStatus::Done, Some(v), None),
                Ok(AttemptOutcome::Value(Err(e))) => (RunStatus::Failed, None, Some(e)),
                Ok(AttemptOutcome::Panic(msg)) => (
                    RunStatus::Panicked,
                    None,
                    Some(MopacError::internal(format!(
                        "experiment '{label}' panicked: {msg}"
                    ))),
                ),
                Err(mpsc::RecvTimeoutError::Timeout | mpsc::RecvTimeoutError::Disconnected) => (
                    RunStatus::TimedOut,
                    None,
                    Some(MopacError::Timeout {
                        seconds: self.timeout.as_secs(),
                        experiment: label.to_string(),
                    }),
                ),
            };
            let retryable = match (&status, &error) {
                (RunStatus::Done, _) => false,
                (RunStatus::Panicked | RunStatus::TimedOut, _) => true,
                (RunStatus::Failed, Some(e)) => e.is_retryable(),
                (RunStatus::Failed, None) => false,
            };
            if status == RunStatus::Done || !retryable || attempts > self.retries {
                // A retryable failure that survived every retry gets the
                // typed wrapper; a first-attempt failure with no retry
                // budget keeps its raw error (nothing was exhausted).
                let error = match error {
                    Some(e) if retryable && attempts > 1 => Some(MopacError::RetriesExhausted {
                        label: label.to_string(),
                        attempts,
                        last: Box::new(e),
                    }),
                    other => other,
                };
                return RunReport {
                    label: label.to_string(),
                    attempts,
                    elapsed: start.elapsed(),
                    status,
                    value,
                    error,
                };
            }
            if self.backoff_base > Duration::ZERO {
                // Retry k (about to run attempt k+1) waits base * 2^(k-1);
                // the shift is clamped so a huge retry budget cannot
                // overflow the multiplier.
                let factor = 1u32 << (attempts - 1).min(16);
                (self.sleeper)(self.backoff_base.saturating_mul(factor));
            }
        }
    }
}

/// Extracts the human message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload.downcast_ref::<&'static str>().map_or_else(
        || {
            payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "non-string panic payload".to_string())
        },
        |s| (*s).to_string(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn runner() -> IsolatedRunner {
        IsolatedRunner::with_timeout(Duration::from_secs(5))
    }

    #[test]
    fn success_passes_value_through() {
        let r = runner().run("ok", |attempt| Ok(40 + attempt));
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(r.attempts, 1);
        assert_eq!(r.into_result().unwrap(), 40);
    }

    #[test]
    fn panic_is_caught_and_retried_with_bumped_attempt() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let r = runner().run("flaky", move |attempt| {
            c.fetch_add(1, Ordering::SeqCst);
            assert!(attempt != 0, "deliberate first-attempt panic");
            Ok(attempt)
        });
        assert_eq!(r.status, RunStatus::Done);
        assert_eq!(r.attempts, 2);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert_eq!(r.value, Some(1));
    }

    #[test]
    fn persistent_panic_reports_payload() {
        let r: RunReport<()> = runner().run("boom", |_| panic!("kaboom {}", 7));
        assert_eq!(r.status, RunStatus::Panicked);
        assert_eq!(r.attempts, 2);
        let msg = r.error.unwrap().to_string();
        assert!(msg.contains("kaboom 7"), "{msg}");
    }

    #[test]
    fn deterministic_error_is_not_retried() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let r: RunReport<()> = runner().run("bad-config", move |_| {
            c.fetch_add(1, Ordering::SeqCst);
            Err(MopacError::config("nope"))
        });
        assert_eq!(r.status, RunStatus::Failed);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn livelock_error_is_retried() {
        let calls = Arc::new(AtomicU32::new(0));
        let c = calls.clone();
        let r: RunReport<()> = runner().run("livelocked", move |_| {
            c.fetch_add(1, Ordering::SeqCst);
            Err(MopacError::Livelock {
                cycle: 100,
                stalled_for: 50,
                retired: 0,
            })
        });
        assert_eq!(r.status, RunStatus::Failed);
        assert_eq!(calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn timeout_fires_and_leaves_worker_detached() {
        let runner = IsolatedRunner::with_timeout(Duration::from_millis(50)).with_retries(0);
        let r: RunReport<()> = runner.run("sleepy", |_| {
            std::thread::sleep(Duration::from_secs(30));
            Ok(())
        });
        assert_eq!(r.status, RunStatus::TimedOut);
        // No retry budget: the raw error comes back un-wrapped.
        assert!(matches!(
            r.error,
            Some(MopacError::Timeout { seconds: 0, .. })
        ));
    }

    #[test]
    fn exhausted_retries_yield_typed_error() {
        let r: RunReport<()> = runner().with_retries(2).run("stuck", |_| {
            Err(MopacError::Livelock {
                cycle: 100,
                stalled_for: 50,
                retired: 0,
            })
        });
        assert_eq!(r.status, RunStatus::Failed);
        assert_eq!(r.attempts, 3);
        match r.error {
            Some(MopacError::RetriesExhausted {
                label,
                attempts,
                last,
            }) => {
                assert_eq!(label, "stuck");
                assert_eq!(attempts, 3);
                assert!(matches!(*last, MopacError::Livelock { .. }));
            }
            other => panic!("expected RetriesExhausted, got {other:?}"),
        }
    }

    #[test]
    fn backoff_schedule_is_exponential_and_injectable() {
        let sleeps = Arc::new(std::sync::Mutex::new(Vec::new()));
        let rec = sleeps.clone();
        let r: RunReport<()> = runner()
            .with_retries(3)
            .with_backoff(Duration::from_millis(10))
            .with_sleeper(move |d| rec.lock().unwrap().push(d))
            .run("flappy", |_| {
                Err(MopacError::Livelock {
                    cycle: 1,
                    stalled_for: 1,
                    retired: 0,
                })
            });
        assert_eq!(r.attempts, 4);
        let recorded = sleeps.lock().unwrap().clone();
        assert_eq!(
            recorded,
            vec![
                Duration::from_millis(10),
                Duration::from_millis(20),
                Duration::from_millis(40),
            ]
        );
    }

    #[test]
    fn zero_backoff_never_sleeps() {
        let sleeps = Arc::new(std::sync::Mutex::new(Vec::new()));
        let rec = sleeps.clone();
        let r: RunReport<()> = runner()
            .with_sleeper(move |d| rec.lock().unwrap().push(d))
            .run("quick-fail", |_| {
                Err(MopacError::Livelock {
                    cycle: 1,
                    stalled_for: 1,
                    retired: 0,
                })
            });
        assert_eq!(r.attempts, 2);
        assert!(sleeps.lock().unwrap().is_empty());
    }
}
