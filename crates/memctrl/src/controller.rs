//! The memory controller: request queues, FR-FCFS scheduling, page
//! policies, refresh, ALERT/RFM handling, and MoPAC-C's per-activation
//! coin flip.
//!
//! The controller owns the [`DramDevice`] and the clock convention: the
//! caller ticks it once per DRAM cycle, and at most one command issues
//! per sub-channel per cycle (the command bus).

use crate::mapping::AddressMapper;
use crate::sched_index::{QueueCounts, SubIndex};
use mopac::engine::RecoveryScope;
use mopac_dram::device::DramDevice;
use mopac_types::addr::{DecodedAddr, PhysAddr};
use mopac_types::bankmask::BankMask;
use mopac_types::error::{MopacError, MopacResult};
use mopac_types::obs::{Counter, Hist, MetricsRegistry, MetricsSink, SinkConfig};
use mopac_types::rng::DetRng;
use mopac_types::snapshot::{SnapshotReader, SnapshotWriter, Snapshottable};
use mopac_types::time::Cycle;
use std::collections::VecDeque;

/// Row-closure policy (Appendix C, Table 15).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PagePolicy {
    /// Keep rows open until a conflicting request needs the bank
    /// (the paper's default).
    Open,
    /// Auto-precharge semantics: exactly one column command per
    /// activation (the strictest close-page; what an attacker picks).
    Closed,
    /// Close-page for benign operation: close a row once no queued
    /// request hits it (spatially adjacent requests still coalesce).
    ClosedIdle,
    /// Close a row once it has been idle past its last access for the
    /// given time.
    TimeoutNs(f64),
}

/// Read or write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A demand read; the requester blocks until data returns.
    Read,
    /// A posted write (writeback); completes on enqueue.
    Write,
}

/// A memory request entering the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Caller-chosen identifier returned in the completion.
    pub id: u64,
    /// Read or write.
    pub kind: AccessKind,
    /// Target in DRAM coordinates.
    pub addr: DecodedAddr,
}

/// A finished read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The request's identifier.
    pub id: u64,
    /// Cycle at which the data burst completes.
    pub at: Cycle,
}

/// Controller configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct McConfig {
    /// Row-closure policy.
    pub page_policy: PagePolicy,
    /// Per-sub-channel read-queue capacity.
    pub read_queue_capacity: usize,
    /// Per-sub-channel write-queue capacity.
    pub write_queue_capacity: usize,
    /// Anti-starvation: a request older than this (cycles) preempts
    /// row-hit-first scheduling.
    pub starvation_cycles: Cycle,
    /// RNG seed for the MoPAC-C selection coin.
    pub seed: u64,
}

impl Default for McConfig {
    fn default() -> Self {
        Self {
            page_policy: PagePolicy::Open,
            read_queue_capacity: 64,
            write_queue_capacity: 128,
            starvation_cycles: 3000,
            seed: 0x4D43_5EED, // "MC" seed
        }
    }
}

/// Controller statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct McStats {
    /// Reads completed.
    pub reads_done: u64,
    /// Writes accepted.
    pub writes_done: u64,
    /// Sum of read latencies (enqueue to data completion), in cycles.
    pub read_latency_sum: u64,
    /// RFMs issued in response to ALERT.
    pub rfms_issued: u64,
    /// Cycles spent with a sub-channel stalled for ABO (across
    /// sub-channels).
    pub abo_stall_cycles: u64,
    /// Cycles a sub-channel had queued work but issued no command.
    pub idle_with_work: u64,
    /// Cycles spent in refresh-drain mode (closing banks / waiting).
    pub refresh_mode_cycles: u64,
}

impl McStats {
    /// Field-wise accumulation: folds another controller's counters
    /// into this one (multi-channel totals; `avg_read_latency` on the
    /// merged struct is then the correctly weighted mean).
    pub fn accumulate(&mut self, o: &McStats) {
        self.reads_done += o.reads_done;
        self.writes_done += o.writes_done;
        self.read_latency_sum += o.read_latency_sum;
        self.rfms_issued += o.rfms_issued;
        self.abo_stall_cycles += o.abo_stall_cycles;
        self.idle_with_work += o.idle_with_work;
        self.refresh_mode_cycles += o.refresh_mode_cycles;
    }

    /// Mean read latency in cycles.
    #[must_use]
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads_done == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads_done as f64
        }
    }

    /// Publishes these counters onto a metrics registry under the
    /// `mc.*` namespace. The struct stays the source of truth; the
    /// registry copy exists for unified snapshot export (DESIGN.md
    /// §11), so this overwrites rather than accumulates.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.set_counter(Counter::McReadsDone, self.reads_done);
        reg.set_counter(Counter::McWritesDone, self.writes_done);
        reg.set_counter(Counter::McReadLatencySum, self.read_latency_sum);
        reg.set_counter(Counter::McRfmsIssued, self.rfms_issued);
        reg.set_counter(Counter::McAboStallCycles, self.abo_stall_cycles);
        reg.set_counter(Counter::McIdleWithWork, self.idle_with_work);
        reg.set_counter(Counter::McRefreshModeCycles, self.refresh_mode_cycles);
    }
}

/// Minimum of two optional cycles, treating `None` as "no constraint".
fn min_opt(a: Option<Cycle>, b: Option<Cycle>) -> Option<Cycle> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    id: u64,
    addr: DecodedAddr,
    arrival: Cycle,
}

#[derive(Debug, Clone)]
struct SubState {
    reads: VecDeque<Pending>,
    writes: VecDeque<Pending>,
    draining_writes: bool,
    next_ref: Cycle,
    last_use: Vec<Cycle>,
    /// Column commands issued to the currently open row, per bank
    /// (strict close-page issues exactly one per activation).
    cols_since_act: Vec<u32>,
}

/// The memory controller.
#[derive(Debug, Clone)]
pub struct MemoryController {
    dram: DramDevice,
    cfg: McConfig,
    subs: Vec<SubState>,
    rng: DetRng,
    stats: McStats,
    /// When `Some(p)`, each ACT flips a Bernoulli(`p`) coin to arm a
    /// `PREcu` (MoPAC-C). `None` keeps the RNG stream untouched.
    precu_p: Option<f64>,
    row_press_cap: Option<Cycle>,
    /// ABO recovery scope the engine demands: `SubChannel` stalls the
    /// whole sub-channel for RFM (the classic ladder); `Bank` drains
    /// and services only the alerting banks while their siblings keep
    /// scheduling (PRACtical). Pure cache of
    /// [`DramDevice::timing_demands`] — refreshed on generation change
    /// and after restore, never serialized.
    recovery_scope: RecoveryScope,
    /// Per-sub-channel scheduler index: incrementally maintained
    /// per-bank queue counts plus the cached next-wake (see
    /// `sched_index` and DESIGN.md §10).
    idx: Vec<SubIndex>,
    /// Last [`DramDevice::demands_generation`] observed; on change the
    /// demand-derived knobs refresh and every index invalidates.
    demands_gen_seen: u64,
    /// Scratch: per-bank open row, written and read only under an
    /// eligibility mask within one `issue_from` call (never serialized;
    /// stale entries are unreachable by construction). Sized to the
    /// bank count once so the hot path does no allocation.
    row_scratch: Vec<u32>,
    /// Observability sink: the per-cycle stat increments (including the
    /// fast-path replication) mirror into its typed counters, and the
    /// read-latency histogram records here. Disabled by default, which
    /// keeps uninstrumented runs bit-identical.
    sink: MetricsSink,
}

impl MemoryController {
    /// Creates a controller owning `dram`.
    #[must_use]
    pub fn new(dram: DramDevice, cfg: McConfig) -> Self {
        let t_refi = dram.timing_default().t_refi;
        let banks = dram.config().geometry.banks_per_subchannel as usize;
        let subs = (0..dram.config().geometry.subchannels)
            .map(|_| SubState {
                reads: VecDeque::with_capacity(cfg.read_queue_capacity),
                writes: VecDeque::with_capacity(cfg.write_queue_capacity),
                draining_writes: false,
                next_ref: t_refi,
                last_use: vec![0; banks],
                cols_since_act: vec![0; banks],
            })
            .collect();
        // The controller configures itself from what the mitigation
        // engines demand, not from the mitigation kind: the coin
        // probability for PREcu sampling and the row-open-time cap
        // (Appendix A: Row-Press hardening closes rows at 180 ns).
        let demands = dram.timing_demands();
        let clock = dram.clock();
        let row_press_cap = demands.row_open_cap_ns.map(|ns| clock.ns_to_cycles(ns));
        let idx = (0..dram.config().geometry.subchannels)
            .map(|_| SubIndex::new(banks))
            .collect();
        Self {
            rng: DetRng::from_seed(cfg.seed),
            precu_p: demands.precu_probability,
            row_press_cap,
            recovery_scope: demands.recovery_scope,
            demands_gen_seen: dram.demands_generation(),
            row_scratch: vec![0; banks],
            idx,
            dram,
            cfg,
            subs,
            stats: McStats::default(),
            sink: MetricsSink::disabled(),
        }
    }

    /// Enables observability on the controller *and* its DRAM device:
    /// stat increments mirror into typed registry counters, command
    /// latencies record into histograms, and the device traces protocol
    /// events. Enabling changes no simulated behaviour — only what gets
    /// recorded alongside it.
    pub fn enable_metrics(&mut self, cfg: SinkConfig) {
        self.sink = MetricsSink::enabled(cfg);
        self.dram.enable_metrics(cfg);
    }

    /// The controller's metrics sink (disabled unless
    /// [`MemoryController::enable_metrics`] was called). The device has
    /// its own, reachable through [`MemoryController::dram`].
    #[must_use]
    pub fn metrics(&self) -> &MetricsSink {
        &self.sink
    }

    /// Exports the controller's [`McStats`] onto the sink's registry
    /// and asks the device to do the same for its side. In debug
    /// builds, first cross-checks the incrementally maintained registry
    /// counters against the stats struct — the shadow recount that
    /// validates the fast-path replication (DESIGN.md §11).
    pub fn export_metrics(&mut self) {
        if !self.sink.is_enabled() {
            return;
        }
        #[cfg(debug_assertions)]
        {
            if let Some(reg) = self.sink.registry() {
                debug_assert_eq!(
                    reg.counter(Counter::McAboStallCycles),
                    self.stats.abo_stall_cycles,
                    "registry abo_stall_cycles diverged from McStats"
                );
                debug_assert_eq!(
                    reg.counter(Counter::McRefreshModeCycles),
                    self.stats.refresh_mode_cycles,
                    "registry refresh_mode_cycles diverged from McStats"
                );
                debug_assert_eq!(
                    reg.counter(Counter::McIdleWithWork),
                    self.stats.idle_with_work,
                    "registry idle_with_work diverged from McStats"
                );
                debug_assert_eq!(
                    reg.counter(Counter::McReadsDone),
                    self.stats.reads_done,
                    "registry reads_done diverged from McStats"
                );
                debug_assert_eq!(
                    reg.counter(Counter::McReadLatencySum),
                    self.stats.read_latency_sum,
                    "registry read_latency_sum diverged from McStats"
                );
                debug_assert_eq!(
                    reg.counter(Counter::McWritesDone),
                    self.stats.writes_done,
                    "registry writes_done diverged from McStats"
                );
                debug_assert_eq!(
                    reg.counter(Counter::McRfmsIssued),
                    self.stats.rfms_issued,
                    "registry rfms_issued diverged from McStats"
                );
            }
        }
        let stats = self.stats;
        if let Some(reg) = self.sink.registry_mut() {
            stats.export_metrics(reg);
        }
        self.dram.export_metrics();
    }

    /// The DRAM device (for stats and oracle queries).
    #[must_use]
    pub fn dram(&self) -> &DramDevice {
        &self.dram
    }

    /// Mutable access to the DRAM device (fault-injection hooks).
    ///
    /// Any external mutation can move timing gates or assert ALERT, so
    /// every sub-channel's cached wake is invalidated up front. (The
    /// per-bank queue counts stay valid: no external hook opens or
    /// closes a row, and the counts depend only on queue contents and
    /// open rows.)
    pub fn dram_mut(&mut self) -> &mut DramDevice {
        for idx in &mut self.idx {
            idx.invalidate();
        }
        &mut self.dram
    }

    /// Controller statistics.
    #[must_use]
    pub fn stats(&self) -> McStats {
        self.stats
    }

    /// Whether a request of `kind` for sub-channel `sc` can be accepted.
    #[must_use]
    pub fn can_accept(&self, sc: u32, kind: AccessKind) -> bool {
        let s = &self.subs[sc as usize];
        match kind {
            AccessKind::Read => s.reads.len() < self.cfg.read_queue_capacity,
            AccessKind::Write => s.writes.len() < self.cfg.write_queue_capacity,
        }
    }

    /// Enqueues a request. Returns `false` (rejecting it) if the queue
    /// is full.
    pub fn enqueue(&mut self, req: MemRequest, now: Cycle) -> bool {
        if !self.can_accept(req.addr.bank.subchannel, req.kind) {
            return false;
        }
        let sc = req.addr.bank.subchannel;
        let bank = req.addr.bank.bank;
        let hit = self
            .dram
            .open_row(sc, bank)
            .is_some_and(|o| o.row == req.addr.row);
        let s = &mut self.subs[sc as usize];
        let idx = &mut self.idx[sc as usize];
        let p = Pending {
            id: req.id,
            addr: req.addr,
            arrival: now,
        };
        match req.kind {
            AccessKind::Read => {
                s.reads.push_back(p);
                idx.reads.on_enqueue(bank, hit);
            }
            AccessKind::Write => {
                s.writes.push_back(p);
                idx.writes.on_enqueue(bank, hit);
                self.stats.writes_done += 1;
                self.sink.add(Counter::McWritesDone, 1);
            }
        }
        idx.invalidate();
        true
    }

    /// Convenience: decode `addr` with `mapper` and enqueue.
    pub fn enqueue_phys(
        &mut self,
        id: u64,
        kind: AccessKind,
        addr: PhysAddr,
        mapper: &AddressMapper,
        now: Cycle,
    ) -> bool {
        self.enqueue(
            MemRequest {
                id,
                kind,
                addr: mapper.decode(addr),
            },
            now,
        )
    }

    /// Total queued requests (reads + writes) across sub-channels.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.subs
            .iter()
            .map(|s| s.reads.len() + s.writes.len())
            .sum()
    }

    /// Advances one DRAM cycle: issues at most one command per
    /// sub-channel and appends finished reads to `completions` (the
    /// buffer is reused by the caller; it is not cleared here). Returns
    /// the number of commands issued this cycle, which the event-driven
    /// kernel uses as its progress signal.
    ///
    /// # Errors
    ///
    /// Propagates [`MopacError::TimingProtocol`] from the device; in a
    /// healthy run this never fires (the controller checks `earliest_*`
    /// gates before issuing), so an error indicates a scheduler bug or
    /// an injected fault surfacing.
    pub fn tick(&mut self, now: Cycle, completions: &mut Vec<Completion>) -> MopacResult<u32> {
        // Engines publish TimingDemands changes through the device's
        // generation counter; observe them at tick boundaries (one u64
        // compare per cycle), refresh the demand-derived knobs and
        // invalidate every scheduler index.
        if self.demands_gen_seen != self.dram.demands_generation() {
            self.demands_gen_seen = self.dram.demands_generation();
            let demands = self.dram.timing_demands();
            self.precu_p = demands.precu_probability;
            self.row_press_cap = demands
                .row_open_cap_ns
                .map(|ns| self.dram.clock().ns_to_cycles(ns));
            self.recovery_scope = demands.recovery_scope;
            for idx in &mut self.idx {
                idx.invalidate();
            }
        }
        let mut issued = 0;
        for sc in 0..self.subs.len() as u32 {
            issued += u32::from(self.tick_subchannel(sc, now, completions)?);
        }
        Ok(issued)
    }

    /// Ticks this channel from `from` (inclusive) to `to` (exclusive)
    /// in one call, applying the controller's own [`next_wake`] between
    /// issuing ticks so the event kernel's time-skipping composes with
    /// channel sharding: inside the batch the channel never crosses the
    /// fork-join barrier, and skipped regions get the same bulk stat
    /// compensation ([`note_idle_cycles`]) the system-level kernel
    /// applies — so the result is bit-identical to `to - from` separate
    /// [`tick`] calls (commands, completions, stats, RNG streams).
    ///
    /// The caller guarantees nothing arrives at this channel inside
    /// `[from, to)` — no enqueues, no fault-injector mutations — which
    /// is exactly the horizon contract `System::batch_horizon` computes.
    ///
    /// [`next_wake`]: MemoryController::next_wake
    /// [`note_idle_cycles`]: MemoryController::note_idle_cycles
    /// [`tick`]: MemoryController::tick
    ///
    /// # Errors
    ///
    /// Propagates the first tick error (see [`MemoryController::tick`]).
    pub fn tick_until(
        &mut self,
        from: Cycle,
        to: Cycle,
        completions: &mut Vec<Completion>,
    ) -> MopacResult<u32> {
        let mut issued = 0;
        let mut now = from;
        while now < to {
            let n = self.tick(now, completions)?;
            issued += n;
            if n == 0 {
                // Idle cycle: jump straight to this channel's next wake
                // (clamped to the batch end) and account the gap as the
                // per-cycle loop would have.
                let jump = self.next_wake(now).map_or(to, |w| w.min(to)).max(now + 1);
                self.note_idle_cycles(now + 1, jump - (now + 1));
                now = jump;
            } else {
                now += 1;
            }
        }
        Ok(issued)
    }

    /// Minimum cycles between a column read issuing and its completion
    /// becoming due (CAS latency + burst): a lower bound the batching
    /// kernel uses so completions generated *inside* a batch cannot
    /// become deliverable before the batch ends.
    #[must_use]
    pub fn min_read_latency(&self) -> Cycle {
        let t = self.dram.timing_default();
        t.cl + t.burst
    }

    /// Earliest scheduled refresh deadline across sub-channels: no REF
    /// can fire before this cycle, so a batch ending at or before it
    /// cannot move a `run_until_refs` pause point.
    #[must_use]
    pub fn next_ref_floor(&self) -> Cycle {
        self.subs
            .iter()
            .map(|s| s.next_ref)
            .min()
            .unwrap_or(Cycle::MAX)
    }

    fn tick_subchannel(
        &mut self,
        sc: u32,
        now: Cycle,
        completions: &mut Vec<Completion>,
    ) -> MopacResult<bool> {
        // Fast path: a valid cached wake strictly after `now` proves
        // this tick is a no-op — the wake enumeration covers every
        // command opportunity and mode boundary, and the epoch proves
        // nothing changed since it was computed. Replicate exactly the
        // per-cycle stats a full no-op tick would have recorded (the
        // same accounting `note_idle_cycles` uses for skipped regions)
        // and return without scanning anything.
        if self.idx[sc as usize].valid_wake().is_some_and(|w| now < w) {
            let s = &self.subs[sc as usize];
            let abo_stalled = self.abo_stalled(sc, now);
            let in_refresh = !abo_stalled && now >= s.next_ref;
            let has_work = !s.reads.is_empty() || !s.writes.is_empty();
            // Shadow recount (debug builds): re-derive the same
            // classification by walking `tick_subchannel_inner`'s mode
            // ladder, so any drift between the replication above and
            // the sequential tick's accounting trips immediately.
            debug_assert_eq!(
                (abo_stalled, in_refresh, has_work),
                self.shadow_noop_class(sc, now),
                "fast-path stat classification diverged from the sequential tick (sc{sc} @ {now})"
            );
            if abo_stalled {
                self.stats.abo_stall_cycles += 1;
                self.sink.add(Counter::McAboStallCycles, 1);
            } else if in_refresh {
                self.stats.refresh_mode_cycles += 1;
                self.sink.add(Counter::McRefreshModeCycles, 1);
            }
            if has_work {
                self.stats.idle_with_work += 1;
                self.sink.add(Counter::McIdleWithWork, 1);
            }
            return Ok(false);
        }
        let had_work = {
            let s = &self.subs[sc as usize];
            !s.reads.is_empty() || !s.writes.is_empty()
        };
        let issued = self.tick_subchannel_inner(sc, now, completions)?;
        if had_work && !issued {
            self.stats.idle_with_work += 1;
            self.sink.add(Counter::McIdleWithWork, 1);
        }
        if !issued {
            // A full tick found nothing to do: cache when something
            // could next happen, so the following cycles take the O(1)
            // path above (and `next_wake` answers from the cache).
            let wake = self.compute_wake(sc, now);
            self.idx[sc as usize].store_wake(wake, now);
        }
        Ok(issued)
    }

    /// Re-derives the fast path's per-cycle stat classification by
    /// walking [`MemoryController::tick_subchannel_inner`]'s sequential
    /// mode ladder (ABO stall first, then refresh drain; work presence
    /// is independent), without consulting the scheduler index. Only
    /// invoked from a `debug_assert!` — the shadow recount that
    /// validates the fast-path replication (DESIGN.md §11); release
    /// builds optimize it away.
    fn shadow_noop_class(&self, sc: u32, now: Cycle) -> (bool, bool, bool) {
        let s = &self.subs[sc as usize];
        // Ladder step 1: past the ABO normal window the tick stalls —
        // but only when recovery stalls the whole sub-channel.
        let abo = self.abo_stalled(sc, now);
        // Step 2: refresh drain, reached only when not ABO-stalled.
        let refresh = !abo && now >= s.next_ref;
        let work = !(s.reads.is_empty() && s.writes.is_empty());
        (abo, refresh, work)
    }

    /// Whether `sc` sits in the sub-channel-wide ABO stall at `now`:
    /// the ALERT has outlived its normal window *and* recovery stalls
    /// the whole sub-channel — by demand ([`RecoveryScope::SubChannel`])
    /// or as the fallback for an ALERT naming no bank (an injected
    /// fault). Under [`RecoveryScope::Bank`] with live targets the
    /// sub-channel keeps scheduling, so the stall counter must not
    /// tick.
    fn abo_stalled(&self, sc: u32, now: Cycle) -> bool {
        let Some(asserted) = self.dram.alert_since(sc) else {
            return false;
        };
        now >= asserted + self.dram.abo_timing().normal_window
            && (self.recovery_scope == RecoveryScope::SubChannel
                || self.dram.alerting_banks(sc).is_empty())
    }

    /// Earliest cycle *strictly after* `now` at which a tick could
    /// issue a command or change scheduling mode, assuming no new
    /// requests arrive in between (arrivals are the caller's wake
    /// sources: completion deliveries and core fetches). This is the
    /// controller's half of the event-driven kernel contract; the
    /// enumeration mirrors [`MemoryController::tick`]'s decision tree
    /// over both queues plus the refresh/ALERT deadlines, and merges
    /// the device's own gate releases ([`DramDevice::next_wake`]) as a
    /// conservative floor.
    ///
    /// The returned cycle may be *early* (a wake at which the tick
    /// still does nothing is merely a wasted cycle); it is never late:
    /// the mode deadlines (`next_ref`, ALERT recovery) are always
    /// candidates, so a caller skipping to the wake never jumps over a
    /// scheduling-mode boundary — the invariant
    /// [`MemoryController::note_idle_cycles`] relies on.
    #[must_use]
    pub fn next_wake(&self, now: Cycle) -> Option<Cycle> {
        (0..self.subs.len() as u32)
            .filter_map(|sc| {
                // Serve from the scheduler-index cache when it is still
                // valid and strictly ahead; otherwise recompute purely
                // (`next_wake` takes `&self`, so only the tick path
                // stores caches).
                match self.idx[sc as usize].valid_wake() {
                    Some(w) if w > now => Some(w),
                    _ => self.compute_wake(sc, now),
                }
            })
            .min()
    }

    /// Full wake enumeration for one sub-channel (the reference the
    /// cache stores). Structure mirrors `tick_subchannel_inner`'s
    /// decision tree; the per-queue candidates come from the scheduler
    /// index's per-bank counts instead of per-request rescans.
    fn compute_wake(&self, sc: u32, now: Cycle) -> Option<Cycle> {
        let s = &self.subs[sc as usize];
        let device = self.dram.next_wake(sc, now);
        // A candidate at or before `now` means the model thinks the
        // controller could already act; clamp to the very next cycle so
        // a stale candidate degrades to lockstep instead of stalling.
        let clamp = |c: Cycle| c.max(now + 1);
        // ABO recovery mode. Sub-channel scope: only bank closes and
        // the final RFM can happen. Bank scope: the targeted banks'
        // close gates and the bank-scoped RFM's legality are extra
        // candidates on top of normal scheduling (the untargeted banks
        // keep working below).
        let mut recovery: Option<Cycle> = None;
        if let Some(asserted) = self.dram.alert_since(sc) {
            let deadline = asserted + self.dram.abo_timing().normal_window;
            if now >= deadline {
                let targets = if self.recovery_scope == RecoveryScope::Bank {
                    self.dram.alerting_banks(sc)
                } else {
                    BankMask::empty()
                };
                if targets.is_empty() {
                    return min_opt(self.drain_wake(sc).map(clamp), device);
                }
                let open_targets = targets.and(self.dram.open_banks_mask(sc));
                for b in open_targets.ones() {
                    recovery = min_opt(recovery, self.dram.earliest_precharge(sc, b));
                }
                if open_targets.is_empty() {
                    recovery = min_opt(recovery, self.dram.earliest_rfm_banks(sc, targets));
                }
                recovery = recovery.map(clamp);
            }
        }
        // Refresh drain mode.
        if now >= s.next_ref {
            return min_opt(
                min_opt(self.drain_wake(sc).map(clamp), device),
                recovery,
            );
        }
        // Normal mode: the refresh deadline is always pending (and the
        // ALERT deadline was merged via the device wake above), plus
        // any bank-scoped recovery candidates.
        let mut wake = min_opt(min_opt(Some(clamp(s.next_ref)), device), recovery);
        // Row-Press force close.
        if let Some(cap) = self.row_press_cap {
            for b in self.dram.open_banks_mask(sc).ones() {
                if let Some(open) = self.dram.open_row(sc, b) {
                    if let Some(ep) = self.dram.earliest_precharge(sc, b) {
                        wake = min_opt(wake, Some(clamp(ep.max(open.opened_at + cap))));
                    }
                }
            }
        }
        // Strict close-page: a used bank closes as soon as tRTP allows.
        if self.cfg.page_policy == PagePolicy::Closed {
            for b in self.dram.open_banks_mask(sc).ones() {
                if s.cols_since_act[b as usize] >= 1 {
                    if let Some(ep) = self.dram.earliest_precharge(sc, b) {
                        wake = min_opt(wake, Some(clamp(ep)));
                    }
                }
            }
        }
        // Queue candidates, mirroring schedule_queue's hysteresis: the
        // preferred queue issues anything, the off queue hits only.
        let cap_w = self.cfg.write_queue_capacity;
        let start = s.writes.len() >= cap_w * 7 / 8
            || (s.reads.is_empty() && !s.writes.is_empty());
        let draining = if s.draining_writes {
            s.writes.len() > cap_w / 8 || start
        } else {
            start
        };
        let idx = &self.idx[sc as usize];
        let (pref_counts, off_counts) = if draining {
            (&idx.writes, &idx.reads)
        } else {
            (&idx.reads, &idx.writes)
        };
        wake = min_opt(wake, self.queue_wake(sc, s, pref_counts, false).map(clamp));
        wake = min_opt(wake, self.queue_wake(sc, s, off_counts, true).map(clamp));
        // Anti-starvation onset: once the preferred queue's front
        // crosses the starvation age, `issue_from` may act where normal
        // scheduling would not (a conflict PRE despite queued hits, a
        // close-page column past its quota), so the crossing itself is
        // a wake candidate. An already-starved front needs none: its
        // action is gated by device timing, and those gate releases are
        // merged via the device wake above. Early-only, never late.
        let pref_front = if draining {
            s.writes.front()
        } else {
            s.reads.front()
        };
        if let Some(p) = pref_front {
            let onset = p.arrival + self.cfg.starvation_cycles + 1;
            if onset > now {
                wake = min_opt(wake, Some(onset));
            }
        }
        // Idle housekeeping per page policy.
        match self.cfg.page_policy {
            PagePolicy::Open => {}
            PagePolicy::Closed | PagePolicy::ClosedIdle => {
                for b in self.dram.open_banks_mask(sc).ones() {
                    let wanted = idx.reads.hits(b) + idx.writes.hits(b) > 0;
                    if !wanted {
                        if let Some(ep) = self.dram.earliest_precharge(sc, b) {
                            wake = min_opt(wake, Some(clamp(ep)));
                        }
                    }
                }
            }
            PagePolicy::TimeoutNs(ns) => {
                let cap = (ns * 3.0) as Cycle;
                for b in self.dram.open_banks_mask(sc).ones() {
                    let Some(open) = self.dram.open_row(sc, b) else {
                        continue;
                    };
                    let anchor = s.last_use[b as usize].max(open.opened_at);
                    if let Some(ep) = self.dram.earliest_precharge(sc, b) {
                        wake = min_opt(wake, Some(clamp(ep.max(anchor + cap))));
                    }
                }
            }
        }
        wake
    }

    /// Wake candidates for one queue, enumerated per bank from the
    /// scheduler index instead of per request: all queued hits on a
    /// bank share its column gate, all conflicts share its PRE gate
    /// (and exist iff `hits == 0` while requests are queued), and all
    /// closed-bank requests share its ACT gate — so the per-request
    /// minimum collapses to one candidate per occupied bank.
    fn queue_wake(
        &self,
        sc: u32,
        s: &SubState,
        counts: &QueueCounts,
        hits_only: bool,
    ) -> Option<Cycle> {
        let closed_policy = self.cfg.page_policy == PagePolicy::Closed;
        let mut wake: Option<Cycle> = None;
        for bank in counts.occ_mask().ones() {
            match self.dram.open_row(sc, bank) {
                Some(open) => {
                    if counts.hits(bank) > 0 {
                        if !(closed_policy && s.cols_since_act[bank as usize] >= 1) {
                            wake = min_opt(wake, self.dram.earliest_column(sc, bank, open.row));
                        }
                        // Conflicts behind queued hits wait for the hits
                        // (`has_hits` in the issue path); no candidate.
                    } else if !hits_only {
                        // Everything queued for this bank is a conflict:
                        // close at the PRE gate.
                        wake = min_opt(wake, self.dram.earliest_precharge(sc, bank));
                    }
                }
                None => {
                    if !hits_only {
                        wake = min_opt(wake, self.dram.earliest_activate(sc, bank));
                    }
                }
            }
        }
        wake
    }

    /// Wake candidates while draining for REF/RFM: the next legal PRE
    /// on an open bank, or — once every bank is closed — the cycle the
    /// REF/RFM itself becomes legal.
    fn drain_wake(&self, sc: u32) -> Option<Cycle> {
        let m = self.dram.open_banks_mask(sc);
        if m.is_empty() {
            return self.dram.earliest_refresh(sc);
        }
        let mut wake: Option<Cycle> = None;
        for b in m.ones() {
            wake = min_opt(wake, self.dram.earliest_precharge(sc, b));
        }
        wake
    }

    /// Bulk stat compensation for cycles an event-driven kernel skipped:
    /// accounts the per-cycle counters (`abo_stall_cycles`,
    /// `refresh_mode_cycles`, `idle_with_work`) exactly as `cycles`
    /// consecutive no-op ticks starting at `from` would have.
    ///
    /// The caller guarantees no tick in `[from, from + cycles)` would
    /// have issued a command or crossed a mode deadline (which
    /// [`MemoryController::next_wake`] enforces by always including the
    /// deadlines as candidates), so each sub-channel's mode — and hence
    /// which counter ticks — is constant across the region.
    pub fn note_idle_cycles(&mut self, from: Cycle, cycles: u64) {
        if cycles == 0 {
            return;
        }
        for sc in 0..self.subs.len() {
            let s = &self.subs[sc];
            let had_work = !s.reads.is_empty() || !s.writes.is_empty();
            let abo_stalled = self.abo_stalled(sc as u32, from);
            if abo_stalled {
                self.stats.abo_stall_cycles += cycles;
                self.sink.add(Counter::McAboStallCycles, cycles);
            } else if from >= s.next_ref {
                self.stats.refresh_mode_cycles += cycles;
                self.sink.add(Counter::McRefreshModeCycles, cycles);
            }
            if had_work {
                self.stats.idle_with_work += cycles;
                self.sink.add(Counter::McIdleWithWork, cycles);
            }
        }
    }

    fn tick_subchannel_inner(
        &mut self,
        sc: u32,
        now: Cycle,
        completions: &mut Vec<Completion>,
    ) -> MopacResult<bool> {
        // 1. ABO: past the 180 ns window recovery must proceed. Under
        //    sub-channel scope we stall, close all open rows and issue
        //    the RFM; under bank scope only the alerting banks drain
        //    and service, while their siblings keep scheduling below
        //    (with the targets excluded from new work).
        let mut exclude = BankMask::empty();
        if let Some(asserted) = self.dram.alert_since(sc) {
            if now >= asserted + self.dram.abo_timing().normal_window {
                let targets = if self.recovery_scope == RecoveryScope::Bank {
                    self.dram.alerting_banks(sc)
                } else {
                    BankMask::empty()
                };
                if targets.is_empty() {
                    // Sub-channel scope — or an injected ALERT naming
                    // no bank, which only a full-width RFM can clear.
                    self.stats.abo_stall_cycles += 1;
                    self.sink.add(Counter::McAboStallCycles, 1);
                    if self.close_one_open_bank(sc, now)? {
                        return Ok(true);
                    }
                    // `earliest_refresh` is `None` while any bank is
                    // open (e.g. a stuck-open fault): keep stalling
                    // until the close above succeeds, rather than
                    // unwrap-panicking.
                    if self.all_banks_closed(sc)
                        && self.dram.earliest_refresh(sc).is_some_and(|e| e <= now)
                    {
                        self.dram.rfm(sc, now)?;
                        self.idx[sc as usize].invalidate();
                        self.stats.rfms_issued += 1;
                        self.sink.add(Counter::McRfmsIssued, 1);
                        return Ok(true);
                    }
                    return Ok(false);
                }
                let open_targets = targets.and(self.dram.open_banks_mask(sc));
                if let Some(b) = open_targets.ones().find(|&b| {
                    self.dram
                        .earliest_precharge(sc, b)
                        .is_some_and(|e| e <= now)
                }) {
                    self.issue_pre(sc, b, now)?;
                    return Ok(true);
                }
                if open_targets.is_empty()
                    && self
                        .dram
                        .earliest_rfm_banks(sc, targets)
                        .is_some_and(|e| e <= now)
                {
                    self.dram.rfm_banks(sc, targets, now)?;
                    self.idx[sc as usize].invalidate();
                    self.stats.rfms_issued += 1;
                    self.sink.add(Counter::McRfmsIssued, 1);
                    return Ok(true);
                }
                // Recovery is waiting on a timing gate: keep the
                // targets out of normal scheduling so they drain.
                exclude = targets;
            }
        }
        // 2. Refresh, when due.
        if now >= self.subs[sc as usize].next_ref {
            self.stats.refresh_mode_cycles += 1;
            self.sink.add(Counter::McRefreshModeCycles, 1);
            if self.close_one_open_bank(sc, now)? {
                return Ok(true);
            }
            // As above: no refresh slot exists while a bank is open.
            if self.all_banks_closed(sc)
                && self.dram.earliest_refresh(sc).is_some_and(|e| e <= now)
            {
                let t_refi = self.dram.timing_default().t_refi;
                self.dram.refresh(sc, now)?;
                self.idx[sc as usize].invalidate();
                self.subs[sc as usize].next_ref += t_refi;
                return Ok(true);
            }
            return Ok(false);
        }
        // 3. Row-Press cap (MoPAC-C hardening): force-close rows open
        //    longer than 180 ns, ahead of any pending hits.
        if let Some(cap) = self.row_press_cap {
            if self.close_overdue_bank(sc, now, cap, true)? {
                return Ok(true);
            }
        }
        // 4. Strict close-page: a bank that has serviced its column
        //    command closes before anything else (auto-precharge
        //    semantics).
        if self.cfg.page_policy == PagePolicy::Closed && self.close_used_bank(sc, now)? {
            return Ok(true);
        }
        // 5. FR-FCFS over the active queue (minus any banks held for
        //    bank-scoped recovery).
        if self.schedule_queue(sc, now, exclude, completions)? {
            return Ok(true);
        }
        // 6. Idle housekeeping per page policy.
        match self.cfg.page_policy {
            PagePolicy::Open => Ok(false),
            PagePolicy::Closed | PagePolicy::ClosedIdle => {
                self.close_unreferenced_bank(sc, now)
            }
            PagePolicy::TimeoutNs(ns) => {
                let cap = (ns * 3.0) as Cycle;
                self.close_overdue_bank(sc, now, cap, false)
            }
        }
    }

    /// Strict close-page: closes one bank whose open row has already
    /// serviced a column command.
    fn close_used_bank(&mut self, sc: u32, now: Cycle) -> MopacResult<bool> {
        for b in self.dram.open_banks_mask(sc).ones() {
            if self.subs[sc as usize].cols_since_act[b as usize] >= 1
                && self
                    .dram
                    .earliest_precharge(sc, b)
                    .is_some_and(|e| e <= now)
            {
                self.issue_pre(sc, b, now)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Picks the active queue (reads unless draining writes) and issues
    /// one command for it. Returns whether a command was issued.
    fn schedule_queue(
        &mut self,
        sc: u32,
        now: Cycle,
        exclude: BankMask,
        completions: &mut Vec<Completion>,
    ) -> MopacResult<bool> {
        let s = &mut self.subs[sc as usize];
        // Write-drain hysteresis: start at 7/8 full (or when reads are
        // empty and writes exist), drain down to 1/8. Wide hysteresis
        // amortizes the expensive read/write turnaround. The stop
        // condition yields to an active start condition so the
        // transition is idempotent under repeated ticks with unchanged
        // queues — the event-driven kernel's licence to skip them.
        let start = s.writes.len() >= self.cfg.write_queue_capacity * 7 / 8
            || (s.reads.is_empty() && !s.writes.is_empty());
        if s.draining_writes {
            if s.writes.len() <= self.cfg.write_queue_capacity / 8 && !start {
                s.draining_writes = false;
            }
        } else if start {
            s.draining_writes = true;
        }
        // Work-conserving: if the preferred queue cannot issue this
        // cycle, serve a row hit from the other one rather than idling
        // the command bus (hits only — opening rows for the off-queue
        // would add conflicts).
        let use_writes = s.draining_writes;
        if use_writes {
            Ok(self.issue_from(sc, now, true, false, exclude, completions)?
                || self.issue_from(sc, now, false, true, exclude, completions)?)
        } else {
            Ok(self.issue_from(sc, now, false, false, exclude, completions)?
                || self.issue_from(sc, now, true, true, exclude, completions)?)
        }
    }

    fn issue_from(
        &mut self,
        sc: u32,
        now: Cycle,
        writes: bool,
        hits_only: bool,
        exclude: BankMask,
        completions: &mut Vec<Completion>,
    ) -> MopacResult<bool> {
        // Anti-starvation: if the oldest request is too old, act on it
        // first when possible (without serializing the rest: if its
        // needed command cannot issue this cycle, normal scheduling
        // proceeds below).
        let starved = !hits_only && {
            let s = &self.subs[sc as usize];
            let q = if writes { &s.writes } else { &s.reads };
            q.front()
                .is_some_and(|p| now.saturating_sub(p.arrival) > self.cfg.starvation_cycles)
        };
        let starved_front = if starved {
            let s = &self.subs[sc as usize];
            let q = if writes { &s.writes } else { &s.reads };
            // A starved front on a bank held for recovery cannot act;
            // normal scheduling below serves the rest of the queue.
            q.front().copied().filter(|p| !exclude.test(p.addr.bank.bank))
        } else {
            None
        };
        if let Some(p) = starved_front {
            let bank = p.addr.bank.bank;
            match self.dram.open_row(sc, bank) {
                Some(open) if open.row == p.addr.row => {
                    if self
                        .dram
                        .earliest_column(sc, bank, p.addr.row)
                        .is_some_and(|e| e <= now)
                    {
                        self.issue_column(sc, now, writes, 0, completions)?;
                        return Ok(true);
                    }
                }
                Some(_) => {
                    if self
                        .dram
                        .earliest_precharge(sc, bank)
                        .is_some_and(|e| e <= now)
                    {
                        self.issue_pre(sc, bank, now)?;
                        return Ok(true);
                    }
                }
                None => {
                    if self
                        .dram
                        .earliest_activate_row(sc, bank, p.addr.row)
                        .is_some_and(|e| e <= now)
                    {
                        self.issue_activate(sc, bank, p.addr.row, now)?;
                        return Ok(true);
                    }
                }
            }
        }
        // Phase (a): oldest ready row hit. Under strict close-page a
        // bank serves exactly one column per activation. A request can
        // only be a ready hit if its bank has queued hits on the open
        // row (`hits_mask`), the policy allows another column, and the
        // bank's column gate has released — all per-bank facts. Build
        // that eligibility mask once, then a single queue scan finds
        // the oldest request matching an eligible bank's open row:
        // exactly the request the per-request scan would pick, because
        // `earliest_column(sc, bank, row)` releases only for the open
        // row of an open bank.
        let closed_policy = self.cfg.page_policy == PagePolicy::Closed;
        let hit_idx = {
            let s = &self.subs[sc as usize];
            let counts = if writes {
                &self.idx[sc as usize].writes
            } else {
                &self.idx[sc as usize].reads
            };
            let rows = &mut self.row_scratch;
            let mut elig = BankMask::empty();
            for bank in counts.hits_mask().and_not(exclude).ones() {
                if closed_policy && s.cols_since_act[bank as usize] >= 1 {
                    continue;
                }
                let Some(open) = self.dram.open_row(sc, bank) else {
                    continue;
                };
                if self
                    .dram
                    .earliest_column(sc, bank, open.row)
                    .is_some_and(|e| e <= now)
                {
                    elig.set(bank);
                    rows[bank as usize] = open.row;
                }
            }
            if elig.is_empty() {
                None
            } else {
                let q = if writes { &s.writes } else { &s.reads };
                q.iter().position(|p| {
                    let bank = p.addr.bank.bank;
                    elig.test(bank) && p.addr.row == rows[bank as usize]
                })
            }
        };
        if let Some(idx) = hit_idx {
            self.issue_column(sc, now, writes, idx, completions)?;
            return Ok(true);
        }
        if hits_only {
            return Ok(false);
        }
        // Phase (b): oldest request needing bank preparation. Per bank:
        // an open bank whose queued requests are all conflicts
        // (`hits == 0` — the O(1) form of the old has-surviving-hits
        // rescan) wants a PRE; a closed occupied bank wants an ACT.
        // Gate each candidate bank by its device timing, then one queue
        // scan picks the oldest request whose bank can act — preserving
        // the per-request loop's selection order exactly (hits skip
        // both masks: their bank is open with `hits > 0`).
        let prep = {
            let counts = if writes {
                &self.idx[sc as usize].writes
            } else {
                &self.idx[sc as usize].reads
            };
            let occ = counts.occ_mask().and_not(exclude);
            let open_mask = self.dram.open_banks_mask(sc);
            let mut pre_mask = BankMask::empty();
            for bank in occ.and(open_mask).and_not(counts.hits_mask()).ones() {
                if self
                    .dram
                    .earliest_precharge(sc, bank)
                    .is_some_and(|e| e <= now)
                {
                    pre_mask.set(bank);
                }
            }
            let mut act_mask = BankMask::empty();
            for bank in occ.and_not(open_mask).ones() {
                if self
                    .dram
                    .earliest_activate(sc, bank)
                    .is_some_and(|e| e <= now)
                {
                    act_mask.set(bank);
                }
            }
            if pre_mask.is_empty() && act_mask.is_empty() {
                None
            } else {
                let s = &self.subs[sc as usize];
                let q = if writes { &s.writes } else { &s.reads };
                let mut action = None;
                for p in q {
                    let bank = p.addr.bank.bank;
                    if pre_mask.test(bank) {
                        action = Some((bank, None));
                        break;
                    }
                    // Past the bank-level gate the target row's own
                    // subarray may still hold an in-flight counter
                    // update; a gated request yields to the next one.
                    if act_mask.test(bank)
                        && self
                            .dram
                            .earliest_activate_row(sc, bank, p.addr.row)
                            .is_some_and(|e| e <= now)
                    {
                        action = Some((bank, Some(p.addr.row)));
                        break;
                    }
                }
                action
            }
        };
        match prep {
            Some((bank, Some(row))) => {
                self.issue_activate(sc, bank, row, now)?;
                Ok(true)
            }
            Some((bank, None)) => {
                self.issue_pre(sc, bank, now)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Issues an ACT, flipping the PREcu selection coin when the engine
    /// demands one. The coin is only drawn when a probability is set,
    /// keeping the RNG stream bit-identical for engines without one.
    fn issue_activate(&mut self, sc: u32, bank: u32, row: u32, now: Cycle) -> MopacResult<()> {
        let selected = match self.precu_p {
            Some(p) => self.rng.bernoulli(p),
            None => false,
        };
        self.dram.activate(sc, bank, row, now, selected)?;
        let s = &mut self.subs[sc as usize];
        s.last_use[bank as usize] = now;
        s.cols_since_act[bank as usize] = 0;
        // The ACT changed the bank's open row: recount its hits in both
        // queues against the new row and kill the wake cache.
        let s = &self.subs[sc as usize];
        let idx = &mut self.idx[sc as usize];
        idx.reads
            .rescan_bank(bank, row, s.reads.iter().map(|p| (p.addr.bank.bank, p.addr.row)));
        idx.writes
            .rescan_bank(bank, row, s.writes.iter().map(|p| (p.addr.bank.bank, p.addr.row)));
        idx.invalidate();
        Ok(())
    }

    /// Issues a PRE and applies its index maintenance: a closed bank
    /// can have no queued hits, and any DRAM command kills the cached
    /// wake. Every controller PRE goes through here.
    fn issue_pre(&mut self, sc: u32, bank: u32, now: Cycle) -> MopacResult<()> {
        self.dram.precharge(sc, bank, now)?;
        let idx = &mut self.idx[sc as usize];
        idx.reads.clear_hits(bank);
        idx.writes.clear_hits(bank);
        idx.invalidate();
        Ok(())
    }

    fn issue_column(
        &mut self,
        sc: u32,
        now: Cycle,
        writes: bool,
        idx: usize,
        completions: &mut Vec<Completion>,
    ) -> MopacResult<()> {
        let s = &mut self.subs[sc as usize];
        let q = if writes { &mut s.writes } else { &mut s.reads };
        let Some(p) = q.remove(idx) else {
            return Err(MopacError::internal(format!(
                "scheduler selected queue index {idx} past the end"
            )));
        };
        s.last_use[p.addr.bank.bank as usize] = now;
        s.cols_since_act[p.addr.bank.bank as usize] += 1;
        // Column commands only serve row hits (both the phase (a) pick
        // and the starved-front fast path check the open row first), so
        // the dequeued request is always a hit.
        let index = &mut self.idx[sc as usize];
        if writes {
            index.writes.on_dequeue_hit(p.addr.bank.bank);
        } else {
            index.reads.on_dequeue_hit(p.addr.bank.bank);
        }
        index.invalidate();
        if writes {
            let _ = self.dram.write(sc, p.addr.bank.bank, now)?;
        } else {
            let done = self.dram.read(sc, p.addr.bank.bank, now)?;
            self.stats.reads_done += 1;
            self.sink.add(Counter::McReadsDone, 1);
            // A completion earlier than the request's arrival is an
            // ordering bug (a scheduler or device regression); clamping
            // it to zero latency would silently poison the latency
            // average, so surface it as a typed internal error instead.
            let Some(latency) = done.checked_sub(p.arrival) else {
                debug_assert!(
                    false,
                    "read {} completed at {done}, before its arrival at {}",
                    p.id, p.arrival
                );
                return Err(MopacError::internal(format!(
                    "read {} completed at {done}, before its arrival at {} \
                     (sc{sc}/bank{}): latency accounting would underflow",
                    p.id, p.arrival, p.addr.bank.bank
                )));
            };
            self.stats.read_latency_sum += latency;
            self.sink.add(Counter::McReadLatencySum, latency);
            self.sink.record(Hist::ReadLatency, sc, latency);
            completions.push(Completion { id: p.id, at: done });
        }
        Ok(())
    }

    /// Closes one open bank if legal; returns whether a PRE was issued.
    fn close_one_open_bank(&mut self, sc: u32, now: Cycle) -> MopacResult<bool> {
        for b in self.dram.open_banks_mask(sc).ones() {
            if self
                .dram
                .earliest_precharge(sc, b)
                .is_some_and(|e| e <= now)
            {
                self.issue_pre(sc, b, now)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    fn all_banks_closed(&self, sc: u32) -> bool {
        self.dram.open_banks_mask(sc).is_empty()
    }

    /// Closes one bank whose row has been open (`force`) or idle since
    /// last use (`!force`) for at least `cap` cycles.
    fn close_overdue_bank(
        &mut self,
        sc: u32,
        now: Cycle,
        cap: Cycle,
        force: bool,
    ) -> MopacResult<bool> {
        for b in self.dram.open_banks_mask(sc).ones() {
            let Some(open) = self.dram.open_row(sc, b) else {
                continue;
            };
            let anchor = if force {
                open.opened_at
            } else {
                self.subs[sc as usize].last_use[b as usize].max(open.opened_at)
            };
            if now.saturating_sub(anchor) >= cap
                && self
                    .dram
                    .earliest_precharge(sc, b)
                    .is_some_and(|e| e <= now)
            {
                self.issue_pre(sc, b, now)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Close-page policy: closes one open bank with no queued hits.
    /// "No queued hits" is the scheduler index's `hits == 0` — the
    /// O(1) form of the old full-queue `wanted` scan.
    fn close_unreferenced_bank(&mut self, sc: u32, now: Cycle) -> MopacResult<bool> {
        for b in self.dram.open_banks_mask(sc).ones() {
            let idx = &self.idx[sc as usize];
            let wanted = idx.reads.hits(b) + idx.writes.hits(b) > 0;
            if !wanted
                && self
                    .dram
                    .earliest_precharge(sc, b)
                    .is_some_and(|e| e <= now)
            {
                self.issue_pre(sc, b, now)?;
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Parity check for the scheduler index (property tests): rebuilds
    /// every [`QueueCounts`] from scratch and compares it with the
    /// incrementally maintained one, checks the device's open-bank
    /// mask against per-bank `open_row`, and — when a wake cache is
    /// valid — recomputes the wake at the cycle it was cached and
    /// demands an identical answer.
    #[doc(hidden)]
    pub fn debug_verify_index(&self) -> Result<(), String> {
        let banks = self.dram.config().geometry.banks_per_subchannel as usize;
        for sc in 0..self.subs.len() as u32 {
            let s = &self.subs[sc as usize];
            let idx = &self.idx[sc as usize];
            let open = |b: u32| self.dram.open_row(sc, b).map(|o| o.row);
            let fresh_r = QueueCounts::rebuild(
                banks,
                s.reads.iter().map(|p| (p.addr.bank.bank, p.addr.row)),
                open,
            );
            if fresh_r != idx.reads {
                return Err(format!("sc{sc}: read counts diverged: {fresh_r:?} vs {:?}", idx.reads));
            }
            let fresh_w = QueueCounts::rebuild(
                banks,
                s.writes.iter().map(|p| (p.addr.bank.bank, p.addr.row)),
                open,
            );
            if fresh_w != idx.writes {
                return Err(format!(
                    "sc{sc}: write counts diverged: {fresh_w:?} vs {:?}",
                    idx.writes
                ));
            }
            let mut mask = BankMask::empty();
            for b in 0..banks as u32 {
                if self.dram.open_row(sc, b).is_some() {
                    mask.set(b);
                }
            }
            if mask != self.dram.open_banks_mask(sc) {
                return Err(format!(
                    "sc{sc}: open mask diverged: recomputed {mask:?} vs device {:?}",
                    self.dram.open_banks_mask(sc)
                ));
            }
            if let (Some(wake), Some(at)) = (idx.valid_wake(), idx.valid_computed_at()) {
                let fresh = self.compute_wake(sc, at);
                if fresh != Some(wake) {
                    return Err(format!(
                        "sc{sc}: cached wake {wake} (computed at {at}) vs fresh {fresh:?}"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Snapshottable for MemoryController {
    fn save_state(&self, w: &mut SnapshotWriter) {
        self.dram.save_state(w);
        self.rng.save_state(w);
        for v in [
            self.stats.reads_done,
            self.stats.writes_done,
            self.stats.read_latency_sum,
            self.stats.rfms_issued,
            self.stats.abo_stall_cycles,
            self.stats.idle_with_work,
            self.stats.refresh_mode_cycles,
        ] {
            w.put_u64(v);
        }
        w.put_usize(self.subs.len());
        let save_queue = |q: &VecDeque<Pending>, w: &mut SnapshotWriter| {
            w.put_usize(q.len());
            for p in q {
                w.put_u64(p.id);
                p.addr.save_state(w);
                w.put_u64(p.arrival);
            }
        };
        for s in &self.subs {
            save_queue(&s.reads, w);
            save_queue(&s.writes, w);
            w.put_bool(s.draining_writes);
            w.put_u64(s.next_ref);
            w.put_usize(s.last_use.len());
            for &c in &s.last_use {
                w.put_u64(c);
            }
            for &c in &s.cols_since_act {
                w.put_u32(c);
            }
        }
        w.put_opt_f64(self.precu_p);
        w.put_opt_u64(self.row_press_cap);
        w.put_u64(self.demands_gen_seen);
        self.sink.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> MopacResult<()> {
        self.dram.load_state(r)?;
        self.rng.load_state(r)?;
        self.stats.reads_done = r.take_u64()?;
        self.stats.writes_done = r.take_u64()?;
        self.stats.read_latency_sum = r.take_u64()?;
        self.stats.rfms_issued = r.take_u64()?;
        self.stats.abo_stall_cycles = r.take_u64()?;
        self.stats.idle_with_work = r.take_u64()?;
        self.stats.refresh_mode_cycles = r.take_u64()?;
        let n = r.take_usize()?;
        if n != self.subs.len() {
            return Err(MopacError::snapshot(format!(
                "sub-channel count mismatch: snapshot {n}, configured {}",
                self.subs.len()
            )));
        }
        let load_queue = |q: &mut VecDeque<Pending>, r: &mut SnapshotReader<'_>| {
            let n = r.take_usize()?;
            q.clear();
            for _ in 0..n {
                let id = r.take_u64()?;
                let mut addr = DecodedAddr::new(mopac_types::geometry::BankRef::new(0, 0), 0, 0);
                addr.load_state(r)?;
                let arrival = r.take_u64()?;
                q.push_back(Pending { id, addr, arrival });
            }
            Ok::<(), MopacError>(())
        };
        let banks = self.dram.config().geometry.banks_per_subchannel as usize;
        for s in &mut self.subs {
            load_queue(&mut s.reads, r)?;
            load_queue(&mut s.writes, r)?;
            s.draining_writes = r.take_bool()?;
            s.next_ref = r.take_u64()?;
            let n = r.take_usize()?;
            if n != banks {
                return Err(MopacError::snapshot(format!(
                    "bank count mismatch: snapshot {n}, configured {banks}"
                )));
            }
            for c in &mut s.last_use {
                *c = r.take_u64()?;
            }
            for c in &mut s.cols_since_act {
                *c = r.take_u32()?;
            }
        }
        self.precu_p = r.take_opt_f64()?;
        self.row_press_cap = r.take_opt_u64()?;
        self.demands_gen_seen = r.take_u64()?;
        // `recovery_scope` is a pure demand cache (never serialized, so
        // legacy snapshot streams are unchanged): re-derive it from the
        // device's just-restored demands.
        self.recovery_scope = self.dram.timing_demands().recovery_scope;
        self.sink.load_state(r)?;
        // The scheduler index is pure cache: rebuild the per-bank queue
        // counts from the restored queues and leave the wake cache cold.
        // An invalid cache is behaviorally identical to a valid one —
        // the next tick recomputes and re-stores it (the "invalid-cache
        // path is bit-identical" contract the index tests pin down).
        for (sc, s) in self.subs.iter().enumerate() {
            let sc32 = sc as u32;
            let open = |b: u32| self.dram.open_row(sc32, b).map(|o| o.row);
            let mut idx = SubIndex::new(banks);
            idx.reads = QueueCounts::rebuild(
                banks,
                s.reads.iter().map(|p| (p.addr.bank.bank, p.addr.row)),
                open,
            );
            idx.writes = QueueCounts::rebuild(
                banks,
                s.writes.iter().map(|p| (p.addr.bank.bank, p.addr.row)),
                open,
            );
            self.idx[sc] = idx;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopac::config::MitigationConfig;
    use mopac_dram::device::DramConfig;
    use mopac_types::geometry::BankRef;

    fn controller(mit: MitigationConfig) -> MemoryController {
        let dram = DramDevice::new(DramConfig::tiny(mit));
        MemoryController::new(dram, McConfig::default())
    }

    fn run_until_done(
        mc: &mut MemoryController,
        mut now: Cycle,
        expect: usize,
        limit: Cycle,
    ) -> (Vec<Completion>, Cycle) {
        let mut done = Vec::new();
        let end = now + limit;
        while done.len() < expect && now < end {
            mc.tick(now, &mut done).unwrap();
            now += 1;
        }
        (done, now)
    }

    fn read(id: u64, bank: u32, row: u32) -> MemRequest {
        MemRequest {
            id,
            kind: AccessKind::Read,
            addr: DecodedAddr::new(BankRef::new(0, bank), row, 0),
        }
    }

    #[test]
    fn single_read_latency_is_act_rcd_cl_burst() {
        let mut mc = controller(MitigationConfig::baseline());
        assert!(mc.enqueue(read(1, 0, 5), 0));
        let (done, _) = run_until_done(&mut mc, 0, 1, 10_000);
        assert_eq!(done.len(), 1);
        // ACT@0 (first tick) -> RD@tRCD -> data at +CL+burst.
        assert_eq!(done[0].at, 42 + 42 + 8);
    }

    #[test]
    fn row_hits_are_prioritized() {
        let mut mc = controller(MitigationConfig::baseline());
        assert!(mc.enqueue(read(1, 0, 5), 0)); // opens row 5
        assert!(mc.enqueue(read(2, 0, 9), 0)); // conflict
        assert!(mc.enqueue(read(3, 0, 5), 0)); // hit on row 5
        let (done, _) = run_until_done(&mut mc, 0, 3, 100_000);
        let order: Vec<u64> = done.iter().map(|c| c.id).collect();
        assert_eq!(order, vec![1, 3, 2], "hit must overtake the conflict");
    }

    #[test]
    fn refresh_happens_every_trefi() {
        let mut mc = controller(MitigationConfig::baseline());
        let mut done = Vec::new();
        for now in 0..40_000 {
            mc.tick(now, &mut done).unwrap();
        }
        // 40000 cycles / 11700 per REF = 3 refreshes per sub-channel.
        assert_eq!(mc.dram().stats().refreshes, 6);
    }

    #[test]
    fn prac_alert_serviced_with_rfm() {
        let mut mc = controller(MitigationConfig::prac(500));
        let mut done = Vec::new();
        let mut now = 0;
        let mut id: u64 = 0;
        // Hammer row 0, interleaved with unique conflict rows so every
        // access is a row miss (classic Rowhammer pattern).
        while mc.dram().stats().rfms == 0 {
            if mc.queued() == 0 {
                id += 1;
                let row = if id.is_multiple_of(2) { 0 } else { (id % 900 + 1) as u32 };
                mc.enqueue(read(id, 0, row), now);
            }
            mc.tick(now, &mut done).unwrap();
            now += 1;
            assert!(now < 2_000_000, "no RFM after {now} cycles");
        }
        assert!(mc.stats().rfms_issued >= 1);
        assert_eq!(mc.dram().violations(), 0);
    }

    #[test]
    fn mopac_c_selects_roughly_p_fraction() {
        let mut mc = controller(MitigationConfig::mopac_c(500)); // p = 1/8
        let mut done = Vec::new();
        let mut now = 0;
        let mut id = 0;
        while mc.dram().stats().activates < 4000 {
            if mc.can_accept(0, AccessKind::Read) {
                id += 1;
                // Random-ish row per request: every access a row miss.
                mc.enqueue(read(id, (id % 4) as u32, (id * 37 % 701) as u32), now);
            }
            mc.tick(now, &mut done).unwrap();
            now += 1;
        }
        let st = mc.dram().stats();
        let frac = st.precharges_cu as f64 / (st.precharges + st.precharges_cu) as f64;
        assert!((frac - 0.125).abs() < 0.02, "PREcu fraction {frac}");
    }

    #[test]
    fn close_page_policy_closes_idle_rows() {
        let dram = DramDevice::new(DramConfig::tiny(MitigationConfig::baseline()));
        let mut mc = MemoryController::new(
            dram,
            McConfig {
                page_policy: PagePolicy::Closed,
                ..McConfig::default()
            },
        );
        assert!(mc.enqueue(read(1, 0, 5), 0));
        let (_, now) = run_until_done(&mut mc, 0, 1, 10_000);
        // Allow some cycles for the idle close (tRTP after the read).
        let mut done = Vec::new();
        for t in now..now + 200 {
            mc.tick(t, &mut done).unwrap();
        }
        assert!(mc.dram().open_row(0, 0).is_none(), "row left open");
    }

    #[test]
    fn write_drain_services_writes() {
        let mut mc = controller(MitigationConfig::baseline());
        for i in 0..8 {
            assert!(mc.enqueue(
                MemRequest {
                    id: i,
                    kind: AccessKind::Write,
                    addr: DecodedAddr::new(BankRef::new(0, (i % 4) as u32), i as u32, 0),
                },
                0
            ));
        }
        let mut done = Vec::new();
        for now in 0..100_000 {
            mc.tick(now, &mut done).unwrap();
            if mc.queued() == 0 {
                break;
            }
        }
        assert_eq!(mc.queued(), 0, "writes never drained");
        assert_eq!(mc.dram().stats().writes, 8);
    }
}
