//! Physical-address-to-DRAM mapping policies.
//!
//! The paper uses *Minimalist Open Page* (MOP, Kaseridis et al.) with 4
//! lines per row group: four consecutive cache lines map to the same row,
//! then the stream rotates across sub-channels and banks, and only then
//! returns to a different column group of the same row. MOP preserves
//! enough spatial locality for prefetch-friendly row hits while spreading
//! bank pressure.

use mopac_types::addr::{DecodedAddr, PhysAddr};
use mopac_types::geometry::{BankRef, DramGeometry};

/// An address-mapping policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mapping {
    /// Minimalist Open Page with `lines_per_group` consecutive lines per
    /// row group (4 in the paper).
    Mop {
        /// Consecutive cache lines mapped to the same row before
        /// rotating to the next sub-channel/bank.
        lines_per_group: u32,
    },
    /// Full row interleaving: an entire row's worth of consecutive lines
    /// before switching banks (maximizes row-buffer hits).
    RowInterleaved,
}

impl Mapping {
    /// The paper's configuration: MOP with 4 lines per group.
    #[must_use]
    pub fn paper_default() -> Self {
        Mapping::Mop { lines_per_group: 4 }
    }
}

/// Maps physical addresses to DRAM coordinates for a fixed geometry.
///
/// # Examples
///
/// ```
/// use mopac_memctrl::mapping::{AddressMapper, Mapping};
/// use mopac_types::geometry::DramGeometry;
/// use mopac_types::addr::PhysAddr;
///
/// let m = AddressMapper::new(DramGeometry::ddr5_32gb(), Mapping::paper_default());
/// let a = m.decode(PhysAddr::new(0));
/// let b = m.decode(PhysAddr::new(64));
/// // Consecutive lines stay in the same row (MOP group of 4).
/// assert_eq!((a.bank, a.row), (b.bank, b.row));
/// assert_ne!(a.col, b.col);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AddressMapper {
    geom: DramGeometry,
    mapping: Mapping,
}

impl AddressMapper {
    /// Creates a mapper.
    ///
    /// # Panics
    ///
    /// Panics if the geometry's line/row/bank counts are not powers of
    /// two, or MOP's `lines_per_group` is not a power of two dividing
    /// the lines per row.
    #[must_use]
    pub fn new(geom: DramGeometry, mapping: Mapping) -> Self {
        assert!(geom.lines_per_row().is_power_of_two());
        assert!(geom.banks_per_subchannel.is_power_of_two());
        assert!(geom.subchannels.is_power_of_two());
        assert!(geom.rows_per_bank.is_power_of_two());
        assert!(geom.channels.is_power_of_two());
        assert!(geom.ranks.is_power_of_two());
        if let Mapping::Mop { lines_per_group } = mapping {
            assert!(
                lines_per_group.is_power_of_two() && lines_per_group <= geom.lines_per_row(),
                "invalid MOP group size {lines_per_group}"
            );
        }
        Self { geom, mapping }
    }

    /// The geometry this mapper serves.
    #[must_use]
    pub fn geometry(&self) -> &DramGeometry {
        &self.geom
    }

    /// Decodes a physical address.
    #[must_use]
    pub fn decode(&self, addr: PhysAddr) -> DecodedAddr {
        let line = addr.line_index(self.geom.line_bytes) % self.geom.total_lines();
        match self.mapping {
            Mapping::Mop { lines_per_group } => self.decode_mop(line, lines_per_group),
            Mapping::RowInterleaved => self.decode_row_interleaved(line),
        }
    }

    /// Re-encodes DRAM coordinates back to a canonical physical address
    /// (inverse of [`Self::decode`]).
    #[must_use]
    pub fn encode(&self, d: DecodedAddr) -> PhysAddr {
        let line = match self.mapping {
            Mapping::Mop { lines_per_group } => self.encode_mop(d, lines_per_group),
            Mapping::RowInterleaved => self.encode_row_interleaved(d),
        };
        PhysAddr::from_line_index(line, self.geom.line_bytes)
    }

    fn decode_mop(&self, line: u64, group: u32) -> DecodedAddr {
        let g = &self.geom;
        let group = u64::from(group);
        // Rank is not a separate coordinate: it folds into the bank
        // dimension (`banks_per_subchannel_flat`), matching the
        // per-channel device view. Channel rotates right after
        // sub-channel so consecutive groups stripe across channels
        // before returning to the same bank. Both divisions are the
        // identity at channels = ranks = 1, so single-channel decode
        // is bit-identical to the pre-topology mapping.
        let banks_flat = u64::from(g.banks_per_subchannel_flat());
        let col_lo = line % group;
        let rest = line / group;
        let subch = rest % u64::from(g.subchannels);
        let rest = rest / u64::from(g.subchannels);
        let channel = rest % u64::from(g.channels);
        let rest = rest / u64::from(g.channels);
        let bank = rest % banks_flat;
        let rest = rest / banks_flat;
        let groups_per_row = u64::from(g.lines_per_row()) / group;
        let col_hi = rest % groups_per_row;
        let row = rest / groups_per_row;
        DecodedAddr {
            bank: BankRef::on_channel(channel as u32, subch as u32, bank as u32),
            row: (row % u64::from(g.rows_per_bank)) as u32,
            col: (col_hi * group + col_lo) as u32,
        }
    }

    fn encode_mop(&self, d: DecodedAddr, group: u32) -> u64 {
        let g = &self.geom;
        let group = u64::from(group);
        let col = u64::from(d.col);
        let col_lo = col % group;
        let col_hi = col / group;
        let groups_per_row = u64::from(g.lines_per_row()) / group;
        let mut rest = u64::from(d.row) * groups_per_row + col_hi;
        rest = rest * u64::from(g.banks_per_subchannel_flat()) + u64::from(d.bank.bank);
        rest = rest * u64::from(g.channels) + u64::from(d.bank.channel);
        rest = rest * u64::from(g.subchannels) + u64::from(d.bank.subchannel);
        rest * group + col_lo
    }

    fn decode_row_interleaved(&self, line: u64) -> DecodedAddr {
        let g = &self.geom;
        let banks_flat = u64::from(g.banks_per_subchannel_flat());
        let col = line % u64::from(g.lines_per_row());
        let rest = line / u64::from(g.lines_per_row());
        let subch = rest % u64::from(g.subchannels);
        let rest = rest / u64::from(g.subchannels);
        let channel = rest % u64::from(g.channels);
        let rest = rest / u64::from(g.channels);
        let bank = rest % banks_flat;
        let row = rest / banks_flat;
        DecodedAddr {
            bank: BankRef::on_channel(channel as u32, subch as u32, bank as u32),
            row: (row % u64::from(g.rows_per_bank)) as u32,
            col: col as u32,
        }
    }

    fn encode_row_interleaved(&self, d: DecodedAddr) -> u64 {
        let g = &self.geom;
        let mut rest = u64::from(d.row);
        rest = rest * u64::from(g.banks_per_subchannel_flat()) + u64::from(d.bank.bank);
        rest = rest * u64::from(g.channels) + u64::from(d.bank.channel);
        rest = rest * u64::from(g.subchannels) + u64::from(d.bank.subchannel);
        rest * u64::from(g.lines_per_row()) + u64::from(d.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mop_groups_of_four_share_a_row() {
        let m = AddressMapper::new(DramGeometry::ddr5_32gb(), Mapping::paper_default());
        let base = m.decode(PhysAddr::new(0));
        for i in 1..4u64 {
            let d = m.decode(PhysAddr::new(i * 64));
            assert_eq!((d.bank, d.row), (base.bank, base.row), "line {i}");
        }
        // The 5th line rotates to another sub-channel or bank.
        let d4 = m.decode(PhysAddr::new(4 * 64));
        assert_ne!(d4.bank, base.bank);
    }

    #[test]
    fn mop_streams_touch_all_banks() {
        let geom = DramGeometry::ddr5_32gb();
        let m = AddressMapper::new(geom, Mapping::paper_default());
        let mut seen = std::collections::HashSet::new();
        for i in 0..(4 * 64 * 2) {
            let d = m.decode(PhysAddr::new(i * 64));
            seen.insert(d.bank);
        }
        assert_eq!(seen.len(), geom.total_banks() as usize);
    }

    #[test]
    fn mop_round_trip() {
        let m = AddressMapper::new(DramGeometry::ddr5_32gb(), Mapping::paper_default());
        for addr in [0u64, 64, 4096, 1 << 20, (1 << 34) + 8 * 64] {
            let a = PhysAddr::new(addr).align_down(64);
            assert_eq!(m.encode(m.decode(a)), a, "addr {addr:#x}");
        }
    }

    #[test]
    fn row_interleaved_round_trip() {
        let m = AddressMapper::new(DramGeometry::tiny(), Mapping::RowInterleaved);
        for addr in [0u64, 64, 8192, 123 * 64] {
            let a = PhysAddr::new(addr);
            assert_eq!(m.encode(m.decode(a)), a.align_down(64));
        }
    }

    #[test]
    fn row_interleaved_keeps_full_row_together() {
        let geom = DramGeometry::ddr5_32gb();
        let m = AddressMapper::new(geom, Mapping::RowInterleaved);
        let base = m.decode(PhysAddr::new(0));
        for i in 1..u64::from(geom.lines_per_row()) {
            let d = m.decode(PhysAddr::new(i * 64));
            assert_eq!((d.bank, d.row), (base.bank, base.row));
        }
    }
}
