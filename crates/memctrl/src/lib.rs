//! DDR5 memory controller for the MoPAC reproduction.
//!
//! Provides address mapping ([`mapping`], Minimalist Open Page by
//! default) and the command scheduler ([`controller`]): FR-FCFS with
//! open/close/timeout page policies, write-drain hysteresis, periodic
//! refresh, ALERT-back-off handling (stall + RFM after the 180 ns
//! window), and MoPAC-C's probabilistic `PREcu` selection.
//!
//! # Examples
//!
//! ```
//! use mopac_memctrl::controller::{AccessKind, McConfig, MemoryController, MemRequest};
//! use mopac_memctrl::mapping::{AddressMapper, Mapping};
//! use mopac_dram::device::{DramConfig, DramDevice};
//! use mopac::config::MitigationConfig;
//! use mopac_types::addr::PhysAddr;
//!
//! let dram = DramDevice::new(DramConfig::tiny(MitigationConfig::mopac_c(500)));
//! let mapper = AddressMapper::new(dram.config().geometry, Mapping::paper_default());
//! let mut mc = MemoryController::new(dram, McConfig::default());
//! mc.enqueue_phys(1, AccessKind::Read, PhysAddr::new(0x4000), &mapper, 0);
//! let mut done = Vec::new();
//! for now in 0..1000 {
//!     mc.tick(now, &mut done);
//! }
//! assert_eq!(done.len(), 1);
//! ```

// The robustness contract (see DESIGN.md): library code surfaces
// failures as `MopacResult`, never by unwrapping. Tests are exempt
// via clippy.toml (`allow-unwrap-in-tests`).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod controller;
pub mod mapping;
mod sched_index;

pub use controller::{AccessKind, Completion, McConfig, MemRequest, MemoryController, PagePolicy};
pub use mapping::{AddressMapper, Mapping};
