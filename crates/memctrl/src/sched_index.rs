//! Incrementally maintained FR-FCFS scheduler index.
//!
//! The controller's original hot path rebuilt its candidate set from
//! scratch every cycle: an O(queue) row-hit scan, an O(queue²)
//! conflict scan (each conflict re-scanning the queue for surviving
//! hits), and O(banks) close sweeps — all repeated even when provably
//! nothing could issue. This module holds the state that makes those
//! scans incremental:
//!
//! * [`QueueCounts`] — per-bank totals and row-hit counts for one
//!   request queue, with bank bitmasks. "Hit" means *matches the bank's
//!   currently open row*, so the per-request FR-FCFS classification
//!   (hit / conflict / closed-bank) collapses to O(1) per bank:
//!   a bank's queued requests are all conflicts iff `hits == 0`.
//! * [`SubIndex`] — per-sub-channel bundle of the two queue counts, an
//!   invalidation epoch, and the cached next-wake cycle. The cache is
//!   valid only while the epoch is unchanged; every event that can
//!   change scheduling (enqueue, dequeue, any DRAM command on the
//!   sub-channel, external device mutation through `dram_mut`, an
//!   engine `TimingDemands` change) bumps the epoch.
//!
//! The invariants (what invalidates what, and why the fast path is
//! bit-identical to per-cycle rescans) are documented in DESIGN.md §10
//! and enforced by `tests/prop_sched_index.rs`.

use mopac_types::bankmask::BankMask;
use mopac_types::time::Cycle;

/// Per-bank request counts for one queue (reads or writes).
///
/// Maintained by the controller at the four events that can change it:
///
/// | event | update |
/// |---|---|
/// | enqueue | `total += 1`; `hits += 1` if the bank's open row matches |
/// | dequeue (column issue) | `total -= 1`, `hits -= 1` (a column command always serves a hit) |
/// | ACT | recount `hits` for that bank against the new open row |
/// | PRE | `hits = 0` for that bank (no open row, nothing can hit) |
///
/// Invariant: `hits[b] > 0` implies bank `b` has an open row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct QueueCounts {
    total: Vec<u32>,
    hits: Vec<u32>,
    /// Bit `b` set iff `total[b] > 0`.
    occ_mask: BankMask,
    /// Bit `b` set iff `hits[b] > 0`.
    hits_mask: BankMask,
}

impl QueueCounts {
    pub(crate) fn new(banks: usize) -> Self {
        debug_assert!(
            banks as u32 <= BankMask::CAPACITY,
            "bank masks hold at most {} banks",
            BankMask::CAPACITY
        );
        Self {
            total: vec![0; banks],
            hits: vec![0; banks],
            occ_mask: BankMask::empty(),
            hits_mask: BankMask::empty(),
        }
    }

    /// Queued requests for `bank`.
    #[cfg(test)]
    pub(crate) fn total(&self, bank: u32) -> u32 {
        self.total[bank as usize]
    }

    /// Queued requests for `bank` matching its open row.
    pub(crate) fn hits(&self, bank: u32) -> u32 {
        self.hits[bank as usize]
    }

    /// Banks with at least one queued request.
    pub(crate) fn occ_mask(&self) -> BankMask {
        self.occ_mask
    }

    /// Banks with at least one queued row hit.
    pub(crate) fn hits_mask(&self) -> BankMask {
        self.hits_mask
    }

    pub(crate) fn on_enqueue(&mut self, bank: u32, hit: bool) {
        let b = bank as usize;
        self.total[b] += 1;
        self.occ_mask.set(bank);
        if hit {
            self.hits[b] += 1;
            self.hits_mask.set(bank);
        }
    }

    /// A column command removed one request from `bank`'s queue; the
    /// request it served was by construction a hit on the open row.
    pub(crate) fn on_dequeue_hit(&mut self, bank: u32) {
        let b = bank as usize;
        debug_assert!(self.total[b] > 0 && self.hits[b] > 0);
        self.total[b] -= 1;
        self.hits[b] -= 1;
        if self.total[b] == 0 {
            self.occ_mask.clear(bank);
        }
        if self.hits[b] == 0 {
            self.hits_mask.clear(bank);
        }
    }

    /// An ACT opened `open_row` in `bank`: recount that bank's hits
    /// against the new row. `reqs` iterates the whole queue as
    /// `(bank, row)` pairs; only entries for `bank` are counted.
    pub(crate) fn rescan_bank(
        &mut self,
        bank: u32,
        open_row: u32,
        reqs: impl Iterator<Item = (u32, u32)>,
    ) {
        let n = reqs.filter(|&(b, r)| b == bank && r == open_row).count() as u32;
        self.hits[bank as usize] = n;
        if n > 0 {
            self.hits_mask.set(bank);
        } else {
            self.hits_mask.clear(bank);
        }
    }

    /// A PRE closed `bank`: nothing can hit a closed bank.
    pub(crate) fn clear_hits(&mut self, bank: u32) {
        self.hits[bank as usize] = 0;
        self.hits_mask.clear(bank);
    }

    /// A from-scratch rebuild over the full queue — the reference the
    /// incremental maintenance must agree with (property tests and
    /// [`debug parity checks`](crate::controller::MemoryController::debug_verify_index)).
    pub(crate) fn rebuild(
        banks: usize,
        reqs: impl Iterator<Item = (u32, u32)>,
        open_row: impl Fn(u32) -> Option<u32>,
    ) -> Self {
        let mut c = Self::new(banks);
        for (bank, row) in reqs {
            c.on_enqueue(bank, open_row(bank) == Some(row));
        }
        c
    }
}

/// The cached next-wake for one sub-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WakeCache {
    /// The computed wake cycle (strictly after `computed_at`).
    wake: Cycle,
    /// Epoch at computation time; the cache is dead once it differs.
    epoch: u64,
    /// Cycle the computation ran at (for parity re-checks).
    computed_at: Cycle,
}

/// Per-sub-channel scheduler index: queue counts + wake cache + epoch.
#[derive(Debug, Clone)]
pub(crate) struct SubIndex {
    pub(crate) reads: QueueCounts,
    pub(crate) writes: QueueCounts,
    /// Bumped by every event that can change what or when the
    /// sub-channel could issue. The wake cache is valid only at the
    /// epoch it was computed under.
    epoch: u64,
    cache: Option<WakeCache>,
}

impl SubIndex {
    pub(crate) fn new(banks: usize) -> Self {
        Self {
            reads: QueueCounts::new(banks),
            writes: QueueCounts::new(banks),
            epoch: 0,
            cache: None,
        }
    }

    /// Kills the cached wake. Called on: enqueue/dequeue, every DRAM
    /// command issued on this sub-channel, any external device mutation
    /// (`dram_mut`), and an observed `TimingDemands` change.
    ///
    /// The cache entry is dropped eagerly, not just epoch-orphaned:
    /// `wrapping_add` alone would let a stale entry validate again once
    /// the epoch wraps back to the value it was computed under (2^64
    /// bumps away, but a correctness cliff, not a latency one — the
    /// revalidated wake could suppress ticks that must run). With the
    /// entry gone, a wrapped epoch can never resurrect it; see the
    /// `wrapped_epoch_cannot_revalidate_stale_cache` regression test.
    pub(crate) fn invalidate(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        self.cache = None;
    }

    /// The cached wake, if still valid (epoch unchanged since it was
    /// computed). The caller must additionally check `now < wake`
    /// before treating the current tick as a provable no-op.
    pub(crate) fn valid_wake(&self) -> Option<Cycle> {
        self.cache
            .filter(|c| c.epoch == self.epoch)
            .map(|c| c.wake)
    }

    /// When the valid cache was computed (parity checks).
    pub(crate) fn valid_computed_at(&self) -> Option<Cycle> {
        self.cache
            .filter(|c| c.epoch == self.epoch)
            .map(|c| c.computed_at)
    }

    /// Test-only: pins the epoch to an arbitrary value, so tests can
    /// park it at the wrap boundary and simulate a full trip around
    /// the `u64` space without 2^64 invalidations.
    #[cfg(test)]
    pub(crate) fn set_epoch_for_test(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    /// Stores the wake computed at `now` under the current epoch. A
    /// `None` wake (nothing pending at all) is not cached — the full
    /// tick path stays authoritative for it.
    pub(crate) fn store_wake(&mut self, wake: Option<Cycle>, now: Cycle) {
        self.cache = wake.map(|w| {
            debug_assert!(w > now, "cached wake must be strictly after now");
            WakeCache {
                wake: w,
                epoch: self.epoch,
                computed_at: now,
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_track_enqueue_dequeue() {
        let mut c = QueueCounts::new(4);
        c.on_enqueue(1, false);
        c.on_enqueue(1, true);
        c.on_enqueue(3, true);
        assert_eq!(c.total(1), 2);
        assert_eq!(c.hits(1), 1);
        assert_eq!(c.occ_mask(), BankMask::from_u64(0b1010));
        assert_eq!(c.hits_mask(), BankMask::from_u64(0b1010));
        c.on_dequeue_hit(1);
        assert_eq!(c.total(1), 1);
        assert_eq!(c.hits(1), 0);
        assert_eq!(c.occ_mask(), BankMask::from_u64(0b1010));
        assert_eq!(c.hits_mask(), BankMask::from_u64(0b1000));
        c.on_dequeue_hit(3);
        assert_eq!(c.occ_mask(), BankMask::from_u64(0b0010));
        assert!(c.hits_mask().is_empty());
    }

    #[test]
    fn rescan_and_clear_follow_row_state() {
        let mut c = QueueCounts::new(2);
        c.on_enqueue(0, false);
        c.on_enqueue(0, false);
        // ACT opens row 7; one queued request targets it.
        c.rescan_bank(0, 7, [(0u32, 7u32), (0, 9)].into_iter());
        assert_eq!(c.hits(0), 1);
        assert_eq!(c.hits_mask(), BankMask::single(0));
        c.clear_hits(0);
        assert_eq!(c.hits(0), 0);
        assert!(c.hits_mask().is_empty());
        assert_eq!(c.total(0), 2, "PRE does not dequeue anything");
    }

    #[test]
    fn rebuild_matches_incremental() {
        let reqs = [(0u32, 5u32), (1, 2), (0, 5), (1, 3)];
        let open = |b: u32| (b == 0).then_some(5);
        let fresh = QueueCounts::rebuild(2, reqs.into_iter(), open);
        let mut inc = QueueCounts::new(2);
        for (b, r) in reqs {
            inc.on_enqueue(b, open(b) == Some(r));
        }
        assert_eq!(fresh, inc);
    }

    #[test]
    fn cache_dies_on_invalidate() {
        let mut s = SubIndex::new(4);
        assert_eq!(s.valid_wake(), None);
        s.store_wake(Some(100), 10);
        assert_eq!(s.valid_wake(), Some(100));
        assert_eq!(s.valid_computed_at(), Some(10));
        s.invalidate();
        assert_eq!(s.valid_wake(), None);
        s.store_wake(None, 10);
        assert_eq!(s.valid_wake(), None);
    }

    #[test]
    fn wrapped_epoch_cannot_revalidate_stale_cache() {
        let mut s = SubIndex::new(4);
        // Cache a wake with the epoch parked at the wrap boundary.
        s.set_epoch_for_test(u64::MAX);
        s.store_wake(Some(500), 10);
        assert_eq!(s.valid_wake(), Some(500));
        // The next invalidation wraps the epoch to 0; the cache must
        // die with it.
        s.invalidate();
        assert_eq!(s.valid_wake(), None);
        // Simulate the epoch coming all the way back around to the
        // value the stale entry was computed under. Before the
        // eager-clear fix this revalidated the dead entry (epoch match
        // on a reused value); it must stay invalid.
        s.set_epoch_for_test(u64::MAX);
        assert_eq!(
            s.valid_wake(),
            None,
            "stale wake cache revalidated after epoch wrap-around"
        );
        assert_eq!(s.valid_computed_at(), None);
        // A fresh store at the reused epoch works normally.
        s.store_wake(Some(900), 20);
        assert_eq!(s.valid_wake(), Some(900));
    }
}
