//! Property tests for address mapping: decode/encode must be a bijection
//! over the device's address space for every policy.

use mopac_memctrl::mapping::{AddressMapper, Mapping};
use mopac_types::addr::PhysAddr;
use mopac_types::geometry::DramGeometry;
use proptest::prelude::*;

fn mappings() -> Vec<Mapping> {
    vec![
        Mapping::Mop { lines_per_group: 1 },
        Mapping::Mop { lines_per_group: 4 },
        Mapping::Mop { lines_per_group: 16 },
        Mapping::RowInterleaved,
    ]
}

proptest! {
    #[test]
    fn decode_encode_round_trip(line in 0u64..(32u64 << 30) / 64) {
        let geom = DramGeometry::ddr5_32gb();
        for mapping in mappings() {
            let m = AddressMapper::new(geom, mapping);
            let addr = PhysAddr::from_line_index(line, 64);
            let d = m.decode(addr);
            prop_assert!(d.row < geom.rows_per_bank);
            prop_assert!(d.col < geom.lines_per_row());
            prop_assert!(d.bank.subchannel < geom.subchannels);
            prop_assert!(d.bank.bank < geom.banks_per_subchannel);
            prop_assert_eq!(m.encode(d), addr, "{:?}", mapping);
        }
    }

    #[test]
    fn distinct_lines_map_to_distinct_coordinates(
        a in 0u64..(1u64 << 29),
        b in 0u64..(1u64 << 29),
    ) {
        prop_assume!(a != b);
        let geom = DramGeometry::ddr5_32gb();
        let m = AddressMapper::new(geom, Mapping::paper_default());
        let da = m.decode(PhysAddr::from_line_index(a, 64));
        let db = m.decode(PhysAddr::from_line_index(b, 64));
        prop_assert_ne!((da.bank, da.row, da.col), (db.bank, db.row, db.col));
    }
}
