//! Property tests for address mapping: decode/encode must be a bijection
//! over the device's address space for every policy.

use mopac_memctrl::mapping::{AddressMapper, Mapping};
use mopac_types::addr::PhysAddr;
use mopac_types::check::prop_check;
use mopac_types::geometry::DramGeometry;
use mopac_types::prop_ensure;

fn mappings() -> Vec<Mapping> {
    vec![
        Mapping::Mop { lines_per_group: 1 },
        Mapping::Mop { lines_per_group: 4 },
        Mapping::Mop { lines_per_group: 16 },
        Mapping::RowInterleaved,
    ]
}

#[test]
fn decode_encode_round_trip() {
    prop_check("decode_encode_round_trip", 256, |rng| {
        let line = rng.below((32u64 << 30) / 64);
        let geom = DramGeometry::ddr5_32gb();
        for mapping in mappings() {
            let m = AddressMapper::new(geom, mapping);
            let addr = PhysAddr::from_line_index(line, 64);
            let d = m.decode(addr);
            prop_ensure!(d.row < geom.rows_per_bank, "row out of range: {:?}", mapping);
            prop_ensure!(d.col < geom.lines_per_row(), "col out of range: {:?}", mapping);
            prop_ensure!(d.bank.subchannel < geom.subchannels, "subch out of range");
            prop_ensure!(d.bank.bank < geom.banks_per_subchannel, "bank out of range");
            prop_ensure!(
                m.encode(d) == addr,
                "round trip failed for line {line} under {:?}",
                mapping
            );
        }
        Ok(())
    });
}

#[test]
fn distinct_lines_map_to_distinct_coordinates() {
    prop_check("distinct_lines_map_to_distinct_coordinates", 256, |rng| {
        let a = rng.below(1 << 29);
        let b = rng.below(1 << 29);
        if a == b {
            return Ok(());
        }
        let geom = DramGeometry::ddr5_32gb();
        let m = AddressMapper::new(geom, Mapping::paper_default());
        let da = m.decode(PhysAddr::from_line_index(a, 64));
        let db = m.decode(PhysAddr::from_line_index(b, 64));
        prop_ensure!(
            (da.bank, da.row, da.col) != (db.bank, db.row, db.col),
            "lines {a} and {b} collided"
        );
        Ok(())
    });
}
