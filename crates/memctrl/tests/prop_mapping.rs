//! Property tests for address mapping: decode/encode must be a bijection
//! over the device's address space for every policy.

use mopac_memctrl::mapping::{AddressMapper, Mapping};
use mopac_types::addr::PhysAddr;
use mopac_types::check::prop_check;
use mopac_types::geometry::DramGeometry;
use mopac_types::prop_ensure;

fn mappings() -> Vec<Mapping> {
    vec![
        Mapping::Mop { lines_per_group: 1 },
        Mapping::Mop { lines_per_group: 4 },
        Mapping::Mop { lines_per_group: 16 },
        Mapping::RowInterleaved,
    ]
}

#[test]
fn decode_encode_round_trip() {
    prop_check("decode_encode_round_trip", 256, |rng| {
        let line = rng.below((32u64 << 30) / 64);
        let geom = DramGeometry::ddr5_32gb();
        for mapping in mappings() {
            let m = AddressMapper::new(geom, mapping);
            let addr = PhysAddr::from_line_index(line, 64);
            let d = m.decode(addr);
            prop_ensure!(d.row < geom.rows_per_bank, "row out of range: {:?}", mapping);
            prop_ensure!(d.col < geom.lines_per_row(), "col out of range: {:?}", mapping);
            prop_ensure!(d.bank.subchannel < geom.subchannels, "subch out of range");
            prop_ensure!(d.bank.bank < geom.banks_per_subchannel, "bank out of range");
            prop_ensure!(
                m.encode(d) == addr,
                "round trip failed for line {line} under {:?}",
                mapping
            );
        }
        Ok(())
    });
}

/// Draws a random power-of-two topology, including the channel and
/// rank dimensions (1..=8 channels, 1..=4 ranks).
fn random_geometry(rng: &mut mopac_types::rng::DetRng) -> DramGeometry {
    DramGeometry {
        channels: 1 << rng.below(4),
        ranks: 1 << rng.below(3),
        subchannels: 1 << rng.below(2),
        banks_per_subchannel: 1 << (1 + rng.below(5)),
        rows_per_bank: 1 << (7 + rng.below(6)),
        subarrays_per_bank: 1 << rng.below(4),
        row_bytes: 1 << (9 + rng.below(3)),
        line_bytes: 64,
    }
}

#[test]
fn decode_encode_round_trip_on_random_topologies() {
    prop_check("decode_encode_round_trip_on_random_topologies", 512, |rng| {
        let geom = random_geometry(rng);
        let line = rng.below(geom.total_lines());
        for mapping in mappings() {
            if let Mapping::Mop { lines_per_group } = mapping {
                if lines_per_group > geom.lines_per_row() {
                    continue;
                }
            }
            let m = AddressMapper::new(geom, mapping);
            let addr = PhysAddr::from_line_index(line, geom.line_bytes);
            let d = m.decode(addr);
            prop_ensure!(d.bank.channel < geom.channels, "channel out of range: {geom:?}");
            prop_ensure!(
                d.bank.bank < geom.banks_per_subchannel_flat(),
                "rank-folded bank out of range: {geom:?}"
            );
            prop_ensure!(d.row < geom.rows_per_bank, "row out of range: {geom:?}");
            prop_ensure!(
                m.encode(d) == addr,
                "round trip failed for line {line} under {:?} on {geom:?}",
                mapping
            );
        }
        Ok(())
    });
}

#[test]
fn single_channel_decode_matches_multi_channel_view() {
    // At channels = ranks = 1 the channel/rank divisions are the
    // identity, so the decode of any line on an N-channel geometry,
    // restricted to channel 0's lines, must agree with the per-channel
    // view used by the device layer.
    prop_check("single_channel_decode_matches_multi_channel_view", 256, |rng| {
        let mut geom = random_geometry(rng);
        geom.channels = 1;
        let view = geom.channel_view();
        let m_full = AddressMapper::new(geom, Mapping::paper_default());
        let m_view = AddressMapper::new(view, Mapping::paper_default());
        let line = rng.below(geom.total_lines());
        let addr = PhysAddr::from_line_index(line, geom.line_bytes);
        let a = m_full.decode(addr);
        let b = m_view.decode(addr);
        prop_ensure!(a == b, "channel_view decode diverged at line {line}: {a:?} vs {b:?}");
        Ok(())
    });
}

#[test]
fn distinct_lines_map_to_distinct_coordinates() {
    prop_check("distinct_lines_map_to_distinct_coordinates", 256, |rng| {
        let a = rng.below(1 << 29);
        let b = rng.below(1 << 29);
        if a == b {
            return Ok(());
        }
        let geom = DramGeometry::ddr5_32gb();
        let m = AddressMapper::new(geom, Mapping::paper_default());
        let da = m.decode(PhysAddr::from_line_index(a, 64));
        let db = m.decode(PhysAddr::from_line_index(b, 64));
        prop_ensure!(
            (da.bank, da.row, da.col) != (db.bank, db.row, db.col),
            "lines {a} and {b} collided"
        );
        Ok(())
    });
}
