//! Property tests for the incremental scheduler index.
//!
//! The tentpole invariant behind the event-driven fast path: the
//! per-bank counts and cached wake the controller maintains
//! incrementally must always agree with a from-scratch rebuild — under
//! randomized request streams, page policies, injected faults, and
//! ABO storms — and a published `next_wake` must never be late (no
//! command can issue strictly before it).

use mopac::config::MitigationConfig;
use mopac_dram::device::{DramConfig, DramDevice};
use mopac_memctrl::controller::{
    AccessKind, Completion, McConfig, MemoryController, PagePolicy,
};
use mopac_memctrl::mapping::{AddressMapper, Mapping};
use mopac_types::addr::PhysAddr;
use mopac_types::check::prop_check;
use mopac_types::geometry::DramGeometry;
use mopac_types::prop_ensure;
use mopac_types::rng::DetRng;
use mopac_types::Cycle;

fn mitigations() -> Vec<MitigationConfig> {
    vec![
        MitigationConfig::baseline(),
        MitigationConfig::prac(500),
        MitigationConfig::mopac_c(500),
        MitigationConfig::mopac_d(500),
    ]
}

fn policies() -> Vec<PagePolicy> {
    vec![
        PagePolicy::Open,
        PagePolicy::Closed,
        PagePolicy::ClosedIdle,
        PagePolicy::TimeoutNs(120.0),
    ]
}

fn build_mc(mit: MitigationConfig, policy: PagePolicy, seed: u64) -> MemoryController {
    let mut dram_cfg = DramConfig::tiny(mit);
    dram_cfg.enable_checker = false;
    let dram = DramDevice::new(dram_cfg);
    let cfg = McConfig {
        seed,
        page_policy: policy,
        ..McConfig::default()
    };
    MemoryController::new(dram, cfg)
}

/// One random enqueue attempt with probability `p`.
fn maybe_enqueue(
    mc: &mut MemoryController,
    rng: &mut DetRng,
    mapper: &AddressMapper,
    geom: DramGeometry,
    id: &mut u64,
    now: Cycle,
    p: f64,
) {
    if rng.bernoulli(p) {
        let kind = if rng.bernoulli(0.25) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let lines = geom.capacity_bytes() / u64::from(geom.line_bytes);
        let addr = PhysAddr::from_line_index(rng.below(lines), geom.line_bytes);
        if mc.enqueue_phys(*id, kind, addr, mapper, now) {
            *id += 1;
        }
    }
}

/// The incremental index always agrees with a from-scratch rebuild
/// under random request streams across mitigations and page policies.
#[test]
fn index_agrees_with_full_rescan_under_random_streams() {
    prop_check("index_agrees_with_full_rescan_under_random_streams", 8, |rng| {
        let mit = mitigations()[rng.below(4) as usize];
        let policy = policies()[rng.below(4) as usize];
        let mut mc = build_mc(mit, policy, rng.next_u64());
        let geom = DramGeometry::tiny();
        let mapper = AddressMapper::new(geom, Mapping::paper_default());
        let mut done: Vec<Completion> = Vec::new();
        let mut id = 0u64;
        for now in 0..8_000u64 {
            maybe_enqueue(&mut mc, rng, &mapper, geom, &mut id, now, 0.35);
            if let Err(e) = mc.tick(now, &mut done) {
                return Err(format!("tick({now}) errored: {e}"));
            }
            mc.debug_verify_index()
                .map_err(|e| format!("cycle {now} ({mit:?}, {policy:?}): {e}"))?;
        }
        prop_ensure!(mc.stats().reads_done > 0, "run serviced no reads");
        Ok(())
    });
}

/// Same agreement under fault injection: RFM delays and drops, stuck
/// banks, and ALERT storms (bursts of injected ALERTs that force the
/// controller through its ABO drain path over and over).
#[test]
fn index_agrees_under_faults_and_abo_storms() {
    prop_check("index_agrees_under_faults_and_abo_storms", 8, |rng| {
        let mit = mitigations()[1 + rng.below(3) as usize]; // ALERT needs a PRAC-family engine
        let policy = policies()[rng.below(4) as usize];
        let mut mc = build_mc(mit, policy, rng.next_u64());
        let geom = DramGeometry::tiny();
        let mapper = AddressMapper::new(geom, Mapping::paper_default());
        mc.dram_mut().inject_rfm_delay(rng.below(300));
        if rng.bernoulli(0.5) {
            mc.dram_mut().inject_rfm_drop(1 + rng.below(3) as u32);
        }
        let cycles: Cycle = 10_000;
        let storm_at = 200 + rng.below(cycles / 2);
        let storm_len = 1_000 + rng.below(2_000);
        let stuck_at = 100 + rng.below(cycles / 2);
        let stuck_len = 500 + rng.below(2_500);
        let mut done: Vec<Completion> = Vec::new();
        let mut id = 0u64;
        for now in 0..cycles {
            // ABO storm: a fresh ALERT every ~200 cycles for the storm
            // window, alternating sub-channels.
            if now >= storm_at && now < storm_at + storm_len && now % 200 == storm_at % 200 {
                let sc = (now / 200 % 2) as u32;
                if let Err(e) = mc.dram_mut().inject_alert(sc, now) {
                    return Err(format!("inject_alert failed: {e}"));
                }
            }
            if now == stuck_at {
                let bank = rng.below(u64::from(geom.banks_per_subchannel)) as u32;
                if let Err(e) = mc.dram_mut().inject_stuck_bank(0, bank, now + stuck_len) {
                    return Err(format!("inject_stuck_bank failed: {e}"));
                }
            }
            maybe_enqueue(&mut mc, rng, &mapper, geom, &mut id, now, 0.4);
            if let Err(e) = mc.tick(now, &mut done) {
                return Err(format!("tick({now}) errored under faults: {e}"));
            }
            mc.debug_verify_index()
                .map_err(|e| format!("cycle {now} ({mit:?}, {policy:?}): {e}"))?;
        }
        Ok(())
    });
}

/// `next_wake` may be early but never late: between `now` and the
/// published wake, ticking every cycle issues nothing. Probed on a
/// clone so the main run's schedule is undisturbed.
#[test]
fn published_wake_is_never_late() {
    prop_check("published_wake_is_never_late", 6, |rng| {
        let mit = mitigations()[rng.below(4) as usize];
        let policy = policies()[rng.below(4) as usize];
        let mut mc = build_mc(mit, policy, rng.next_u64());
        let geom = DramGeometry::tiny();
        let mapper = AddressMapper::new(geom, Mapping::paper_default());
        let mut done: Vec<Completion> = Vec::new();
        let mut id = 0u64;
        let mut probes = 0u32;
        for now in 0..6_000u64 {
            maybe_enqueue(&mut mc, rng, &mapper, geom, &mut id, now, 0.3);
            if let Err(e) = mc.tick(now, &mut done) {
                return Err(format!("tick({now}) errored: {e}"));
            }
            if now % 97 == 0 {
                if let Some(wake) = mc.next_wake(now) {
                    prop_ensure!(wake > now, "wake {wake} not strictly after now {now}");
                    let end = wake.min(now + 1 + 2_000);
                    let mut probe = mc.clone();
                    let mut sink: Vec<Completion> = Vec::new();
                    for t in (now + 1)..end {
                        let issued = probe
                            .tick(t, &mut sink)
                            .map_err(|e| format!("probe tick({t}) errored: {e}"))?;
                        prop_ensure!(
                            issued == 0,
                            "next_wake({now}) = {wake} was late: {issued} command(s) \
                             issued at {t} ({mit:?}, {policy:?})"
                        );
                    }
                    probes += 1;
                }
            }
        }
        prop_ensure!(probes > 0, "no wake probes ran");
        Ok(())
    });
}
