//! Property tests for the memory controller under fault injection.
//!
//! The key robustness invariant: no matter how RFMs are delayed, ALERTs
//! injected, or banks wedged, the controller never issues a command the
//! device's timing gates would reject — every `tick` returns `Ok`, and
//! the externally observable ACT stream respects tRC, tRRD and tFAW.
//! Direct API misuse, by contrast, must surface as a typed `Err`, never
//! a panic.

use mopac::config::MitigationConfig;
use mopac_dram::device::{DramConfig, DramDevice};
use mopac_memctrl::controller::{AccessKind, Completion, McConfig, MemoryController};
use mopac_memctrl::mapping::{AddressMapper, Mapping};
use mopac_types::addr::PhysAddr;
use mopac_types::check::prop_check;
use mopac_types::error::MopacError;
use mopac_types::geometry::DramGeometry;
use mopac_types::prop_ensure;
use mopac_types::rng::DetRng;
use mopac_types::Cycle;

fn mitigations() -> Vec<MitigationConfig> {
    vec![
        MitigationConfig::baseline(),
        MitigationConfig::prac(500),
        MitigationConfig::mopac_c(500),
        MitigationConfig::mopac_d(500),
    ]
}

fn build_mc(mit: MitigationConfig, seed: u64) -> MemoryController {
    // Timing properties don't need the Rowhammer oracle; skipping it
    // keeps the 12-case sweeps fast.
    let mut dram_cfg = DramConfig::tiny(mit);
    dram_cfg.enable_checker = false;
    let dram = DramDevice::new(dram_cfg);
    let cfg = McConfig {
        seed,
        ..McConfig::default()
    };
    MemoryController::new(dram, cfg)
}

/// Drives a controller with a random request mix while injecting
/// RFM-delay, ALERT and stuck-bank faults, and shadow-checks the ACT
/// stream observed through `open_row` against tRC / tRRD / tFAW.
#[test]
fn act_ordering_holds_under_rfm_delay_faults() {
    prop_check("act_ordering_holds_under_rfm_delay_faults", 12, |rng| {
        let mit = mitigations()[rng.below(4) as usize];
        let mut mc = build_mc(mit, rng.next_u64());
        let geom = DramGeometry::tiny();
        let mapper = AddressMapper::new(geom, Mapping::paper_default());
        let lines = geom.capacity_bytes() / u64::from(geom.line_bytes);

        // Fault schedule: a standing RFM delay, plus ALERT pulses and an
        // occasional wedged bank at random points of the run.
        mc.dram_mut()
            .inject_rfm_delay(50 + rng.below(350));
        let cycles: Cycle = 12_000;
        let alert_at: Vec<Cycle> = (0..4).map(|_| 100 + rng.below(cycles - 200)).collect();
        let stuck_at = 100 + rng.below(cycles / 2);
        let stuck_len = 500 + rng.below(3_000);

        // The minimum legal spacings, conservative across the base and
        // PRAC timing sets (the device switches between them per PRE
        // kind, so the weaker bound is the sound one to assert).
        let t_rc = mc
            .dram()
            .timing_base()
            .t_rc
            .min(mc.dram().timing_prac().t_rc);
        let t_rrd = mc
            .dram()
            .timing_base()
            .t_rrd
            .min(mc.dram().timing_prac().t_rrd);
        let t_faw = mc
            .dram()
            .timing_base()
            .t_faw
            .min(mc.dram().timing_prac().t_faw);

        let banks = geom.banks_per_subchannel as usize;
        let scs = geom.subchannels as usize;
        // Shadow state: last observed ACT per bank, and the full per-sub-
        // channel ACT time series (poll order == issue order, since at
        // most one command issues per sub-channel per cycle).
        let mut last_act: Vec<Vec<Option<Cycle>>> = vec![vec![None; banks]; scs];
        let mut sc_acts: Vec<Vec<Cycle>> = vec![Vec::new(); scs];

        let mut done: Vec<Completion> = Vec::new();
        let mut id = 0u64;
        for now in 0..cycles {
            if alert_at.contains(&now) {
                let sc = rng.below(scs as u64) as u32;
                if let Err(e) = mc.dram_mut().inject_alert(sc, now) {
                    return Err(format!("inject_alert failed: {e}"));
                }
            }
            if now == stuck_at {
                let bank = rng.below(banks as u64) as u32;
                if let Err(e) = mc.dram_mut().inject_stuck_bank(0, bank, now + stuck_len) {
                    return Err(format!("inject_stuck_bank failed: {e}"));
                }
            }
            if rng.bernoulli(0.3) {
                let kind = if rng.bernoulli(0.25) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                let addr = PhysAddr::from_line_index(rng.below(lines), geom.line_bytes);
                if mc.enqueue_phys(id, kind, addr, &mapper, now) {
                    id += 1;
                }
            }
            if let Err(e) = mc.tick(now, &mut done) {
                return Err(format!("tick({now}) errored under faults: {e}"));
            }
            for (sc, acts) in sc_acts.iter_mut().enumerate() {
                for (bank, last) in last_act[sc].iter_mut().enumerate() {
                    let Some(open) = mc.dram().open_row(sc as u32, bank as u32) else {
                        continue;
                    };
                    if *last == Some(open.opened_at) {
                        continue; // same activation as last poll
                    }
                    if let Some(prev) = *last {
                        prop_ensure!(
                            open.opened_at - prev >= t_rc,
                            "tRC violated on sc{sc}/bank{bank}: ACT at {} then {} (tRC {t_rc})",
                            prev,
                            open.opened_at
                        );
                    }
                    *last = Some(open.opened_at);
                    acts.push(open.opened_at);
                }
            }
        }

        for (sc, acts) in sc_acts.iter().enumerate() {
            prop_ensure!(!sc_acts[0].is_empty(), "no ACTs observed on sc0");
            for w in acts.windows(2) {
                prop_ensure!(
                    w[1] - w[0] >= t_rrd,
                    "tRRD violated on sc{sc}: ACTs at {} and {} (tRRD {t_rrd})",
                    w[0],
                    w[1]
                );
            }
            // tFAW: at most four ACTs in any tFAW window, i.e. the 5th
            // ACT must land at least tFAW after the 1st.
            for w in acts.windows(5) {
                prop_ensure!(
                    w[4] - w[0] >= t_faw,
                    "tFAW violated on sc{sc}: 5 ACTs within {} < {t_faw}",
                    w[4] - w[0]
                );
            }
        }
        Ok(())
    });
}

/// Direct device misuse — out-of-range banks, gate-violating commands,
/// column accesses to closed banks — is always a typed `Err`, never a
/// panic, and never perturbs device state (the same legal sequence still
/// works afterwards).
#[test]
fn device_misuse_is_typed_error_never_panic() {
    prop_check("device_misuse_is_typed_error_never_panic", 32, |rng| {
        let mit = mitigations()[rng.below(4) as usize];
        let mut d = DramDevice::new(DramConfig::tiny(mit));
        let geom = DramGeometry::tiny();

        // Out-of-range coordinates.
        let bad_bank = geom.banks_per_subchannel + rng.below(100) as u32;
        prop_ensure!(
            matches!(d.activate(0, bad_bank, 0, 0, true), Err(MopacError::Config { .. })),
            "OOR activate must be a config error"
        );
        prop_ensure!(
            matches!(d.read(geom.subchannels + 1, 0, 0), Err(MopacError::Config { .. })),
            "OOR subchannel read must be a config error"
        );

        // Column command to a closed bank.
        let bank = rng.below(u64::from(geom.banks_per_subchannel)) as u32;
        prop_ensure!(
            matches!(d.read(0, bank, 10), Err(MopacError::TimingProtocol { .. })),
            "read on closed bank must be a timing error"
        );
        prop_ensure!(
            matches!(d.precharge(0, bank, 10), Err(MopacError::TimingProtocol { .. })),
            "precharge on closed bank must be a timing error"
        );

        // Legal ACT, then gate violations against the open bank.
        let row = rng.below(u64::from(geom.rows_per_bank)) as u32;
        if let Err(e) = d.activate(0, bank, row, 100, true) {
            return Err(format!("legal ACT rejected: {e}"));
        }
        prop_ensure!(
            matches!(
                d.activate(0, bank, row, 101, true),
                Err(MopacError::TimingProtocol { .. })
            ),
            "ACT on open bank must be a timing error"
        );
        prop_ensure!(
            matches!(d.read(0, bank, 100), Err(MopacError::TimingProtocol { .. })),
            "read before tRCD must be a timing error"
        );
        prop_ensure!(
            matches!(d.precharge(0, bank, 100), Err(MopacError::TimingProtocol { .. })),
            "PRE before tRAS must be a timing error"
        );
        prop_ensure!(
            matches!(d.refresh(0, 10_000), Err(MopacError::TimingProtocol { .. })),
            "REF with an open bank must be a timing error"
        );

        // After all that misuse, the legal sequence still completes.
        let col_at = d
            .earliest_column(0, bank, row)
            .ok_or("open bank must have a column gate")?;
        if let Err(e) = d.read(0, bank, col_at) {
            return Err(format!("legal read rejected after misuse: {e}"));
        }
        let pre_at = d
            .earliest_precharge(0, bank)
            .ok_or("open bank must have a PRE gate")?;
        if let Err(e) = d.precharge(0, bank, pre_at) {
            return Err(format!("legal PRE rejected after misuse: {e}"));
        }
        Ok(())
    });
}

/// The controller's own faulted RFM path: injected ALERTs plus dropped
/// and delayed RFMs never produce an `Err` from `tick`, and the device
/// services every non-dropped RFM (bus-level count only moves forward).
#[test]
fn faulted_rfm_path_keeps_tick_infallible() {
    prop_check("faulted_rfm_path_keeps_tick_infallible", 12, |rng| {
        let mut mc = build_mc(MitigationConfig::prac(500), rng.next_u64());
        mc.dram_mut().inject_rfm_drop(1 + rng.below(3) as u32);
        mc.dram_mut().inject_rfm_delay(rng.below(250));
        let mut done: Vec<Completion> = Vec::new();
        let mut last_rfms = 0u64;
        for now in 0..8_000u64 {
            if now % 1_500 == 700 {
                if let Err(e) = mc.dram_mut().inject_alert((now % 2) as u32, now) {
                    return Err(format!("inject_alert failed: {e}"));
                }
            }
            if let Err(e) = mc.tick(now, &mut done) {
                return Err(format!("tick({now}) errored on faulted RFM path: {e}"));
            }
            let rfms = mc.dram().stats().rfms;
            prop_ensure!(rfms >= last_rfms, "RFM count went backwards");
            last_rfms = rfms;
        }
        Ok(())
    });
}

/// Seed for [`DetRng`] documentation parity: the harness reports the
/// failing seed, and replaying it reproduces the identical schedule.
#[test]
fn failing_cases_are_reproducible() {
    let mut first: Vec<u64> = Vec::new();
    let mut rng = DetRng::from_seed(0x5EED);
    for _ in 0..4 {
        first.push(rng.next_u64());
    }
    let mut rng2 = DetRng::from_seed(0x5EED);
    let second: Vec<u64> = (0..4).map(|_| rng2.next_u64()).collect();
    assert_eq!(first, second);
}
