//! Binomial undercount tails (Equations 1, 2 and 8 of the paper).
//!
//! MoPAC selects each activation independently with probability `p`, so
//! the number of counter updates `N` within `A` activations follows a
//! binomial distribution. Security requires that the probability of
//! severe undercounting, `P(N < C)`, stays below the escape budget
//! `epsilon` derived in [`crate::mttf`].
//!
//! Probabilities of interest are as small as 1e-10, so all terms are
//! computed in log space with an iterative recurrence (no gamma-function
//! approximation error): `P(0) = (1-p)^A`, and
//! `P(k+1)/P(k) = (A-k)/(k+1) * p/(1-p)`.

/// Probability mass `P(N = k)` for `N ~ Binomial(a, p)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use mopac_analysis::binomial::pmf;
///
/// // Bin(4, 0.5): P(N = 2) = 6/16
/// assert!((pmf(4, 0.5, 2) - 0.375).abs() < 1e-12);
/// ```
#[must_use]
pub fn pmf(a: u64, p: f64, k: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    if k > a {
        return 0.0;
    }
    if p == 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p == 1.0 {
        return if k == a { 1.0 } else { 0.0 };
    }
    ln_pmf(a, p, k).exp()
}

/// Natural log of the binomial pmf, computed via the multiplicative
/// recurrence from `P(0)`.
fn ln_pmf(a: u64, p: f64, k: u64) -> f64 {
    debug_assert!(k <= a && p > 0.0 && p < 1.0);
    let log_ratio_base = (p / (1.0 - p)).ln();
    let mut ln = a as f64 * (1.0 - p).ln();
    for i in 0..k {
        // P(i+1)/P(i) = (a - i) / (i + 1) * p/(1-p)
        ln += ((a - i) as f64 / (i + 1) as f64).ln() + log_ratio_base;
    }
    ln
}

/// Lower tail `P(N < c)` for `N ~ Binomial(a, p)` — Equation 2 of the
/// paper (and Equation 8 when `a` is the tardiness-reduced `A'`).
///
/// Returns 0 when `c == 0` and 1 when `c > a`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use mopac_analysis::binomial::prob_fewer_than;
///
/// // P(Bin(2, 0.5) < 1) = P(0) = 0.25
/// assert!((prob_fewer_than(2, 0.5, 1) - 0.25).abs() < 1e-12);
/// // P(N < 0) is impossible.
/// assert_eq!(prob_fewer_than(100, 0.1, 0), 0.0);
/// ```
#[must_use]
pub fn prob_fewer_than(a: u64, p: f64, c: u64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    if c == 0 {
        return 0.0;
    }
    if c > a {
        return 1.0;
    }
    if p == 0.0 {
        return 1.0;
    }
    if p == 1.0 {
        return 0.0; // N = a >= c was handled above
    }
    // Sum P(0..c) in log space: accumulate terms relative to the largest
    // (the last, since c is far below the mean in all our use cases, the
    // pmf is increasing on [0, c)). To be safe for arbitrary inputs, use
    // the max term as the scaling anchor.
    let log_ratio_base = (p / (1.0 - p)).ln();
    let mut ln_terms = Vec::with_capacity(c as usize);
    let mut ln = a as f64 * (1.0 - p).ln();
    ln_terms.push(ln);
    for i in 0..c - 1 {
        ln += ((a - i) as f64 / (i + 1) as f64).ln() + log_ratio_base;
        ln_terms.push(ln);
    }
    let max_ln = ln_terms.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let sum: f64 = ln_terms.iter().map(|&t| (t - max_ln).exp()).sum();
    (max_ln + sum.ln()).exp().min(1.0)
}

/// Upper tail `P(N >= c)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
#[must_use]
pub fn prob_at_least(a: u64, p: f64, c: u64) -> f64 {
    1.0 - prob_fewer_than(a, p, c)
}

/// The largest `C` whose undercount probability `P(N <= C)` stays below
/// `epsilon` for `N ~ Binomial(a, p)` — the brute-force search of
/// Section 5.3.
///
/// This follows the paper's Table 6 arithmetic exactly: the failure
/// probability listed for a given `C` is the cumulative mass at or below
/// `C` (one term more conservative than Equation 2's literal `P(N < C)`).
///
/// Returns 0 if even `C = 0` (i.e. `P(N = 0) = (1-p)^a`) exceeds the
/// budget, meaning no secure configuration exists for this `(a, p)`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]` or `epsilon` is not in `(0, 1)`.
///
/// # Examples
///
/// ```
/// use mopac_analysis::binomial::critical_updates;
///
/// // Paper Table 7: T_RH = 500 -> A = 472, p = 1/8, C = 22.
/// assert_eq!(critical_updates(472, 1.0 / 8.0, 8.48e-9), 22);
/// ```
#[must_use]
pub fn critical_updates(a: u64, p: f64, epsilon: f64) -> u64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon {epsilon} out of range"
    );
    let mut c = 0;
    // P(N <= c) == prob_fewer_than(a, p, c + 1).
    while prob_fewer_than(a, p, c + 2) < epsilon {
        c += 1;
        if c > a {
            return a;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmf_sums_to_one() {
        for (a, p) in [(10u64, 0.3), (100, 0.125), (472, 1.0 / 8.0)] {
            let total: f64 = (0..=a).map(|k| pmf(a, p, k)).sum();
            assert!((total - 1.0).abs() < 1e-9, "a={a} p={p} total={total}");
        }
    }

    #[test]
    fn tail_matches_direct_sum() {
        let a = 50;
        let p = 0.2;
        for c in [0u64, 1, 5, 10, 51] {
            let direct: f64 = (0..c.min(a + 1)).map(|k| pmf(a, p, k)).sum();
            let tail = prob_fewer_than(a, p, c);
            assert!(
                (tail - direct.min(1.0)).abs() < 1e-12,
                "c={c}: {tail} vs {direct}"
            );
        }
    }

    #[test]
    fn degenerate_probabilities() {
        assert_eq!(prob_fewer_than(10, 0.0, 1), 1.0);
        assert_eq!(prob_fewer_than(10, 1.0, 5), 0.0);
        assert_eq!(pmf(10, 0.0, 0), 1.0);
        assert_eq!(pmf(10, 1.0, 10), 1.0);
    }

    #[test]
    fn monotone_in_c() {
        let a = 472;
        let p = 0.125;
        let mut prev = 0.0;
        for c in 0..60 {
            let v = prob_fewer_than(a, p, c);
            assert!(v >= prev);
            prev = v;
        }
    }

    /// Probability the paper's Table 6 lists for a given `C`: the
    /// cumulative mass at or below `C`.
    fn p_le(a: u64, p: f64, c: u64) -> f64 {
        prob_fewer_than(a, p, c + 1)
    }

    /// Paper Table 6 column T_RH = 500 (A = 472, p = 1/8,
    /// epsilon = 8.48e-9): P_e1 for C = 20..=25.
    #[test]
    fn table6_trh500_column() {
        let a = 472;
        let p = 1.0 / 8.0;
        let expected = [
            (20u64, 6.3e-10),
            (21, 2.0e-9),
            (22, 5.9e-9),
            (23, 1.7e-8),
            (24, 4.6e-8),
            (25, 1.2e-7),
        ];
        for (c, want) in expected {
            let got = p_le(a, p, c);
            let rel = (got - want).abs() / want;
            assert!(rel < 0.10, "C={c}: got {got:.3e}, paper {want:.1e}");
        }
    }

    /// Paper Table 6 columns for T_RH = 250 (A = 219, p = 1/4) and
    /// T_RH = 1000 (A = 975, p = 1/16), spot-checked at the bold rows.
    #[test]
    fn table6_other_columns() {
        // T_RH = 250: C = 21 -> 6.1e-9, C = 22 -> 1.9e-8.
        let g21 = p_le(219, 0.25, 21);
        assert!((g21 - 6.1e-9).abs() / 6.1e-9 < 0.10, "got {g21:.3e}");
        let g22 = p_le(219, 0.25, 22);
        assert!((g22 - 1.9e-8).abs() / 1.9e-8 < 0.10, "got {g22:.3e}");
        // T_RH = 1000: C = 23 -> 1.08e-8 (bold), C = 24 -> 2.9e-8.
        let g23 = p_le(975, 1.0 / 16.0, 23);
        assert!((g23 - 1.08e-8).abs() / 1.08e-8 < 0.10, "got {g23:.3e}");
        let g24 = p_le(975, 1.0 / 16.0, 24);
        assert!((g24 - 2.9e-8).abs() / 2.9e-8 < 0.10, "got {g24:.3e}");
    }

    #[test]
    fn critical_updates_matches_paper_bold_rows() {
        // Table 6 bold rows: largest C with P_e1 < epsilon.
        assert_eq!(critical_updates(219, 0.25, 5.99e-9), 20);
        assert_eq!(critical_updates(472, 0.125, 8.48e-9), 22);
        // Note: sqrt(1.44e-16) = 1.2e-8; the paper's Table 5 prints
        // 1.12e-8, a typo. Both budgets yield C = 23.
        assert_eq!(critical_updates(975, 1.0 / 16.0, 1.2e-8), 23);
        assert_eq!(critical_updates(975, 1.0 / 16.0, 1.12e-8), 23);
    }

    #[test]
    fn critical_updates_zero_when_budget_tiny() {
        // Even P(N=0) exceeds an absurdly small budget.
        assert_eq!(critical_updates(10, 0.5, 1e-300), 0);
    }
}
