//! Security analysis for MoPAC (Sections 5.3, 6.4, 7, 8.2 and Appendix A
//! of the paper).
//!
//! Everything in this crate is pure mathematics — no simulation state.
//! It derives, from a Rowhammer threshold `T_RH`:
//!
//! * the MTTF-based failure budget `F` and per-side escape probability
//!   `epsilon` (Equations 3–6, Table 5) — [`mttf`];
//! * binomial undercount tails (Equations 1, 2, 8, Table 6) — [`binomial`];
//! * the MOAT ALERT threshold `ATH` (Table 2) — [`moat`];
//! * MoPAC-C / MoPAC-D parameters `p`, `C`, `ATH*` (Tables 7, 8, 14) —
//!   [`params`];
//! * the Markov-chain model for non-uniform probability (Equation 9,
//!   Table 11) — [`markov`];
//! * performance-attack models including the Monte-Carlo `alpha`
//!   (Section 7, Tables 9, 10) — [`perf_attack`];
//! * the MINT / PrIDE tolerated-threshold comparison (Table 13) —
//!   [`related`].
//!
//! # Examples
//!
//! ```
//! use mopac_analysis::params::mopac_c_params;
//!
//! let p = mopac_c_params(500);
//! assert_eq!(p.update_prob_denominator, 8); // p = 1/8
//! assert_eq!(p.critical_updates, 22);
//! assert_eq!(p.ath_star, 176);
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod binomial;
pub mod markov;
pub mod moat;
pub mod mttf;
pub mod params;
pub mod perf_attack;
pub mod related;

pub use params::{mopac_c_params, mopac_d_params, MopacParams};
