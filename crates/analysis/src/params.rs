//! Derivation of MoPAC's key parameters: the update probability `p`, the
//! critical number of counter updates `C`, and the revised ALERT threshold
//! `ATH*` (Sections 5.3–5.4 and 6.4–6.5; Tables 7, 8 and 14).
//!
//! The pipeline for a threshold `T_RH` is:
//!
//! 1. `ATH` from the MOAT model ([`crate::moat::moat_ath`]);
//! 2. `epsilon` from the MTTF budget ([`crate::mttf::FailureBudget`]);
//! 3. `p = 1/2^k`, the smallest power-of-two probability that still keeps
//!    the expected number of updates within `ATH` activations at or above
//!    [`MIN_EXPECTED_UPDATES`] (this calibration reproduces the paper's
//!    published `p` at every threshold from 125 to 4000: 1/2, 1/4, 1/8,
//!    1/16, 1/32, 1/64);
//! 4. `C`, the largest update count with undercount probability below
//!    `epsilon` ([`crate::binomial::critical_updates`], Equation 2 — with
//!    `A' = ATH - TTH` for MoPAC-D, Equation 8);
//! 5. `ATH* = C / p` (Equation 7).

use crate::binomial::critical_updates;
use crate::moat::moat_ath;
use crate::mttf::FailureBudget;

/// Minimum expected number of counter updates within `ATH` activations
/// when choosing `p`. Calibrated so the derived `p` matches the paper for
/// every published threshold (see module docs).
pub const MIN_EXPECTED_UPDATES: f64 = 45.0;

/// MoPAC-D's default tardiness threshold `TTH` (Section 6.3).
pub const DEFAULT_TTH: u32 = 32;

/// MoPAC-D's default SRQ capacity in entries (Section 6.1).
pub const DEFAULT_SRQ_ENTRIES: usize = 16;

/// Row-Press damage factor: one 180 ns-open activation does ~1.5x the
/// damage of a fast activation (Appendix A, from Luo et al.).
pub const ROW_PRESS_DAMAGE: f64 = 1.5;

/// QPRAC's per-bank priority-queue depth (Woo et al., HPCA 2025: a
/// handful of entries suffice because the head is serviced every REF).
pub const QPRAC_QUEUE_ENTRIES: usize = 8;

/// Proactive mitigations QPRAC performs inside each REF window (one
/// fits in the tRFC slack alongside the refresh itself).
pub const QPRAC_MITIGATIONS_PER_REF: u32 = 1;

/// CnC-PRAC's per-bank coalescing-queue depth (Lin et al., 2025).
pub const CNC_QUEUE_ENTRIES: usize = 32;

/// CnC-PRAC's per-entry pending-write-back cap: an entry that coalesces
/// this many activations forces an ALERT so its write-back cannot grow
/// arbitrarily tardy. Reuses MoPAC-D's TTH sizing.
pub const CNC_WRITEBACK_TTH: u32 = DEFAULT_TTH;

/// Coalesced write-backs CnC-PRAC drains per REF window (bulk
/// read-modify-writes are cheap once the activations are merged).
pub const CNC_DRAIN_ON_REF: u32 = 8;

/// CnC-PRAC's ALERT threshold: counting is exact but what the tracker
/// sees lags the true count by at most [`CNC_WRITEBACK_TTH`] pending
/// activations, so the threshold budget shrinks by exactly that lag —
/// MoPAC-D's `A' = ATH - TTH` argument (Equation 8) with `p = 1`, where
/// the binomial undercount tail collapses to the deterministic bound.
///
/// # Panics
///
/// Panics if `t_rh <= 64` (below the MOAT model's domain) or the
/// tardiness cap consumes the whole ALERT budget.
///
/// # Examples
///
/// ```
/// use mopac_analysis::params::cnc_prac_ath_star;
///
/// assert_eq!(cnc_prac_ath_star(500), 440); // ATH 472 - TTH 32
/// assert_eq!(cnc_prac_ath_star(250), 187);
/// ```
#[must_use]
pub fn cnc_prac_ath_star(t_rh: u64) -> u64 {
    let ath = moat_ath(t_rh);
    let tth = u64::from(CNC_WRITEBACK_TTH);
    assert!(ath > tth, "TTH {tth} must be below ATH {ath} for T_RH {t_rh}");
    ath - tth
}

/// Which MoPAC design a parameter set belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MopacDesign {
    /// Memory-controller side (Section 5): coin flip at the MC, PREcu.
    ControllerSide,
    /// DRAM side (Section 6): MINT sampling into a per-bank SRQ, drained
    /// by ABO / REF.
    DramSide,
}

/// A fully derived MoPAC parameter set for one Rowhammer threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MopacParams {
    /// Which design these parameters configure.
    pub design: MopacDesign,
    /// The Rowhammer threshold `T_RH` (double-sided).
    pub t_rh: u64,
    /// MOAT's ALERT threshold `ATH` for this `T_RH`.
    pub ath: u64,
    /// The activation budget used in the binomial: `ATH` for MoPAC-C,
    /// `A' = ATH - TTH` for MoPAC-D.
    pub a_effective: u64,
    /// Denominator of the update probability: `p = 1 /` this value.
    pub update_prob_denominator: u32,
    /// Critical number of counter updates `C`.
    pub critical_updates: u64,
    /// Revised ALERT threshold `ATH* = C / p`.
    pub ath_star: u64,
    /// Tardiness threshold (MoPAC-D only; 0 for MoPAC-C).
    pub tth: u32,
    /// SRQ entries drained per REF (MoPAC-D only; 0 for MoPAC-C).
    pub drain_on_ref: u32,
}

impl MopacParams {
    /// The update probability as a float.
    #[must_use]
    pub fn p(&self) -> f64 {
        1.0 / f64::from(self.update_prob_denominator)
    }

    /// The `ATH*` an attacker experiences between ABOs: the counter
    /// triggers when it *exceeds* `ATH*`, i.e. after `C + 1` updates
    /// (the convention of the paper's Tables 9 and 10).
    #[must_use]
    pub fn attack_ath_star(&self) -> u64 {
        (self.critical_updates + 1) * u64::from(self.update_prob_denominator)
    }
}

/// Chooses the update probability for an ALERT threshold `ath`: the
/// smallest power-of-two `p` with `ath * p >= MIN_EXPECTED_UPDATES`.
///
/// Returns the *denominator* (so `4` means `p = 1/4`). Saturates at 1
/// (i.e. plain PRAC, every activation updates) when even `p = 1/2` would
/// leave too few expected updates.
///
/// # Examples
///
/// ```
/// use mopac_analysis::params::choose_update_prob_denominator;
///
/// assert_eq!(choose_update_prob_denominator(472), 8); // T_RH = 500
/// assert_eq!(choose_update_prob_denominator(219), 4); // T_RH = 250
/// assert_eq!(choose_update_prob_denominator(975), 16); // T_RH = 1000
/// ```
#[must_use]
pub fn choose_update_prob_denominator(ath: u64) -> u32 {
    let max_ratio = ath as f64 / MIN_EXPECTED_UPDATES;
    if max_ratio < 2.0 {
        return 1;
    }
    1 << (max_ratio.log2().floor() as u32)
}

/// Derives MoPAC-C parameters (Table 7) for a Rowhammer threshold.
///
/// # Panics
///
/// Panics if `t_rh <= 64` (below the MOAT model's domain).
///
/// # Examples
///
/// ```
/// use mopac_analysis::params::mopac_c_params;
///
/// let p = mopac_c_params(250);
/// assert_eq!((p.update_prob_denominator, p.critical_updates, p.ath_star), (4, 20, 80));
/// ```
#[must_use]
pub fn mopac_c_params(t_rh: u64) -> MopacParams {
    let ath = moat_ath(t_rh);
    derive(MopacDesign::ControllerSide, t_rh, ath, ath, 0, 0)
}

/// Derives MoPAC-D parameters (Table 8) for a Rowhammer threshold, using
/// the default TTH of 32 and the default drain-on-REF sizing.
///
/// # Panics
///
/// Panics if `t_rh <= 64`.
///
/// # Examples
///
/// ```
/// use mopac_analysis::params::mopac_d_params;
///
/// let p = mopac_d_params(500);
/// assert_eq!(p.a_effective, 440); // A' = 472 - 32
/// assert_eq!((p.critical_updates, p.ath_star, p.drain_on_ref), (19, 152, 2));
/// ```
#[must_use]
pub fn mopac_d_params(t_rh: u64) -> MopacParams {
    mopac_d_params_with_tth(t_rh, DEFAULT_TTH)
}

/// Derives MoPAC-D parameters with an explicit tardiness threshold.
///
/// # Panics
///
/// Panics if `t_rh <= 64` or if `TTH >= ATH`.
#[must_use]
pub fn mopac_d_params_with_tth(t_rh: u64, tth: u32) -> MopacParams {
    let ath = moat_ath(t_rh);
    assert!(
        u64::from(tth) < ath,
        "TTH {tth} must be below ATH {ath} for T_RH {t_rh}"
    );
    let a_eff = ath - u64::from(tth);
    let denom = choose_update_prob_denominator(ath);
    // Drain-on-REF sized to absorb the SRQ insertion rate of a 16-APRI
    // workload (Table 8: 4 / 2 / 1 entries for p = 1/4, 1/8, 1/16).
    let drain = (16 / denom).max(1);
    let mut params = derive(MopacDesign::DramSide, t_rh, ath, a_eff, tth, drain);
    params.update_prob_denominator = denom;
    params
}

/// Derives Row-Press-hardened parameters (Appendix A, Table 14): the
/// threshold budget is divided by [`ROW_PRESS_DAMAGE`] before the
/// standard derivation.
///
/// # Panics
///
/// Panics if `t_rh <= 64`.
///
/// # Examples
///
/// ```
/// use mopac_analysis::params::{row_press_params, MopacDesign};
///
/// let c = row_press_params(MopacDesign::ControllerSide, 500);
/// assert_eq!(c.ath_star, 80);
/// let d = row_press_params(MopacDesign::DramSide, 500);
/// assert_eq!(d.ath_star, 64);
/// ```
#[must_use]
pub fn row_press_params(design: MopacDesign, t_rh: u64) -> MopacParams {
    // Ceiling, not floor: reproduces Table 14 (e.g. ATH 472 -> 315, so
    // A' = 283 and C = 8 for MoPAC-D at T_RH = 500).
    let ath = (moat_ath(t_rh) as f64 / ROW_PRESS_DAMAGE).ceil() as u64;
    let base = match design {
        MopacDesign::ControllerSide => mopac_c_params(t_rh),
        MopacDesign::DramSide => mopac_d_params(t_rh),
    };
    let (a_eff, tth, drain) = match design {
        MopacDesign::ControllerSide => (ath, 0, 0),
        MopacDesign::DramSide => (
            ath.saturating_sub(u64::from(base.tth)),
            base.tth,
            base.drain_on_ref,
        ),
    };
    let eps = FailureBudget::paper_default(t_rh).per_side_epsilon();
    let denom = base.update_prob_denominator;
    let c = critical_updates(a_eff, 1.0 / f64::from(denom), eps);
    MopacParams {
        design,
        t_rh,
        ath,
        a_effective: a_eff,
        update_prob_denominator: denom,
        critical_updates: c,
        ath_star: c * u64::from(denom),
        tth,
        drain_on_ref: drain,
    }
}

fn derive(
    design: MopacDesign,
    t_rh: u64,
    ath: u64,
    a_effective: u64,
    tth: u32,
    drain_on_ref: u32,
) -> MopacParams {
    let eps = FailureBudget::paper_default(t_rh).per_side_epsilon();
    let denom = choose_update_prob_denominator(ath);
    let c = critical_updates(a_effective, 1.0 / f64::from(denom), eps);
    MopacParams {
        design,
        t_rh,
        ath,
        a_effective,
        update_prob_denominator: denom,
        critical_updates: c,
        ath_star: c * u64::from(denom),
        tth,
        drain_on_ref,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 7 (MoPAC-C), all three rows exactly.
    #[test]
    fn table7() {
        let rows = [
            (250u64, 219u64, 4u32, 20u64, 80u64),
            (500, 472, 8, 22, 176),
            (1000, 975, 16, 23, 368),
        ];
        for (t, ath, denom, c, ath_star) in rows {
            let p = mopac_c_params(t);
            assert_eq!(p.ath, ath, "T={t} ATH");
            assert_eq!(p.update_prob_denominator, denom, "T={t} p");
            assert_eq!(p.critical_updates, c, "T={t} C");
            assert_eq!(p.ath_star, ath_star, "T={t} ATH*");
        }
    }

    /// Paper Table 8 (MoPAC-D), all three rows exactly.
    ///
    /// The paper prints A' = 942 at T_RH = 1000, but ATH - TTH is
    /// 975 - 32 = 943 (an arithmetic slip in the paper; C = 21 either
    /// way).
    #[test]
    fn table8() {
        let rows = [
            (250u64, 219u64, 187u64, 4u32, 15u64, 60u64, 4u32),
            (500, 472, 440, 8, 19, 152, 2),
            (1000, 975, 943, 16, 21, 336, 1),
        ];
        for (t, ath, a_eff, denom, c, ath_star, drain) in rows {
            let p = mopac_d_params(t);
            assert_eq!(p.ath, ath, "T={t} ATH");
            assert_eq!(p.a_effective, a_eff, "T={t} A'");
            assert_eq!(p.update_prob_denominator, denom, "T={t} p");
            assert_eq!(p.critical_updates, c, "T={t} C");
            assert_eq!(p.ath_star, ath_star, "T={t} ATH*");
            assert_eq!(p.drain_on_ref, drain, "T={t} drain");
        }
    }

    /// Introduction: p = 1/64, 1/32, 1/16, 1/8, 1/4 for T_RH = 4K, 2K,
    /// 1K, 500, 250 (and 1/2 at the long-term 125).
    #[test]
    fn published_p_across_thresholds() {
        let expect = [
            (4000u64, 64u32),
            (2000, 32),
            (1000, 16),
            (500, 8),
            (250, 4),
            (125, 2),
        ];
        for (t, denom) in expect {
            assert_eq!(
                mopac_c_params(t).update_prob_denominator,
                denom,
                "T_RH = {t}"
            );
        }
    }

    /// Paper Table 14 (Row-Press), both designs at 500 and 1000.
    #[test]
    fn table14_row_press() {
        assert_eq!(row_press_params(MopacDesign::ControllerSide, 500).ath_star, 80);
        assert_eq!(row_press_params(MopacDesign::ControllerSide, 1000).ath_star, 160);
        assert_eq!(row_press_params(MopacDesign::DramSide, 500).ath_star, 64);
        assert_eq!(row_press_params(MopacDesign::DramSide, 1000).ath_star, 144);
    }

    /// Section 7 convention: attack ATH* = (C+1)/p (Tables 9 and 10).
    #[test]
    fn attack_ath_star_convention() {
        assert_eq!(mopac_c_params(250).attack_ath_star(), 84);
        assert_eq!(mopac_c_params(500).attack_ath_star(), 184);
        assert_eq!(mopac_c_params(1000).attack_ath_star(), 384);
        assert_eq!(mopac_d_params(250).attack_ath_star(), 64);
        assert_eq!(mopac_d_params(500).attack_ath_star(), 160);
        assert_eq!(mopac_d_params(1000).attack_ath_star(), 352);
    }

    #[test]
    fn ath_star_never_exceeds_ath() {
        for t in [125u64, 250, 500, 1000, 2000, 4000] {
            let c = mopac_c_params(t);
            assert!(c.ath_star <= c.ath, "T={t}: {} > {}", c.ath_star, c.ath);
            let d = mopac_d_params(t);
            assert!(d.ath_star <= d.ath, "T={t}");
        }
    }

    #[test]
    fn update_prob_saturates_at_one() {
        assert_eq!(choose_update_prob_denominator(50), 1);
        assert_eq!(choose_update_prob_denominator(89), 1);
        assert_eq!(choose_update_prob_denominator(90), 2);
    }
}
