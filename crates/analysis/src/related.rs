//! Comparison with low-cost in-DRAM trackers: MINT and PrIDE
//! (Section 9.2, Table 13).
//!
//! MINT and PrIDE mitigate one *aggressor* row per mitigation
//! opportunity, which costs a blast-radius worth of victim refreshes
//! (~240 ns for 4 victims), whereas MoPAC-D spends its borrowed time on
//! *counter updates* (~60 ns each). For a fixed time budget reserved per
//! REF, the paper compares the Rowhammer threshold each scheme tolerates.
//!
//! For MINT we use the escape-probability model: with one aggressor
//! mitigated per window of `W` activations and per-activation selection
//! probability `1/W`, an attacker that spreads its `T` activations
//! thinly escapes selection with probability at most
//! `exp(-T / W)`; the tolerated threshold solves
//! `exp(-T / W) = epsilon(T)` (a fixed point, since the budget epsilon
//! itself grows with `T`). This lands within ~4% of MINT's published
//! values. PrIDE's published threshold is a constant factor above MINT's
//! (1975 / 1491 at one mitigation per REF); we apply that documented
//! factor.

use crate::mttf::FailureBudget;
use crate::params::mopac_d_params;
use mopac_types::jedec::TimingNs;

/// Time to refresh one victim row (ns); a blast-radius-2 aggressor
/// mitigation refreshes four victims (~240 ns), a counter update costs
/// one row activation (~60 ns).
pub const VICTIM_REFRESH_NS: f64 = 60.0;

/// PrIDE's tolerated threshold relative to MINT's, from the two papers'
/// published values at one mitigation per REF (1975 / 1491).
pub const PRIDE_OVER_MINT: f64 = 1975.0 / 1491.0;

/// Tolerated Rowhammer threshold for a MINT-style sampler given
/// `mitigation_ns_per_ref` nanoseconds reserved for mitigation at every
/// REF (Table 13's left column: 240 / 120 / 60 ns).
///
/// # Panics
///
/// Panics if `mitigation_ns_per_ref` is not positive.
#[must_use]
pub fn mint_tolerated_trh(mitigation_ns_per_ref: f64) -> u64 {
    assert!(mitigation_ns_per_ref > 0.0, "need positive mitigation time");
    let t = TimingNs::ddr5_base();
    // One aggressor mitigation costs 4 victim refreshes (240 ns); with
    // less time per REF, mitigations happen every k REFs.
    let refs_per_mitigation = (4.0 * VICTIM_REFRESH_NS / mitigation_ns_per_ref).max(1.0);
    // Window between mitigations, in activations.
    let w = refs_per_mitigation * t.t_refi / t.t_rc;
    // Fixed point: T = W * ln(1 / epsilon(T)).
    let mut t_tol = w * 18.0; // initial guess, ln(1/eps) ~ 18 in this regime
    for _ in 0..20 {
        let eps = FailureBudget::paper_default(t_tol.max(1.0) as u64).per_side_epsilon();
        t_tol = w * (1.0 / eps).ln();
    }
    t_tol.round() as u64
}

/// Tolerated Rowhammer threshold for PrIDE under the same budget.
///
/// # Panics
///
/// Panics if `mitigation_ns_per_ref` is not positive.
#[must_use]
pub fn pride_tolerated_trh(mitigation_ns_per_ref: f64) -> u64 {
    (mint_tolerated_trh(mitigation_ns_per_ref) as f64 * PRIDE_OVER_MINT).round() as u64
}

/// Tolerated Rowhammer threshold for MoPAC-D: the time budget per REF
/// determines how many SRQ entries can drain at each REF (one counter
/// update per [`VICTIM_REFRESH_NS`]), and Table 8's drain requirement
/// maps that to a threshold (240 ns -> drain 4 -> T_RH 250;
/// 120 -> 2 -> 500; 60 -> 1 -> 1000).
///
/// # Panics
///
/// Panics if `mitigation_ns_per_ref` is below one counter update (60 ns).
#[must_use]
pub fn mopac_d_tolerated_trh(mitigation_ns_per_ref: f64) -> u64 {
    let drains = (mitigation_ns_per_ref / VICTIM_REFRESH_NS).floor() as u32;
    assert!(drains >= 1, "budget below one counter update per REF");
    // Find the lowest threshold whose default drain-on-REF fits the
    // budget. Thresholds are searched on the paper's grid.
    for t in [125u64, 250, 500, 1000, 2000, 4000] {
        if mopac_d_params(t).drain_on_ref <= drains {
            return t;
        }
    }
    4000
}

/// One row of Table 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table13Row {
    /// Mitigation time reserved per REF, in nanoseconds.
    pub mitigation_ns_per_ref: u64,
    /// Threshold tolerated by MoPAC-D.
    pub mopac_d: u64,
    /// Threshold tolerated by MINT.
    pub mint: u64,
    /// Threshold tolerated by PrIDE.
    pub pride: u64,
}

/// Computes all three rows of Table 13 (240 / 120 / 60 ns per REF).
#[must_use]
pub fn table13_rows() -> Vec<Table13Row> {
    [240.0, 120.0, 60.0]
        .into_iter()
        .map(|ns| Table13Row {
            mitigation_ns_per_ref: ns as u64,
            mopac_d: mopac_d_tolerated_trh(ns),
            mint: mint_tolerated_trh(ns),
            pride: pride_tolerated_trh(ns),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table 13: MINT within 5%, PrIDE within 5%, MoPAC-D exact.
    #[test]
    fn table13() {
        let rows = table13_rows();
        let paper = [
            (240u64, 250u64, 1491u64, 1975u64),
            (120, 500, 2920, 3808),
            (60, 1000, 5725, 7474),
        ];
        for (row, (ns, mopac, mint, pride)) in rows.iter().zip(paper) {
            assert_eq!(row.mitigation_ns_per_ref, ns);
            assert_eq!(row.mopac_d, mopac, "{ns}ns MoPAC-D");
            let mint_rel = (row.mint as f64 - mint as f64).abs() / mint as f64;
            assert!(mint_rel < 0.05, "{ns}ns MINT: got {}, paper {mint}", row.mint);
            let pride_rel = (row.pride as f64 - pride as f64).abs() / pride as f64;
            assert!(
                pride_rel < 0.05,
                "{ns}ns PrIDE: got {}, paper {pride}",
                row.pride
            );
        }
    }

    /// The headline claim: MoPAC-D tolerates ~6x lower thresholds than
    /// MINT and ~8x lower than PrIDE at equal time budget.
    #[test]
    fn headline_ratios() {
        for ns in [240.0, 120.0, 60.0] {
            let ratio_mint = mint_tolerated_trh(ns) as f64 / mopac_d_tolerated_trh(ns) as f64;
            let ratio_pride = pride_tolerated_trh(ns) as f64 / mopac_d_tolerated_trh(ns) as f64;
            assert!((5.0..7.0).contains(&ratio_mint), "{ns}: MINT ratio {ratio_mint}");
            assert!((7.0..9.0).contains(&ratio_pride), "{ns}: PrIDE ratio {ratio_pride}");
        }
    }

    #[test]
    fn more_time_tolerates_lower_threshold() {
        assert!(mint_tolerated_trh(240.0) < mint_tolerated_trh(120.0));
        assert!(mopac_d_tolerated_trh(240.0) < mopac_d_tolerated_trh(60.0));
    }
}
