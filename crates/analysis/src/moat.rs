//! MOAT ALERT thresholds (Table 2).
//!
//! MOAT (the paper's baseline secure implementation of PRAC+ABO) asserts
//! ALERT when its tracked row reaches `ATH`. Because the memory
//! controller may keep operating for 180 ns after ALERT, and because
//! mitigation takes time, `ATH` must sit below `T_RH` by a slippage
//! margin. The MOAT paper derives this margin in full; MoPAC consumes
//! only the resulting values (its Table 2: 975 / 472 / 219 for
//! `T_RH` = 1000 / 500 / 250).
//!
//! We encode those published values exactly and, for other thresholds,
//! use a documented fit `ATH = T_RH - (25 + 3 * log2(1000 / T_RH))` that
//! passes through all three published points (see DESIGN.md §1,
//! substitution 4).

/// The MOAT ALERT threshold for a Rowhammer threshold `t_rh`.
///
/// Published values (Table 2) are returned exactly; other thresholds use
/// the slippage fit described in the module docs.
///
/// # Panics
///
/// Panics if `t_rh <= 64`, below which the fit's slippage would consume
/// the entire threshold (MOAT itself targets thresholds of 100+; the
/// paper notes PRAC latency may be acceptable below 100 anyway).
///
/// # Examples
///
/// ```
/// use mopac_analysis::moat::moat_ath;
///
/// assert_eq!(moat_ath(1000), 975);
/// assert_eq!(moat_ath(500), 472);
/// assert_eq!(moat_ath(250), 219);
/// ```
#[must_use]
pub fn moat_ath(t_rh: u64) -> u64 {
    assert!(t_rh > 64, "MOAT model not defined for T_RH <= 64");
    let slippage = 25.0 + 3.0 * (1000.0 / t_rh as f64).log2();
    let ath = t_rh as f64 - slippage.round();
    debug_assert!(ath > 0.0);
    ath as u64
}

/// MOAT's eligibility threshold `ETH = ATH / 2` (Section 2.6, footnote 3):
/// the tracked row is only mitigated on ABO if its count reached `ETH`.
#[must_use]
pub fn moat_eth(ath: u64) -> u64 {
    ath / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_exact() {
        assert_eq!(moat_ath(1000), 975);
        assert_eq!(moat_ath(500), 472);
        assert_eq!(moat_ath(250), 219);
    }

    #[test]
    fn fit_is_sensible_elsewhere() {
        // Near-term threshold 4K: slippage shrinks with log2, ATH close
        // to T_RH.
        let a4k = moat_ath(4000);
        assert!(a4k > 3975 && a4k < 4000, "got {a4k}");
        // Long-term 125: slippage grows.
        let a125 = moat_ath(125);
        assert!(a125 > 80 && a125 < 125, "got {a125}");
        // Monotone in T_RH.
        let mut prev = 0;
        for t in [100u64, 125, 250, 500, 1000, 2000, 4000] {
            let a = moat_ath(t);
            assert!(a > prev, "ATH({t}) = {a} not increasing");
            prev = a;
        }
    }

    #[test]
    fn eth_is_half() {
        assert_eq!(moat_eth(472), 236);
        assert_eq!(moat_eth(975), 487);
    }

    #[test]
    #[should_panic(expected = "not defined")]
    fn rejects_tiny_threshold() {
        let _ = moat_ath(64);
    }
}
