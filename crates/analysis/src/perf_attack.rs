//! Analytical models of performance (DoS) attacks on MoPAC
//! (Section 7, Tables 9 and 10).
//!
//! An attacker cannot flip bits in a correctly parameterized MoPAC, but
//! can try to trigger frequent ABOs to degrade throughput. The paper
//! models memory throughput in activations: one ACT costs one tRC, and
//! one ABO stall (350 ns) costs the equivalent of
//! [`ABO_STALL_ACTS`] ≈ 7 activations, so a pattern that forces an ABO
//! every `N` activations suffers a slowdown of `7 / (N + 7)`
//! (Section 7.1, Figure 14).
//!
//! For multi-bank patterns, randomization makes the *fastest* of the 32
//! banks set the ABO pace; the Monte-Carlo estimate of that speed-up
//! factor `alpha` ([`monte_carlo_alpha`]) reproduces the paper's
//! `alpha ≈ 0.55`.

use crate::params::MopacParams;
use mopac_types::rng::DetRng;

/// ABO stall time expressed in activation slots (350 ns / ~50 ns per
/// tRC, rounded to the paper's value of 7).
pub const ABO_STALL_ACTS: f64 = 7.0;

/// Slowdown of a pattern that triggers one ABO stall every
/// `acts_between_abo` activations: `7 / (N + 7)` (Section 7.1).
///
/// # Examples
///
/// ```
/// use mopac_analysis::perf_attack::slowdown_for_abo_period;
///
/// // TTH attack: ABO every 32 ACTs -> 7/39 = 17.9%.
/// let s = slowdown_for_abo_period(32.0);
/// assert!((s - 0.179).abs() < 0.001);
/// ```
#[must_use]
pub fn slowdown_for_abo_period(acts_between_abo: f64) -> f64 {
    ABO_STALL_ACTS / (acts_between_abo + ABO_STALL_ACTS)
}

/// Monte-Carlo estimate of `alpha`: the fraction of `ATH*` activations
/// after which the *fastest* of `banks` banks reaches its critical update
/// count, when each bank's updates are sampled independently with
/// probability `p` (Section 7.2).
///
/// Each bank needs `c_trigger = C + 1` successful coin flips; the number
/// of activations it takes is negative-binomial. `alpha` is the mean of
/// the minimum across banks, normalized by the single-bank expectation
/// `c_trigger / p`.
///
/// # Panics
///
/// Panics if `banks`, `c_trigger` or `trials` is zero, or `p` is not in
/// `(0, 1]`.
#[must_use]
pub fn monte_carlo_alpha(banks: u32, c_trigger: u64, p: f64, trials: u32, seed: u64) -> f64 {
    assert!(banks > 0 && c_trigger > 0 && trials > 0, "degenerate inputs");
    assert!(p > 0.0 && p <= 1.0, "p {p} out of range");
    let mut rng = DetRng::from_seed(seed);
    let mut total_min = 0.0f64;
    for _ in 0..trials {
        let mut min_acts = u64::MAX;
        for _ in 0..banks {
            // Negative binomial: sum of c_trigger geometric(+1) draws.
            let mut acts = 0u64;
            for _ in 0..c_trigger {
                acts += rng.geometric(p) + 1;
            }
            min_acts = min_acts.min(acts);
        }
        total_min += min_acts as f64;
    }
    let mean_min = total_min / f64::from(trials);
    let single_bank = c_trigger as f64 / p;
    mean_min / single_bank
}

/// The paper's default `alpha` for 32 banks (Section 7.2).
pub const PAPER_ALPHA: f64 = 0.55;

/// Slowdown of the mitigation attack (multi-bank, Figure 14b): one ABO
/// every `alpha * ATH*` activations — the first row of Tables 9 and 10.
#[must_use]
pub fn mitigation_attack_slowdown(params: &MopacParams, alpha: f64) -> f64 {
    slowdown_for_abo_period(alpha * params.attack_ath_star() as f64)
}

/// Slowdown of the SRQ-full attack on MoPAC-D (single-bank, many unique
/// rows): one ABO every `drained_per_abo / p` activations (Section 7.4).
#[must_use]
pub fn srq_full_attack_slowdown(params: &MopacParams, drained_per_abo: u32) -> f64 {
    slowdown_for_abo_period(f64::from(drained_per_abo) / params.p())
}

/// Slowdown of the tardiness attack on MoPAC-D: one ABO every `TTH`
/// activations (Section 7.4).
#[must_use]
pub fn tth_attack_slowdown(tth: u32) -> f64 {
    slowdown_for_abo_period(f64::from(tth))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{mopac_c_params, mopac_d_params};

    /// Section 7.2 reports alpha ~ 0.55 for 32 banks; our iid
    /// negative-binomial model of the same process yields ~0.64 (the
    /// paper does not specify its Monte-Carlo's reset semantics — see
    /// EXPERIMENTS.md). Assert the ballpark and stability.
    #[test]
    fn alpha_in_expected_range() {
        let p = mopac_c_params(500);
        let alpha = monte_carlo_alpha(32, p.critical_updates + 1, p.p(), 20_000, 0xA1FA);
        assert!((0.5..0.75).contains(&alpha), "alpha = {alpha}");
        let again = monte_carlo_alpha(32, p.critical_updates + 1, p.p(), 20_000, 0xA1FA);
        assert_eq!(alpha, again, "must be deterministic for a fixed seed");
    }

    #[test]
    fn alpha_decreases_with_more_banks() {
        let p = mopac_c_params(500);
        let a1 = monte_carlo_alpha(1, p.critical_updates + 1, p.p(), 5_000, 1);
        let a8 = monte_carlo_alpha(8, p.critical_updates + 1, p.p(), 5_000, 1);
        let a32 = monte_carlo_alpha(32, p.critical_updates + 1, p.p(), 5_000, 1);
        assert!(a1 > a8 && a8 > a32, "{a1} {a8} {a32}");
        // Single bank: mean of NB / expectation = 1.
        assert!((a1 - 1.0).abs() < 0.02, "a1 = {a1}");
    }

    /// Paper Table 9 (MoPAC-C under the mitigation attack), within 1.5
    /// points (the paper's own T_RH=250 row is internally inconsistent
    /// with its formula; see DESIGN.md §6).
    #[test]
    fn table9_mopac_c() {
        let rows = [(250u64, 0.14), (500, 0.067), (1000, 0.032)];
        for (t, want) in rows {
            let got = mitigation_attack_slowdown(&mopac_c_params(t), PAPER_ALPHA);
            assert!((got - want).abs() < 0.015, "T={t}: got {got:.3}, paper {want}");
        }
    }

    /// Paper Table 10 (MoPAC-D under all three attacks), within 0.5
    /// points.
    #[test]
    fn table10_mopac_d() {
        let rows = [
            (250u64, 0.166, 0.259, 0.179),
            (500, 0.074, 0.149, 0.179),
            (1000, 0.035, 0.081, 0.179),
        ];
        for (t, mitig, srq, tth) in rows {
            let p = mopac_d_params(t);
            let m = mitigation_attack_slowdown(&p, PAPER_ALPHA);
            let s = srq_full_attack_slowdown(&p, 5);
            let tt = tth_attack_slowdown(p.tth);
            assert!((m - mitig).abs() < 0.005, "T={t} mitig: {m:.3} vs {mitig}");
            assert!((s - srq).abs() < 0.005, "T={t} srq: {s:.3} vs {srq}");
            assert!((tt - tth).abs() < 0.005, "T={t} tth: {tt:.3} vs {tth}");
        }
    }

    #[test]
    fn slowdown_monotone_in_abo_rate() {
        assert!(slowdown_for_abo_period(10.0) > slowdown_for_abo_period(100.0));
        assert!(slowdown_for_abo_period(f64::INFINITY) == 0.0);
    }
}
