//! Markov-chain model for Non-Uniform Probability (NUP) sampling
//! (Section 8.2, Equation 9, Table 11).
//!
//! With NUP, a row whose PRAC counter is still zero is sampled with
//! probability `p/2`; once the counter is non-zero the probability rises
//! to `p`. The number of updates `N` after `A` activations is then no
//! longer binomial; we model the update count as a Markov chain whose
//! state is the number of updates performed so far, step the chain `A`
//! times, and read the cumulative distribution off the final state
//! vector.
//!
//! With uniform edge probabilities the chain reduces exactly to the
//! binomial model (the paper's sanity check, footnote 8) — our tests
//! verify this equivalence.

use crate::moat::moat_ath;
use crate::mttf::FailureBudget;
use crate::params::{mopac_d_params, MopacParams};

/// Distribution of the number of counter updates after `a` activations
/// when the first update happens with probability `p_first` and all
/// subsequent updates with probability `p_rest`.
///
/// The returned vector `y` has `y[i] = P(N = i)` for `i < y.len() - 1`
/// and the last element holds `P(N >= y.len() - 1)` (the lumped tail).
///
/// # Panics
///
/// Panics if either probability is outside `[0, 1]` or `max_states` is 0.
#[must_use]
pub fn update_count_distribution(
    a: u64,
    p_first: f64,
    p_rest: f64,
    max_states: usize,
) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&p_first), "p_first {p_first} out of range");
    assert!((0.0..=1.0).contains(&p_rest), "p_rest {p_rest} out of range");
    assert!(max_states > 0, "need at least one state");
    let n = max_states + 1; // last bucket lumps N >= max_states
    let mut y = vec![0.0f64; n];
    y[0] = 1.0;
    let mut next = vec![0.0f64; n];
    for _ in 0..a {
        next[0] = y[0] * (1.0 - p_first);
        for i in 1..n - 1 {
            let p_in = if i == 1 { p_first } else { p_rest };
            next[i] = y[i] * (1.0 - p_rest) + y[i - 1] * p_in;
        }
        // Lumped tail: absorbs transitions out of the last real state.
        let p_in_tail = if n >= 2 {
            if n - 2 == 0 { p_first } else { p_rest }
        } else {
            p_first
        };
        next[n - 1] = y[n - 1] + y[n - 2] * p_in_tail;
        std::mem::swap(&mut y, &mut next);
    }
    y
}

/// The largest `C` such that `P(N <= C) < epsilon` under the NUP chain —
/// the Markov-chain analogue of
/// [`binomial::critical_updates`](crate::binomial::critical_updates)
/// (Equation 9).
///
/// Returns 0 when even `P(N <= 0)` exceeds the budget (no secure
/// configuration).
///
/// # Panics
///
/// Panics if probabilities are out of range or `epsilon` is not in
/// `(0, 1)`.
#[must_use]
pub fn critical_updates_markov(a: u64, p_first: f64, p_rest: f64, epsilon: f64) -> u64 {
    assert!(epsilon > 0.0 && epsilon < 1.0, "epsilon {epsilon} out of range");
    // The update count can reach `a`, so track every reachable state
    // (bounded for sanity; MoPAC operates at C <= ~60 anyway).
    let max_states = usize::try_from(a + 1).unwrap_or(usize::MAX).min(8192);
    let y = update_count_distribution(a, p_first, p_rest, max_states);
    let mut best = 0u64;
    let mut cum = 0.0;
    for c in 0..(y.len() - 1) as u64 {
        cum += y[c as usize]; // cum = P(N <= c)
        if cum < epsilon {
            best = c;
        } else {
            break;
        }
    }
    best
}

/// Derives the MoPAC-D + NUP parameter set (Table 11): same `p`, TTH and
/// drain as uniform MoPAC-D, but `C` and `ATH*` from the NUP Markov chain
/// with initial probability `p/2`.
///
/// Following Section 8.2 ("as we do ATH activations"), the chain is
/// stepped `ATH` times — the NUP analysis does not apply the tardiness
/// reduction `A' = ATH - TTH` (this reproduces Table 11 exactly; the
/// halved first step already dominates the undercount budget through the
/// `P(N = 0)` term).
///
/// # Panics
///
/// Panics if `t_rh <= 64`.
///
/// # Examples
///
/// ```
/// use mopac_analysis::markov::nup_params;
///
/// assert_eq!(nup_params(500).ath_star, 136);
/// assert_eq!(nup_params(1000).ath_star, 288);
/// ```
#[must_use]
pub fn nup_params(t_rh: u64) -> MopacParams {
    let base = mopac_d_params(t_rh);
    let ath = moat_ath(t_rh);
    let eps = FailureBudget::paper_default(t_rh).per_side_epsilon();
    let p = base.p();
    let c = critical_updates_markov(ath, p / 2.0, p, eps);
    MopacParams {
        critical_updates: c,
        ath_star: c * u64::from(base.update_prob_denominator),
        ..base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binomial;

    /// Uniform edges: the Markov chain must reproduce the binomial tail
    /// (the paper's footnote-8 sanity check).
    #[test]
    fn uniform_chain_equals_binomial() {
        for (a, p) in [(440u64, 0.125), (187, 0.25), (942, 1.0 / 16.0)] {
            let y = update_count_distribution(a, p, p, 256);
            let mut cum = 0.0;
            for c in 0..30u64 {
                let tail = binomial::prob_fewer_than(a, p, c);
                assert!(
                    (cum - tail).abs() <= 1e-12 + tail * 1e-9,
                    "a={a} p={p} c={c}: markov {cum:.3e} vs binom {tail:.3e}"
                );
                cum += y[c as usize];
            }
        }
    }

    #[test]
    fn uniform_critical_matches_binomial_search() {
        for (a, p, eps) in [
            (440u64, 0.125, 8.48e-9),
            (187, 0.25, 5.99e-9),
            (942, 1.0 / 16.0, 1.12e-8),
        ] {
            assert_eq!(
                critical_updates_markov(a, p, p, eps),
                binomial::critical_updates(a, p, eps),
                "a={a} p={p}"
            );
        }
    }

    /// Paper Table 11: ATH* for MoPAC-D uniform vs NUP.
    #[test]
    fn table11() {
        let rows = [(1000u64, 336u64, 288u64), (500, 152, 136), (250, 60, 56)];
        for (t, uniform_want, nup_want) in rows {
            assert_eq!(mopac_d_params(t).ath_star, uniform_want, "T={t} uniform");
            assert_eq!(nup_params(t).ath_star, nup_want, "T={t} NUP");
        }
    }

    #[test]
    fn nup_ath_star_below_uniform() {
        for t in [250u64, 500, 1000, 2000] {
            assert!(
                nup_params(t).ath_star <= mopac_d_params(t).ath_star,
                "T={t}"
            );
        }
    }

    #[test]
    fn distribution_sums_to_one() {
        let y = update_count_distribution(500, 0.0625, 0.125, 64);
        let total: f64 = y.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn halved_first_step_shifts_mass_down() {
        let uniform = update_count_distribution(400, 0.125, 0.125, 128);
        let nup = update_count_distribution(400, 0.0625, 0.125, 128);
        // P(N = 0) is larger under NUP.
        assert!(nup[0] > uniform[0]);
        // Cumulative P(N < 20) larger under NUP (more undercounting).
        let cu: f64 = uniform[..20].iter().sum();
        let cn: f64 = nup[..20].iter().sum();
        assert!(cn > cu);
    }
}
