//! MTTF-based failure budgets (Equations 3–6, Table 5).
//!
//! MoPAC is probabilistic, so its security is expressed as a Mean Time To
//! Failure. Following the paper (and PrIDE / MINT), the target is a
//! per-bank MTTF of 10,000 years, which keeps Rowhammer escapes in the
//! same range as naturally occurring DRAM faults.
//!
//! * Equation 3: the failure budget for one attack round of `T`
//!   activations is `F = T * tRC / MTTF_ns`.
//! * Equations 4–6: a double-sided attack only succeeds if both aggressor
//!   rows escape mitigation in the same round, so the per-side escape
//!   budget is `epsilon = sqrt(F)`.

use mopac_types::jedec::TimingNs;

/// Nanoseconds in the 10,000-year target MTTF (3.2e20, as used in
/// Equation 3).
pub const MTTF_10K_YEARS_NS: f64 = 3.2e20;

/// Failure-budget model for a given Rowhammer threshold.
///
/// # Examples
///
/// ```
/// use mopac_analysis::mttf::FailureBudget;
///
/// let b = FailureBudget::paper_default(500);
/// assert!((b.round_budget() - 7.19e-17).abs() / 7.19e-17 < 0.01);
/// assert!((b.per_side_epsilon() - 8.48e-9).abs() / 8.48e-9 < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailureBudget {
    t_rh: u64,
    t_rc_ns: f64,
    mttf_ns: f64,
}

impl FailureBudget {
    /// Creates a budget for threshold `t_rh` with an explicit `tRC` and
    /// MTTF.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh` is zero or the times are not positive.
    #[must_use]
    pub fn new(t_rh: u64, t_rc_ns: f64, mttf_ns: f64) -> Self {
        assert!(t_rh > 0, "threshold must be positive");
        assert!(t_rc_ns > 0.0 && mttf_ns > 0.0, "times must be positive");
        Self {
            t_rh,
            t_rc_ns,
            mttf_ns,
        }
    }

    /// The paper's configuration: base tRC = 46 ns (fastest possible
    /// hammering) and a 10K-year bank MTTF.
    #[must_use]
    pub fn paper_default(t_rh: u64) -> Self {
        Self::new(t_rh, TimingNs::ddr5_base().t_rc, MTTF_10K_YEARS_NS)
    }

    /// The Rowhammer threshold this budget was built for.
    #[must_use]
    pub fn t_rh(&self) -> u64 {
        self.t_rh
    }

    /// Equation 3: failure budget `F` for one round of `T` activations.
    #[must_use]
    pub fn round_budget(&self) -> f64 {
        self.t_rh as f64 * self.t_rc_ns / self.mttf_ns
    }

    /// Equation 6: per-side escape budget `epsilon = sqrt(F)` for a
    /// double-sided pattern.
    #[must_use]
    pub fn per_side_epsilon(&self) -> f64 {
        self.round_budget().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces the paper's Table 5 to within 1%.
    ///
    /// Note: the paper's epsilon at T = 1000 is printed as 1.12e-8, but
    /// sqrt of its own F = 1.44e-16 is 1.20e-8 — a typo in the paper.
    /// We assert the self-consistent value; the derived C is 23 either
    /// way (see `binomial::tests`).
    #[test]
    fn table5() {
        let rows = [
            (250u64, 3.59e-17, 5.99e-9),
            (500, 7.19e-17, 8.48e-9),
            (1000, 1.44e-16, 1.20e-8),
        ];
        for (t, f_want, eps_want) in rows {
            let b = FailureBudget::paper_default(t);
            let f = b.round_budget();
            let eps = b.per_side_epsilon();
            assert!((f - f_want).abs() / f_want < 0.01, "T={t}: F={f:.3e}");
            assert!(
                (eps - eps_want).abs() / eps_want < 0.015,
                "T={t}: eps={eps:.3e}"
            );
        }
    }

    #[test]
    fn budget_scales_linearly_with_threshold() {
        let b1 = FailureBudget::paper_default(500);
        let b2 = FailureBudget::paper_default(1000);
        assert!((b2.round_budget() / b1.round_budget() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_zero_threshold() {
        let _ = FailureBudget::paper_default(0);
    }
}
