//! Property tests for the security-analysis math.

use mopac_analysis::binomial::{critical_updates, prob_fewer_than};
use mopac_analysis::markov::{critical_updates_markov, update_count_distribution};
use mopac_analysis::params::{mopac_c_params, mopac_d_params};
use proptest::prelude::*;

proptest! {
    #[test]
    fn tail_is_a_probability(a in 1u64..2000, denom in 1u32..64, c in 0u64..100) {
        let p = 1.0 / f64::from(denom);
        let v = prob_fewer_than(a, p, c);
        prop_assert!((0.0..=1.0).contains(&v), "{v}");
    }

    #[test]
    fn tail_monotone_in_c(a in 1u64..1000, denom in 2u32..32) {
        let p = 1.0 / f64::from(denom);
        let mut prev = 0.0;
        for c in 0..40 {
            let v = prob_fewer_than(a, p, c);
            prop_assert!(v + 1e-15 >= prev, "c={c}: {v} < {prev}");
            prev = v;
        }
    }

    #[test]
    fn critical_updates_is_the_boundary(
        a in 100u64..1500,
        denom in 2u32..32,
        eps_exp in 4.0f64..12.0,
    ) {
        let p = 1.0 / f64::from(denom);
        let eps = 10f64.powf(-eps_exp);
        let c = critical_updates(a, p, eps);
        // P(N <= C) < eps <= P(N <= C + 1) (when C > 0).
        if c > 0 {
            prop_assert!(prob_fewer_than(a, p, c + 1) < eps);
        }
        prop_assert!(prob_fewer_than(a, p, c + 2) >= eps);
    }

    #[test]
    fn markov_uniform_equals_binomial(
        a in 50u64..800,
        denom in 2u32..32,
        eps_exp in 5.0f64..10.0,
    ) {
        let p = 1.0 / f64::from(denom);
        let eps = 10f64.powf(-eps_exp);
        prop_assert_eq!(
            critical_updates_markov(a, p, p, eps),
            critical_updates(a, p, eps)
        );
    }

    #[test]
    fn markov_distribution_is_normalized(
        a in 1u64..1200,
        denom in 2u32..32,
    ) {
        let p = 1.0 / f64::from(denom);
        let y = update_count_distribution(a, p / 2.0, p, 128);
        let total: f64 = y.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "{total}");
        prop_assert!(y.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)));
    }

    #[test]
    fn derived_params_are_internally_consistent(t_rh in 80u64..5000) {
        for p in [mopac_c_params(t_rh), mopac_d_params(t_rh)] {
            prop_assert!(p.ath_star <= p.ath, "T={t_rh}");
            prop_assert_eq!(
                p.ath_star,
                p.critical_updates * u64::from(p.update_prob_denominator)
            );
            prop_assert!(p.attack_ath_star() > p.ath_star);
            prop_assert!(p.update_prob_denominator.is_power_of_two());
        }
    }

    #[test]
    fn lower_thresholds_need_higher_sampling(lo in 80u64..1000, hi in 1000u64..5000) {
        let p_lo = mopac_c_params(lo);
        let p_hi = mopac_c_params(hi);
        prop_assert!(
            p_lo.update_prob_denominator <= p_hi.update_prob_denominator,
            "p must not shrink as T_RH drops: {lo}->{} {hi}->{}",
            p_lo.update_prob_denominator,
            p_hi.update_prob_denominator
        );
    }
}
