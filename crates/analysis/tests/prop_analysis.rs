//! Property tests for the security-analysis math.

use mopac_analysis::binomial::{critical_updates, prob_fewer_than};
use mopac_analysis::markov::{critical_updates_markov, update_count_distribution};
use mopac_analysis::params::{mopac_c_params, mopac_d_params};
use mopac_types::check::prop_check;
use mopac_types::prop_ensure;

#[test]
fn tail_is_a_probability() {
    prop_check("tail_is_a_probability", 128, |rng| {
        let a = 1 + rng.below(1999);
        let denom = 1 + rng.below(63) as u32;
        let c = rng.below(100);
        let p = 1.0 / f64::from(denom);
        let v = prob_fewer_than(a, p, c);
        prop_ensure!((0.0..=1.0).contains(&v), "a={a} denom={denom} c={c}: {v}");
        Ok(())
    });
}

#[test]
fn tail_monotone_in_c() {
    prop_check("tail_monotone_in_c", 64, |rng| {
        let a = 1 + rng.below(999);
        let denom = 2 + rng.below(30) as u32;
        let p = 1.0 / f64::from(denom);
        let mut prev = 0.0;
        for c in 0..40 {
            let v = prob_fewer_than(a, p, c);
            prop_ensure!(v + 1e-15 >= prev, "a={a} denom={denom} c={c}: {v} < {prev}");
            prev = v;
        }
        Ok(())
    });
}

#[test]
fn critical_updates_is_the_boundary() {
    prop_check("critical_updates_is_the_boundary", 64, |rng| {
        let a = 100 + rng.below(1400);
        let denom = 2 + rng.below(30) as u32;
        let eps_exp = 4.0 + rng.unit_f64() * 8.0;
        let p = 1.0 / f64::from(denom);
        let eps = 10f64.powf(-eps_exp);
        let c = critical_updates(a, p, eps);
        // P(N <= C) < eps <= P(N <= C + 1) (when C > 0).
        if c > 0 {
            prop_ensure!(
                prob_fewer_than(a, p, c + 1) < eps,
                "a={a} p={p} eps={eps}: boundary too high"
            );
        }
        prop_ensure!(
            prob_fewer_than(a, p, c + 2) >= eps,
            "a={a} p={p} eps={eps}: boundary too low"
        );
        Ok(())
    });
}

#[test]
fn markov_uniform_equals_binomial() {
    prop_check("markov_uniform_equals_binomial", 64, |rng| {
        let a = 50 + rng.below(750);
        let denom = 2 + rng.below(30) as u32;
        let eps_exp = 5.0 + rng.unit_f64() * 5.0;
        let p = 1.0 / f64::from(denom);
        let eps = 10f64.powf(-eps_exp);
        prop_ensure!(
            critical_updates_markov(a, p, p, eps) == critical_updates(a, p, eps),
            "a={a} p={p} eps={eps}: markov != binomial"
        );
        Ok(())
    });
}

#[test]
fn markov_distribution_is_normalized() {
    prop_check("markov_distribution_is_normalized", 64, |rng| {
        let a = 1 + rng.below(1199);
        let denom = 2 + rng.below(30) as u32;
        let p = 1.0 / f64::from(denom);
        let y = update_count_distribution(a, p / 2.0, p, 128);
        let total: f64 = y.iter().sum();
        prop_ensure!((total - 1.0).abs() < 1e-9, "a={a} denom={denom}: total {total}");
        prop_ensure!(
            y.iter().all(|&v| (-1e-12..=1.0 + 1e-12).contains(&v)),
            "a={a} denom={denom}: element out of [0,1]"
        );
        Ok(())
    });
}

#[test]
fn derived_params_are_internally_consistent() {
    prop_check("derived_params_are_internally_consistent", 128, |rng| {
        let t_rh = 80 + rng.below(4920);
        for p in [mopac_c_params(t_rh), mopac_d_params(t_rh)] {
            prop_ensure!(p.ath_star <= p.ath, "T={t_rh}: ATH* above ATH");
            prop_ensure!(
                p.ath_star == p.critical_updates * u64::from(p.update_prob_denominator),
                "T={t_rh}: ATH* != C * denom"
            );
            prop_ensure!(p.attack_ath_star() > p.ath_star, "T={t_rh}: attack bound");
            prop_ensure!(
                p.update_prob_denominator.is_power_of_two(),
                "T={t_rh}: denom not a power of two"
            );
        }
        Ok(())
    });
}

#[test]
fn lower_thresholds_need_higher_sampling() {
    prop_check("lower_thresholds_need_higher_sampling", 128, |rng| {
        let lo = 80 + rng.below(920);
        let hi = 1000 + rng.below(4000);
        let p_lo = mopac_c_params(lo);
        let p_hi = mopac_c_params(hi);
        prop_ensure!(
            p_lo.update_prob_denominator <= p_hi.update_prob_denominator,
            "p must not shrink as T_RH drops: {lo}->{} {hi}->{}",
            p_lo.update_prob_denominator,
            p_hi.update_prob_denominator
        );
        Ok(())
    });
}
