//! Workload synthesis for the MoPAC reproduction.
//!
//! The paper evaluates on SPEC-2017, STREAM and masstree traces that are
//! not redistributable; this crate substitutes generators calibrated to
//! the memory-level statistics the paper publishes in Table 4 ([`spec`],
//! [`generator`]), plus the attack patterns used by the threat-model and
//! performance-attack studies ([`attack`]).
//!
//! # Examples
//!
//! ```
//! use mopac_workloads::spec::{all_names, find};
//!
//! assert_eq!(all_names().len(), 23); // every bar in Figures 2/9/11
//! assert_eq!(find("parest").unwrap().rbhr, 0.61);
//! ```

// The robustness contract (see DESIGN.md): library code surfaces
// failures as `MopacResult`, never by unwrapping. Tests are exempt
// via clippy.toml (`allow-unwrap-in-tests`).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod attack;
pub mod generator;
pub mod spec;

pub use attack::AttackPattern;
pub use generator::CalibratedTrace;
pub use spec::{AccessPattern, PaperStats, WorkloadSpec};
