//! Attack-pattern generators (Sections 2.1 and 7).
//!
//! Attack patterns emit DRAM coordinates directly (the attacker knows
//! the mapping and, per the threat model, picks the memory-system policy
//! best suited to the attack — the drivers run them under a close-page
//! policy so every access is an activation).

use mopac_types::addr::DecodedAddr;
use mopac_types::geometry::{BankRef, DramGeometry};

/// An infinite stream of attack targets.
pub trait AttackPattern {
    /// The next address to access.
    fn next_target(&mut self) -> DecodedAddr;

    /// A short display name.
    fn name(&self) -> &str;

    /// Serializes the pattern's cursor state for a snapshot. Stateless
    /// patterns (the default) write nothing.
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        let _ = w;
    }

    /// Restores cursor state written by [`AttackPattern::save_state`]
    /// into a freshly constructed pattern of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns an error on truncated input.
    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        let _ = r;
        Ok(())
    }
}

/// Classic double-sided hammer: alternate the two aggressor rows
/// sandwiching a victim (`victim - 1`, `victim + 1`) in one bank. The
/// alternation also guarantees every access is a row-buffer conflict.
#[derive(Debug, Clone)]
pub struct DoubleSidedHammer {
    bank: BankRef,
    victim: u32,
    toggle: bool,
}

impl DoubleSidedHammer {
    /// Creates the pattern around `victim` (which must have both
    /// neighbours).
    ///
    /// # Panics
    ///
    /// Panics if `victim` is row 0.
    #[must_use]
    pub fn new(bank: BankRef, victim: u32) -> Self {
        assert!(victim > 0, "victim needs a lower neighbour");
        Self {
            bank,
            victim,
            toggle: false,
        }
    }
}

impl AttackPattern for DoubleSidedHammer {
    fn next_target(&mut self) -> DecodedAddr {
        self.toggle = !self.toggle;
        let row = if self.toggle {
            self.victim - 1
        } else {
            self.victim + 1
        };
        DecodedAddr::new(self.bank, row, 0)
    }

    fn name(&self) -> &str {
        "double-sided"
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_bool(self.toggle);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        self.toggle = r.take_bool()?;
        Ok(())
    }
}

/// Single-bank, single-row hammer with rotating conflict rows (every
/// other access) so the aggressor is re-activated each round.
#[derive(Debug, Clone)]
pub struct SingleRowHammer {
    bank: BankRef,
    aggressor: u32,
    conflict_base: u32,
    conflict_span: u32,
    i: u32,
}

impl SingleRowHammer {
    /// Hammers `aggressor`, interleaving conflict rows from
    /// `conflict_base..conflict_base + conflict_span`.
    ///
    /// # Panics
    ///
    /// Panics if `conflict_span` is zero.
    #[must_use]
    pub fn new(bank: BankRef, aggressor: u32, conflict_base: u32, conflict_span: u32) -> Self {
        assert!(conflict_span > 0);
        Self {
            bank,
            aggressor,
            conflict_base,
            conflict_span,
            i: 0,
        }
    }
}

impl AttackPattern for SingleRowHammer {
    fn next_target(&mut self) -> DecodedAddr {
        self.i = self.i.wrapping_add(1);
        let row = if self.i.is_multiple_of(2) {
            self.aggressor
        } else {
            self.conflict_base + (self.i / 2) % self.conflict_span
        };
        DecodedAddr::new(self.bank, row, 0)
    }

    fn name(&self) -> &str {
        "single-row"
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_u32(self.i);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        self.i = r.take_u32()?;
        Ok(())
    }
}

/// The multi-bank performance attack of Figure 14(b): one row per bank,
/// visited in a circular fashion across all banks of the device.
#[derive(Debug, Clone)]
pub struct MultiBankRoundRobin {
    geom: DramGeometry,
    row: u32,
    next_bank: u32,
}

impl MultiBankRoundRobin {
    /// Creates the pattern hammering `row` in every bank.
    #[must_use]
    pub fn new(geom: DramGeometry, row: u32) -> Self {
        Self {
            geom,
            row,
            next_bank: 0,
        }
    }
}

impl AttackPattern for MultiBankRoundRobin {
    fn next_target(&mut self) -> DecodedAddr {
        let bank = self.geom.split_bank(self.next_bank);
        self.next_bank = (self.next_bank + 1) % self.geom.total_banks();
        DecodedAddr::new(bank, self.row, 0)
    }

    fn name(&self) -> &str {
        "multi-bank"
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_u32(self.next_bank);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        self.next_bank = r.take_u32()?;
        Ok(())
    }
}

/// The SRQ-full attack of Section 7.4: a single bank receives a long
/// stream of unique rows, filling MoPAC-D's SRQ as fast as sampling
/// allows.
#[derive(Debug, Clone)]
pub struct SrqFillAttack {
    bank: BankRef,
    rows: u32,
    i: u32,
}

impl SrqFillAttack {
    /// Creates the pattern cycling over `rows` unique rows (much larger
    /// than the SRQ).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    #[must_use]
    pub fn new(bank: BankRef, rows: u32) -> Self {
        assert!(rows > 0);
        Self { bank, rows, i: 0 }
    }
}

impl AttackPattern for SrqFillAttack {
    fn next_target(&mut self) -> DecodedAddr {
        let row = self.i % self.rows;
        self.i = self.i.wrapping_add(1);
        DecodedAddr::new(self.bank, row, 0)
    }

    fn name(&self) -> &str {
        "srq-fill"
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_u32(self.i);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        self.i = r.take_u32()?;
        Ok(())
    }
}

/// The tardiness attack of Section 7.4 (multi-bank): hammer one row per
/// bank so that once it enters the SRQ its ACtr races to TTH.
#[derive(Debug, Clone)]
pub struct TardinessAttack {
    inner: MultiBankRoundRobin,
}

impl TardinessAttack {
    /// Creates the pattern (same shape as the multi-bank round-robin,
    /// but the interesting effect is the per-row ACtr).
    #[must_use]
    pub fn new(geom: DramGeometry, row: u32) -> Self {
        Self {
            inner: MultiBankRoundRobin::new(geom, row),
        }
    }
}

impl AttackPattern for TardinessAttack {
    fn next_target(&mut self) -> DecodedAddr {
        self.inner.next_target()
    }

    fn name(&self) -> &str {
        "tardiness"
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        self.inner.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        self.inner.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_sided_alternates_neighbours() {
        let mut p = DoubleSidedHammer::new(BankRef::new(0, 0), 100);
        let rows: Vec<u32> = (0..4).map(|_| p.next_target().row).collect();
        assert_eq!(rows, vec![99, 101, 99, 101]);
    }

    #[test]
    fn single_row_hits_aggressor_every_other_access() {
        let mut p = SingleRowHammer::new(BankRef::new(0, 1), 50, 500, 8);
        let hits = (0..100)
            .filter(|_| p.next_target().row == 50)
            .count();
        assert_eq!(hits, 50);
    }

    #[test]
    fn multi_bank_cycles_all_banks() {
        let geom = DramGeometry::tiny(); // 8 banks
        let mut p = MultiBankRoundRobin::new(geom, 7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..geom.total_banks() {
            let t = p.next_target();
            assert_eq!(t.row, 7);
            seen.insert(t.bank);
        }
        assert_eq!(seen.len(), geom.total_banks() as usize);
    }

    #[test]
    fn srq_fill_is_all_unique_within_span() {
        let mut p = SrqFillAttack::new(BankRef::new(1, 0), 64);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            assert!(seen.insert(p.next_target().row));
        }
    }
}
