//! The calibrated synthetic trace generator.
//!
//! Turns a [`WorkloadSpec`] into an infinite
//! [`TraceSource`]: geometric instruction gaps sized by MPKI, row runs
//! sized by RBHR, and row selection per the workload's
//! [`AccessPattern`]. Each core gets a
//! disjoint slice of the row space (the paper runs 8-core *rate mode*:
//! eight copies with private footprints).

use crate::spec::{AccessPattern, WorkloadSpec};
use mopac_cpu::trace::{TraceRecord, TraceSource};
use mopac_memctrl::mapping::AddressMapper;
use mopac_types::addr::{DecodedAddr, PhysAddr};
use mopac_types::geometry::BankRef;
use mopac_types::rng::DetRng;

/// How many cores share the machine (slices the row space).
const CORES: u32 = 8;

/// A per-core calibrated trace.
///
/// # Examples
///
/// ```
/// use mopac_workloads::generator::CalibratedTrace;
/// use mopac_workloads::spec::find;
/// use mopac_memctrl::mapping::{AddressMapper, Mapping};
/// use mopac_types::geometry::DramGeometry;
/// use mopac_cpu::trace::TraceSource;
///
/// let mapper = AddressMapper::new(DramGeometry::ddr5_32gb(), Mapping::paper_default());
/// let mut t = CalibratedTrace::new(find("xz").unwrap(), mapper, 0, 42);
/// let r = t.next_record();
/// assert!(r.gap < 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct CalibratedTrace {
    spec: WorkloadSpec,
    mapper: AddressMapper,
    rng: DetRng,
    core_id: u32,
    /// Rows per bank available to this core (its slice).
    slice_rows: u32,
    /// First row of this core's slice.
    slice_base: u32,
    /// Current position for row runs.
    current: DecodedAddr,
    /// Same-row accesses left before a new row is chosen.
    run_left: u64,
    /// Streaming cursors (line indices), if streaming.
    stream_cursors: Vec<u64>,
    stream_next: usize,
    /// Zipf cumulative weights, if zipfian.
    zipf_cdf: Vec<f64>,
    /// Hot-set cumulative weights (skewed hot sets).
    hot_cdf: Vec<f64>,
    /// Mean geometric gap parameter for inter-cluster gaps.
    gap_p: f64,
    /// Misses left in the current cluster.
    burst_left: u32,
    /// Hot rows owned by this core (1/8th of the spec's per-bank set).
    hot_rows_per_core: u32,
}

impl CalibratedTrace {
    /// Creates the trace for one core.
    ///
    /// # Panics
    ///
    /// Panics if the spec's MPKI is not positive or the geometry is too
    /// small to slice.
    #[must_use]
    pub fn new(spec: WorkloadSpec, mapper: AddressMapper, core_id: u32, seed: u64) -> Self {
        assert!(spec.mpki > 0.0, "MPKI must be positive");
        let geom = *mapper.geometry();
        let slice_rows = (geom.rows_per_bank / CORES).max(1);
        let slice_base = (core_id % CORES) * slice_rows;
        // Misses arrive in clusters of ~`burst`; the inter-cluster gap
        // is scaled up so overall MPKI is preserved.
        let mean_gap = 1000.0 / spec.mpki * f64::from(spec.burst.max(1));
        let gap_p = 1.0 / (mean_gap + 1.0);
        let rng = DetRng::from_seed(seed).fork(u64::from(core_id) ^ 0x77);
        let zipf_cdf = if let AccessPattern::Zipf {
            footprint_rows,
            theta,
        } = spec.pattern
        {
            cumulative_weights(footprint_rows as usize, |r| {
                1.0 / ((r + 1) as f64).powf(theta)
            })
        } else {
            Vec::new()
        };
        // Table 4's ACT-64+/200+ columns are per bank across all eight
        // rate-mode copies, so each core owns 1/8th of the hot set (at
        // 8x the per-row intensity).
        let hot_rows_per_core = if let AccessPattern::Irregular { hot_rows, .. } = spec.pattern {
            hot_rows.div_ceil(CORES).max(1)
        } else {
            0
        };
        // Mild skew (rank^-0.5): most hot rows land in the 64-200 ACT
        // band with a short head above 200, matching Table 4's shape.
        let hot_cdf = if let AccessPattern::Irregular { skewed: true, .. } = spec.pattern {
            cumulative_weights(hot_rows_per_core as usize, |r| {
                1.0 / ((r + 1) as f64).sqrt()
            })
        } else {
            Vec::new()
        };
        let streams = if let AccessPattern::Streaming { streams } = spec.pattern {
            streams
        } else {
            0
        };
        let lines = geom.total_lines();
        let stream_cursors = (0..streams)
            .map(|s| {
                // Spread streams across the core's share of the address
                // space, plus a per-stream phase jitter so cursors do
                // not align on the same bank rotation (which would make
                // every stream hammer one bank in lockstep).
                let jitter = (u64::from(core_id) * 7 + u64::from(s) * 131) % 509;
                (u64::from(core_id) * lines / u64::from(CORES)
                    + u64::from(s) * lines / u64::from(CORES * streams.max(1)) / 2
                    + jitter)
                    % lines
            })
            .collect();
        Self {
            current: DecodedAddr::new(BankRef::new(0, 0), slice_base, 0),
            run_left: 0,
            stream_cursors,
            stream_next: 0,
            zipf_cdf,
            hot_cdf,
            gap_p,
            burst_left: 0,
            hot_rows_per_core,
            spec,
            mapper,
            rng,
            core_id,
            slice_rows,
            slice_base,
        }
    }

    /// The workload spec driving this trace.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Advances the next stream cursor; returns the address and whether
    /// this stream is a write stream (real STREAM kernels read some
    /// arrays and write others, e.g. copy reads A and writes B).
    fn next_streaming(&mut self) -> (PhysAddr, bool) {
        let lines = self.mapper.geometry().total_lines();
        let idx = self.stream_next;
        self.stream_next = (self.stream_next + 1) % self.stream_cursors.len();
        let line = self.stream_cursors[idx];
        self.stream_cursors[idx] = (line + 1) % lines;
        let write_streams =
            (self.stream_cursors.len() as f64 * self.spec.write_frac).round() as usize;
        (
            PhysAddr::from_line_index(line, self.mapper.geometry().line_bytes),
            idx < write_streams,
        )
    }

    fn pick_new_row(&mut self) {
        let geom = *self.mapper.geometry();
        let banks = geom.total_banks();
        match self.spec.pattern {
            AccessPattern::Irregular {
                hot_frac, skewed, ..
            } => {
                let hot = self.hot_rows_per_core > 0 && self.rng.bernoulli(hot_frac);
                let bank = self.rng.below(u64::from(banks)) as u32;
                let row = if hot {
                    let idx = if skewed {
                        sample_cdf(&self.hot_cdf, self.rng.unit_f64()) as u32
                    } else {
                        self.rng.below(u64::from(self.hot_rows_per_core)) as u32
                    };
                    self.slice_base + idx % self.slice_rows
                } else {
                    self.slice_base + self.rng.below(u64::from(self.slice_rows)) as u32
                };
                let r = geom.split_bank(bank);
                self.current = DecodedAddr::new(r, row, self.rng.below(128) as u32);
            }
            AccessPattern::Zipf { .. } => {
                let idx = sample_cdf(&self.zipf_cdf, self.rng.unit_f64()) as u64;
                // Spread popular rows across banks pseudo-randomly but
                // deterministically (hash of rank); the column start is
                // also rank-deterministic so revisits to a hot key touch
                // the same cache lines (giving the LLC real reuse).
                let h = idx
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(u64::from(self.core_id) << 56);
                let bank = (h % u64::from(banks)) as u32;
                let row = self.slice_base + ((h >> 8) % u64::from(self.slice_rows)) as u32;
                let col = ((h >> 40) % u64::from(geom.lines_per_row())) as u32;
                let r = geom.split_bank(bank);
                self.current = DecodedAddr::new(r, row, col);
            }
            AccessPattern::Streaming { .. } => unreachable!("streaming bypasses pick_new_row"),
        }
        // New row: draw the run length for subsequent same-row hits.
        // E[extra same-row accesses] = rbhr / (1 - rbhr).
        self.run_left = if self.spec.rbhr >= 1.0 {
            u64::MAX
        } else if self.spec.rbhr <= 0.0 {
            0
        } else {
            self.rng.geometric(1.0 - self.spec.rbhr)
        };
    }

    fn next_irregular(&mut self) -> PhysAddr {
        if self.run_left == 0 {
            self.pick_new_row();
        } else {
            self.run_left -= 1;
            // Advance within the row (next line).
            let lines_per_row = self.mapper.geometry().lines_per_row();
            self.current.col = (self.current.col + 1) % lines_per_row;
        }
        self.mapper.encode(self.current)
    }
}

impl TraceSource for CalibratedTrace {
    fn next_record(&mut self) -> TraceRecord {
        let gap = if self.burst_left > 0 {
            self.burst_left -= 1;
            0
        } else {
            // Start a new cluster: one long gap, then `burst - 1`
            // back-to-back misses.
            self.burst_left = self.spec.burst.saturating_sub(1);
            self.rng.geometric(self.gap_p).min(1_000_000) as u32
        };
        let (addr, is_write) = match self.spec.pattern {
            AccessPattern::Streaming { .. } => self.next_streaming(),
            _ => (
                self.next_irregular(),
                self.rng.bernoulli(self.spec.write_frac),
            ),
        };
        TraceRecord {
            gap,
            addr,
            is_write,
        }
    }

    fn name(&self) -> &str {
        self.spec.name
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        use mopac_types::snapshot::Snapshottable;
        self.rng.save_state(w);
        self.current.save_state(w);
        w.put_u64(self.run_left);
        w.put_usize(self.stream_cursors.len());
        for &c in &self.stream_cursors {
            w.put_u64(c);
        }
        w.put_usize(self.stream_next);
        w.put_u32(self.burst_left);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        use mopac_types::snapshot::Snapshottable;
        self.rng.load_state(r)?;
        self.current.load_state(r)?;
        self.run_left = r.take_u64()?;
        let cursors = r.take_usize()?;
        if cursors != self.stream_cursors.len() {
            return Err(mopac_types::MopacError::snapshot(format!(
                "trace has {cursors} stream cursors in snapshot but {} configured",
                self.stream_cursors.len(),
            )));
        }
        for c in &mut self.stream_cursors {
            *c = r.take_u64()?;
        }
        self.stream_next = r.take_usize()?;
        self.burst_left = r.take_u32()?;
        Ok(())
    }
}

/// Builds normalized cumulative weights for `n` ranks.
fn cumulative_weights(n: usize, weight: impl Fn(usize) -> f64) -> Vec<f64> {
    let mut cdf = Vec::with_capacity(n);
    let mut total = 0.0;
    for r in 0..n {
        total += weight(r);
        cdf.push(total);
    }
    for v in &mut cdf {
        *v /= total;
    }
    cdf
}

/// Samples a rank from a normalized CDF.
fn sample_cdf(cdf: &[f64], u: f64) -> usize {
    cdf.partition_point(|&c| c < u).min(cdf.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::find;
    use mopac_memctrl::mapping::Mapping;
    use mopac_types::collections::{bank_row_key, DetCounter};
    use mopac_types::geometry::DramGeometry;

    fn mapper() -> AddressMapper {
        AddressMapper::new(DramGeometry::ddr5_32gb(), Mapping::paper_default())
    }

    fn trace(name: &str, core: u32) -> CalibratedTrace {
        CalibratedTrace::new(find(name).unwrap(), mapper(), core, 7)
    }

    #[test]
    fn gap_mean_tracks_mpki() {
        let mut t = trace("xz", 0); // MPKI 6.1 -> mean gap ~163
        let n = 20_000;
        let total: u64 = (0..n).map(|_| u64::from(t.next_record().gap)).sum();
        let mean = total as f64 / f64::from(n);
        let want = 1000.0 / 6.1;
        assert!((mean - want).abs() / want < 0.05, "mean gap {mean}");
    }

    /// Row-run lengths must match the target RBHR under an ideal open
    /// row buffer.
    #[test]
    fn rbhr_calibration_ideal_buffer() {
        for name in ["parest", "mcf", "xz"] {
            let mut t = trace(name, 0);
            let spec = *t.spec();
            let m = mapper();
            let geom = *m.geometry();
            // Flat-indexed open-row tracker: deterministic and
            // allocation-free, unlike a hashed map.
            let mut open: Vec<Option<u32>> =
                vec![None; (geom.subchannels * geom.banks_per_subchannel) as usize];
            let (mut hits, mut total) = (0u64, 0u64);
            for _ in 0..40_000 {
                let r = t.next_record();
                let d = m.decode(r.addr);
                total += 1;
                let flat = geom.flat_bank(d.bank.subchannel, d.bank.bank) as usize;
                if open[flat].replace(d.row) == Some(d.row) {
                    hits += 1;
                }
            }
            let rbhr = hits as f64 / total as f64;
            assert!(
                (rbhr - spec.rbhr).abs() < 0.04,
                "{name}: rbhr {rbhr} vs target {}",
                spec.rbhr
            );
        }
    }

    #[test]
    fn streaming_touches_consecutive_lines() {
        let mut t = trace("copy", 0);
        let a = t.next_record().addr;
        let b = t.next_record().addr;
        let c = t.next_record().addr;
        // Two streams alternate; the third access continues stream one.
        assert_ne!(a, b);
        assert_eq!(c.get(), a.get() + 64);
    }

    #[test]
    fn cores_use_disjoint_row_slices() {
        let m = mapper();
        let mut t0 = trace("mcf", 0);
        let mut t1 = trace("mcf", 1);
        for _ in 0..2_000 {
            let r0 = m.decode(t0.next_record().addr).row;
            let r1 = m.decode(t1.next_record().addr).row;
            assert!(r0 < 8192, "core 0 row {r0}");
            assert!((8192..16384).contains(&r1), "core 1 row {r1}");
        }
    }

    #[test]
    fn hot_set_produces_hot_rows() {
        let m = mapper();
        let geom = *m.geometry();
        let mut t = trace("parest", 0);
        let mut counts = DetCounter::new();
        for _ in 0..300_000 {
            let d = m.decode(t.next_record().addr);
            counts.bump(bank_row_key(
                geom.flat_bank(d.bank.subchannel, d.bank.bank),
                d.row,
            ));
        }
        let hot = counts.counts().iter().filter(|&&c| c >= 32).count();
        assert!(hot > 10, "only {hot} hot rows");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = trace("omnetpp", 3);
        let mut b = trace("omnetpp", 3);
        for _ in 0..1000 {
            assert_eq!(a.next_record(), b.next_record());
        }
    }

    #[test]
    fn zipf_skews_popularity() {
        let m = mapper();
        let mut t = trace("masstree", 0);
        let mut counts = DetCounter::new();
        for _ in 0..100_000 {
            let d = m.decode(t.next_record().addr);
            counts.bump(u64::from(d.row) << 8 | u64::from(d.bank.bank));
        }
        let mut v: Vec<u32> = counts.counts();
        v.sort_unstable_by(|a, b| b.cmp(a));
        // Top row should be dramatically more popular than the median.
        assert!(v[0] > 20 * v[v.len() / 2].max(1), "top {} median {}", v[0], v[v.len() / 2]);
    }
}
