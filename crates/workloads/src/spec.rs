//! The workload catalog: every row of the paper's Table 4, encoded as a
//! generator specification.
//!
//! The SPEC-2017 / STREAM / masstree traces themselves are not
//! redistributable, so each workload is described by the memory-level
//! statistics the paper publishes — misses per kilo-instruction (MPKI),
//! row-buffer hit rate (RBHR), and the hot-row skew implied by the
//! ACT-64+/ACT-200+ columns — and synthesized by
//! [`crate::generator::CalibratedTrace`]. See DESIGN.md, substitution 1.

/// Row-selection behaviour of a workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Sequential array sweeps (STREAM): `streams` concurrent cursors
    /// walking consecutive cache lines.
    Streaming {
        /// Number of concurrent array streams (e.g. 3 for triad).
        streams: u32,
    },
    /// SPEC-like irregular access: row runs sized by RBHR, a random row
    /// working set, and an optional hot set producing the ACT-64+/200+
    /// rows of Table 4.
    Irregular {
        /// Hot rows per bank.
        hot_rows: u32,
        /// Fraction of new-row choices that land in the hot set.
        hot_frac: f64,
        /// Harmonic skew within the hot set (some rows reach 200+
        /// activations) versus uniform.
        skewed: bool,
    },
    /// Key-value-store behaviour (masstree): Zipfian row popularity.
    Zipf {
        /// Number of distinct rows in the working set (per core).
        footprint_rows: u32,
        /// Zipf exponent.
        theta: f64,
    },
}

/// A complete workload description (one row of Table 4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadSpec {
    /// Benchmark name as used in the paper.
    pub name: &'static str,
    /// LLC misses per kilo-instruction.
    pub mpki: f64,
    /// Target row-buffer hit rate.
    pub rbhr: f64,
    /// Fraction of misses that are writebacks.
    pub write_frac: f64,
    /// Mean miss-cluster size: misses arrive in bursts of roughly this
    /// many (memory-level parallelism the ROB can exploit). Table 4 does
    /// not publish MLP; these values are calibrated so the PRAC
    /// slowdowns reproduce the shape of Figure 2 (see EXPERIMENTS.md).
    pub burst: u32,
    /// Row-selection behaviour.
    pub pattern: AccessPattern,
}

/// Paper values carried along for validation (Table 4 columns).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperStats {
    /// Misses per kilo-instruction.
    pub mpki: f64,
    /// Row-buffer hit rate.
    pub rbhr: f64,
    /// Mean activations per refresh interval per bank.
    pub apri: f64,
    /// Rows per bank with 64+ activations per 32 ms.
    pub act64: f64,
    /// Rows per bank with 200+ activations per 32 ms.
    pub act200: f64,
}

const fn irregular(hot_rows: u32, hot_frac: f64, skewed: bool) -> AccessPattern {
    AccessPattern::Irregular {
        hot_rows,
        hot_frac,
        skewed,
    }
}

/// The 12 SPEC-2017 workloads with MPKI > 1 (Table 4), plus masstree and
/// the four STREAM kernels. Hot-set knobs are calibrated so the
/// generated streams approximate the published ACT-64+/ACT-200+ skew.
pub const WORKLOADS: &[(WorkloadSpec, PaperStats)] = &[
    (
        WorkloadSpec {
            name: "bwaves",
            mpki: 42.3,
            rbhr: 0.51,
            write_frac: 0.25,
            burst: 6,
            pattern: irregular(0, 0.0, false),
        },
        PaperStats {
            mpki: 42.3,
            rbhr: 0.51,
            apri: 14.1,
            act64: 0.0,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "parest",
            mpki: 28.9,
            rbhr: 0.61,
            write_frac: 0.25,
            burst: 4,
            pattern: irregular(160, 0.12, true),
        },
        PaperStats {
            mpki: 28.9,
            rbhr: 0.61,
            apri: 12.6,
            act64: 155.4,
            act200: 10.5,
        },
    ),
    (
        WorkloadSpec {
            name: "mcf",
            mpki: 28.8,
            rbhr: 0.47,
            write_frac: 0.2,
            burst: 3,
            pattern: irregular(3, 0.002, false),
        },
        PaperStats {
            mpki: 28.8,
            rbhr: 0.47,
            apri: 16.9,
            act64: 3.1,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "lbm",
            mpki: 28.2,
            rbhr: 0.29,
            write_frac: 0.4,
            burst: 6,
            pattern: irregular(14, 0.008, false),
        },
        PaperStats {
            mpki: 28.2,
            rbhr: 0.29,
            apri: 19.4,
            act64: 13.3,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "fotonik3d",
            mpki: 25.4,
            rbhr: 0.23,
            write_frac: 0.3,
            burst: 5,
            pattern: irregular(1, 0.0005, false),
        },
        PaperStats {
            mpki: 25.4,
            rbhr: 0.23,
            apri: 19.5,
            act64: 0.4,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "omnetpp",
            mpki: 10.2,
            rbhr: 0.25,
            write_frac: 0.25,
            burst: 2,
            pattern: irregular(60, 0.045, true),
        },
        PaperStats {
            mpki: 10.2,
            rbhr: 0.25,
            apri: 19.7,
            act64: 49.3,
            act200: 10.1,
        },
    ),
    (
        WorkloadSpec {
            name: "roms",
            mpki: 8.2,
            rbhr: 0.62,
            write_frac: 0.3,
            burst: 4,
            pattern: irregular(1, 0.001, false),
        },
        PaperStats {
            mpki: 8.2,
            rbhr: 0.62,
            apri: 10.4,
            act64: 1.2,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "xz",
            mpki: 6.1,
            rbhr: 0.05,
            write_frac: 0.3,
            burst: 1,
            pattern: irregular(165, 0.08, false),
        },
        PaperStats {
            mpki: 6.1,
            rbhr: 0.05,
            apri: 20.7,
            act64: 164.0,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "cactuBSSN",
            mpki: 3.5,
            rbhr: 0.00,
            write_frac: 0.3,
            burst: 2,
            pattern: irregular(0, 0.0, false),
        },
        PaperStats {
            mpki: 3.5,
            rbhr: 0.00,
            apri: 16.3,
            act64: 0.0,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "xalancbmk",
            mpki: 2.0,
            rbhr: 0.54,
            write_frac: 0.2,
            burst: 2,
            pattern: irregular(0, 0.0, false),
        },
        PaperStats {
            mpki: 2.0,
            rbhr: 0.54,
            apri: 8.7,
            act64: 0.0,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "cam4",
            mpki: 1.6,
            rbhr: 0.58,
            write_frac: 0.25,
            burst: 3,
            pattern: irregular(0, 0.0, false),
        },
        PaperStats {
            mpki: 1.6,
            rbhr: 0.58,
            apri: 5.6,
            act64: 0.0,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "blender",
            mpki: 1.5,
            rbhr: 0.37,
            write_frac: 0.25,
            burst: 3,
            pattern: irregular(0, 0.0, false),
        },
        PaperStats {
            mpki: 1.5,
            rbhr: 0.37,
            apri: 6.0,
            act64: 0.0,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "masstree",
            mpki: 20.3,
            rbhr: 0.55,
            write_frac: 0.15,
            burst: 2,
            pattern: AccessPattern::Zipf {
                footprint_rows: 32 * 1024,
                theta: 0.9,
            },
        },
        PaperStats {
            mpki: 20.3,
            rbhr: 0.55,
            apri: 13.6,
            act64: 14.3,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "add",
            mpki: 62.5,
            rbhr: 0.69,
            write_frac: 0.33,
            burst: 1,
            pattern: AccessPattern::Streaming { streams: 3 },
        },
        PaperStats {
            mpki: 62.5,
            rbhr: 0.69,
            apri: 10.2,
            act64: 0.0,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "triad",
            mpki: 53.6,
            rbhr: 0.69,
            write_frac: 0.33,
            burst: 1,
            pattern: AccessPattern::Streaming { streams: 3 },
        },
        PaperStats {
            mpki: 53.6,
            rbhr: 0.69,
            apri: 10.3,
            act64: 0.0,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "copy",
            mpki: 50.0,
            rbhr: 0.70,
            write_frac: 0.5,
            burst: 1,
            pattern: AccessPattern::Streaming { streams: 2 },
        },
        PaperStats {
            mpki: 50.0,
            rbhr: 0.70,
            apri: 9.8,
            act64: 0.0,
            act200: 0.0,
        },
    ),
    (
        WorkloadSpec {
            name: "scale",
            mpki: 41.7,
            rbhr: 0.70,
            write_frac: 0.5,
            burst: 1,
            pattern: AccessPattern::Streaming { streams: 2 },
        },
        PaperStats {
            mpki: 41.7,
            rbhr: 0.70,
            apri: 9.7,
            act64: 0.0,
            act200: 0.0,
        },
    ),
];

/// The paper's six mixed workloads: 8-core assignments drawn from the
/// SPEC set (the paper picks them randomly; we fix representative
/// combinations so results are reproducible).
pub const MIXES: &[(&str, [&str; 8])] = &[
    ("mix1", ["parest", "mcf", "omnetpp", "xz", "bwaves", "lbm", "parest", "omnetpp"]),
    ("mix2", ["parest", "lbm", "mcf", "xalancbmk", "omnetpp", "bwaves", "xz", "cam4"]),
    ("mix3", ["omnetpp", "xz", "parest", "roms", "mcf", "fotonik3d", "blender", "lbm"]),
    ("mix4", ["parest", "parest", "omnetpp", "xz", "mcf", "lbm", "bwaves", "xalancbmk"]),
    ("mix5", ["omnetpp", "parest", "xz", "cam4", "lbm", "roms", "mcf", "bwaves"]),
    ("mix6", ["xz", "omnetpp", "parest", "blender", "fotonik3d", "mcf", "lbm", "roms"]),
];

/// Looks up a workload spec by name.
///
/// # Examples
///
/// ```
/// use mopac_workloads::spec::find;
///
/// assert_eq!(find("xz").unwrap().mpki, 6.1);
/// assert!(find("nonexistent").is_none());
/// ```
#[must_use]
pub fn find(name: &str) -> Option<WorkloadSpec> {
    WORKLOADS
        .iter()
        .find(|(w, _)| w.name == name)
        .map(|(w, _)| *w)
}

/// Paper-published statistics for a workload.
#[must_use]
pub fn paper_stats(name: &str) -> Option<PaperStats> {
    WORKLOADS
        .iter()
        .find(|(w, _)| w.name == name)
        .map(|(_, s)| *s)
}

/// All workload names in Table 4 order (SPEC, mixes, masstree, STREAM —
/// the order of the paper's figures).
#[must_use]
pub fn all_names() -> Vec<&'static str> {
    let spec_order = [
        "bwaves",
        "parest",
        "mcf",
        "lbm",
        "fotonik3d",
        "omnetpp",
        "roms",
        "xz",
        "cactuBSSN",
        "xalancbmk",
        "cam4",
        "blender",
    ];
    let mut names: Vec<&'static str> = spec_order.to_vec();
    names.extend(MIXES.iter().map(|(n, _)| *n));
    names.push("masstree");
    names.extend(["add", "triad", "copy", "scale"]);
    names
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table4_row_count() {
        // 12 SPEC + masstree + 4 STREAM = 17 specs; 6 mixes on top.
        assert_eq!(WORKLOADS.len(), 17);
        assert_eq!(MIXES.len(), 6);
        assert_eq!(all_names().len(), 23);
    }

    #[test]
    fn mixes_reference_known_workloads() {
        for (name, cores) in MIXES {
            for w in cores {
                assert!(find(w).is_some(), "{name} references unknown {w}");
            }
        }
    }

    #[test]
    fn stream_kernels_have_high_rbhr_and_streaming_pattern() {
        for n in ["add", "triad", "copy", "scale"] {
            let w = find(n).unwrap();
            assert!(w.rbhr >= 0.69);
            assert!(matches!(w.pattern, AccessPattern::Streaming { .. }));
        }
    }

    #[test]
    fn hot_workloads_have_hot_sets() {
        for n in ["parest", "omnetpp", "xz"] {
            let w = find(n).unwrap();
            match w.pattern {
                AccessPattern::Irregular { hot_rows, hot_frac, .. } => {
                    assert!(hot_rows > 0 && hot_frac > 0.0, "{n}");
                }
                _ => panic!("{n} should be irregular"),
            }
        }
    }
}
