//! CPU-side models for the MoPAC reproduction: the trace-driven
//! out-of-order core ([`core`]), the shared last-level cache ([`llc`]),
//! and the trace interface workloads implement ([`trace`]).
//!
//! Together with `mopac-memctrl` and `mopac-dram`, this reproduces the
//! paper's Table 3 system: 8 cores (4 GHz, 4-wide, 256-entry ROB)
//! sharing an 8 MB 16-way LLC in front of a 32 GB DDR5 device.
//!
//! # Examples
//!
//! ```
//! use mopac_cpu::core::{Core, CoreParams};
//!
//! let mut core = Core::new(CoreParams::paper_default());
//! core.push_instrs(16);
//! assert!(core.retire() > 0);
//! ```

pub mod core;
pub mod llc;
pub mod prefetch;
pub mod trace;

pub use crate::core::{Core, CoreParams};
pub use llc::{CacheAccess, Llc, LlcStats};
pub use prefetch::StreamPrefetcher;
pub use trace::{ReplayTrace, TraceRecord, TraceSource};
