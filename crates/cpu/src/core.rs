//! Trace-driven out-of-order core model.
//!
//! Matches the paper's Table 3 frontend: 4 GHz, 4-wide, 256-entry ROB.
//! The model captures what matters for memory-system studies — memory-
//! level parallelism bounded by the ROB, and retirement blocking on the
//! oldest outstanding load:
//!
//! * **Fetch**: the simulation driver pushes instruction gaps and loads
//!   into the ROB while there is space ([`Core::rob_free`]); loads are
//!   sent to the memory controller at fetch time, so independent misses
//!   overlap.
//! * **Retire**: each DRAM cycle grants fractional retire credit
//!   (4 instructions x 4 GHz / 3 GHz DRAM clock = 16/3 per cycle); the
//!   head of the ROB must be complete to retire. Stores are posted at
//!   fetch and never enter the ROB.

use mopac_types::time::Cycle;
use std::collections::VecDeque;

/// Core parameters (Table 3 defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoreParams {
    /// Reorder-buffer capacity in instructions.
    pub rob_size: usize,
    /// Instructions retired (and fetched) per DRAM cycle.
    pub retire_per_dram_cycle: f64,
}

impl CoreParams {
    /// 4 GHz, 4-wide core on a 3 GHz DRAM clock.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            rob_size: 256,
            retire_per_dram_cycle: 16.0 / 3.0,
        }
    }
}

impl Default for CoreParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    /// A run of non-memory instructions.
    Instrs(u32),
    /// A load waiting for DRAM (1 instruction slot).
    Read { id: u64, done: bool },
}

/// One simulated core.
///
/// # Examples
///
/// ```
/// use mopac_cpu::core::{Core, CoreParams};
///
/// let mut core = Core::new(CoreParams::paper_default());
/// core.push_instrs(4);
/// core.push_read(42);
/// // The gap retires within one cycle's credit (16/3 instructions);
/// // then the outstanding load blocks the head.
/// assert_eq!(core.retire(), 4);
/// assert_eq!(core.retire(), 0);
/// core.on_complete(42);
/// assert_eq!(core.retire(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Core {
    params: CoreParams,
    rob: VecDeque<Slot>,
    rob_instrs: usize,
    credit: f64,
    retired: u64,
    stall_cycles: u64,
    finished_at: Option<Cycle>,
}

impl Core {
    /// Creates an idle core.
    #[must_use]
    pub fn new(params: CoreParams) -> Self {
        Self {
            params,
            rob: VecDeque::with_capacity(params.rob_size),
            rob_instrs: 0,
            credit: 0.0,
            retired: 0,
            stall_cycles: 0,
            finished_at: None,
        }
    }

    /// Free ROB capacity in instruction slots.
    #[must_use]
    pub fn rob_free(&self) -> usize {
        self.params.rob_size.saturating_sub(self.rob_instrs)
    }

    /// Total instructions retired.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Cycles in which the core wanted to retire but could not (head
    /// load outstanding).
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// When the core crossed its instruction budget (set by
    /// [`Core::check_finished`]).
    #[must_use]
    pub fn finished_at(&self) -> Option<Cycle> {
        self.finished_at
    }

    /// Pushes a run of non-memory instructions into the ROB.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the ROB lacks space.
    pub fn push_instrs(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        debug_assert!(self.rob_free() >= n as usize, "ROB overflow");
        self.rob.push_back(Slot::Instrs(n));
        self.rob_instrs += n as usize;
    }

    /// Pushes a load (already issued to the memory system) into the ROB.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the ROB lacks space.
    pub fn push_read(&mut self, id: u64) {
        debug_assert!(self.rob_free() >= 1, "ROB overflow");
        self.rob.push_back(Slot::Read { id, done: false });
        self.rob_instrs += 1;
    }

    /// Marks the load with `id` complete.
    pub fn on_complete(&mut self, id: u64) {
        for slot in &mut self.rob {
            if let Slot::Read { id: rid, done } = slot {
                if *rid == id {
                    *done = true;
                    return;
                }
            }
        }
        debug_assert!(false, "completion for unknown load {id}");
    }

    /// Advances one DRAM cycle of retirement; returns instructions
    /// retired this cycle.
    pub fn retire(&mut self) -> u64 {
        self.credit += self.params.retire_per_dram_cycle;
        let mut retired_now = 0u64;
        while self.credit >= 1.0 {
            match self.rob.front_mut() {
                Some(Slot::Instrs(n)) => {
                    let take = (*n).min(self.credit as u32);
                    *n -= take;
                    self.credit -= f64::from(take);
                    self.rob_instrs -= take as usize;
                    retired_now += u64::from(take);
                    if *n == 0 {
                        self.rob.pop_front();
                    }
                }
                Some(Slot::Read { done: true, .. }) => {
                    self.rob.pop_front();
                    self.rob_instrs -= 1;
                    self.credit -= 1.0;
                    retired_now += 1;
                }
                Some(Slot::Read { done: false, .. }) => {
                    if retired_now == 0 {
                        self.stall_cycles += 1;
                    }
                    // Cap accumulated credit so a long stall does not
                    // turn into an unrealistic retire burst afterwards.
                    self.credit = self.credit.min(self.params.retire_per_dram_cycle);
                    self.retired += retired_now;
                    return retired_now;
                }
                None => {
                    self.credit = 0.0;
                    break;
                }
            }
        }
        self.retired += retired_now;
        retired_now
    }

    /// Whether a call to [`Core::retire`] would retire at least one
    /// instruction this cycle: the ROB head is a run of plain
    /// instructions or a completed load. A core whose head load is
    /// outstanding — or whose ROB is empty — makes no retirement
    /// progress until an external event (completion delivery, fetch)
    /// changes that, which is what lets an event-driven kernel skip it.
    #[must_use]
    pub fn retire_ready(&self) -> bool {
        matches!(
            self.rob.front(),
            Some(Slot::Instrs(_) | Slot::Read { done: true, .. })
        )
    }

    /// Whether the ROB holds no loads — only plain-instruction runs.
    /// Run boundaries are invisible to retirement (it consumes by
    /// credit, stopping at loads, not at run edges), so a plain ROB's
    /// observable state is fully described by its instruction total.
    /// This is the entry condition for [`Core::run_plain`].
    #[must_use]
    pub fn is_plain(&self) -> bool {
        self.rob.iter().all(|s| matches!(s, Slot::Instrs(_)))
    }

    /// Whether the ROB head is an outstanding load: retirement cannot
    /// make progress until its completion is delivered, though fetch
    /// can still append plain instructions behind it
    /// ([`Core::run_stalled_fetch`]).
    #[must_use]
    pub fn head_stalled(&self) -> bool {
        matches!(self.rob.front(), Some(Slot::Read { done: false, .. }))
    }

    /// Bulk-advances `cycles` DRAM cycles while the ROB head is an
    /// outstanding load: nothing retires, the stall counter ticks, the
    /// retire credit pins at its per-cycle cap, and fetch keeps
    /// appending gap instructions behind the load until the ROB fills.
    /// Cycle-for-cycle identical to the driver's gap-push branch
    /// followed by [`Core::retire`] hitting the stalled head; the
    /// appended instructions land as a single run, which is
    /// unobservable (see [`Core::is_plain`]). The caller guarantees
    /// `gap_left` cannot reach zero within the region, no completion is
    /// delivered during it, and the retire rate is at least one
    /// instruction per cycle.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the ROB head is not an outstanding load.
    pub fn run_stalled_fetch(&mut self, cycles: u64, gap_left: &mut u32, fetch_credit: &mut f64) {
        debug_assert!(self.head_stalled(), "run_stalled_fetch without a stalled head");
        debug_assert!(self.params.retire_per_dram_cycle >= 1.0);
        let r = self.params.retire_per_dram_cycle;
        let rob_size = self.params.rob_size;
        let mut appended: u64 = 0;
        for _ in 0..cycles {
            *fetch_credit = (*fetch_credit + r).min(64.0);
            loop {
                if *fetch_credit < 1.0 {
                    break;
                }
                let free = rob_size.saturating_sub(self.rob_instrs) as u32;
                let n = (*gap_left).min(*fetch_credit as u32).min(free);
                if n == 0 {
                    break;
                }
                appended += u64::from(n);
                self.rob_instrs += n as usize;
                *gap_left -= n;
                *fetch_credit -= f64::from(n);
            }
            // `retire` with an outstanding head: stall accounting and
            // the credit cap, no retirement.
            self.credit = (self.credit + r).min(r);
            self.stall_cycles += 1;
        }
        if appended > 0 {
            self.rob.push_back(Slot::Instrs(appended as u32));
        }
    }

    /// Bulk-advances `cycles` DRAM cycles of pure plain-instruction
    /// flow — per-cycle fetch-credit accrual, gap pushes, and
    /// retirement — using only scalar state. The arithmetic is
    /// cycle-for-cycle identical to the driver's gap-push branch
    /// followed by [`Core::retire`]; the ROB deque is collapsed to its
    /// instruction total for the region and rematerialized as a single
    /// run afterwards, which is unobservable (see [`Core::is_plain`]).
    /// Latches `finished_at` at the exact cycle the retired count
    /// crosses `budget`, as per-cycle [`Core::check_finished`] calls
    /// with `now + k + 1` would.
    ///
    /// The caller guarantees `gap_left` cannot reach zero within the
    /// region (so the fetch stream never needs a new trace record) and
    /// that no load completes during it.
    ///
    /// # Panics
    ///
    /// Panics (debug) if the ROB holds an outstanding or completed
    /// load.
    pub fn run_plain(
        &mut self,
        cycles: u64,
        gap_left: &mut u32,
        fetch_credit: &mut f64,
        budget: u64,
        now: Cycle,
    ) {
        debug_assert!(self.is_plain(), "run_plain with loads in the ROB");
        self.rob.clear();
        let r = self.params.retire_per_dram_cycle;
        let rob_size = self.params.rob_size;
        for k in 0..cycles {
            // Fetch: the driver's gap-push branch.
            *fetch_credit = (*fetch_credit + r).min(64.0);
            loop {
                if *fetch_credit < 1.0 {
                    break;
                }
                let free = rob_size.saturating_sub(self.rob_instrs) as u32;
                let n = (*gap_left).min(*fetch_credit as u32).min(free);
                if n == 0 {
                    break;
                }
                self.rob_instrs += n as usize;
                *gap_left -= n;
                *fetch_credit -= f64::from(n);
            }
            // Retire over the collapsed run: `retire`'s loop consumes
            // `credit as u32` instructions per pass regardless of run
            // boundaries (integer subtractions keep the fractional
            // part), and zeroes leftover credit >= 1 on an emptied ROB.
            self.credit += r;
            if self.credit >= 1.0 {
                let take = (self.rob_instrs as u64).min(self.credit as u64) as u32;
                self.rob_instrs -= take as usize;
                self.credit -= f64::from(take);
                self.retired += u64::from(take);
                if self.rob_instrs == 0 && self.credit >= 1.0 {
                    self.credit = 0.0;
                }
            }
            if self.finished_at.is_none() && self.retired >= budget {
                self.finished_at = Some(now + k + 1);
            }
        }
        if self.rob_instrs > 0 {
            self.rob.push_back(Slot::Instrs(self.rob_instrs as u32));
        }
    }

    /// Fast-forwards `cycles` idle cycles in one step, producing exactly
    /// the state `cycles` consecutive [`Core::retire`] calls would have
    /// left behind on a core that cannot retire. Callers must only use
    /// this when [`Core::retire_ready`] is false (debug-asserted):
    ///
    /// * head load outstanding: each lockstep cycle executes
    ///   `credit = min(credit + r, r)`, which is exactly `r` after the
    ///   first stalled cycle, and counts one stall cycle — so the
    ///   per-cycle fold collapses to a closed form, bit-identically.
    /// * empty ROB: each lockstep cycle zeroes the credit.
    pub fn skip_idle(&mut self, cycles: u64) {
        if cycles == 0 {
            return;
        }
        debug_assert!(!self.retire_ready(), "skip_idle on a runnable core");
        match self.rob.front() {
            Some(Slot::Read { done: false, .. }) => {
                self.credit = self.params.retire_per_dram_cycle;
                self.stall_cycles += cycles;
            }
            None => self.credit = 0.0,
            Some(_) => {}
        }
    }

    /// Latches `finished_at` the first time the retired count crosses
    /// `budget`. Returns whether the core has finished.
    pub fn check_finished(&mut self, budget: u64, now: Cycle) -> bool {
        if self.finished_at.is_none() && self.retired >= budget {
            self.finished_at = Some(now);
        }
        self.finished_at.is_some()
    }
}

impl mopac_types::snapshot::Snapshottable for Core {
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_usize(self.rob.len());
        for slot in &self.rob {
            match *slot {
                Slot::Instrs(n) => {
                    w.put_u8(0);
                    w.put_u32(n);
                }
                Slot::Read { id, done } => {
                    w.put_u8(1);
                    w.put_u64(id);
                    w.put_bool(done);
                }
            }
        }
        w.put_usize(self.rob_instrs);
        w.put_f64(self.credit);
        w.put_u64(self.retired);
        w.put_u64(self.stall_cycles);
        w.put_opt_u64(self.finished_at);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        let n = r.take_usize()?;
        self.rob.clear();
        for _ in 0..n {
            let slot = match r.take_u8()? {
                0 => Slot::Instrs(r.take_u32()?),
                1 => Slot::Read {
                    id: r.take_u64()?,
                    done: r.take_bool()?,
                },
                t => {
                    return Err(mopac_types::MopacError::snapshot(format!(
                        "unknown ROB slot tag {t}"
                    )))
                }
            };
            self.rob.push_back(slot);
        }
        self.rob_instrs = r.take_usize()?;
        if self.rob_instrs > self.params.rob_size {
            return Err(mopac_types::MopacError::snapshot(format!(
                "ROB holds {} instructions but capacity is {}",
                self.rob_instrs, self.params.rob_size
            )));
        }
        self.credit = r.take_f64()?;
        self.retired = r.take_u64()?;
        self.stall_cycles = r.take_u64()?;
        self.finished_at = r.take_opt_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> Core {
        Core::new(CoreParams::paper_default())
    }

    #[test]
    fn retires_at_full_width_when_unblocked() {
        let mut c = core();
        c.push_instrs(200);
        let mut total = 0;
        for _ in 0..10 {
            total += c.retire();
        }
        // 10 cycles x 16/3 = 53.3 instructions.
        assert!((52..=54).contains(&total), "retired {total}");
    }

    #[test]
    fn blocks_on_outstanding_head_load() {
        let mut c = core();
        c.push_read(1);
        c.push_instrs(50);
        for _ in 0..5 {
            assert_eq!(c.retire(), 0);
        }
        assert_eq!(c.stall_cycles(), 5);
        c.on_complete(1);
        assert!(c.retire() > 0);
    }

    #[test]
    fn mlp_overlaps_independent_loads() {
        let mut c = core();
        // Two loads fetched together: both outstanding at once.
        c.push_read(1);
        c.push_read(2);
        c.on_complete(2); // younger returns first
        assert_eq!(c.retire(), 0); // head still blocked
        c.on_complete(1);
        // Both retire quickly now.
        assert_eq!(c.retire(), 2);
    }

    #[test]
    fn rob_occupancy_accounting() {
        let mut c = core();
        assert_eq!(c.rob_free(), 256);
        c.push_instrs(100);
        c.push_read(1);
        assert_eq!(c.rob_free(), 155);
        c.retire(); // retires 5 instructions
        assert_eq!(c.rob_free(), 160);
    }

    #[test]
    fn finish_latched_once() {
        let mut c = core();
        c.push_instrs(100);
        c.retire();
        assert!(!c.check_finished(100, 1));
        for now in 2..60 {
            c.retire();
            c.check_finished(100, now);
        }
        let first = c.finished_at().unwrap();
        c.check_finished(100, 999);
        assert_eq!(c.finished_at(), Some(first));
    }

    #[test]
    fn credit_capped_after_stall() {
        let mut c = core();
        c.push_read(1);
        for _ in 0..100 {
            c.retire();
        }
        c.on_complete(1);
        c.push_instrs(200);
        // First cycle after the stall retires at most 1 + width.
        let burst = c.retire();
        assert!(burst <= 11, "burst {burst}");
    }
}
