//! Trace interface between workloads and the core model.
//!
//! A workload is an infinite stream of [`TraceRecord`]s: a run of
//! non-memory instructions followed by one memory operation. The trait is
//! object-safe so an eight-core system can mix heterogeneous workloads
//! (the paper's `mix1`–`mix6`).

use mopac_types::addr::PhysAddr;

/// One step of a workload trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Non-memory instructions preceding the access.
    pub gap: u32,
    /// The memory access address (line-aligned).
    pub addr: PhysAddr,
    /// Whether this access is a store (posted writeback).
    pub is_write: bool,
}

/// An infinite instruction/memory trace.
pub trait TraceSource {
    /// Produces the next record. Traces never end; generators wrap or
    /// keep synthesizing.
    fn next_record(&mut self) -> TraceRecord;

    /// A short display name for reports.
    fn name(&self) -> &str;

    /// Records corrupted on the way through (non-zero only for
    /// fault-injection wrappers).
    fn corrupted_records(&self) -> u64 {
        0
    }

    /// Serializes the trace's runtime position/state for a snapshot.
    ///
    /// Stateless traces (the default) write nothing; stateful sources
    /// override this together with [`TraceSource::load_state`] so a
    /// restored run replays the exact same record stream.
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        let _ = w;
    }

    /// Restores runtime state written by [`TraceSource::save_state`]
    /// into a freshly constructed trace of the same configuration.
    ///
    /// # Errors
    ///
    /// Returns an error on truncated or shape-mismatched input.
    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        let _ = r;
        Ok(())
    }
}

/// A trivial trace that cycles through a fixed list of records (tests
/// and examples).
///
/// # Examples
///
/// ```
/// use mopac_cpu::trace::{ReplayTrace, TraceRecord, TraceSource};
/// use mopac_types::addr::PhysAddr;
///
/// let mut t = ReplayTrace::new(
///     "ab",
///     vec![TraceRecord { gap: 10, addr: PhysAddr::new(0), is_write: false }],
/// );
/// assert_eq!(t.next_record().gap, 10);
/// assert_eq!(t.next_record().gap, 10); // wraps
/// ```
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    name: String,
    records: Vec<TraceRecord>,
    pos: usize,
}

impl ReplayTrace {
    /// Creates a cycling replay of `records`.
    ///
    /// # Panics
    ///
    /// Panics if `records` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, records: Vec<TraceRecord>) -> Self {
        assert!(!records.is_empty(), "replay trace needs records");
        Self {
            name: name.into(),
            records,
            pos: 0,
        }
    }
}

impl TraceSource for ReplayTrace {
    fn next_record(&mut self) -> TraceRecord {
        let r = self.records[self.pos];
        self.pos = (self.pos + 1) % self.records.len();
        r
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_usize(self.pos);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        let pos = r.take_usize()?;
        if pos >= self.records.len() {
            return Err(mopac_types::MopacError::snapshot(format!(
                "replay position {pos} out of range for {} records",
                self.records.len(),
            )));
        }
        self.pos = pos;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replay_wraps() {
        let r1 = TraceRecord {
            gap: 1,
            addr: PhysAddr::new(0),
            is_write: false,
        };
        let r2 = TraceRecord {
            gap: 2,
            addr: PhysAddr::new(64),
            is_write: true,
        };
        let mut t = ReplayTrace::new("t", vec![r1, r2]);
        assert_eq!(t.next_record(), r1);
        assert_eq!(t.next_record(), r2);
        assert_eq!(t.next_record(), r1);
        assert_eq!(t.name(), "t");
    }

    #[test]
    #[should_panic(expected = "needs records")]
    fn empty_replay_rejected() {
        let _ = ReplayTrace::new("x", vec![]);
    }
}
