//! Shared last-level cache (Table 3: 8 MB, 16-way, 64 B lines).
//!
//! A straightforward set-associative writeback/write-allocate cache with
//! LRU replacement. The calibrated Table 4 workloads bypass it (their
//! published MPKI already describes the post-LLC miss stream — see
//! DESIGN.md), but raw-address applications such as the masstree-style
//! example run through it, and it is exercised directly by unit and
//! property tests.

use mopac_types::addr::PhysAddr;
use mopac_types::obs::{Counter, MetricsRegistry};

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheAccess {
    /// Line present.
    Hit,
    /// Line absent; it was filled, evicting a clean line or nothing.
    Miss,
    /// Line absent; filling it evicted this dirty line, which must be
    /// written back.
    MissDirtyEviction(PhysAddr),
}

impl CacheAccess {
    /// Whether the access missed.
    #[must_use]
    pub fn is_miss(&self) -> bool {
        !matches!(self, CacheAccess::Hit)
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u32,
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LlcStats {
    /// Total accesses.
    pub accesses: u64,
    /// Misses (including those with dirty evictions).
    pub misses: u64,
    /// Dirty lines evicted (writebacks generated).
    pub writebacks: u64,
}

impl LlcStats {
    /// Miss ratio in `[0, 1]`.
    #[must_use]
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Publishes these counters onto a metrics registry under the
    /// `llc.*` namespace. The struct stays the source of truth; the
    /// registry copy exists for unified snapshot export (DESIGN.md
    /// §11), so this overwrites rather than accumulates.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.set_counter(Counter::LlcAccesses, self.accesses);
        reg.set_counter(Counter::LlcMisses, self.misses);
        reg.set_counter(Counter::LlcWritebacks, self.writebacks);
    }
}

/// A set-associative last-level cache.
///
/// # Examples
///
/// ```
/// use mopac_cpu::llc::{CacheAccess, Llc};
/// use mopac_types::addr::PhysAddr;
///
/// let mut llc = Llc::new(64 * 1024, 16, 64); // 64 KiB toy instance
/// assert!(llc.access(PhysAddr::new(0x1000), false).is_miss());
/// assert_eq!(llc.access(PhysAddr::new(0x1000), false), CacheAccess::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Llc {
    sets: Vec<Vec<Way>>,
    line_bytes: u32,
    set_shift: u32,
    stats: LlcStats,
    tick: u32,
}

impl Llc {
    /// Creates a cache of `capacity_bytes` with the given associativity
    /// and line size.
    ///
    /// # Panics
    ///
    /// Panics if the parameters do not describe a power-of-two number of
    /// sets of at least 1.
    #[must_use]
    pub fn new(capacity_bytes: u64, ways: u32, line_bytes: u32) -> Self {
        assert!(line_bytes.is_power_of_two());
        let num_sets = capacity_bytes / u64::from(ways) / u64::from(line_bytes);
        assert!(
            num_sets >= 1 && num_sets.is_power_of_two(),
            "sets must be a power of two, got {num_sets}"
        );
        Self {
            sets: vec![vec![Way::default(); ways as usize]; num_sets as usize],
            line_bytes,
            set_shift: line_bytes.trailing_zeros(),
            stats: LlcStats::default(),
            tick: 0,
        }
    }

    /// The paper's 8 MB, 16-way, 64 B configuration.
    #[must_use]
    pub fn paper_default() -> Self {
        Self::new(8 * 1024 * 1024, 16, 64)
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> LlcStats {
        self.stats
    }

    /// Accesses `addr`; `is_write` marks the line dirty.
    pub fn access(&mut self, addr: PhysAddr, is_write: bool) -> CacheAccess {
        self.stats.accesses += 1;
        self.tick = self.tick.wrapping_add(1);
        let line = addr.get() >> self.set_shift;
        let set_idx = (line % self.sets.len() as u64) as usize;
        let tag = line / self.sets.len() as u64;
        let tick = self.tick;
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = tick;
            way.dirty |= is_write;
            return CacheAccess::Hit;
        }
        self.stats.misses += 1;
        // Victim: invalid way first, else LRU.
        let victim_idx = set
            .iter()
            .position(|w| !w.valid)
            .unwrap_or_else(|| {
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.lru)
                    .map(|(i, _)| i)
                    .expect("non-empty set")
            });
        let victim = set[victim_idx];
        set[victim_idx] = Way {
            tag,
            valid: true,
            dirty: is_write,
            lru: tick,
        };
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
            let victim_line = victim.tag * self.sets.len() as u64 + set_idx as u64;
            CacheAccess::MissDirtyEviction(PhysAddr::from_line_index(
                victim_line,
                self.line_bytes,
            ))
        } else {
            CacheAccess::Miss
        }
    }
}

impl mopac_types::snapshot::Snapshottable for Llc {
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_usize(self.sets.len());
        w.put_usize(self.sets.first().map_or(0, Vec::len));
        for set in &self.sets {
            for way in set {
                w.put_u64(way.tag);
                w.put_bool(way.valid);
                w.put_bool(way.dirty);
                w.put_u32(way.lru);
            }
        }
        w.put_u64(self.stats.accesses);
        w.put_u64(self.stats.misses);
        w.put_u64(self.stats.writebacks);
        w.put_u32(self.tick);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        let sets = r.take_usize()?;
        let ways = r.take_usize()?;
        if sets != self.sets.len() || ways != self.sets.first().map_or(0, Vec::len) {
            return Err(mopac_types::MopacError::snapshot(format!(
                "LLC geometry mismatch: snapshot {sets}x{ways}, configured {}x{}",
                self.sets.len(),
                self.sets.first().map_or(0, Vec::len),
            )));
        }
        for set in &mut self.sets {
            for way in set {
                way.tag = r.take_u64()?;
                way.valid = r.take_bool()?;
                way.dirty = r.take_bool()?;
                way.lru = r.take_u32()?;
            }
        }
        self.stats.accesses = r.take_u64()?;
        self.stats.misses = r.take_u64()?;
        self.stats.writebacks = r.take_u64()?;
        self.tick = r.take_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = Llc::new(4096, 4, 64);
        assert!(c.access(PhysAddr::new(0), false).is_miss());
        assert_eq!(c.access(PhysAddr::new(0), false), CacheAccess::Hit);
        assert_eq!(c.access(PhysAddr::new(63), false), CacheAccess::Hit);
        assert!(c.access(PhysAddr::new(64), false).is_miss());
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set x 2 ways of 64 B.
        let mut c = Llc::new(128, 2, 64);
        c.access(PhysAddr::new(0), false);
        c.access(PhysAddr::new(128), false);
        c.access(PhysAddr::new(0), false); // refresh line 0
        c.access(PhysAddr::new(256), false); // evicts line 128
        assert_eq!(c.access(PhysAddr::new(0), false), CacheAccess::Hit);
        assert!(c.access(PhysAddr::new(128), false).is_miss());
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = Llc::new(128, 2, 64);
        c.access(PhysAddr::new(0x40), true);
        c.access(PhysAddr::new(0x40 + 128), false);
        let out = c.access(PhysAddr::new(0x40 + 256), false);
        assert_eq!(out, CacheAccess::MissDirtyEviction(PhysAddr::new(0x40)));
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn paper_default_dimensions() {
        let c = Llc::paper_default();
        assert_eq!(c.sets.len(), 8192);
        assert_eq!(c.sets[0].len(), 16);
    }

    #[test]
    fn miss_ratio_tracks() {
        let mut c = Llc::new(4096, 4, 64);
        for i in 0..64u64 {
            c.access(PhysAddr::new(i * 64), false);
        }
        assert_eq!(c.stats().miss_ratio(), 1.0);
        for i in 48..64u64 {
            c.access(PhysAddr::new(i * 64), false);
        }
        assert!(c.stats().miss_ratio() < 1.0);
    }
}
