//! A stream prefetcher.
//!
//! Detects ascending sequential cache-line streams (per core) and emits
//! prefetch candidates ahead of the demand stream. This is the standard
//! latency-hiding companion of an out-of-order core: without it,
//! bandwidth-bound kernels such as STREAM would appear latency-bound and
//! absurdly sensitive to precharge-time changes.
//!
//! The design is a classic table of stream trackers: a stream is
//! confirmed after two consecutive ascending lines, after which the
//! prefetcher keeps a frontier `distance` lines ahead of the last demand
//! access.

/// One tracked stream.
#[derive(Debug, Clone, Copy)]
struct StreamEntry {
    last_line: u64,
    confirmed: bool,
    /// Highest line already emitted for prefetch.
    frontier: u64,
    /// LRU stamp.
    stamp: u64,
}

/// A per-core stream prefetcher.
///
/// # Examples
///
/// ```
/// use mopac_cpu::prefetch::StreamPrefetcher;
///
/// let mut pf = StreamPrefetcher::new(4, 8);
/// assert!(pf.observe(100).is_empty()); // first touch
/// let lines = pf.observe(101); // stream confirmed
/// assert_eq!(lines, vec![102, 103, 104, 105, 106, 107, 108, 109]);
/// let more = pf.observe(102); // frontier advances by one
/// assert_eq!(more, vec![110]);
/// ```
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    entries: Vec<Option<StreamEntry>>,
    distance: u64,
    clock: u64,
}

impl StreamPrefetcher {
    /// Creates a prefetcher with `trackers` concurrent streams and a
    /// lookahead of `distance` lines.
    ///
    /// # Panics
    ///
    /// Panics if `trackers` or `distance` is zero.
    #[must_use]
    pub fn new(trackers: usize, distance: u64) -> Self {
        assert!(trackers > 0 && distance > 0);
        Self {
            entries: vec![None; trackers],
            distance,
            clock: 0,
        }
    }

    /// The lookahead distance in lines.
    #[must_use]
    pub fn distance(&self) -> u64 {
        self.distance
    }

    /// Feeds a demand access to `line`; returns lines to prefetch (may
    /// be empty).
    pub fn observe(&mut self, line: u64) -> Vec<u64> {
        self.clock += 1;
        // Continuation of an existing stream?
        for slot in self.entries.iter_mut().flatten() {
            if line == slot.last_line + 1 || line == slot.last_line {
                let advancing = line == slot.last_line + 1;
                slot.last_line = line;
                slot.stamp = self.clock;
                if advancing {
                    slot.confirmed = true;
                }
                if slot.confirmed {
                    let target = line + self.distance;
                    let from = slot.frontier.max(line) + 1;
                    let out: Vec<u64> = (from..=target).collect();
                    slot.frontier = target.max(slot.frontier);
                    return out;
                }
                return Vec::new();
            }
        }
        // Allocate a new tracker (LRU victim).
        let victim = self
            .entries
            .iter()
            .position(Option::is_none)
            .unwrap_or_else(|| {
                self.entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| e.map_or(0, |s| s.stamp))
                    .map(|(i, _)| i)
                    .expect("non-empty table")
            });
        self.entries[victim] = Some(StreamEntry {
            last_line: line,
            confirmed: false,
            frontier: line,
            stamp: self.clock,
        });
        Vec::new()
    }
}

impl mopac_types::snapshot::Snapshottable for StreamPrefetcher {
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_usize(self.entries.len());
        for entry in &self.entries {
            match entry {
                Some(e) => {
                    w.put_bool(true);
                    w.put_u64(e.last_line);
                    w.put_bool(e.confirmed);
                    w.put_u64(e.frontier);
                    w.put_u64(e.stamp);
                }
                None => w.put_bool(false),
            }
        }
        w.put_u64(self.clock);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        let trackers = r.take_usize()?;
        if trackers != self.entries.len() {
            return Err(mopac_types::MopacError::snapshot(format!(
                "prefetcher has {trackers} trackers in snapshot but {} configured",
                self.entries.len(),
            )));
        }
        for entry in &mut self.entries {
            *entry = if r.take_bool()? {
                Some(StreamEntry {
                    last_line: r.take_u64()?,
                    confirmed: r.take_bool()?,
                    frontier: r.take_u64()?,
                    stamp: r.take_u64()?,
                })
            } else {
                None
            };
        }
        self.clock = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn needs_two_ascending_accesses() {
        let mut pf = StreamPrefetcher::new(2, 4);
        assert!(pf.observe(10).is_empty());
        assert_eq!(pf.observe(11), vec![12, 13, 14, 15]);
    }

    #[test]
    fn frontier_advances_without_duplicates() {
        let mut pf = StreamPrefetcher::new(2, 4);
        pf.observe(10);
        let first = pf.observe(11);
        let second = pf.observe(12);
        let third = pf.observe(13);
        let all: Vec<u64> = first.into_iter().chain(second).chain(third).collect();
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(all, dedup, "duplicate prefetches emitted");
        assert_eq!(all.last(), Some(&17));
    }

    #[test]
    fn tracks_interleaved_streams() {
        let mut pf = StreamPrefetcher::new(2, 2);
        pf.observe(100);
        pf.observe(500);
        assert_eq!(pf.observe(101), vec![102, 103]);
        assert_eq!(pf.observe(501), vec![502, 503]);
    }

    #[test]
    fn random_accesses_emit_nothing() {
        let mut pf = StreamPrefetcher::new(4, 8);
        for line in [5u64, 99, 42, 7000, 13, 88] {
            assert!(pf.observe(line).is_empty(), "line {line}");
        }
    }

    #[test]
    fn repeated_line_does_not_confirm() {
        let mut pf = StreamPrefetcher::new(2, 4);
        pf.observe(10);
        assert!(pf.observe(10).is_empty());
        // Still unconfirmed: the next ascending access confirms.
        assert!(!pf.observe(11).is_empty());
    }
}
