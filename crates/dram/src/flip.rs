//! The victim-data bit-flip plane: from counter breach to corrupted
//! reads.
//!
//! The [`crate::device::DramDevice`]'s oracle
//! ([`mopac::checker::RowhammerChecker`]) answers "did any row exceed
//! T_RH activations without an intervening refresh?" — a *counter*
//! verdict. This module models what the counter breach is a proxy for:
//! actual victim-data corruption. It observes the same ACT / REF /
//! mitigation event stream the checker sees and maintains, per row,
//!
//! * disturbance accumulated from each neighbour *separately* since
//!   the row was last refreshed — the same per-aggressor-side
//!   accounting as the checker's `up`/`dn` slots, so a threshold of
//!   `Constant(T_RH)` means "cells exactly as strong as the oracle
//!   assumes" and an oracle-clean run is structurally flip-free,
//! * a per-row T_RH drawn from a seeded distribution (real DRAM cells
//!   vary; MOAT's security analysis sweeps exactly this), and
//! * one modeled 64-bit victim word whose bits flip probabilistically
//!   once either side's disturbance exceeds the row's own threshold.
//!
//! Optional on-die SEC ECC scrubs single-bit flips whenever the word
//! is read (demand read or the post-run readback sweep) or the row is
//! refreshed; multi-bit words are uncorrectable and count as corrupted
//! reads. The resulting [`FlipStats`] surface through
//! [`crate::device::DramDevice`] and `AttackRun` next to the oracle's
//! violation count — the end-to-end *attack-success* verdict.
//!
//! # Determinism
//!
//! Every random decision is a **stateless hash** of identifiers — the
//! per-bank salt, the victim row, the disturbing side, and that side's
//! disturbance count at the moment of the draw — never a stream
//! position. Two consequences the
//! tests rely on:
//!
//! * runs are bit-identical at any `MOPAC_THREADS` /
//!   `MOPAC_SHARD_THREADS` and across snapshot/restore, and
//! * the *flip draws* are independent of the ECC mode: ECC-on and
//!   ECC-off runs inject the same bits, ECC can only clear them. Flips
//!   set bits with OR (a re-flip is idempotent, never an XOR toggle),
//!   so the ECC-on flip mask is a subset of the ECC-off mask at every
//!   instant, which makes ECC-on corruption ≤ ECC-off corruption a
//!   structural guarantee rather than a statistical tendency.

use mopac_types::rng::mix64;
use mopac_types::snapshot::{SnapshotReader, SnapshotWriter, Snapshottable};
use mopac_types::{MopacError, MopacResult};
use std::collections::BTreeMap;

/// Domain-separation tags for the hash draws (arbitrary odd constants).
const SALT_TAG: u64 = 0x464C_4950_5641_4C54; // "FLIPVALT"
const THRESH_TAG: u64 = 0x544C_4452_AB01;
const FLIP_TAG: u64 = 0x464C_4A02;
const BIT_TAG: u64 = 0x4249_5403;

/// Per-row Rowhammer threshold distribution (deterministic per cell:
/// the same seed, bank and row always yield the same threshold).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrhDistribution {
    /// Every row flips past the same threshold.
    Constant(u32),
    /// Uniform in `lo..=hi` (weak-cell tail below the engines' design
    /// threshold is what makes mitigated configurations still show
    /// flips).
    Uniform {
        /// Lowest possible per-row threshold.
        lo: u32,
        /// Highest possible per-row threshold.
        hi: u32,
    },
    /// Log-normal around `median` with shape `sigma` (the empirical
    /// per-cell T_RH shape reported by profiling studies).
    LogNormal {
        /// Median per-row threshold.
        median: f64,
        /// Log-space standard deviation.
        sigma: f64,
    },
}

impl TrhDistribution {
    /// Stable tag for snapshot shape checks.
    #[must_use]
    fn tag(self) -> u32 {
        match self {
            TrhDistribution::Constant(_) => 0,
            TrhDistribution::Uniform { .. } => 1,
            TrhDistribution::LogNormal { .. } => 2,
        }
    }
}

/// On-die ECC model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EccMode {
    /// No correction: any flipped bit corrupts the read.
    None,
    /// Single-error-correct: one flipped bit is scrubbed on read/REF;
    /// two or more are uncorrectable.
    Sec,
}

impl EccMode {
    /// Stable tag for snapshot shape checks.
    #[must_use]
    fn tag(self) -> u32 {
        match self {
            EccMode::None => 0,
            EccMode::Sec => 1,
        }
    }
}

/// Flip-plane configuration. Attached to
/// [`crate::device::DramConfig::flip`]; `None` there disables the
/// plane entirely (zero state, zero snapshot bytes, bit-identical to
/// the pre-flip-plane simulator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlipPlaneConfig {
    /// Per-row threshold distribution.
    pub t_rh: TrhDistribution,
    /// Probability that one past-threshold activation flips a bit in
    /// the victim word.
    pub flip_probability: f64,
    /// On-die ECC strength.
    pub ecc: EccMode,
}

impl FlipPlaneConfig {
    /// A flip plane with the given per-row threshold distribution, a
    /// 2% per-excess-activation flip probability, and no ECC.
    #[must_use]
    pub fn new(t_rh: TrhDistribution) -> Self {
        Self {
            t_rh,
            flip_probability: 0.02,
            ecc: EccMode::None,
        }
    }

    /// Sets the ECC mode.
    #[must_use]
    pub fn with_ecc(mut self, ecc: EccMode) -> Self {
        self.ecc = ecc;
        self
    }

    /// Sets the per-excess-activation flip probability.
    #[must_use]
    pub fn with_flip_probability(mut self, p: f64) -> Self {
        self.flip_probability = p;
        self
    }
}

/// Aggregate flip-plane statistics. Deliberately *not* part of
/// [`crate::device::DramStats`]: that struct serializes field-by-field
/// into every legacy snapshot, and the flip plane must cost zero bytes
/// when disabled.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlipStats {
    /// Victim-word bits flipped by disturbance (newly set bits only; a
    /// re-flip of an already-flipped bit is idempotent).
    pub bit_flips: u64,
    /// Single-bit flips scrubbed by SEC ECC on read or refresh.
    pub ecc_corrections: u64,
    /// Reads (demand or readback sweep) that returned uncorrectable
    /// victim data.
    pub corrupted_reads: u64,
}

impl FlipStats {
    /// Field-wise accumulation (per-bank → device totals).
    pub fn accumulate(&mut self, o: &FlipStats) {
        self.bit_flips += o.bit_flips;
        self.ecc_corrections += o.ecc_corrections;
        self.corrupted_reads += o.corrupted_reads;
    }

    /// Whether the attack actually corrupted data the host could read.
    #[must_use]
    pub fn attack_success(&self) -> bool {
        self.corrupted_reads > 0
    }
}

impl Snapshottable for FlipStats {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.bit_flips);
        w.put_u64(self.ecc_corrections);
        w.put_u64(self.corrupted_reads);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> MopacResult<()> {
        self.bit_flips = r.take_u64()?;
        self.ecc_corrections = r.take_u64()?;
        self.corrupted_reads = r.take_u64()?;
        Ok(())
    }
}

/// Which neighbour a unit of disturbance came from (hash-key domain
/// separation between the two sides of the same victim).
#[derive(Debug, Clone, Copy)]
enum Side {
    /// From the lower neighbour (`row - 1`).
    Lo = 0,
    /// From the upper neighbour (`row + 1`).
    Hi = 1,
}

/// Outcome of reading a row through the flip plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// No flipped bits in the victim word.
    Clean,
    /// Exactly one flipped bit, scrubbed by SEC ECC.
    Corrected,
    /// Uncorrectable: the host observed corrupted data.
    Corrupted,
}

/// Per-bank victim-data plane. Lives inside [`crate::bank::Bank`]
/// parallel to the checker and sees the same event stream.
#[derive(Debug, Clone)]
pub struct FlipPlane {
    cfg: FlipPlaneConfig,
    /// Per-bank salt (derived from the device seed and flat bank
    /// index); every hash draw mixes it in.
    salt: u64,
    rows: u32,
    /// Disturbance accumulated on each row from its *lower* neighbour
    /// (`row - 1`) since the row was last refreshed. Mirrors the
    /// checker's `up[row - 1]` slot.
    acc_lo: Box<[u32]>,
    /// Disturbance from the *upper* neighbour (`row + 1`); mirrors the
    /// checker's `dn[row + 1]` slot.
    acc_hi: Box<[u32]>,
    /// Flipped bits of each row's modeled victim word, sparse: absent
    /// means clean. One 64-bit ECC-word sample stands in for the whole
    /// row (DESIGN.md §16).
    flips: BTreeMap<u32, u64>,
    stats: FlipStats,
}

impl FlipPlane {
    /// Builds the plane for a bank with `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero or the flip probability is outside
    /// `[0, 1]`.
    #[must_use]
    pub fn new(cfg: FlipPlaneConfig, rows: u32, salt: u64) -> Self {
        assert!(rows > 0, "flip plane needs at least one row");
        assert!(
            (0.0..=1.0).contains(&cfg.flip_probability),
            "flip probability {} out of range",
            cfg.flip_probability
        );
        Self {
            cfg,
            salt,
            rows,
            acc_lo: vec![0; rows as usize].into_boxed_slice(),
            acc_hi: vec![0; rows as usize].into_boxed_slice(),
            flips: BTreeMap::new(),
            stats: FlipStats::default(),
        }
    }

    /// Derives a per-bank salt from the device seed. Depends only on
    /// the identifiers, so any thread interleaving or construction
    /// order yields the same plane.
    #[must_use]
    pub fn bank_salt(device_seed: u64, flat_bank: u32) -> u64 {
        mix64(mix64(device_seed ^ SALT_TAG) ^ u64::from(flat_bank))
    }

    /// The configuration this plane was built with.
    #[must_use]
    pub fn config(&self) -> &FlipPlaneConfig {
        &self.cfg
    }

    /// This row's Rowhammer threshold, drawn deterministically from
    /// the seeded distribution (same seed + bank + row ⇒ same value).
    #[must_use]
    pub fn threshold_of(&self, row: u32) -> u32 {
        let h = mix64(self.salt ^ THRESH_TAG ^ u64::from(row));
        match self.cfg.t_rh {
            TrhDistribution::Constant(t) => t.max(1),
            TrhDistribution::Uniform { lo, hi } => {
                let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
                let span = u64::from(hi - lo) + 1;
                // Modulo of a well-mixed 64-bit hash: the bias over a
                // ≤2^32 span is ≤2^-32, irrelevant for a fault model.
                (lo + (h % span) as u32).max(1)
            }
            TrhDistribution::LogNormal { median, sigma } => {
                let u1 = unit(mix64(h ^ 1));
                let u2 = unit(mix64(h ^ 2));
                // Box-Muller: standard normal from two uniforms.
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let t = median.max(1.0) * (sigma.abs() * z).exp();
                t.clamp(1.0, f64::from(u32::MAX)) as u32
            }
        }
    }

    /// Records an activation of aggressor `row`: both physically
    /// existing neighbours accumulate disturbance on the side facing
    /// the aggressor, and each draws for a bit flip once that side is
    /// past their own threshold. Returns the number of *newly* flipped
    /// bits (for the device's trace event).
    pub fn on_activate(&mut self, row: u32) -> u32 {
        let mut injected = 0;
        if row > 0 {
            // The victim below sees `row` as its upper neighbour.
            injected += self.disturb(row - 1, Side::Hi);
        }
        if row + 1 < self.rows {
            injected += self.disturb(row + 1, Side::Lo);
        }
        injected
    }

    /// One unit of disturbance on victim `v` from the given side; draws
    /// a flip when that side is past `v`'s threshold.
    fn disturb(&mut self, v: u32, side: Side) -> u32 {
        let i = v as usize;
        let acc = match side {
            Side::Lo => &mut self.acc_lo,
            Side::Hi => &mut self.acc_hi,
        };
        acc[i] = acc[i].saturating_add(1);
        let count = acc[i];
        if count <= self.threshold_of(v) {
            return 0;
        }
        // Stateless draw keyed on (bank salt, victim, side, disturbance
        // count): identical across thread counts, restores, and ECC
        // modes. The shifts keep the three identifiers in disjoint
        // bit ranges (count < 2^32, victim < 2^30).
        let key = mix64(
            self.salt
                ^ FLIP_TAG
                ^ (u64::from(v) << 34)
                ^ ((side as u64) << 33)
                ^ u64::from(count),
        );
        if unit(key) >= self.cfg.flip_probability {
            return 0;
        }
        let bit = mix64(key ^ BIT_TAG) % 64;
        let word = self.flips.entry(v).or_insert(0);
        let mask = 1u64 << bit;
        if *word & mask == 0 {
            *word |= mask;
            self.stats.bit_flips += 1;
            1
        } else {
            0
        }
    }

    /// Records that `row` itself was refreshed: its disturbance resets
    /// (both sides) and SEC ECC (when configured) scrubs a single-bit
    /// flip as part of the refresh read-restore.
    pub fn on_refresh_row(&mut self, row: u32) {
        self.acc_lo[row as usize] = 0;
        self.acc_hi[row as usize] = 0;
        self.scrub(row);
    }

    /// Records a periodic REF covering `rows`.
    pub fn on_refresh_range(&mut self, rows: std::ops::Range<u32>) {
        for r in rows {
            self.on_refresh_row(r);
        }
    }

    /// Records a mitigation of aggressor `row` with the given blast
    /// radius, mirroring the checker: victims on both sides are
    /// refreshed, and the victim-refresh activations disturb *their*
    /// neighbours. Returns newly flipped bits (a mitigation storm can
    /// itself flip cells — the Half-Double effect).
    pub fn on_mitigate(&mut self, row: u32, blast_radius: u32) -> u32 {
        let mut injected = 0;
        for d in 1..=blast_radius {
            if row >= d {
                let v = row - d;
                self.on_refresh_row(v);
                injected += self.on_activate(v);
            }
            let v = row + d;
            if v < self.rows {
                self.on_refresh_row(v);
                injected += self.on_activate(v);
            }
        }
        injected
    }

    /// Reads `row` through the flip plane: reports (and counts)
    /// whether the host observed clean, corrected, or corrupted data.
    /// SEC ECC scrubs the single-bit case; uncorrectable words persist
    /// (every subsequent read of them is another corrupted read).
    pub fn on_read(&mut self, row: u32) -> ReadOutcome {
        let Some(&word) = self.flips.get(&row) else {
            return ReadOutcome::Clean;
        };
        if word == 0 {
            return ReadOutcome::Clean;
        }
        if word.count_ones() == 1 && self.cfg.ecc == EccMode::Sec {
            self.flips.remove(&row);
            self.stats.ecc_corrections += 1;
            ReadOutcome::Corrected
        } else {
            self.stats.corrupted_reads += 1;
            ReadOutcome::Corrupted
        }
    }

    /// Post-run verification pass: reads back every row with a
    /// non-clean victim word, counting corrections and corrupted reads
    /// exactly as demand reads would. This is the software analogue of
    /// hammering-then-checking a buffer (HammerSim's flip check): a
    /// hammer pattern touches only aggressor rows, so victim
    /// corruption only becomes *observed* corruption when something
    /// reads the victims.
    pub fn readback_sweep(&mut self) {
        let dirty: Vec<u32> = self.flips.keys().copied().collect();
        for row in dirty {
            let _ = self.on_read(row);
        }
    }

    /// SEC refresh scrub of one row (no read outcome: refresh restores
    /// the cell internally).
    fn scrub(&mut self, row: u32) {
        if self.cfg.ecc != EccMode::Sec {
            return;
        }
        if let Some(&word) = self.flips.get(&row) {
            if word.count_ones() == 1 {
                self.flips.remove(&row);
                self.stats.ecc_corrections += 1;
            } else if word == 0 {
                self.flips.remove(&row);
            }
        }
    }

    /// Aggregate statistics so far.
    #[must_use]
    pub fn stats(&self) -> FlipStats {
        self.stats
    }

    /// Rows whose victim word currently holds at least one flipped bit.
    #[must_use]
    pub fn flipped_rows(&self) -> usize {
        self.flips.values().filter(|&&w| w != 0).count()
    }

    /// Current disturbance accumulated on `row`, both sides summed
    /// (test introspection).
    #[must_use]
    pub fn disturbance(&self, row: u32) -> u32 {
        let i = row as usize;
        let lo = self.acc_lo.get(i).copied().unwrap_or(0);
        let hi = self.acc_hi.get(i).copied().unwrap_or(0);
        lo.saturating_add(hi)
    }
}

/// Maps a hash word to a uniform in `(0, 1)` (never exactly 0, so
/// `ln()` is safe).
fn unit(h: u64) -> f64 {
    (((h >> 11) as f64) + 0.5) * (1.0 / (1u64 << 53) as f64)
}

impl Snapshottable for FlipPlane {
    /// Config (distribution/ECC tags) and shape are serialized for
    /// cross-shape detection; disturbance serializes sparsely like the
    /// checker's exposure arrays.
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_u32(self.cfg.t_rh.tag());
        w.put_u32(self.cfg.ecc.tag());
        w.put_u32(self.rows);
        for side in [&self.acc_lo, &self.acc_hi] {
            let nonzero = side.iter().filter(|&&c| c != 0).count();
            w.put_usize(nonzero);
            for (i, &c) in side.iter().enumerate() {
                if c != 0 {
                    w.put_u32(i as u32);
                    w.put_u32(c);
                }
            }
        }
        w.put_usize(self.flips.len());
        for (&row, &word) in &self.flips {
            w.put_u32(row);
            w.put_u64(word);
        }
        self.stats.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> MopacResult<()> {
        let err = MopacError::snapshot;
        let dist = r.take_u32()?;
        let ecc = r.take_u32()?;
        let rows = r.take_u32()?;
        if dist != self.cfg.t_rh.tag() || ecc != self.cfg.ecc.tag() || rows != self.rows {
            return Err(err(format!(
                "flip-plane shape mismatch: snapshot dist={dist}/ecc={ecc}/rows={rows}, \
                 configured dist={}/ecc={}/rows={}",
                self.cfg.t_rh.tag(),
                self.cfg.ecc.tag(),
                self.rows
            )));
        }
        for side in [&mut self.acc_lo, &mut self.acc_hi] {
            side.fill(0);
            let n = r.take_usize()?;
            for _ in 0..n {
                let i = r.take_u32()? as usize;
                let c = r.take_u32()?;
                let slot = side
                    .get_mut(i)
                    .ok_or_else(|| err(format!("flip-plane row {i} out of range")))?;
                *slot = c;
            }
        }
        self.flips.clear();
        let n = r.take_usize()?;
        for _ in 0..n {
            let row = r.take_u32()?;
            if row >= self.rows {
                return Err(err(format!("flip-plane flipped row {row} out of range")));
            }
            let word = r.take_u64()?;
            self.flips.insert(row, word);
        }
        self.stats.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane(cfg: FlipPlaneConfig) -> FlipPlane {
        FlipPlane::new(cfg, 64, FlipPlane::bank_salt(0xD0_5E_ED, 0))
    }

    #[test]
    fn thresholds_deterministic_and_in_range() {
        let p = plane(FlipPlaneConfig::new(TrhDistribution::Uniform { lo: 100, hi: 400 }));
        let q = plane(FlipPlaneConfig::new(TrhDistribution::Uniform { lo: 100, hi: 400 }));
        for row in 0..64 {
            let t = p.threshold_of(row);
            assert_eq!(t, q.threshold_of(row));
            assert!((100..=400).contains(&t), "row {row} threshold {t}");
        }
    }

    #[test]
    fn lognormal_centers_on_median() {
        let p = FlipPlane::new(
            FlipPlaneConfig::new(TrhDistribution::LogNormal { median: 400.0, sigma: 0.3 }),
            4096,
            7,
        );
        let below = (0..4096).filter(|&r| p.threshold_of(r) < 400).count();
        let frac = below as f64 / 4096.0;
        assert!((0.4..0.6).contains(&frac), "below-median fraction {frac}");
    }

    #[test]
    fn flips_only_past_per_row_threshold() {
        let mut p = plane(
            FlipPlaneConfig::new(TrhDistribution::Constant(10)).with_flip_probability(1.0),
        );
        for _ in 0..10 {
            assert_eq!(p.on_activate(5), 0);
        }
        // 11th disturbance exceeds the threshold; p=1 guarantees a flip
        // on each side the first time past.
        assert!(p.on_activate(5) > 0);
        assert!(p.stats().bit_flips > 0);
    }

    #[test]
    fn refresh_resets_disturbance() {
        let mut p = plane(
            FlipPlaneConfig::new(TrhDistribution::Constant(10)).with_flip_probability(1.0),
        );
        for _ in 0..10 {
            p.on_activate(5);
        }
        p.on_refresh_row(4);
        p.on_refresh_row(6);
        assert_eq!(p.disturbance(4), 0);
        for _ in 0..10 {
            assert_eq!(p.on_activate(5), 0);
        }
    }

    #[test]
    fn edge_rows_disturb_only_real_neighbours() {
        let mut p = FlipPlane::new(
            FlipPlaneConfig::new(TrhDistribution::Constant(1)).with_flip_probability(1.0),
            4,
            1,
        );
        for _ in 0..8 {
            p.on_activate(0);
            p.on_activate(3);
        }
        // Rows 1 and 2 disturbed; no panic, no phantom row 4.
        assert!(p.disturbance(1) > 0);
        assert!(p.disturbance(2) > 0);
        assert_eq!(p.disturbance(0), 0);
        assert_eq!(p.disturbance(3), 0);
    }

    #[test]
    fn sec_corrects_single_bit_and_counts() {
        let cfg =
            FlipPlaneConfig::new(TrhDistribution::Constant(2)).with_flip_probability(1.0);
        let mut ecc = plane(cfg.with_ecc(EccMode::Sec));
        let mut raw = plane(cfg);
        // Hammer just past the threshold: with p = 1 the first excess
        // activation flips exactly one bit in each neighbour, and both
        // planes draw identically (the flip stream is ECC-independent).
        loop {
            let a = ecc.on_activate(5);
            let b = raw.on_activate(5);
            assert_eq!(a, b);
            if ecc.stats().bit_flips >= 1 {
                break;
            }
        }
        // Whichever side flipped, read it on both planes: SEC corrects
        // the single bit, the raw plane reports corruption.
        for row in [4u32, 6] {
            let e = ecc.on_read(row);
            let r = raw.on_read(row);
            assert_ne!(e, ReadOutcome::Corrupted);
            if r == ReadOutcome::Corrupted {
                assert_eq!(e, ReadOutcome::Corrected);
            }
        }
        assert!(ecc.stats().ecc_corrections >= 1);
        assert_eq!(ecc.stats().corrupted_reads, 0);
        assert!(raw.stats().corrupted_reads >= 1);
    }

    #[test]
    fn ecc_on_corruption_never_exceeds_ecc_off() {
        // Long random-ish hammer; structural subset property.
        let cfg = FlipPlaneConfig::new(TrhDistribution::Uniform { lo: 4, hi: 40 })
            .with_flip_probability(0.5);
        let mut ecc = plane(cfg.with_ecc(EccMode::Sec));
        let mut raw = plane(cfg);
        for i in 0..5_000u32 {
            let row = (mix64(u64::from(i)) % 64) as u32;
            ecc.on_activate(row);
            raw.on_activate(row);
            if i % 97 == 0 {
                ecc.on_refresh_range(0..64);
                raw.on_refresh_range(0..64);
            }
            if i % 13 == 0 {
                ecc.on_read(row.saturating_sub(1));
                raw.on_read(row.saturating_sub(1));
            }
        }
        ecc.readback_sweep();
        raw.readback_sweep();
        // The ECC plane's flip mask is a subset of the raw plane's at
        // every instant (same draws, OR-only sets, ECC only clears),
        // so every read that corrupts under ECC corrupts without it.
        assert!(raw.stats().bit_flips > 0, "test never flipped anything");
        assert!(ecc.stats().corrupted_reads <= raw.stats().corrupted_reads);
        assert_eq!(raw.stats().ecc_corrections, 0);
    }

    #[test]
    fn readback_sweep_observes_latent_flips() {
        let mut p = plane(
            FlipPlaneConfig::new(TrhDistribution::Constant(2)).with_flip_probability(1.0),
        );
        for _ in 0..50 {
            p.on_activate(5);
        }
        assert!(p.stats().bit_flips > 0);
        assert_eq!(p.stats().corrupted_reads, 0, "nothing read the victims yet");
        p.readback_sweep();
        assert!(p.stats().corrupted_reads > 0);
    }

    #[test]
    fn snapshot_round_trip() {
        let cfg = FlipPlaneConfig::new(TrhDistribution::Uniform { lo: 2, hi: 20 })
            .with_flip_probability(0.7)
            .with_ecc(EccMode::Sec);
        let mut a = plane(cfg);
        for i in 0..500u32 {
            a.on_activate(i % 60);
        }
        let mut w = SnapshotWriter::new();
        a.save_state(&mut w);
        let bytes = w.finish();
        let mut b = plane(cfg);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        b.load_state(&mut r).unwrap();
        // Continue both identically.
        for i in 0..200u32 {
            assert_eq!(a.on_activate(i % 60), b.on_activate(i % 60));
        }
        a.readback_sweep();
        b.readback_sweep();
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn snapshot_rejects_cross_shape() {
        let mut w = SnapshotWriter::new();
        plane(FlipPlaneConfig::new(TrhDistribution::Constant(100))).save_state(&mut w);
        let bytes = w.finish();
        let mut other = plane(
            FlipPlaneConfig::new(TrhDistribution::Constant(100)).with_ecc(EccMode::Sec),
        );
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let e = other.load_state(&mut r).unwrap_err();
        assert!(matches!(e, MopacError::Snapshot { .. }), "{e:?}");
    }
}
