//! Cycle-level DDR5 DRAM device model for the MoPAC reproduction.
//!
//! This crate is the simulation substrate the paper obtains from
//! DRAMSim3: banks with JEDEC timing state machines ([`bank`]), the
//! Table 1 timing sets for base DDR5 and PRAC ([`timing`]), and the
//! device-level shared resources, refresh machinery and ALERT/RFM (ABO)
//! protocol ([`device`]).
//!
//! The device embeds a [`mopac::bank::BankMitigation`] engine and a
//! [`mopac::checker::RowhammerChecker`] oracle in every bank, so any
//! command stream driven through it is simultaneously timed, protected
//! and security-checked.
//!
//! # Examples
//!
//! ```
//! use mopac_dram::device::{DramConfig, DramDevice};
//! use mopac::config::MitigationConfig;
//! use mopac_types::error::MopacResult;
//!
//! fn demo() -> MopacResult<()> {
//!     let mut dev = DramDevice::new(DramConfig::tiny(MitigationConfig::prac(500)));
//!     let at = dev.earliest_activate(0, 0).ok_or_else(|| {
//!         mopac_types::error::MopacError::internal("bank unexpectedly open")
//!     })?;
//!     dev.activate(0, 0, /*row=*/ 7, at, false)?;
//!     let rd = dev.earliest_column(0, 0, 7).ok_or_else(|| {
//!         mopac_types::error::MopacError::internal("row not open")
//!     })?;
//!     let data_done = dev.read(0, 0, rd)?;
//!     assert!(data_done > rd);
//!     Ok(())
//! }
//! demo().unwrap();
//! ```

// The robustness contract (see DESIGN.md): library code surfaces
// failures as `MopacResult`, never by unwrapping. Tests are exempt
// via clippy.toml (`allow-unwrap-in-tests`).
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod bank;
pub mod device;
pub mod flip;
pub mod timing;

pub use bank::PrechargeKind;
pub use device::{DramConfig, DramDevice, DramStats};
pub use flip::{EccMode, FlipPlane, FlipPlaneConfig, FlipStats, ReadOutcome, TrhDistribution};
pub use timing::{AboTiming, TimingSet};
