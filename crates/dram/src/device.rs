//! The DRAM device: sub-channels of banks, shared-resource constraints
//! (command/data bus, tRRD, tFAW), refresh, and the ALERT/RFM (ABO)
//! protocol.
//!
//! The device is passive with respect to time: the memory controller
//! owns the clock and calls `can_*` / command methods with the current
//! cycle. The device enforces JEDEC legality (debug assertions plus
//! `can_*` predicates), executes the mitigation engines, and raises
//! ALERT when a bank needs ABO.

use crate::bank::{Bank, OpenRow, PrechargeKind};
use crate::flip::{FlipPlane, FlipPlaneConfig, FlipStats, ReadOutcome};
use crate::timing::{AboTiming, TimingSet};
use mopac::bank::AlertCause;
use mopac::checker::Violation;
use mopac::config::MitigationConfig;
use mopac::engine::{RecoveryScope, TimingDemands};
use mopac_types::bankmask::BankMask;
use mopac_types::error::{MopacError, MopacResult};
use mopac_types::geometry::DramGeometry;
use mopac_types::obs::{
    Counter, Hist, MetricsRegistry, MetricsSink, SinkConfig, TraceEvent, TraceEventKind,
};
use mopac_types::rng::DetRng;
use mopac_types::snapshot::{SnapshotReader, SnapshotWriter, Snapshottable};
use mopac_types::time::{Cycle, MemClock};

/// Number of refresh groups per bank (tREFW / tREFI).
const REFRESH_GROUPS: u32 = 8192;

/// Sentinel ("SUBR") opening the device snapshot's subarray/bank-scope
/// extension section, present only for configurations that use it.
const SUBARRAY_SECTION_MAGIC: u32 = 0x5355_4252;

/// Sentinel ("FLPD") opening the device snapshot's flip-plane marker,
/// present only when [`DramConfig::flip`] is set (the per-bank plane
/// sections carry the actual state and shape tags).
const FLIP_SECTION_MAGIC: u32 = 0x464C_5044;

/// Device-level configuration.
#[derive(Debug, Clone)]
pub struct DramConfig {
    /// Physical organization. A device instance simulates **one
    /// channel**; multi-channel topologies construct one device per
    /// channel from [`DramGeometry::channel_view`].
    pub geometry: DramGeometry,
    /// Mitigation design and parameters.
    pub mitigation: MitigationConfig,
    /// Whether to run the Rowhammer security oracle alongside (costs
    /// memory and a little time; on by default).
    pub enable_checker: bool,
    /// Master RNG seed (per-bank streams are forked from it).
    pub seed: u64,
    /// Which channel this device instance is (stamps trace events; 0
    /// for single-channel systems).
    pub channel: u32,
    /// Victim-data bit-flip plane ([`crate::flip`]). `None` (the
    /// default everywhere) disables it: zero state, zero snapshot
    /// bytes, bit-identical to the pre-flip-plane simulator.
    pub flip: Option<FlipPlaneConfig>,
}

impl DramConfig {
    /// The paper's Table 3 system with the given mitigation.
    #[must_use]
    pub fn paper_default(mitigation: MitigationConfig) -> Self {
        Self {
            geometry: DramGeometry::ddr5_32gb(),
            mitigation,
            enable_checker: true,
            seed: 0xD0_5E_ED,
            channel: 0,
            flip: None,
        }
    }

    /// A small geometry for unit tests.
    #[must_use]
    pub fn tiny(mitigation: MitigationConfig) -> Self {
        Self {
            geometry: DramGeometry::tiny(),
            mitigation,
            enable_checker: true,
            seed: 0xD0_5E_ED,
            channel: 0,
            flip: None,
        }
    }
}

/// Aggregate device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Activations issued.
    pub activates: u64,
    /// Reads issued.
    pub reads: u64,
    /// Writes issued.
    pub writes: u64,
    /// Normal precharges.
    pub precharges: u64,
    /// Counter-update precharges (PRAC / PREcu).
    pub precharges_cu: u64,
    /// REF commands executed.
    pub refreshes: u64,
    /// RFM (ABO service) commands executed.
    pub rfms: u64,
    /// ALERT assertions caused by mitigation need.
    pub alerts_mitigation: u64,
    /// ALERT assertions caused by a full SRQ.
    pub alerts_srq_full: u64,
    /// ALERT assertions caused by tardiness.
    pub alerts_tardiness: u64,
    /// Aggressor-row mitigations performed.
    pub mitigations: u64,
    /// Deferred counter updates performed under ABO / REF.
    pub deferred_updates: u64,
    /// Faults applied through the injection hooks.
    pub injected_faults: u64,
}

impl DramStats {
    /// Total ALERT assertions.
    #[must_use]
    pub fn alerts(&self) -> u64 {
        self.alerts_mitigation + self.alerts_srq_full + self.alerts_tardiness
    }

    /// Field-wise accumulation: folds another device's counters into
    /// this one (multi-channel totals).
    pub fn accumulate(&mut self, o: &DramStats) {
        self.activates += o.activates;
        self.reads += o.reads;
        self.writes += o.writes;
        self.precharges += o.precharges;
        self.precharges_cu += o.precharges_cu;
        self.refreshes += o.refreshes;
        self.rfms += o.rfms;
        self.alerts_mitigation += o.alerts_mitigation;
        self.alerts_srq_full += o.alerts_srq_full;
        self.alerts_tardiness += o.alerts_tardiness;
        self.mitigations += o.mitigations;
        self.deferred_updates += o.deferred_updates;
        self.injected_faults += o.injected_faults;
    }

    /// Publishes these counters onto a metrics registry under the
    /// `dram.*` namespace. The struct stays the source of truth; the
    /// registry copy exists for unified snapshot export (DESIGN.md
    /// §11), so this overwrites rather than accumulates.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.set_counter(Counter::DramActivates, self.activates);
        reg.set_counter(Counter::DramReads, self.reads);
        reg.set_counter(Counter::DramWrites, self.writes);
        reg.set_counter(Counter::DramPrecharges, self.precharges);
        reg.set_counter(Counter::DramPrechargesCu, self.precharges_cu);
        reg.set_counter(Counter::DramRefreshes, self.refreshes);
        reg.set_counter(Counter::DramRfms, self.rfms);
        reg.set_counter(Counter::DramAlertsMitigation, self.alerts_mitigation);
        reg.set_counter(Counter::DramAlertsSrqFull, self.alerts_srq_full);
        reg.set_counter(Counter::DramAlertsTardiness, self.alerts_tardiness);
        reg.set_counter(Counter::DramMitigations, self.mitigations);
        reg.set_counter(Counter::DramDeferredUpdates, self.deferred_updates);
        reg.set_counter(Counter::DramInjectedFaults, self.injected_faults);
    }
}

impl Snapshottable for DramStats {
    fn save_state(&self, w: &mut SnapshotWriter) {
        for v in [
            self.activates,
            self.reads,
            self.writes,
            self.precharges,
            self.precharges_cu,
            self.refreshes,
            self.rfms,
            self.alerts_mitigation,
            self.alerts_srq_full,
            self.alerts_tardiness,
            self.mitigations,
            self.deferred_updates,
            self.injected_faults,
        ] {
            w.put_u64(v);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> MopacResult<()> {
        self.activates = r.take_u64()?;
        self.reads = r.take_u64()?;
        self.writes = r.take_u64()?;
        self.precharges = r.take_u64()?;
        self.precharges_cu = r.take_u64()?;
        self.refreshes = r.take_u64()?;
        self.rfms = r.take_u64()?;
        self.alerts_mitigation = r.take_u64()?;
        self.alerts_srq_full = r.take_u64()?;
        self.alerts_tardiness = r.take_u64()?;
        self.mitigations = r.take_u64()?;
        self.deferred_updates = r.take_u64()?;
        self.injected_faults = r.take_u64()?;
        Ok(())
    }
}

/// Per-sub-channel shared state.
#[derive(Debug, Clone)]
struct SubChannel {
    banks: Vec<Bank>,
    /// Last ACT cycle in this sub-channel (tRRD), if any.
    last_act: Option<Cycle>,
    /// Ring of the last four ACT cycles (tFAW).
    faw: [Cycle; 4],
    faw_idx: usize,
    /// How many ACTs have been recorded in `faw` (constraint only
    /// applies once four have happened).
    faw_filled: usize,
    /// Data bus busy until this cycle.
    bus_busy_until: Cycle,
    /// No commands may issue before this cycle (REF / RFM execution).
    blocked_until: Cycle,
    /// Next refresh group to be refreshed.
    ref_group: u32,
    /// When ALERT was asserted, if pending.
    alert_since: Option<Cycle>,
    /// Activations since the last ALERT completed (ABO requires a
    /// non-zero count before re-asserting).
    acts_since_alert: u64,
    /// Bit `b` set iff bank `b` has an open row. Maintained on
    /// ACT/PRE so the controller's scheduler index can sweep open banks
    /// without polling every bank's row state.
    open_mask: BankMask,
}

/// The simulated DRAM device.
#[derive(Debug, Clone)]
pub struct DramDevice {
    cfg: DramConfig,
    /// What the mitigation engines require of the memory controller
    /// (timing set, PREcu coin, row-open cap). Cached at construction;
    /// uniform across banks by design.
    demands: TimingDemands,
    base: TimingSet,
    prac: TimingSet,
    abo: AboTiming,
    clock: MemClock,
    subchannels: Vec<SubChannel>,
    stats: DramStats,
    /// Fault hook: the next N RFM commands pay their stall but skip ABO
    /// service (a dropped mitigation opportunity).
    drop_rfms: u32,
    /// Fault hook: extra stall cycles added to every RFM.
    rfm_extra_stall: Cycle,
    /// Bumped whenever a bank engine's [`TimingDemands`] change is
    /// observed (see [`Self::demands_generation`]).
    demands_generation: u64,
    /// Last [`mopac::engine::MitigationEngine::demands_epoch`] observed
    /// per flat bank.
    demands_seen: Vec<u64>,
    /// Observability sink: protocol trace events and device-side
    /// histograms (inter-ACT gap, row-open time, ABO service time).
    /// Disabled by default — every record call is then an inlined
    /// no-op, keeping uninstrumented runs bit-identical.
    sink: MetricsSink,
}

impl DramDevice {
    /// Builds the device.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has no banks or rows.
    #[must_use]
    pub fn new(cfg: DramConfig) -> Self {
        let geom = cfg.geometry;
        assert!(geom.subchannels > 0 && geom.banks_per_subchannel > 0);
        assert!(
            geom.subarrays_per_bank.is_power_of_two()
                && geom.subarrays_per_bank <= geom.rows_per_bank,
            "subarrays_per_bank must be a power of two dividing rows_per_bank"
        );
        assert!(
            geom.channels == 1 && geom.ranks == 1,
            "a DramDevice simulates one channel; build per-channel \
             instances from DramGeometry::channel_view"
        );
        // The open-banks mask (and the controller's scheduler-index
        // masks layered on it) pack one bit per bank into a BankMask.
        assert!(
            geom.banks_per_subchannel <= BankMask::CAPACITY,
            "bank masks hold at most {} banks per sub-channel",
            BankMask::CAPACITY
        );
        let rng = DetRng::from_seed(cfg.seed);
        let demands = TimingDemands::for_config(&cfg.mitigation);
        // Subarray deferred-update slots exist only when the engine
        // demands them; every other design keeps the slot-less (and
        // snapshot-byte-identical) flat-bank shape.
        let cu_slots = if demands.subarray_parallel_updates {
            geom.subarrays_per_bank
        } else {
            0
        };
        let subchannels = (0..geom.subchannels)
            .map(|sc| {
                let banks = (0..geom.banks_per_subchannel)
                    .map(|b| {
                        let flat = geom.flat_bank(sc, b);
                        let bank_rng = rng.fork(u64::from(flat));
                        let mitigation = mopac::bank::BankMitigation::new(
                            &cfg.mitigation,
                            geom.rows_per_bank,
                            bank_rng,
                        );
                        let checker = (cfg.enable_checker && cfg.mitigation.tracks())
                            .then(|| {
                                // The min() clamp guarantees the cast fits.
                                let t_rh = cfg.mitigation.t_rh.min(u64::from(u32::MAX)) as u32;
                                mopac::checker::RowhammerChecker::new(geom.rows_per_bank, t_rh)
                            });
                        // Per-bank salts are pure hashes of (seed,
                        // flat bank) — independent of thread count and
                        // construction order.
                        let flip = cfg.flip.map(|fc| {
                            FlipPlane::new(
                                fc,
                                geom.rows_per_bank,
                                FlipPlane::bank_salt(cfg.seed, flat),
                            )
                        });
                        Bank::new(mitigation, checker, cu_slots, flip)
                    })
                    .collect();
                SubChannel {
                    banks,
                    last_act: None,
                    faw: [0; 4],
                    faw_idx: 0,
                    faw_filled: 0,
                    bus_busy_until: 0,
                    blocked_until: 0,
                    ref_group: 0,
                    alert_since: None,
                    acts_since_alert: 1,
                    open_mask: BankMask::empty(),
                }
            })
            .collect();
        let subchannels: Vec<SubChannel> = subchannels;
        let demands_seen = subchannels
            .iter()
            .flat_map(|s: &SubChannel| &s.banks)
            .map(|b| b.mitigation().demands_epoch())
            .collect();
        Self {
            demands,
            base: TimingSet::ddr5_base(),
            prac: TimingSet::ddr5_prac(),
            abo: AboTiming::paper_default(),
            clock: MemClock::ddr5_6000(),
            cfg,
            subchannels,
            stats: DramStats::default(),
            drop_rfms: 0,
            rfm_extra_stall: 0,
            demands_generation: 0,
            demands_seen,
            sink: MetricsSink::disabled(),
        }
    }

    /// Enables the observability sink: subsequent commands record trace
    /// events and device-side histograms. Enabling mid-run is legal
    /// (the sink simply starts empty).
    pub fn enable_metrics(&mut self, cfg: SinkConfig) {
        self.sink = MetricsSink::enabled(cfg);
    }

    /// The device's metrics sink (disabled unless
    /// [`DramDevice::enable_metrics`] was called).
    #[must_use]
    pub fn metrics(&self) -> &MetricsSink {
        &self.sink
    }

    /// Exports the device's aggregate statistics ([`DramStats`], the
    /// summed per-bank [`mopac::bank::MitigationStats`]) onto the sink's
    /// registry and gives every bank engine its
    /// [`mopac::engine::MitigationEngine::record_metrics`] hook. Called
    /// at snapshot time; a no-op while the sink is disabled.
    pub fn export_metrics(&mut self) {
        if !self.sink.is_enabled() {
            return;
        }
        let stats = self.stats;
        let mitigation = self.mitigation_stats();
        let flip = self.flip_stats();
        if let Some(reg) = self.sink.registry_mut() {
            stats.export_metrics(reg);
            mitigation.export_metrics(reg);
            reg.set_counter(Counter::DramBitFlips, flip.bit_flips);
            reg.set_counter(Counter::DramEccCorrections, flip.ecc_corrections);
            reg.set_counter(Counter::DramCorruptedReads, flip.corrupted_reads);
        }
        // The engines borrow the sub-channels while recording; move the
        // sink out for the sweep so the borrows stay disjoint.
        let mut sink = std::mem::take(&mut self.sink);
        for (sc, sub) in self.subchannels.iter().enumerate() {
            for (bank, b) in sub.banks.iter().enumerate() {
                let flat = self.cfg.geometry.flat_bank(sc as u32, bank as u32);
                b.mitigation().record_metrics(flat, &mut sink);
            }
        }
        self.sink = sink;
    }

    /// Validates a (sub-channel, bank) pair, so command methods return a
    /// typed error instead of an out-of-bounds panic.
    fn check_bank(&self, sc: u32, bank: u32) -> MopacResult<()> {
        let geom = &self.cfg.geometry;
        if sc >= geom.subchannels || bank >= geom.banks_per_subchannel {
            return Err(MopacError::config(format!(
                "bank reference sc{sc}/bank{bank} outside geometry \
                 ({} sub-channels x {} banks)",
                geom.subchannels, geom.banks_per_subchannel
            )));
        }
        Ok(())
    }

    /// The device configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// The base timing set.
    #[must_use]
    pub fn timing_base(&self) -> &TimingSet {
        &self.base
    }

    /// The PRAC timing set.
    #[must_use]
    pub fn timing_prac(&self) -> &TimingSet {
        &self.prac
    }

    /// The timing set governing ACT/column commands for this mitigation
    /// (engines demanding PRAC timings pay them everywhere; everything
    /// else uses base timings, with MoPAC-C switching per command).
    #[must_use]
    pub fn timing_default(&self) -> &TimingSet {
        if self.demands.always_prac_timings {
            &self.prac
        } else {
            &self.base
        }
    }

    /// What the banks' mitigation engines demand of the memory
    /// controller (timing regime, PREcu sampling probability, row-open
    /// time cap). The controller configures itself from this rather
    /// than inspecting the mitigation kind.
    #[must_use]
    pub fn timing_demands(&self) -> TimingDemands {
        self.demands
    }

    /// ABO timing constants.
    #[must_use]
    pub fn abo_timing(&self) -> &AboTiming {
        &self.abo
    }

    /// The command clock (for nanosecond/cycle conversions).
    #[must_use]
    pub fn clock(&self) -> MemClock {
        self.clock
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// The open row in a bank.
    #[must_use]
    pub fn open_row(&self, sc: u32, bank: u32) -> Option<OpenRow> {
        self.sub(sc).banks[bank as usize].open_row()
    }

    /// Whether the MC marked the open row for a PREcu close (MoPAC-C).
    #[must_use]
    pub fn pending_update(&self, sc: u32, bank: u32) -> bool {
        self.sub(sc).banks[bank as usize].pending_update()
    }

    /// When ALERT was asserted on a sub-channel, if it is pending.
    #[must_use]
    pub fn alert_since(&self, sc: u32) -> Option<Cycle> {
        self.sub(sc).alert_since
    }

    /// Bitmask of banks with an open row on `sc` (bit `b` set iff bank
    /// `b` is open). Maintained incrementally on ACT/PRE.
    #[must_use]
    pub fn open_banks_mask(&self, sc: u32) -> BankMask {
        self.sub(sc).open_mask
    }

    /// Generation counter of the cached [`TimingDemands`]: bumped every
    /// time a bank engine reports a new
    /// [`mopac::engine::MitigationEngine::demands_epoch`] after a
    /// lifecycle call, at which point the cached demands are re-queried
    /// from that engine. The memory controller compares this against its
    /// own snapshot to refresh demand-derived knobs (PREcu coin,
    /// row-open cap) and invalidate its scheduler index.
    #[must_use]
    pub fn demands_generation(&self) -> u64 {
        self.demands_generation
    }

    /// Re-polls one bank's engine for a [`TimingDemands`] change after a
    /// lifecycle event routed to it.
    fn poll_demands(&mut self, sc: u32, bank: u32) {
        let flat = self.cfg.geometry.flat_bank(sc, bank) as usize;
        let epoch = self.sub(sc).banks[bank as usize].mitigation().demands_epoch();
        if self.demands_seen[flat] != epoch {
            self.demands_seen[flat] = epoch;
            self.demands = self.sub(sc).banks[bank as usize].mitigation().timing_demands();
            self.demands_generation += 1;
        }
    }

    /// Re-polls every bank of `sc` (REF / RFM fan lifecycle calls out to
    /// all engines).
    fn poll_demands_all(&mut self, sc: u32) {
        for bank in 0..self.cfg.geometry.banks_per_subchannel {
            self.poll_demands(sc, bank);
        }
    }

    /// Earliest cycle an ACT to (sc, bank) may issue, or `None` if the
    /// bank is open.
    #[must_use]
    pub fn earliest_activate(&self, sc: u32, bank: u32) -> Option<Cycle> {
        let s = self.sub(sc);
        let t = self.timing_default();
        let bank_ok = s.banks[bank as usize].earliest_activate()?;
        let rrd_ok = s.last_act.map_or(0, |a| a + t.t_rrd);
        let faw_ok = if s.faw_filled >= 4 {
            s.faw[s.faw_idx] + t.t_faw
        } else {
            0
        };
        Some(bank_ok.max(rrd_ok).max(faw_ok).max(s.blocked_until))
    }

    /// Earliest cycle an ACT to `row` specifically may issue: the
    /// bank-level gate ([`Self::earliest_activate`]) plus the row's
    /// subarray deferred-update gate. Identical to the bank-level gate
    /// for designs without subarray-deferred updates.
    #[must_use]
    pub fn earliest_activate_row(&self, sc: u32, bank: u32, row: u32) -> Option<Cycle> {
        let bank_ok = self.earliest_activate(sc, bank)?;
        let sa = self.cfg.geometry.subarray_of(row);
        Some(bank_ok.max(self.sub(sc).banks[bank as usize].cu_gate(sa)))
    }

    /// Issues an ACT. `update_selected` is MoPAC-C's coin flip; ignored
    /// (forced) for other designs.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::TimingProtocol`] if the bank is open or the
    /// ACT is issued before its timing gate (including the target row's
    /// subarray deferred-update gate), [`MopacError::Config`] for an
    /// out-of-range bank reference.
    pub fn activate(
        &mut self,
        sc: u32,
        bank: u32,
        row: u32,
        now: Cycle,
        update_selected: bool,
    ) -> MopacResult<()> {
        self.check_bank(sc, bank)?;
        let earliest = self.earliest_activate_row(sc, bank, row);
        if earliest.is_none_or(|e| now < e) {
            return Err(MopacError::TimingProtocol {
                command: "ACT",
                subchannel: sc,
                bank: Some(bank),
                at: now,
                earliest,
            });
        }
        // Engines on full PRAC timings update on every close; a PREcu
        // coin engine (MoPAC-C) honors the controller's per-ACT draw.
        let selected = self.demands.always_prac_timings
            || (self.demands.precu_probability.is_some() && update_selected);
        // This ACT overlapping an in-flight counter update (necessarily
        // in another subarray, or the gate above would have held it) is
        // exactly the parallelism subarray-level updates unlock — PRAC
        // would have serialized it behind the full tRP.
        if self.demands.subarray_parallel_updates
            && self.sub(sc).banks[bank as usize].cu_pending(now).next().is_some()
        {
            self.sink.add(Counter::DramSubarrayParallelUpdates, 1);
        }
        if self.sink.is_enabled() {
            if let Some(last) = self.sub(sc).last_act {
                self.sink
                    .record(Hist::InterActGap, sc, now.saturating_sub(last));
            }
            self.sink.event(TraceEvent {
                cycle: now,
                channel: self.cfg.channel,
                kind: TraceEventKind::Act,
                subchannel: sc,
                bank,
                value: u64::from(row),
                subarray: self.cfg.geometry.subarray_of(row),
            });
        }
        let (base, prac) = (self.base, self.prac);
        let s = self.sub_mut(sc);
        let flips = s.banks[bank as usize].activate(row, now, selected, &base, &prac);
        s.open_mask.set(bank);
        s.last_act = Some(now);
        s.faw[s.faw_idx] = now;
        s.faw_idx = (s.faw_idx + 1) % 4;
        s.faw_filled = (s.faw_filled + 1).min(4);
        s.acts_since_alert += 1;
        self.stats.activates += 1;
        if flips > 0 && self.sink.is_enabled() {
            // `value` is the number of fresh victim bits this ACT set;
            // the flipped rows themselves are row ± 1 of the aggressor.
            self.sink.event(TraceEvent {
                cycle: now,
                channel: self.cfg.channel,
                kind: TraceEventKind::BitFlip,
                subchannel: sc,
                bank,
                value: u64::from(flips),
                subarray: self.cfg.geometry.subarray_of(row),
            });
        }
        self.poll_demands(sc, bank);
        self.refresh_alert_line(sc, now);
        Ok(())
    }

    /// Earliest cycle a read/write to `row` may issue (bank + bus).
    #[must_use]
    pub fn earliest_column(&self, sc: u32, bank: u32, row: u32) -> Option<Cycle> {
        let s = self.sub(sc);
        let t = self.timing_default();
        let bank_ok = s.banks[bank as usize].earliest_column(row)?;
        // The data burst must not overlap the previous one.
        let bus_ok = s.bus_busy_until.saturating_sub(t.cl);
        Some(bank_ok.max(bus_ok).max(s.blocked_until))
    }

    /// Checks a column command's timing gate against the open row.
    fn check_column(
        &self,
        command: &'static str,
        sc: u32,
        bank: u32,
        now: Cycle,
    ) -> MopacResult<()> {
        self.check_bank(sc, bank)?;
        let earliest = self
            .open_row(sc, bank)
            .and_then(|o| self.earliest_column(sc, bank, o.row));
        if earliest.is_none_or(|e| now < e) {
            return Err(MopacError::TimingProtocol {
                command,
                subchannel: sc,
                bank: Some(bank),
                at: now,
                earliest,
            });
        }
        Ok(())
    }

    /// Issues a read; returns the data-completion cycle.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::TimingProtocol`] if no row is open or the
    /// column gate is violated.
    pub fn read(&mut self, sc: u32, bank: u32, now: Cycle) -> MopacResult<Cycle> {
        self.check_column("RD", sc, bank, now)?;
        let t = *self.timing_default();
        // check_column guarantees an open row; its data is what the
        // read returns, so route it through the flip plane's ECC path.
        let open = self.open_row(sc, bank).map(|o| o.row);
        let s = self.sub_mut(sc);
        let done = s.banks[bank as usize].read(now, &t);
        s.bus_busy_until = done;
        if let (Some(row), Some(f)) = (open, s.banks[bank as usize].flip_mut()) {
            let _outcome: ReadOutcome = f.on_read(row);
        }
        self.stats.reads += 1;
        Ok(done)
    }

    /// Issues a write; returns the data-completion cycle.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::TimingProtocol`] if no row is open or the
    /// column gate is violated.
    pub fn write(&mut self, sc: u32, bank: u32, now: Cycle) -> MopacResult<Cycle> {
        self.check_column("WR", sc, bank, now)?;
        let t = *self.timing_default();
        let s = self.sub_mut(sc);
        let done = s.banks[bank as usize].write(now, &t);
        s.bus_busy_until = done;
        self.stats.writes += 1;
        Ok(done)
    }

    /// Earliest cycle a PRE may issue.
    #[must_use]
    pub fn earliest_precharge(&self, sc: u32, bank: u32) -> Option<Cycle> {
        let s = self.sub(sc);
        Some(
            s.banks[bank as usize]
                .earliest_precharge()?
                .max(s.blocked_until),
        )
    }

    /// Issues a precharge. The kind is derived from the mitigation design
    /// and the bank's pending-update bit (PRAC always updates; MoPAC-C
    /// updates when the MC armed the bit at ACT).
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::TimingProtocol`] if the bank is closed or
    /// the PRE is issued before its timing gate.
    pub fn precharge(&mut self, sc: u32, bank: u32, now: Cycle) -> MopacResult<()> {
        self.check_bank(sc, bank)?;
        let earliest = self.earliest_precharge(sc, bank);
        if earliest.is_none_or(|e| now < e) {
            return Err(MopacError::TimingProtocol {
                command: "PRE",
                subchannel: sc,
                bank: Some(bank),
                at: now,
                earliest,
            });
        }
        let kind = if self.demands.always_prac_timings || self.pending_update(sc, bank) {
            PrechargeKind::CounterUpdate
        } else if self.demands.subarray_parallel_updates {
            PrechargeKind::DeferredUpdate
        } else {
            PrechargeKind::Normal
        };
        let closed_row = self.open_row(sc, bank).map(|o| o.row);
        if self.sink.is_enabled() {
            if let Some(open) = self.open_row(sc, bank) {
                self.sink
                    .record(Hist::RowOpenTime, sc, now.saturating_sub(open.opened_at));
                self.sink.event(TraceEvent {
                    cycle: now,
                    channel: self.cfg.channel,
                    kind: match kind {
                        PrechargeKind::Normal => TraceEventKind::Pre,
                        PrechargeKind::CounterUpdate | PrechargeKind::DeferredUpdate => {
                            TraceEventKind::PreCu
                        }
                    },
                    subchannel: sc,
                    bank,
                    value: u64::from(open.row),
                    subarray: self.cfg.geometry.subarray_of(open.row),
                });
            }
        }
        let (base, prac) = (self.base, self.prac);
        let ns_per_cycle = 1.0 / self.clock.freq_ghz();
        let s = self.sub_mut(sc);
        if s.banks[bank as usize]
            .precharge(kind, now, &base, &prac, ns_per_cycle)
            .is_none()
        {
            // The earliest_precharge gate above already rejects a closed
            // bank, so this arm is unreachable; keep it typed anyway.
            return Err(MopacError::internal(format!(
                "PRE accepted on closed bank sc{sc}/bank{bank}"
            )));
        }
        s.open_mask.clear(bank);
        match kind {
            PrechargeKind::Normal => self.stats.precharges += 1,
            PrechargeKind::CounterUpdate | PrechargeKind::DeferredUpdate => {
                self.stats.precharges_cu += 1;
            }
        }
        if kind == PrechargeKind::DeferredUpdate {
            if let Some(row) = closed_row {
                // The read-modify-write continues inside the closed
                // row's subarray for the PRAC-vs-base tRP difference;
                // the bank itself is already free.
                let sa = self.cfg.geometry.subarray_of(row);
                // The full update takes PRAC's tRP; only the subarray
                // pays the tail beyond the bank's base tRP.
                let cu_done = now + self.prac.t_rp.max(self.base.t_rp);
                self.sub_mut(sc).banks[bank as usize].post_cu(sa, cu_done, now);
                self.sub_mut(sc).banks[bank as usize]
                    .mitigation_mut()
                    .on_subarray_update(sa);
            }
        }
        self.poll_demands(sc, bank);
        self.refresh_alert_line(sc, now);
        Ok(())
    }

    /// Earliest cycle a REF may issue (all banks must be precharged; the
    /// caller closes open rows first).
    #[must_use]
    pub fn earliest_refresh(&self, sc: u32) -> Option<Cycle> {
        let s = self.sub(sc);
        let mut latest = s.blocked_until;
        for b in &s.banks {
            // REF quiesces the whole bank: closed rows AND any
            // in-flight subarray counter updates.
            latest = latest.max(b.earliest_activate()?).max(b.cu_busy_until());
        }
        Some(latest)
    }

    /// Earliest cycle *strictly after* `now` at which a currently-held
    /// device-side timing gate on sub-channel `sc` releases: per-bank
    /// ACT/column/PRE gates, tRRD and tFAW windows, the data-bus slot,
    /// the REF/RFM block (`blocked_until`), and the ALERT recovery
    /// deadline (`alert_since` + the ABO normal window). Returns `None`
    /// when every gate has already released — the device is then not
    /// what is holding the controller back.
    ///
    /// This is the device's half of the event-driven kernel contract:
    /// between `now` and the returned cycle the device state cannot
    /// change on its own (it is passive with respect to time), so a
    /// controller that has no issuable command at `now` provably has
    /// none before this wake either.
    #[must_use]
    pub fn next_wake(&self, sc: u32, now: Cycle) -> Option<Cycle> {
        let s = self.sub(sc);
        let t = self.timing_default();
        let mut wake: Option<Cycle> = None;
        let mut push = |c: Cycle| {
            if c > now {
                wake = Some(wake.map_or(c, |w| w.min(c)));
            }
        };
        push(s.blocked_until);
        if let Some(asserted) = s.alert_since {
            push(asserted + self.abo.normal_window);
        }
        if let Some(last) = s.last_act {
            push(last + t.t_rrd);
        }
        if s.faw_filled >= 4 {
            push(s.faw[s.faw_idx] + t.t_faw);
        }
        push(s.bus_busy_until.saturating_sub(t.cl));
        for b in &s.banks {
            match b.open_row() {
                Some(open) => {
                    if let Some(c) = b.earliest_column(open.row) {
                        push(c);
                    }
                    if let Some(c) = b.earliest_precharge() {
                        push(c);
                    }
                }
                None => {
                    if let Some(c) = b.earliest_activate() {
                        push(c);
                    }
                }
            }
            // Subarray deferred-update completions gate row-targeted
            // ACTs past the bank-level gate above.
            for c in b.cu_pending(now) {
                push(c);
            }
        }
        wake
    }

    /// Issues an all-bank REF: refreshes the next group of rows in every
    /// bank, performs MoPAC-D drain-on-REF, and blocks the sub-channel
    /// for tRFC.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::TimingProtocol`] if any bank still has an
    /// open row or a bank's tRP has not elapsed.
    pub fn refresh(&mut self, sc: u32, now: Cycle) -> MopacResult<()> {
        self.check_bank(sc, 0)?;
        let earliest = self.earliest_refresh(sc);
        if earliest.is_none_or(|e| now < e) {
            return Err(MopacError::TimingProtocol {
                command: "REF",
                subchannel: sc,
                bank: None,
                at: now,
                earliest,
            });
        }
        let t_rfc = self.timing_default().t_rfc;
        let rows_per_group = self.cfg.geometry.rows_per_bank.div_ceil(REFRESH_GROUPS).max(1);
        let rows_per_bank = self.cfg.geometry.rows_per_bank;
        let blast = self.cfg.mitigation.blast_radius;
        let s = self.sub_mut(sc);
        let start = (s.ref_group * rows_per_group).min(rows_per_bank);
        let end = (start + rows_per_group).min(rows_per_bank);
        s.ref_group = (s.ref_group + 1) % REFRESH_GROUPS;
        s.blocked_until = now + t_rfc;
        let mut deferred = 0u64;
        let mut mitigations = 0u64;
        for b in &mut s.banks {
            b.block_until(now + t_rfc);
            let svc = b.mitigation_mut().on_ref(start..end);
            deferred += u64::from(svc.counter_updates);
            mitigations += svc.mitigated_rows.len() as u64;
            if let Some(ck) = b.checker_mut() {
                // Proactive (REF-piggybacked) mitigations, e.g. QPRAC
                // draining its priority queue, cure victims just like
                // ABO-forced ones.
                for &row in &svc.mitigated_rows {
                    ck.on_mitigate(row, blast);
                }
                ck.on_refresh_range(start..end);
            }
            if let Some(f) = b.flip_mut() {
                for &row in &svc.mitigated_rows {
                    f.on_mitigate(row, blast);
                }
                f.on_refresh_range(start..end);
            }
        }
        self.stats.refreshes += 1;
        self.stats.deferred_updates += deferred;
        self.stats.mitigations += mitigations;
        if self.sink.is_enabled() {
            self.sink.event(TraceEvent {
                cycle: now,
                channel: self.cfg.channel,
                kind: TraceEventKind::Ref,
                subchannel: sc,
                bank: 0,
                value: u64::from(start),
                subarray: 0,
            });
            if mitigations > 0 {
                self.sink.event(TraceEvent {
                    cycle: now,
                    channel: self.cfg.channel,
                    kind: TraceEventKind::Mitigation,
                    subchannel: sc,
                    bank: 0,
                    value: mitigations,
                    subarray: 0,
                });
            }
        }
        self.poll_demands_all(sc);
        self.refresh_alert_line(sc, now);
        Ok(())
    }

    /// Issues an RFM, servicing the pending ABO on every bank of the
    /// sub-channel; blocks the sub-channel for the ABO stall time.
    ///
    /// Under an active `inject_rfm_drop` fault the command pays its full
    /// stall but performs no ABO service and leaves ALERT asserted; under
    /// `inject_rfm_delay` the stall is lengthened.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::TimingProtocol`] if any bank has an open
    /// row.
    pub fn rfm(&mut self, sc: u32, now: Cycle) -> MopacResult<()> {
        self.check_bank(sc, 0)?;
        let earliest = self.earliest_refresh(sc);
        if earliest.is_none_or(|e| now < e) {
            return Err(MopacError::TimingProtocol {
                command: "RFM",
                subchannel: sc,
                bank: None,
                at: now,
                earliest,
            });
        }
        let stall = self.abo.stall + self.rfm_extra_stall;
        // Sub-channel-scope recovery stalls every bank, alerting or not.
        let blocked_bank_cycles = stall * self.sub(sc).banks.len() as u64;
        // ALERT-to-service latency: how long the pending ABO waited for
        // this RFM (0 when no ALERT was asserted, e.g. a speculative or
        // dropped-fault retry).
        let service_time = self
            .sub(sc)
            .alert_since
            .map_or(0, |a| now.saturating_sub(a));
        if self.sink.is_enabled() {
            self.sink.record(Hist::AboServiceTime, sc, service_time);
            self.sink.event(TraceEvent {
                cycle: now,
                channel: self.cfg.channel,
                kind: TraceEventKind::Rfm,
                subchannel: sc,
                bank: 0,
                value: service_time,
                subarray: 0,
            });
        }
        if self.drop_rfms > 0 {
            // Dropped-RFM fault: the command occupies the bus and stalls
            // the sub-channel but never reaches the mitigation engines.
            self.drop_rfms -= 1;
            self.stats.injected_faults += 1;
            self.stats.rfms += 1;
            let s = self.sub_mut(sc);
            for b in &mut s.banks {
                b.block_until(now + stall);
            }
            s.blocked_until = now + stall;
            // ALERT stays asserted: the device never serviced the ABO.
            // Allow a later RFM to retry without requiring a new ACT.
            s.alert_since = None;
            s.acts_since_alert = 1;
            self.sink.add(Counter::DramBlockedBankCycles, blocked_bank_cycles);
            self.refresh_alert_line(sc, now);
            return Ok(());
        }
        let blast = self.cfg.mitigation.blast_radius;
        let s = self.sub_mut(sc);
        let mut mitigations = 0u64;
        let mut updates = 0u64;
        for b in &mut s.banks {
            b.block_until(now + stall);
            let svc = b.mitigation_mut().service_abo();
            updates += u64::from(svc.counter_updates);
            mitigations += svc.mitigated_rows.len() as u64;
            if let Some(ck) = b.checker_mut() {
                for &row in &svc.mitigated_rows {
                    ck.on_mitigate(row, blast);
                }
            }
            if let Some(f) = b.flip_mut() {
                for &row in &svc.mitigated_rows {
                    f.on_mitigate(row, blast);
                }
            }
        }
        s.blocked_until = now + stall;
        s.alert_since = None;
        s.acts_since_alert = 0;
        self.sink.add(Counter::DramBlockedBankCycles, blocked_bank_cycles);
        self.stats.rfms += 1;
        self.stats.mitigations += mitigations;
        self.stats.deferred_updates += updates;
        if mitigations > 0 {
            self.sink.event(TraceEvent {
                cycle: now,
                channel: self.cfg.channel,
                kind: TraceEventKind::Mitigation,
                subchannel: sc,
                bank: 0,
                value: mitigations,
                subarray: 0,
            });
        }
        self.poll_demands_all(sc);
        // A bank may *still* need service (e.g. more SRQ entries than one
        // ABO drains); it may re-assert after the next activation.
        self.refresh_alert_line(sc, now);
        Ok(())
    }

    /// Banks of `sc` whose mitigation engine currently demands ABO
    /// service — the targets of a bank-scoped RFM under
    /// [`RecoveryScope::Bank`].
    #[must_use]
    pub fn alerting_banks(&self, sc: u32) -> BankMask {
        let mut m = BankMask::empty();
        for (i, b) in self.sub(sc).banks.iter().enumerate() {
            if b.mitigation().alert_cause().is_some() {
                m.set(i as u32);
            }
        }
        m
    }

    /// Earliest cycle a bank-scoped RFM over `mask` may issue: every
    /// masked bank must be precharged (returns `None` while one still
    /// has an open row) and past its ACT gate, block deadline, and any
    /// in-flight subarray counter update. Unmasked banks are *not*
    /// consulted — they keep issuing while the masked ones recover.
    #[must_use]
    pub fn earliest_rfm_banks(&self, sc: u32, mask: BankMask) -> Option<Cycle> {
        let s = self.sub(sc);
        let mut latest: Cycle = 0;
        for bit in mask.ones() {
            let b = s.banks.get(bit as usize)?;
            latest = latest.max(b.earliest_activate()?).max(b.cu_busy_until());
        }
        Some(latest)
    }

    /// Issues a bank-scoped RFM, servicing the pending ABO on exactly
    /// the banks in `mask` and blocking only them for the ABO stall
    /// time; the sub-channel's other banks (and its shared
    /// `blocked_until`) are untouched. This is PRACtical's
    /// bank-isolated recovery ([`RecoveryScope::Bank`]).
    ///
    /// Injected RFM faults apply as for [`Self::rfm`]: a dropped RFM
    /// pays the full stall on the masked banks without service; an RFM
    /// delay lengthens the stall.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::TimingProtocol`] if any masked bank has an
    /// open row or an unexpired gate, and [`MopacError::Config`] for an
    /// out-of-range sub-channel or an empty mask.
    pub fn rfm_banks(&mut self, sc: u32, mask: BankMask, now: Cycle) -> MopacResult<()> {
        self.check_bank(sc, 0)?;
        if mask.is_empty() {
            return Err(MopacError::config("rfm_banks: empty bank mask"));
        }
        if mask.ones().any(|bit| bit as usize >= self.sub(sc).banks.len()) {
            return Err(MopacError::config(format!(
                "rfm_banks: mask exceeds {} banks",
                self.sub(sc).banks.len()
            )));
        }
        let earliest = self.earliest_rfm_banks(sc, mask);
        if earliest.is_none_or(|e| now < e) {
            return Err(MopacError::TimingProtocol {
                command: "RFMpb",
                subchannel: sc,
                bank: mask.first_set(),
                at: now,
                earliest,
            });
        }
        let stall = self.abo.stall + self.rfm_extra_stall;
        let blocked_bank_cycles = stall * u64::from(mask.count());
        let service_time = self
            .sub(sc)
            .alert_since
            .map_or(0, |a| now.saturating_sub(a));
        if self.sink.is_enabled() {
            self.sink.record(Hist::AboServiceTime, sc, service_time);
            self.sink.event(TraceEvent {
                cycle: now,
                channel: self.cfg.channel,
                kind: TraceEventKind::Rfm,
                subchannel: sc,
                bank: mask.first_set().unwrap_or(0),
                value: service_time,
                subarray: 0,
            });
        }
        if self.drop_rfms > 0 {
            // Dropped-RFM fault: the masked banks pay the stall but the
            // ABO is never serviced (fault parity with `rfm`).
            self.drop_rfms -= 1;
            self.stats.injected_faults += 1;
            self.stats.rfms += 1;
            let s = self.sub_mut(sc);
            for bit in mask.ones() {
                s.banks[bit as usize].block_until(now + stall);
            }
            s.alert_since = None;
            s.acts_since_alert = 1;
            self.sink.add(Counter::DramBlockedBankCycles, blocked_bank_cycles);
            self.refresh_alert_line(sc, now);
            return Ok(());
        }
        let blast = self.cfg.mitigation.blast_radius;
        let s = self.sub_mut(sc);
        let mut mitigations = 0u64;
        let mut updates = 0u64;
        for bit in mask.ones() {
            let b = &mut s.banks[bit as usize];
            b.block_until(now + stall);
            let svc = b.mitigation_mut().service_abo();
            updates += u64::from(svc.counter_updates);
            mitigations += svc.mitigated_rows.len() as u64;
            if let Some(ck) = b.checker_mut() {
                for &row in &svc.mitigated_rows {
                    ck.on_mitigate(row, blast);
                }
            }
            if let Some(f) = b.flip_mut() {
                for &row in &svc.mitigated_rows {
                    f.on_mitigate(row, blast);
                }
            }
        }
        s.alert_since = None;
        s.acts_since_alert = 0;
        self.sink.add(Counter::DramBlockedBankCycles, blocked_bank_cycles);
        self.stats.rfms += 1;
        self.stats.mitigations += mitigations;
        self.stats.deferred_updates += updates;
        if mitigations > 0 {
            self.sink.event(TraceEvent {
                cycle: now,
                channel: self.cfg.channel,
                kind: TraceEventKind::Mitigation,
                subchannel: sc,
                bank: mask.first_set().unwrap_or(0),
                value: mitigations,
                subarray: 0,
            });
        }
        self.poll_demands_all(sc);
        // An unmasked bank (or a masked one with more pending service)
        // may still demand ABO; let ALERT re-assert.
        self.refresh_alert_line(sc, now);
        Ok(())
    }

    /// Fault hook: asserts ALERT on a sub-channel as if a bank demanded
    /// service (an adversarial or glitching device).
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Config`] for an out-of-range sub-channel.
    pub fn inject_alert(&mut self, sc: u32, now: Cycle) -> MopacResult<()> {
        self.check_bank(sc, 0)?;
        let s = self.sub_mut(sc);
        if s.alert_since.is_none() {
            s.alert_since = Some(now);
            self.stats.alerts_mitigation += 1;
            self.stats.injected_faults += 1;
            self.sink.event(TraceEvent {
                cycle: now,
                channel: self.cfg.channel,
                kind: TraceEventKind::Alert,
                subchannel: sc,
                bank: 0,
                value: 0,
                subarray: 0,
            });
        }
        Ok(())
    }

    /// Fault hook: the next `n` RFM commands are dropped (stall without
    /// service).
    pub fn inject_rfm_drop(&mut self, n: u32) {
        self.drop_rfms = self.drop_rfms.saturating_add(n);
    }

    /// Fault hook: every subsequent RFM stalls `extra` cycles longer.
    pub fn inject_rfm_delay(&mut self, extra: Cycle) {
        self.rfm_extra_stall = extra;
        if extra > 0 {
            self.stats.injected_faults += 1;
        }
    }

    /// Fault hook: wedges a bank until `until` (stuck-open row if the
    /// bank is open, stuck-closed otherwise).
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Config`] for an out-of-range bank.
    pub fn inject_stuck_bank(&mut self, sc: u32, bank: u32, until: Cycle) -> MopacResult<()> {
        self.check_bank(sc, bank)?;
        self.sub_mut(sc).banks[bank as usize].stick_until(until);
        self.stats.injected_faults += 1;
        Ok(())
    }

    /// Fault hook: flips `bit` of the PRAC counter for `row` in one chip
    /// of the bank's mitigation engine (a counter-table soft error). The
    /// security oracle is deliberately *not* told, so any resulting
    /// undercount surfaces as an oracle violation.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Config`] for an out-of-range bank or row.
    pub fn inject_counter_flip(
        &mut self,
        sc: u32,
        bank: u32,
        row: u32,
        bit: u32,
    ) -> MopacResult<()> {
        self.check_bank(sc, bank)?;
        if row >= self.cfg.geometry.rows_per_bank {
            return Err(MopacError::config(format!(
                "row {row} outside bank ({} rows)",
                self.cfg.geometry.rows_per_bank
            )));
        }
        self.sub_mut(sc).banks[bank as usize]
            .mitigation_mut()
            .corrupt_counter(row, bit);
        self.stats.injected_faults += 1;
        Ok(())
    }

    /// Total Rowhammer violations recorded by the oracle across all
    /// banks.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.subchannels
            .iter()
            .flat_map(|s| &s.banks)
            .filter_map(|b| b.checker().map(|c| c.violations()))
            .sum()
    }

    /// First recorded violations for diagnostics.
    #[must_use]
    pub fn violation_records(&self) -> Vec<Violation> {
        self.subchannels
            .iter()
            .flat_map(|s| &s.banks)
            .filter_map(|b| b.checker())
            .flat_map(|c| c.violation_records().iter().copied())
            .collect()
    }

    /// Sums a per-bank mitigation statistic over all banks.
    #[must_use]
    pub fn mitigation_stats(&self) -> mopac::bank::MitigationStats {
        let mut total = mopac::bank::MitigationStats::default();
        for b in self.subchannels.iter().flat_map(|s| &s.banks) {
            let s = b.mitigation().stats();
            total.activations += s.activations;
            total.counter_updates += s.counter_updates;
            total.srq_insertions += s.srq_insertions;
            total.srq_overflows += s.srq_overflows;
            total.mitigations += s.mitigations;
            total.update_precharges += s.update_precharges;
            total.abo_mitigations += s.abo_mitigations;
            total.proactive_mitigations += s.proactive_mitigations;
            total.ref_drained_updates += s.ref_drained_updates;
        }
        total
    }

    /// Sums the victim-data flip-plane statistics over all banks
    /// (all-zero when [`DramConfig::flip`] is `None`).
    #[must_use]
    pub fn flip_stats(&self) -> FlipStats {
        let mut total = FlipStats::default();
        for b in self.subchannels.iter().flat_map(|s| &s.banks) {
            if let Some(f) = b.flip() {
                total.accumulate(&f.stats());
            }
        }
        total
    }

    /// Reads back every row holding flipped victim bits in every bank,
    /// through the ECC path — the post-attack verification pass an
    /// attacker (or a memory test) would perform. Hammer kernels only
    /// read their aggressor rows, so without this sweep victim
    /// corruption exists but is never *observed*. No-op without a flip
    /// plane.
    pub fn flip_readback_sweep(&mut self) {
        for b in self.subchannels.iter_mut().flat_map(|s| &mut s.banks) {
            if let Some(f) = b.flip_mut() {
                f.readback_sweep();
            }
        }
    }

    /// The flip plane of one bank (testing / diagnostics).
    #[must_use]
    pub fn flip_plane(&self, sc: u32, bank: u32) -> Option<&FlipPlane> {
        self.sub(sc).banks[bank as usize].flip()
    }

    /// Whether this configuration serializes the subarray/bank-scope
    /// snapshot extension. Derived from the *config* (not the live
    /// `demands`) so the writer and reader agree even if an adaptive
    /// engine has shifted its demands since construction.
    fn extended_snapshot(cfg: &DramConfig) -> bool {
        let d = TimingDemands::for_config(&cfg.mitigation);
        cfg.geometry.subarrays_per_bank > 1
            || d.recovery_scope == RecoveryScope::Bank
            || d.subarray_parallel_updates
    }

    fn sub(&self, sc: u32) -> &SubChannel {
        &self.subchannels[sc as usize]
    }

    fn sub_mut(&mut self, sc: u32) -> &mut SubChannel {
        &mut self.subchannels[sc as usize]
    }

    /// Serializes one sub-channel's shared state (banks delegate to
    /// their own [`Snapshottable`] impls).
    fn save_sub(s: &SubChannel, w: &mut SnapshotWriter) {
        w.put_usize(s.banks.len());
        for b in &s.banks {
            b.save_state(w);
        }
        w.put_opt_u64(s.last_act);
        for &c in &s.faw {
            w.put_u64(c);
        }
        w.put_usize(s.faw_idx);
        w.put_usize(s.faw_filled);
        w.put_u64(s.bus_busy_until);
        w.put_u64(s.blocked_until);
        w.put_u32(s.ref_group);
        w.put_opt_u64(s.alert_since);
        w.put_u64(s.acts_since_alert);
        s.open_mask.save_state(w);
    }

    fn load_sub(s: &mut SubChannel, r: &mut SnapshotReader<'_>) -> MopacResult<()> {
        let n = r.take_usize()?;
        if n != s.banks.len() {
            return Err(MopacError::snapshot(format!(
                "bank count mismatch: snapshot {n}, configured {}",
                s.banks.len()
            )));
        }
        for b in &mut s.banks {
            b.load_state(r)?;
        }
        s.last_act = r.take_opt_u64()?;
        for c in &mut s.faw {
            *c = r.take_u64()?;
        }
        s.faw_idx = r.take_usize()?;
        if s.faw_idx >= 4 {
            return Err(MopacError::snapshot(format!("faw index {} out of range", s.faw_idx)));
        }
        s.faw_filled = r.take_usize()?;
        s.bus_busy_until = r.take_u64()?;
        s.blocked_until = r.take_u64()?;
        s.ref_group = r.take_u32()?;
        s.alert_since = r.take_opt_u64()?;
        s.acts_since_alert = r.take_u64()?;
        s.open_mask.load_state(r)?;
        Ok(())
    }

    /// Re-evaluates the ALERT pin for a sub-channel. ALERT asserts when
    /// any bank wants service, provided at least one activation happened
    /// since the previous ALERT completed (ABO's anti-livelock rule).
    fn refresh_alert_line(&mut self, sc: u32, now: Cycle) {
        let cause = {
            let s = self.sub(sc);
            if s.alert_since.is_some() || s.acts_since_alert == 0 {
                None
            } else {
                s.banks.iter().find_map(|b| b.mitigation().alert_cause())
            }
        };
        if let Some(cause) = cause {
            self.sub_mut(sc).alert_since = Some(now);
            match cause {
                AlertCause::Mitigation => self.stats.alerts_mitigation += 1,
                AlertCause::SrqFull => self.stats.alerts_srq_full += 1,
                AlertCause::Tardiness => self.stats.alerts_tardiness += 1,
            }
            self.sink.event(TraceEvent {
                cycle: now,
                channel: self.cfg.channel,
                kind: TraceEventKind::Alert,
                subchannel: sc,
                bank: 0,
                value: match cause {
                    AlertCause::Mitigation => 0,
                    AlertCause::SrqFull => 1,
                    AlertCause::Tardiness => 2,
                },
                subarray: 0,
            });
        }
    }
}

impl Snapshottable for DramDevice {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.subchannels.len());
        for s in &self.subchannels {
            Self::save_sub(s, w);
        }
        self.stats.save_state(w);
        w.put_u32(self.drop_rfms);
        w.put_u64(self.rfm_extra_stall);
        w.put_u64(self.demands_generation);
        w.put_usize(self.demands_seen.len());
        for &e in &self.demands_seen {
            w.put_u64(e);
        }
        // The cached demands themselves: for all shipped engines these
        // equal the config-derived defaults, but an adaptive engine may
        // have switched them before the snapshot.
        w.put_bool(self.demands.always_prac_timings);
        w.put_opt_f64(self.demands.precu_probability);
        w.put_opt_f64(self.demands.row_open_cap_ns);
        // Subarray/bank-scope extension: only shapes that use it pay
        // for it, so legacy configurations keep byte-identical streams.
        if Self::extended_snapshot(&self.cfg) {
            w.put_u32(SUBARRAY_SECTION_MAGIC);
            w.put_u32(self.cfg.geometry.subarrays_per_bank);
            w.put_u32(match self.demands.recovery_scope {
                RecoveryScope::SubChannel => 0,
                RecoveryScope::Bank => 1,
            });
            w.put_bool(self.demands.subarray_parallel_updates);
        }
        // Flip-plane marker: present only when the plane is configured
        // (the per-bank sections above carry the actual state and the
        // distribution/ECC shape tags). Disabled configurations write
        // nothing, keeping legacy streams byte-identical.
        if self.cfg.flip.is_some() {
            w.put_u32(FLIP_SECTION_MAGIC);
        }
        self.sink.save_state(w);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> MopacResult<()> {
        let n = r.take_usize()?;
        if n != self.subchannels.len() {
            return Err(MopacError::snapshot(format!(
                "sub-channel count mismatch: snapshot {n}, configured {}",
                self.subchannels.len()
            )));
        }
        for s in &mut self.subchannels {
            Self::load_sub(s, r)?;
        }
        self.stats.load_state(r)?;
        self.drop_rfms = r.take_u32()?;
        self.rfm_extra_stall = r.take_u64()?;
        self.demands_generation = r.take_u64()?;
        let n = r.take_usize()?;
        if n != self.demands_seen.len() {
            return Err(MopacError::snapshot(format!(
                "demands-epoch table mismatch: snapshot {n}, configured {}",
                self.demands_seen.len()
            )));
        }
        for e in &mut self.demands_seen {
            *e = r.take_u64()?;
        }
        self.demands = TimingDemands {
            always_prac_timings: r.take_bool()?,
            precu_probability: r.take_opt_f64()?,
            row_open_cap_ns: r.take_opt_f64()?,
            ..TimingDemands::for_config(&self.cfg.mitigation)
        };
        if Self::extended_snapshot(&self.cfg) {
            let magic = r.take_u32()?;
            if magic != SUBARRAY_SECTION_MAGIC {
                return Err(MopacError::snapshot(
                    "missing subarray section: snapshot was taken on a flat-bank, \
                     sub-channel-scope configuration",
                ));
            }
            let sab = r.take_u32()?;
            if sab != self.cfg.geometry.subarrays_per_bank {
                return Err(MopacError::snapshot(format!(
                    "subarrays-per-bank mismatch: snapshot {sab}, configured {}",
                    self.cfg.geometry.subarrays_per_bank
                )));
            }
            self.demands.recovery_scope = match r.take_u32()? {
                0 => RecoveryScope::SubChannel,
                1 => RecoveryScope::Bank,
                v => {
                    return Err(MopacError::snapshot(format!(
                        "unknown recovery-scope tag {v} in snapshot"
                    )));
                }
            };
            self.demands.subarray_parallel_updates = r.take_bool()?;
        }
        if self.cfg.flip.is_some() {
            let magic = r.take_u32()?;
            if magic != FLIP_SECTION_MAGIC {
                return Err(MopacError::snapshot(
                    "missing flip-plane device section: snapshot was taken \
                     on a flip-plane-disabled configuration",
                ));
            }
        }
        self.sink.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device(mit: MitigationConfig) -> DramDevice {
        DramDevice::new(DramConfig::tiny(mit))
    }

    /// Figure 4: a row-buffer-conflict read costs tRP + tRCD + CL; PRAC
    /// stretches it ~1.55x.
    #[test]
    fn fig4_conflict_latency() {
        let mut base_dev = device(MitigationConfig::baseline());
        let mut prac_dev = device(MitigationConfig::prac(500));
        let latency = |d: &mut DramDevice| {
            // Open row 0, then service a conflicting read to row 1.
            d.activate(0, 0, 0, 0, false).unwrap();
            let pre_at = d.earliest_precharge(0, 0).unwrap();
            d.precharge(0, 0, pre_at).unwrap();
            let act_at = d.earliest_activate(0, 0).unwrap();
            d.activate(0, 0, 1, act_at, false).unwrap();
            let rd_at = d.earliest_column(0, 0, 1).unwrap();
            let done = d.read(0, 0, rd_at).unwrap();
            done - pre_at
        };
        let base_lat = latency(&mut base_dev);
        let prac_lat = latency(&mut prac_dev);
        // Base: tRP(42) + tRCD(42) + CL(42) + burst(8) = 134 cycles.
        assert_eq!(base_lat, 134);
        // PRAC: tRP(108) + tRCD(48) + CL(42) + burst(8) = 206 cycles.
        assert_eq!(prac_lat, 206);
        let ratio = prac_lat as f64 / base_lat as f64;
        assert!((1.45..1.65).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn faw_limits_burst_of_activations() {
        let mut cfg = DramConfig::tiny(MitigationConfig::baseline());
        cfg.geometry.banks_per_subchannel = 8;
        let mut d = DramDevice::new(cfg);
        let t_faw = d.timing_default().t_faw;
        let mut now = 0;
        for b in 0..4 {
            now = d.earliest_activate(0, b).unwrap().max(now);
            d.activate(0, b, 0, now, false).unwrap();
            now += 1;
        }
        // Fifth ACT must wait for the FAW window.
        let fifth = d.earliest_activate(0, 4).unwrap();
        assert!(fifth >= t_faw, "fifth ACT at {fifth}, tFAW {t_faw}");
    }

    #[test]
    fn prac_alerts_and_rfm_mitigates() {
        let mut d = device(MitigationConfig::prac(500)); // ATH 472
        let mut now = 0;
        let mut acts = 0u64;
        while d.alert_since(0).is_none() {
            now = d.earliest_activate(0, 0).unwrap();
            d.activate(0, 0, 10, now, false).unwrap();
            now = d.earliest_precharge(0, 0).unwrap();
            d.precharge(0, 0, now).unwrap();
            acts += 1;
            assert!(acts <= 473, "no alert after {acts} ACTs");
        }
        assert_eq!(acts, 472);
        // Service it.
        let rfm_at = now + 540;
        d.rfm(0, rfm_at).unwrap();
        assert_eq!(d.stats().mitigations, 1);
        assert_eq!(d.alert_since(0), None);
        assert_eq!(d.violations(), 0);
        // Bank is blocked during the stall.
        assert!(d.earliest_activate(0, 0).unwrap() >= rfm_at + 1050);
    }

    #[test]
    fn refresh_blocks_subchannel_and_advances_group() {
        let mut d = device(MitigationConfig::prac(500));
        let now = d.earliest_refresh(0).unwrap();
        d.refresh(0, now).unwrap();
        assert_eq!(d.stats().refreshes, 1);
        let next = d.earliest_activate(0, 0).unwrap();
        assert_eq!(next, now + d.timing_default().t_rfc);
        // Other sub-channel unaffected.
        assert_eq!(d.earliest_activate(1, 0), Some(0));
    }

    #[test]
    fn mopac_d_srq_full_alert_drained_by_rfm() {
        let mit = MitigationConfig::mopac_d(500)
            .with_chips(1)
            .with_drain_on_ref(0);
        let mut d = device(mit);
        let mut now = 0;
        let mut row = 0u32;
        while d.alert_since(0).is_none() {
            now = d.earliest_activate(0, 0).unwrap();
            d.activate(0, 0, row, now, false).unwrap();
            now = d.earliest_precharge(0, 0).unwrap();
            d.precharge(0, 0, now).unwrap();
            row = (row + 1) % 1024;
            assert!(row < 1000, "SRQ never filled");
        }
        assert_eq!(d.stats().alerts_srq_full, 1);
        d.rfm(0, now + 540).unwrap();
        assert_eq!(d.stats().deferred_updates, 5);
        assert_eq!(d.alert_since(0), None);
    }

    #[test]
    fn violations_detected_without_mitigation() {
        // Failure injection: a deliberately broken PRAC config (alert
        // threshold far above T_RH) must let the oracle catch overflows.
        let broken = MitigationConfig::prac(500).with_alert_threshold(100_000);
        let mut d = DramDevice::new(DramConfig::tiny(broken));
        let mut now;
        for _ in 0..600 {
            now = d.earliest_activate(0, 0).unwrap();
            d.activate(0, 0, 10, now, false).unwrap();
            now = d.earliest_precharge(0, 0).unwrap();
            d.precharge(0, 0, now).unwrap();
        }
        assert!(d.violations() > 0, "oracle missed an obvious overflow");
        let rec = d.violation_records();
        assert_eq!(rec[0].row, 10);
    }

    /// PRACtical: a deferred-update precharge returns the bank to base
    /// timings; only a back-to-back ACT into the *same* subarray waits
    /// for the in-flight counter update, and overlapping updates across
    /// subarrays are counted on the sink.
    #[test]
    fn practical_subarray_gate_and_parallel_updates() {
        let mut cfg = DramConfig::tiny(MitigationConfig::practical(500));
        cfg.geometry.subarrays_per_bank = 4;
        let mut d = DramDevice::new(cfg);
        d.enable_metrics(SinkConfig::default());
        let rows_per_sa = d.config().geometry.rows_per_subarray();
        d.activate(0, 0, 0, 0, false).unwrap();
        let pre_at = d.earliest_precharge(0, 0).unwrap();
        d.precharge(0, 0, pre_at).unwrap();
        // Bank-level gate uses *base* tRP (the update continues inside
        // the subarray), so a different subarray proceeds immediately...
        let bank_free = d.earliest_activate(0, 0).unwrap();
        let other = d.earliest_activate_row(0, 0, rows_per_sa).unwrap();
        assert_eq!(other, bank_free);
        // ...while the closed row's subarray pays the PRAC-length tail.
        let same = d.earliest_activate_row(0, 0, 1).unwrap();
        assert!(same > other, "same-subarray ACT not gated ({same} vs {other})");
        // That ACT proceeds while subarray 0's update is still in
        // flight — the parallelism PRACtical unlocks (PRAC would have
        // held the whole bank for the long tRP).
        d.activate(0, 0, rows_per_sa, other, false).unwrap();
        let pre2 = d.earliest_precharge(0, 0).unwrap();
        d.precharge(0, 0, pre2).unwrap();
        let overlaps = d
            .metrics()
            .registry()
            .map(|r| r.counter(Counter::DramSubarrayParallelUpdates))
            .unwrap_or(0);
        assert_eq!(overlaps, 1, "overlapping subarray updates not counted");
    }

    /// PRACtical's bank-isolated recovery: a bank-scoped RFM services
    /// and stalls only the masked bank; its siblings keep issuing.
    #[test]
    fn rfm_banks_blocks_only_masked_banks() {
        let mut d = device(MitigationConfig::practical(500)); // ATH 472
        let mut now = 0;
        while d.alert_since(0).is_none() {
            now = d.earliest_activate_row(0, 0, 10).unwrap();
            d.activate(0, 0, 10, now, false).unwrap();
            now = d.earliest_precharge(0, 0).unwrap();
            d.precharge(0, 0, now).unwrap();
        }
        let mask = d.alerting_banks(0);
        assert_eq!(mask.first_set(), Some(0));
        assert_eq!(mask.count(), 1);
        let rfm_at = d.earliest_rfm_banks(0, mask).unwrap().max(now);
        d.rfm_banks(0, mask, rfm_at).unwrap();
        assert_eq!(d.stats().mitigations, 1);
        assert_eq!(d.stats().rfms, 1);
        assert_eq!(d.alert_since(0), None);
        assert_eq!(d.violations(), 0);
        // The masked bank pays the ABO stall...
        assert!(d.earliest_activate(0, 0).unwrap() >= rfm_at + 1050);
        // ...while its sibling stays free (only shared-bus constraints,
        // far below the stall, may apply) and can actually activate.
        let sibling = d.earliest_activate(0, 1).unwrap();
        assert!(
            sibling < rfm_at + 100,
            "sibling bank blocked until {sibling} (RFM at {rfm_at})"
        );
        d.activate(0, 1, 0, sibling.max(rfm_at), false).unwrap();
    }

    /// A deliberately broken mitigation with the flip plane enabled
    /// corrupts victim data; the corruption is deterministic per seed
    /// and observable through the post-run readback sweep.
    #[test]
    fn broken_config_flips_victim_bits_deterministically() {
        use crate::flip::{FlipPlaneConfig, TrhDistribution};
        let run = || {
            let broken = MitigationConfig::prac(500).with_alert_threshold(100_000);
            let mut cfg = DramConfig::tiny(broken);
            cfg.flip = Some(
                FlipPlaneConfig::new(TrhDistribution::Constant(500)).with_flip_probability(0.5),
            );
            let mut d = DramDevice::new(cfg);
            let mut now;
            for _ in 0..700 {
                now = d.earliest_activate(0, 0).unwrap();
                d.activate(0, 0, 10, now, false).unwrap();
                now = d.earliest_precharge(0, 0).unwrap();
                d.precharge(0, 0, now).unwrap();
            }
            d.flip_readback_sweep();
            d.flip_stats()
        };
        let a = run();
        let b = run();
        assert!(a.bit_flips > 0, "no victim bits flipped past T_RH");
        assert!(a.corrupted_reads > 0, "flips never observed by readback");
        assert_eq!(a, b, "flip plane not deterministic per seed");
    }

    /// A protected engine (working PRAC) keeps victim words clean even
    /// with the flip plane armed at the oracle's T_RH.
    #[test]
    fn protected_engine_keeps_victims_clean() {
        use crate::flip::{FlipPlaneConfig, TrhDistribution};
        let mut cfg = DramConfig::tiny(MitigationConfig::prac(500));
        cfg.flip =
            Some(FlipPlaneConfig::new(TrhDistribution::Constant(500)).with_flip_probability(1.0));
        let mut d = DramDevice::new(cfg);
        let mut now = 0;
        for _ in 0..700 {
            if d.alert_since(0).is_some() {
                let at = d.earliest_refresh(0).unwrap().max(now + 540);
                d.rfm(0, at).unwrap();
            }
            now = d.earliest_activate(0, 0).unwrap();
            d.activate(0, 0, 10, now, false).unwrap();
            now = d.earliest_precharge(0, 0).unwrap();
            d.precharge(0, 0, now).unwrap();
        }
        d.flip_readback_sweep();
        let s = d.flip_stats();
        assert_eq!(d.violations(), 0);
        assert_eq!(s.bit_flips, 0, "protected run still flipped bits");
        assert!(!s.attack_success());
    }

    /// A flip-plane-disabled snapshot must refuse to restore into a
    /// flip-enabled configuration with a typed snapshot error.
    #[test]
    fn snapshot_rejects_cross_flip_shape() {
        use crate::flip::{FlipPlaneConfig, TrhDistribution};
        let plain = device(MitigationConfig::prac(500));
        let mut w = SnapshotWriter::new();
        plain.save_state(&mut w);
        let bytes = w.finish();
        let mut cfg = DramConfig::tiny(MitigationConfig::prac(500));
        cfg.flip = Some(FlipPlaneConfig::new(TrhDistribution::Constant(500)));
        let mut flipped = DramDevice::new(cfg);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let err = flipped.load_state(&mut r).unwrap_err();
        assert!(
            matches!(err, MopacError::Snapshot { .. }),
            "wrong error kind: {err}"
        );
    }

    /// Round trip: a flip-enabled device snapshot restores its flip
    /// state (accumulators, masks, stats) exactly.
    #[test]
    fn snapshot_roundtrips_flip_state() {
        use crate::flip::{FlipPlaneConfig, TrhDistribution};
        let broken = MitigationConfig::prac(500).with_alert_threshold(100_000);
        let mut cfg = DramConfig::tiny(broken);
        cfg.flip =
            Some(FlipPlaneConfig::new(TrhDistribution::Constant(400)).with_flip_probability(1.0));
        let mut d = DramDevice::new(cfg.clone());
        let mut now;
        for _ in 0..600 {
            now = d.earliest_activate(0, 0).unwrap();
            d.activate(0, 0, 10, now, false).unwrap();
            now = d.earliest_precharge(0, 0).unwrap();
            d.precharge(0, 0, now).unwrap();
        }
        assert!(d.flip_stats().bit_flips > 0);
        let mut w = SnapshotWriter::new();
        d.save_state(&mut w);
        let bytes = w.finish();
        let mut restored = DramDevice::new(cfg);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        assert_eq!(restored.flip_stats(), d.flip_stats());
        restored.flip_readback_sweep();
        d.flip_readback_sweep();
        assert_eq!(restored.flip_stats(), d.flip_stats());
    }

    /// A flat-bank snapshot must refuse to restore into a subarray
    /// configuration (and vice versa) with a typed snapshot error.
    #[test]
    fn snapshot_rejects_cross_subarray_shape() {
        let flat = device(MitigationConfig::prac(500));
        let mut w = SnapshotWriter::new();
        flat.save_state(&mut w);
        let bytes = w.finish();
        let mut cfg = DramConfig::tiny(MitigationConfig::practical(500));
        cfg.geometry.subarrays_per_bank = 4;
        let mut sub = DramDevice::new(cfg);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let err = sub.load_state(&mut r).unwrap_err();
        assert!(
            matches!(err, MopacError::Snapshot { .. }),
            "wrong error kind: {err}"
        );
    }
}
