//! One DRAM bank: row state machine, per-command timing gates, and the
//! embedded mitigation engine + security oracle.

use crate::flip::FlipPlane;
use crate::timing::TimingSet;
use mopac::bank::BankMitigation;
use mopac::checker::RowhammerChecker;
use mopac_types::time::Cycle;

/// Which flavour of precharge closes the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrechargeKind {
    /// Normal precharge: base timings, no counter update.
    Normal,
    /// `PREcu`: PRAC timings, performs the counter read-modify-write
    /// (every precharge under PRAC; the MC-selected subset under
    /// MoPAC-C).
    CounterUpdate,
    /// Subarray-deferred counter update (PRACtical): the engine sees a
    /// counter update, but the *bank* pays only base precharge timings —
    /// the read-modify-write completes inside the closed row's
    /// subarray, whose gate the device tracks via [`Bank::post_cu`].
    DeferredUpdate,
}

/// A currently open row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenRow {
    /// The open row address.
    pub row: u32,
    /// Cycle at which it was activated.
    pub opened_at: Cycle,
}

/// One bank's timing and mitigation state.
#[derive(Debug, Clone)]
pub struct Bank {
    open: Option<OpenRow>,
    /// The MoPAC-C 1-bit state (Section 5.1): close this row with PREcu.
    pending_update: bool,
    /// Earliest cycle an ACT may issue (tRP / tRFC gate).
    act_allowed: Cycle,
    /// Earliest cycle a PRE may issue (tRAS / tRTP / tWR gate).
    pre_allowed: Cycle,
    /// Earliest cycle a column command may issue (tRCD / tCCD gate).
    col_allowed: Cycle,
    mitigation: BankMitigation,
    checker: Option<RowhammerChecker>,
    /// Per-subarray deferred counter-update completion times, indexed
    /// by subarray. Empty for designs without subarray-deferred updates
    /// (the historical flat-bank model — zero bytes of snapshot state).
    cu_ready: Vec<Cycle>,
    /// Victim-data bit-flip plane, fed the same event stream as the
    /// checker. `None` (the default) costs zero state and zero
    /// snapshot bytes.
    flip: Option<FlipPlane>,
}

impl Bank {
    /// Creates a closed, idle bank.
    ///
    /// `cu_slots` — number of subarray deferred-update slots to track
    /// (the geometry's `subarrays_per_bank` for engines demanding
    /// `subarray_parallel_updates`, `0` otherwise).
    #[must_use]
    pub fn new(
        mitigation: BankMitigation,
        checker: Option<RowhammerChecker>,
        cu_slots: u32,
        flip: Option<FlipPlane>,
    ) -> Self {
        Self {
            open: None,
            pending_update: false,
            act_allowed: 0,
            pre_allowed: 0,
            col_allowed: 0,
            mitigation,
            checker,
            cu_ready: vec![0; cu_slots as usize],
            flip,
        }
    }

    /// The open row, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<OpenRow> {
        self.open
    }

    /// Whether the MC marked the open row for a counter-update close.
    #[must_use]
    pub fn pending_update(&self) -> bool {
        self.pending_update
    }

    /// Earliest cycle an ACT may issue (bank-local constraints only).
    #[must_use]
    pub fn earliest_activate(&self) -> Option<Cycle> {
        self.open.is_none().then_some(self.act_allowed)
    }

    /// The deferred-update gate for one subarray: an ACT into
    /// `subarray` must additionally wait until its in-flight counter
    /// update (if any) completes. `0` when untracked or idle.
    #[must_use]
    pub fn cu_gate(&self, subarray: u32) -> Cycle {
        self.cu_ready.get(subarray as usize).copied().unwrap_or(0)
    }

    /// Latest deferred-update completion across all subarrays (`0` when
    /// none are tracked) — the bank-wide quiesce point REF/RFM waits on.
    #[must_use]
    pub fn cu_busy_until(&self) -> Cycle {
        self.cu_ready.iter().copied().max().unwrap_or(0)
    }

    /// In-flight deferred-update completion times strictly after `now`
    /// (event-kernel wake candidates).
    pub fn cu_pending(&self, now: Cycle) -> impl Iterator<Item = Cycle> + '_ {
        self.cu_ready.iter().copied().filter(move |&c| c > now)
    }

    /// Posts a deferred counter update completing at `ready` into
    /// `subarray`, and reports whether a *different* subarray still had
    /// an update in flight (the overlap PRACtical's subarray-level
    /// update unlocks). No-op returning `false` when slots are
    /// untracked.
    pub fn post_cu(&mut self, subarray: u32, ready: Cycle, now: Cycle) -> bool {
        let Some(slot) = self.cu_ready.get_mut(subarray as usize) else {
            return false;
        };
        *slot = (*slot).max(ready);
        self.cu_ready
            .iter()
            .enumerate()
            .any(|(i, &c)| i != subarray as usize && c > now)
    }

    /// Earliest cycle a column command to `row` may issue.
    #[must_use]
    pub fn earliest_column(&self, row: u32) -> Option<Cycle> {
        self.open
            .filter(|o| o.row == row)
            .map(|_| self.col_allowed)
    }

    /// Earliest cycle a PRE may issue.
    #[must_use]
    pub fn earliest_precharge(&self) -> Option<Cycle> {
        self.open.map(|_| self.pre_allowed)
    }

    /// Issues an ACT. Returns the number of victim-word bits the flip
    /// plane injected from this activation's disturbance (always 0
    /// when the plane is disabled).
    ///
    /// `update_selected` is the MoPAC-C coin flip (always true under
    /// PRAC, always false otherwise); it selects the tRCD/tRAS flavour
    /// and arms [`Self::pending_update`].
    ///
    /// # Panics
    ///
    /// Panics (debug) if the bank is open or the timing gate is violated.
    pub fn activate(
        &mut self,
        row: u32,
        now: Cycle,
        update_selected: bool,
        base: &TimingSet,
        prac: &TimingSet,
    ) -> u32 {
        debug_assert!(self.open.is_none(), "ACT to open bank");
        debug_assert!(now >= self.act_allowed, "ACT violates tRP/tRFC");
        let t = if update_selected { prac } else { base };
        self.open = Some(OpenRow {
            row,
            opened_at: now,
        });
        self.pending_update = update_selected;
        self.col_allowed = now + t.t_rcd;
        self.pre_allowed = now + t.t_ras;
        self.mitigation.on_activate(row, 0.0);
        if let Some(ck) = self.checker.as_mut() {
            ck.on_activate(row);
        }
        self.flip.as_mut().map_or(0, |f| f.on_activate(row))
    }

    /// Issues a column read; returns the cycle at which data finishes.
    ///
    /// # Panics
    ///
    /// Panics (debug) if no matching row is open or timing is violated.
    pub fn read(&mut self, now: Cycle, t: &TimingSet) -> Cycle {
        debug_assert!(self.open.is_some(), "RD to closed bank");
        debug_assert!(now >= self.col_allowed, "RD violates tRCD/tCCD");
        self.col_allowed = now + t.t_ccd;
        self.pre_allowed = self.pre_allowed.max(now + t.t_rtp);
        now + t.cl + t.burst
    }

    /// Issues a column write; returns the cycle at which data finishes.
    ///
    /// # Panics
    ///
    /// Panics (debug) if no matching row is open or timing is violated.
    pub fn write(&mut self, now: Cycle, t: &TimingSet) -> Cycle {
        debug_assert!(self.open.is_some(), "WR to closed bank");
        debug_assert!(now >= self.col_allowed, "WR violates tRCD/tCCD");
        self.col_allowed = now + t.t_ccd;
        let data_end = now + t.cwl + t.burst;
        self.pre_allowed = self.pre_allowed.max(data_end + t.t_wr);
        data_end
    }

    /// Issues a precharge of the given kind; returns the row-open time
    /// in cycles, or `None` if the bank was already closed (the caller
    /// surfaces that as a timing-protocol error).
    pub fn precharge(
        &mut self,
        kind: PrechargeKind,
        now: Cycle,
        base: &TimingSet,
        prac: &TimingSet,
        ns_per_cycle: f64,
    ) -> Option<Cycle> {
        let open = self.open.take()?;
        debug_assert!(now >= self.pre_allowed, "PRE violates tRAS/tRTP/tWR");
        // A deferred update closes the *bank* at base timings; the
        // counter read-modify-write continues inside the subarray (the
        // device posts its completion via `post_cu`).
        let t = match kind {
            PrechargeKind::Normal | PrechargeKind::DeferredUpdate => base,
            PrechargeKind::CounterUpdate => prac,
        };
        self.act_allowed = now + t.t_rp;
        self.pending_update = false;
        let open_cycles = now - open.opened_at;
        self.mitigation.on_precharge(
            open.row,
            kind != PrechargeKind::Normal,
            open_cycles as f64 * ns_per_cycle,
        );
        Some(open_cycles)
    }

    /// Blocks the bank until `until` (REF / RFM execution).
    pub fn block_until(&mut self, until: Cycle) {
        debug_assert!(self.open.is_none(), "REF/RFM with open row");
        self.act_allowed = self.act_allowed.max(until);
    }

    /// Fault hook: wedges the bank until `until`. An open bank cannot be
    /// precharged (stuck-open row); a closed bank cannot be activated.
    pub fn stick_until(&mut self, until: Cycle) {
        if self.open.is_some() {
            self.pre_allowed = self.pre_allowed.max(until);
        } else {
            self.act_allowed = self.act_allowed.max(until);
        }
    }

    /// Access to the mitigation engine.
    #[must_use]
    pub fn mitigation(&self) -> &BankMitigation {
        &self.mitigation
    }

    /// Mutable access to the mitigation engine (REF drains, ABO service).
    pub fn mitigation_mut(&mut self) -> &mut BankMitigation {
        &mut self.mitigation
    }

    /// Access to the security oracle, if enabled.
    #[must_use]
    pub fn checker(&self) -> Option<&RowhammerChecker> {
        self.checker.as_ref()
    }

    /// Mutable access to the security oracle.
    pub fn checker_mut(&mut self) -> Option<&mut RowhammerChecker> {
        self.checker.as_mut()
    }

    /// Access to the flip plane, if enabled.
    #[must_use]
    pub fn flip(&self) -> Option<&FlipPlane> {
        self.flip.as_ref()
    }

    /// Mutable access to the flip plane (REF scrubs, read checks,
    /// mitigation mirroring).
    pub fn flip_mut(&mut self) -> Option<&mut FlipPlane> {
        self.flip.as_mut()
    }
}

impl mopac_types::snapshot::Snapshottable for Bank {
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        match self.open {
            Some(o) => {
                w.put_bool(true);
                w.put_u32(o.row);
                w.put_u64(o.opened_at);
            }
            None => w.put_bool(false),
        }
        w.put_bool(self.pending_update);
        w.put_u64(self.act_allowed);
        w.put_u64(self.pre_allowed);
        w.put_u64(self.col_allowed);
        self.mitigation.save_state(w);
        w.put_bool(self.checker.is_some());
        if let Some(ck) = &self.checker {
            ck.save_state(w);
        }
        // Subarray slots are configuration-derived shape: when present,
        // a sentinel guards the section so a cross-shape restore fails
        // with a typed error instead of misinterpreting the stream. A
        // slot-less bank writes nothing here — byte-identical to the
        // pre-subarray format.
        if !self.cu_ready.is_empty() {
            w.put_u32(CU_SECTION_SENTINEL);
            w.put_usize(self.cu_ready.len());
            for &c in &self.cu_ready {
                w.put_u64(c);
            }
        }
        // Flip-plane section: same shape-gated sentinel pattern. A
        // plane-less bank writes nothing, keeping disabled-mode
        // snapshots byte-identical to the pre-flip-plane format.
        if let Some(f) = &self.flip {
            w.put_u32(FLIP_SECTION_SENTINEL);
            f.save_state(w);
        }
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        self.open = if r.take_bool()? {
            Some(OpenRow {
                row: r.take_u32()?,
                opened_at: r.take_u64()?,
            })
        } else {
            None
        };
        self.pending_update = r.take_bool()?;
        self.act_allowed = r.take_u64()?;
        self.pre_allowed = r.take_u64()?;
        self.col_allowed = r.take_u64()?;
        self.mitigation.load_state(r)?;
        let had_checker = r.take_bool()?;
        if had_checker != self.checker.is_some() {
            return Err(mopac_types::MopacError::snapshot(format!(
                "checker mode mismatch: snapshot {}, configured {}",
                if had_checker { "enabled" } else { "disabled" },
                if self.checker.is_some() { "enabled" } else { "disabled" },
            )));
        }
        if let Some(ck) = self.checker.as_mut() {
            ck.load_state(r)?;
        }
        if !self.cu_ready.is_empty() {
            let sentinel = r.take_u32()?;
            if sentinel != CU_SECTION_SENTINEL {
                return Err(mopac_types::MopacError::snapshot(format!(
                    "subarray update-slot section missing (sentinel {sentinel:#x}): \
                     snapshot was taken on a flat-bank configuration"
                )));
            }
            let n = r.take_usize()?;
            if n != self.cu_ready.len() {
                return Err(mopac_types::MopacError::snapshot(format!(
                    "subarray update-slot count mismatch: snapshot {n}, configured {}",
                    self.cu_ready.len()
                )));
            }
            for c in &mut self.cu_ready {
                *c = r.take_u64()?;
            }
        }
        if let Some(f) = self.flip.as_mut() {
            let sentinel = r.take_u32()?;
            if sentinel != FLIP_SECTION_SENTINEL {
                return Err(mopac_types::MopacError::snapshot(format!(
                    "flip-plane section missing (sentinel {sentinel:#x}): snapshot \
                     was taken on a flip-plane-disabled configuration"
                )));
            }
            f.load_state(r)?;
        }
        Ok(())
    }
}

/// Guards the optional per-subarray slot section of a bank snapshot.
const CU_SECTION_SENTINEL: u32 = 0x5355_4231; // "SUB1"

/// Guards the optional flip-plane section of a bank snapshot.
const FLIP_SECTION_SENTINEL: u32 = 0x464C_5031; // "FLP1"

#[cfg(test)]
mod tests {
    use super::*;
    use mopac::config::MitigationConfig;
    use mopac_types::rng::DetRng;

    fn bank() -> Bank {
        let cfg = MitigationConfig::baseline();
        Bank::new(
            BankMitigation::new(&cfg, 1024, DetRng::from_seed(1)),
            Some(RowhammerChecker::new(1024, 500)),
            0,
            None,
        )
    }

    #[test]
    fn act_read_pre_sequence_base_timings() {
        let base = TimingSet::ddr5_base();
        let prac = TimingSet::ddr5_prac();
        let mut b = bank();
        assert_eq!(b.earliest_activate(), Some(0));
        b.activate(5, 0, false, &base, &prac);
        assert_eq!(b.earliest_column(5), Some(42)); // tRCD
        assert_eq!(b.earliest_column(6), None); // wrong row
        let done = b.read(42, &base);
        assert_eq!(done, 42 + 42 + 8); // CL + burst
        assert_eq!(b.earliest_precharge(), Some(96)); // tRAS from ACT
        b.precharge(PrechargeKind::Normal, 96, &base, &prac, 1.0 / 3.0);
        assert_eq!(b.earliest_activate(), Some(96 + 42)); // + tRP
    }

    #[test]
    fn prac_precharge_extends_reopen_time() {
        let base = TimingSet::ddr5_base();
        let prac = TimingSet::ddr5_prac();
        let mut b = bank();
        b.activate(5, 0, true, &base, &prac);
        // PRAC tRAS is shorter (48), tRCD longer (48).
        assert_eq!(b.earliest_precharge(), Some(48));
        assert_eq!(b.earliest_column(5), Some(48));
        b.precharge(PrechargeKind::CounterUpdate, 48, &base, &prac, 1.0 / 3.0);
        // PRAC tRP = 108 -> next ACT at 156 = PRAC tRC from first ACT.
        assert_eq!(b.earliest_activate(), Some(156));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let base = TimingSet::ddr5_base();
        let prac = TimingSet::ddr5_prac();
        let mut b = bank();
        b.activate(1, 0, false, &base, &prac);
        let data_end = b.write(42, &base);
        assert_eq!(data_end, 42 + 40 + 8);
        assert_eq!(b.earliest_precharge(), Some(data_end + base.t_wr));
    }

    #[test]
    fn deferred_update_precharge_keeps_base_bank_timings() {
        let base = TimingSet::ddr5_base();
        let prac = TimingSet::ddr5_prac();
        let cfg = MitigationConfig::practical(500);
        let mut b = Bank::new(
            BankMitigation::new(&cfg, 1024, DetRng::from_seed(1)),
            None,
            4,
            None,
        );
        b.activate(5, 0, false, &base, &prac);
        let pre_at = b.earliest_precharge().unwrap();
        b.precharge(PrechargeKind::DeferredUpdate, pre_at, &base, &prac, 1.0 / 3.0);
        // Bank reopens after *base* tRP, unlike a PREcu close...
        assert_eq!(b.earliest_activate(), Some(pre_at + base.t_rp));
        // ...but the engine still saw a counter update.
        assert_eq!(b.mitigation().counter(5), 1);
        // The device then posts the subarray gate.
        let overlap = b.post_cu(0, pre_at + prac.t_rp, pre_at);
        assert!(!overlap, "no other subarray busy");
        assert_eq!(b.cu_gate(0), pre_at + prac.t_rp);
        assert_eq!(b.cu_gate(1), 0);
        assert_eq!(b.cu_busy_until(), pre_at + prac.t_rp);
        let overlap = b.post_cu(2, pre_at + prac.t_rp + 9, pre_at + 1);
        assert!(overlap, "subarray 0 still in flight");
        assert_eq!(b.cu_pending(pre_at).count(), 2);
    }

    #[test]
    fn open_time_reported_to_mitigation() {
        let base = TimingSet::ddr5_base();
        let prac = TimingSet::ddr5_prac();
        let mut b = bank();
        b.activate(1, 0, false, &base, &prac);
        let open_cycles = b.precharge(PrechargeKind::Normal, 96, &base, &prac, 1.0 / 3.0);
        assert_eq!(open_cycles, Some(96));
    }
}
