//! One DRAM bank: row state machine, per-command timing gates, and the
//! embedded mitigation engine + security oracle.

use crate::timing::TimingSet;
use mopac::bank::BankMitigation;
use mopac::checker::RowhammerChecker;
use mopac_types::time::Cycle;

/// Which flavour of precharge closes the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrechargeKind {
    /// Normal precharge: base timings, no counter update.
    Normal,
    /// `PREcu`: PRAC timings, performs the counter read-modify-write
    /// (every precharge under PRAC; the MC-selected subset under
    /// MoPAC-C).
    CounterUpdate,
}

/// A currently open row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenRow {
    /// The open row address.
    pub row: u32,
    /// Cycle at which it was activated.
    pub opened_at: Cycle,
}

/// One bank's timing and mitigation state.
#[derive(Debug, Clone)]
pub struct Bank {
    open: Option<OpenRow>,
    /// The MoPAC-C 1-bit state (Section 5.1): close this row with PREcu.
    pending_update: bool,
    /// Earliest cycle an ACT may issue (tRP / tRFC gate).
    act_allowed: Cycle,
    /// Earliest cycle a PRE may issue (tRAS / tRTP / tWR gate).
    pre_allowed: Cycle,
    /// Earliest cycle a column command may issue (tRCD / tCCD gate).
    col_allowed: Cycle,
    mitigation: BankMitigation,
    checker: Option<RowhammerChecker>,
}

impl Bank {
    /// Creates a closed, idle bank.
    #[must_use]
    pub fn new(mitigation: BankMitigation, checker: Option<RowhammerChecker>) -> Self {
        Self {
            open: None,
            pending_update: false,
            act_allowed: 0,
            pre_allowed: 0,
            col_allowed: 0,
            mitigation,
            checker,
        }
    }

    /// The open row, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<OpenRow> {
        self.open
    }

    /// Whether the MC marked the open row for a counter-update close.
    #[must_use]
    pub fn pending_update(&self) -> bool {
        self.pending_update
    }

    /// Earliest cycle an ACT may issue (bank-local constraints only).
    #[must_use]
    pub fn earliest_activate(&self) -> Option<Cycle> {
        self.open.is_none().then_some(self.act_allowed)
    }

    /// Earliest cycle a column command to `row` may issue.
    #[must_use]
    pub fn earliest_column(&self, row: u32) -> Option<Cycle> {
        self.open
            .filter(|o| o.row == row)
            .map(|_| self.col_allowed)
    }

    /// Earliest cycle a PRE may issue.
    #[must_use]
    pub fn earliest_precharge(&self) -> Option<Cycle> {
        self.open.map(|_| self.pre_allowed)
    }

    /// Issues an ACT.
    ///
    /// `update_selected` is the MoPAC-C coin flip (always true under
    /// PRAC, always false otherwise); it selects the tRCD/tRAS flavour
    /// and arms [`Self::pending_update`].
    ///
    /// # Panics
    ///
    /// Panics (debug) if the bank is open or the timing gate is violated.
    pub fn activate(
        &mut self,
        row: u32,
        now: Cycle,
        update_selected: bool,
        base: &TimingSet,
        prac: &TimingSet,
    ) {
        debug_assert!(self.open.is_none(), "ACT to open bank");
        debug_assert!(now >= self.act_allowed, "ACT violates tRP/tRFC");
        let t = if update_selected { prac } else { base };
        self.open = Some(OpenRow {
            row,
            opened_at: now,
        });
        self.pending_update = update_selected;
        self.col_allowed = now + t.t_rcd;
        self.pre_allowed = now + t.t_ras;
        self.mitigation.on_activate(row, 0.0);
        if let Some(ck) = self.checker.as_mut() {
            ck.on_activate(row);
        }
    }

    /// Issues a column read; returns the cycle at which data finishes.
    ///
    /// # Panics
    ///
    /// Panics (debug) if no matching row is open or timing is violated.
    pub fn read(&mut self, now: Cycle, t: &TimingSet) -> Cycle {
        debug_assert!(self.open.is_some(), "RD to closed bank");
        debug_assert!(now >= self.col_allowed, "RD violates tRCD/tCCD");
        self.col_allowed = now + t.t_ccd;
        self.pre_allowed = self.pre_allowed.max(now + t.t_rtp);
        now + t.cl + t.burst
    }

    /// Issues a column write; returns the cycle at which data finishes.
    ///
    /// # Panics
    ///
    /// Panics (debug) if no matching row is open or timing is violated.
    pub fn write(&mut self, now: Cycle, t: &TimingSet) -> Cycle {
        debug_assert!(self.open.is_some(), "WR to closed bank");
        debug_assert!(now >= self.col_allowed, "WR violates tRCD/tCCD");
        self.col_allowed = now + t.t_ccd;
        let data_end = now + t.cwl + t.burst;
        self.pre_allowed = self.pre_allowed.max(data_end + t.t_wr);
        data_end
    }

    /// Issues a precharge of the given kind; returns the row-open time
    /// in cycles, or `None` if the bank was already closed (the caller
    /// surfaces that as a timing-protocol error).
    pub fn precharge(
        &mut self,
        kind: PrechargeKind,
        now: Cycle,
        base: &TimingSet,
        prac: &TimingSet,
        ns_per_cycle: f64,
    ) -> Option<Cycle> {
        let open = self.open.take()?;
        debug_assert!(now >= self.pre_allowed, "PRE violates tRAS/tRTP/tWR");
        let t = match kind {
            PrechargeKind::Normal => base,
            PrechargeKind::CounterUpdate => prac,
        };
        self.act_allowed = now + t.t_rp;
        self.pending_update = false;
        let open_cycles = now - open.opened_at;
        self.mitigation.on_precharge(
            open.row,
            kind == PrechargeKind::CounterUpdate,
            open_cycles as f64 * ns_per_cycle,
        );
        Some(open_cycles)
    }

    /// Blocks the bank until `until` (REF / RFM execution).
    pub fn block_until(&mut self, until: Cycle) {
        debug_assert!(self.open.is_none(), "REF/RFM with open row");
        self.act_allowed = self.act_allowed.max(until);
    }

    /// Fault hook: wedges the bank until `until`. An open bank cannot be
    /// precharged (stuck-open row); a closed bank cannot be activated.
    pub fn stick_until(&mut self, until: Cycle) {
        if self.open.is_some() {
            self.pre_allowed = self.pre_allowed.max(until);
        } else {
            self.act_allowed = self.act_allowed.max(until);
        }
    }

    /// Access to the mitigation engine.
    #[must_use]
    pub fn mitigation(&self) -> &BankMitigation {
        &self.mitigation
    }

    /// Mutable access to the mitigation engine (REF drains, ABO service).
    pub fn mitigation_mut(&mut self) -> &mut BankMitigation {
        &mut self.mitigation
    }

    /// Access to the security oracle, if enabled.
    #[must_use]
    pub fn checker(&self) -> Option<&RowhammerChecker> {
        self.checker.as_ref()
    }

    /// Mutable access to the security oracle.
    pub fn checker_mut(&mut self) -> Option<&mut RowhammerChecker> {
        self.checker.as_mut()
    }
}

impl mopac_types::snapshot::Snapshottable for Bank {
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        match self.open {
            Some(o) => {
                w.put_bool(true);
                w.put_u32(o.row);
                w.put_u64(o.opened_at);
            }
            None => w.put_bool(false),
        }
        w.put_bool(self.pending_update);
        w.put_u64(self.act_allowed);
        w.put_u64(self.pre_allowed);
        w.put_u64(self.col_allowed);
        self.mitigation.save_state(w);
        w.put_bool(self.checker.is_some());
        if let Some(ck) = &self.checker {
            ck.save_state(w);
        }
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        self.open = if r.take_bool()? {
            Some(OpenRow {
                row: r.take_u32()?,
                opened_at: r.take_u64()?,
            })
        } else {
            None
        };
        self.pending_update = r.take_bool()?;
        self.act_allowed = r.take_u64()?;
        self.pre_allowed = r.take_u64()?;
        self.col_allowed = r.take_u64()?;
        self.mitigation.load_state(r)?;
        let had_checker = r.take_bool()?;
        if had_checker != self.checker.is_some() {
            return Err(mopac_types::MopacError::snapshot(format!(
                "checker mode mismatch: snapshot {}, configured {}",
                if had_checker { "enabled" } else { "disabled" },
                if self.checker.is_some() { "enabled" } else { "disabled" },
            )));
        }
        if let Some(ck) = self.checker.as_mut() {
            ck.load_state(r)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mopac::config::MitigationConfig;
    use mopac_types::rng::DetRng;

    fn bank() -> Bank {
        let cfg = MitigationConfig::baseline();
        Bank::new(
            BankMitigation::new(&cfg, 1024, DetRng::from_seed(1)),
            Some(RowhammerChecker::new(1024, 500)),
        )
    }

    #[test]
    fn act_read_pre_sequence_base_timings() {
        let base = TimingSet::ddr5_base();
        let prac = TimingSet::ddr5_prac();
        let mut b = bank();
        assert_eq!(b.earliest_activate(), Some(0));
        b.activate(5, 0, false, &base, &prac);
        assert_eq!(b.earliest_column(5), Some(42)); // tRCD
        assert_eq!(b.earliest_column(6), None); // wrong row
        let done = b.read(42, &base);
        assert_eq!(done, 42 + 42 + 8); // CL + burst
        assert_eq!(b.earliest_precharge(), Some(96)); // tRAS from ACT
        b.precharge(PrechargeKind::Normal, 96, &base, &prac, 1.0 / 3.0);
        assert_eq!(b.earliest_activate(), Some(96 + 42)); // + tRP
    }

    #[test]
    fn prac_precharge_extends_reopen_time() {
        let base = TimingSet::ddr5_base();
        let prac = TimingSet::ddr5_prac();
        let mut b = bank();
        b.activate(5, 0, true, &base, &prac);
        // PRAC tRAS is shorter (48), tRCD longer (48).
        assert_eq!(b.earliest_precharge(), Some(48));
        assert_eq!(b.earliest_column(5), Some(48));
        b.precharge(PrechargeKind::CounterUpdate, 48, &base, &prac, 1.0 / 3.0);
        // PRAC tRP = 108 -> next ACT at 156 = PRAC tRC from first ACT.
        assert_eq!(b.earliest_activate(), Some(156));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let base = TimingSet::ddr5_base();
        let prac = TimingSet::ddr5_prac();
        let mut b = bank();
        b.activate(1, 0, false, &base, &prac);
        let data_end = b.write(42, &base);
        assert_eq!(data_end, 42 + 40 + 8);
        assert_eq!(b.earliest_precharge(), Some(data_end + base.t_wr));
    }

    #[test]
    fn open_time_reported_to_mitigation() {
        let base = TimingSet::ddr5_base();
        let prac = TimingSet::ddr5_prac();
        let mut b = bank();
        b.activate(1, 0, false, &base, &prac);
        let open_cycles = b.precharge(PrechargeKind::Normal, 96, &base, &prac, 1.0 / 3.0);
        assert_eq!(open_cycles, Some(96));
    }
}
