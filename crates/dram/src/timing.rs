//! DRAM timing sets in clock cycles.
//!
//! Converts the nanosecond JEDEC parameters (Table 1) into DDR5-6000
//! command-clock cycles and adds the secondary constraints (tCCD, tRRD,
//! tFAW, tWR, tRTP, CAS latencies) that the paper's DRAMSim3 baseline
//! enforces. Two sets exist: base DDR5 and PRAC. MoPAC-C mixes them per
//! command (base `PRE` vs long `PREcu`).

use mopac_types::jedec::TimingNs;
use mopac_types::time::{Cycle, MemClock};

/// One complete set of timing constraints, in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingSet {
    /// ACT to column command (read/write).
    pub t_rcd: Cycle,
    /// PRE to ACT on the same bank.
    pub t_rp: Cycle,
    /// ACT to PRE on the same bank.
    pub t_ras: Cycle,
    /// ACT to ACT on the same bank (informational; equals tRAS + tRP).
    pub t_rc: Cycle,
    /// REF interval.
    pub t_refi: Cycle,
    /// REF execution time.
    pub t_rfc: Cycle,
    /// Read CAS latency (command to first data).
    pub cl: Cycle,
    /// Write CAS latency.
    pub cwl: Cycle,
    /// Data burst duration on the bus (BL16 at two transfers per cycle).
    pub burst: Cycle,
    /// Column-to-column command spacing.
    pub t_ccd: Cycle,
    /// ACT to ACT across banks of the same sub-channel.
    pub t_rrd: Cycle,
    /// Rolling four-activate window.
    pub t_faw: Cycle,
    /// Internal read-to-precharge delay.
    pub t_rtp: Cycle,
    /// Write recovery: end of write data to precharge.
    pub t_wr: Cycle,
}

impl TimingSet {
    /// Builds a timing set from nanosecond primaries plus DDR5-6000
    /// secondary constants.
    #[must_use]
    pub fn from_ns(ns: &TimingNs, clock: MemClock) -> Self {
        let c = |v: f64| clock.ns_to_cycles(v);
        Self {
            t_rcd: c(ns.t_rcd),
            t_rp: c(ns.t_rp),
            t_ras: c(ns.t_ras),
            t_rc: c(ns.t_rc),
            t_refi: c(ns.t_refi),
            t_rfc: c(ns.t_rfc),
            cl: c(14.0),
            cwl: c(14.0).saturating_sub(2),
            burst: 8, // BL16, two transfers per clock
            t_ccd: 8,
            t_rrd: c(2.66),
            t_faw: c(13.33),
            t_rtp: c(7.5),
            t_wr: c(30.0),
        }
    }

    /// The base DDR5-6000AN set.
    #[must_use]
    pub fn ddr5_base() -> Self {
        Self::from_ns(&TimingNs::ddr5_base(), MemClock::ddr5_6000())
    }

    /// The PRAC set (counter read-modify-write in precharge).
    #[must_use]
    pub fn ddr5_prac() -> Self {
        Self::from_ns(&TimingNs::ddr5_prac(), MemClock::ddr5_6000())
    }
}

/// ABO protocol constants in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AboTiming {
    /// Commands may continue for this long after ALERT asserts (180 ns).
    pub normal_window: Cycle,
    /// Stall / RFM execution time (350 ns).
    pub stall: Cycle,
}

impl AboTiming {
    /// The paper's configuration at DDR5-6000.
    #[must_use]
    pub fn paper_default() -> Self {
        let clock = MemClock::ddr5_6000();
        let abo = mopac_types::jedec::AboSpec::paper_default();
        Self {
            normal_window: clock.ns_to_cycles(abo.normal_window_ns),
            stall: clock.ns_to_cycles(abo.stall_ns),
        }
    }
}

impl Default for AboTiming {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_in_cycles() {
        let base = TimingSet::ddr5_base();
        assert_eq!(base.t_rcd, 42);
        assert_eq!(base.t_rp, 42);
        assert_eq!(base.t_ras, 96);
        assert_eq!(base.t_rc, 138);
        let prac = TimingSet::ddr5_prac();
        assert_eq!(prac.t_rp, 108);
        assert_eq!(prac.t_ras, 48);
        assert_eq!(prac.t_rc, 156);
    }

    #[test]
    fn trc_equals_tras_plus_trp() {
        // The row-cycle constraint emerges from tRAS + tRP in both sets,
        // which is how the bank FSM enforces it.
        for t in [TimingSet::ddr5_base(), TimingSet::ddr5_prac()] {
            assert_eq!(t.t_rc, t.t_ras + t.t_rp);
        }
    }

    #[test]
    fn abo_cycles() {
        let abo = AboTiming::paper_default();
        assert_eq!(abo.normal_window, 540);
        assert_eq!(abo.stall, 1050);
    }
}
