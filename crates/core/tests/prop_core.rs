//! Property tests for the mitigation building blocks: SRQ invariants,
//! MINT window guarantees, MOAT tracking, and the security oracle.

use mopac::checker::RowhammerChecker;
use mopac::mint::MintSampler;
use mopac::moat::MoatTracker;
use mopac::srq::{Srq, SrqInsert};
use mopac_types::check::prop_check;
use mopac_types::prop_ensure;
use mopac_types::rng::DetRng;

#[test]
fn srq_never_exceeds_capacity_and_never_duplicates() {
    prop_check("srq_never_exceeds_capacity_and_never_duplicates", 128, |rng| {
        let cap = 1 + rng.below(31) as usize;
        let n = rng.below(200) as usize;
        let rows: Vec<u32> = (0..n).map(|_| rng.below(64) as u32).collect();
        let mut q = Srq::new(cap);
        for &r in &rows {
            let _ = q.insert(r);
            prop_ensure!(q.len() <= cap, "len {} > cap {cap}", q.len());
        }
        let mut seen = std::collections::HashSet::new();
        for e in q.iter() {
            prop_ensure!(seen.insert(e.row), "duplicate row {}", e.row);
        }
        Ok(())
    });
}

#[test]
fn srq_selection_accounting_is_conserved() {
    prop_check("srq_selection_accounting_is_conserved", 128, |rng| {
        // Every accepted selection is represented as 1 + SCtr across
        // entries; overflows are the only losses.
        let n = 1 + rng.below(99) as usize;
        let rows: Vec<u32> = (0..n).map(|_| rng.below(16) as u32).collect();
        let mut q = Srq::new(8);
        let mut overflows = 0u64;
        for &r in &rows {
            if let SrqInsert::Overflowed = q.insert(r) {
                overflows += 1;
            }
        }
        let represented: u64 = q.iter().map(|e| 1 + u64::from(e.sctr)).sum();
        prop_ensure!(
            represented + overflows == rows.len() as u64,
            "represented {represented} + overflows {overflows} != {}",
            rows.len()
        );
        Ok(())
    });
}

#[test]
fn mint_selects_exactly_once_per_window() {
    prop_check("mint_selects_exactly_once_per_window", 128, |rng| {
        let window = 1 + rng.below(63) as u32;
        let seed = rng.next_u64();
        let total_windows = 1 + rng.below(49) as u32;
        let mut s = MintSampler::new(window, DetRng::from_seed(seed));
        let mut selections = 0;
        for act in 0..window * total_windows {
            if s.on_activate(act).is_some() {
                selections += 1;
            }
        }
        prop_ensure!(
            selections == total_windows,
            "window {window}: {selections} selections over {total_windows} windows"
        );
        Ok(())
    });
}

#[test]
fn moat_always_tracks_the_maximum() {
    prop_check("moat_always_tracks_the_maximum", 128, |rng| {
        let n = 1 + rng.below(99) as usize;
        let observations: Vec<(u32, u32)> = (0..n)
            .map(|_| (rng.below(32) as u32, 1 + rng.below(999) as u32))
            .collect();
        let mut t = MoatTracker::new(10_000, 5_000);
        let mut best: Option<(u32, u32)> = None;
        for &(row, count) in &observations {
            t.observe(row, count);
            // Model: same-row updates replace, higher counts replace.
            best = match best {
                Some((br, bc)) if br == row || count > bc => Some((row, count)),
                None => Some((row, count)),
                keep => keep,
            };
        }
        let Some(tracked) = t.tracked() else {
            return Err("observed at least once but nothing tracked".into());
        };
        // The tracked count can never be below the running maximum seen
        // for the tracked row; and alert fires iff count >= ATH.
        let expect = best.ok_or_else(|| "no observations".to_string())?;
        prop_ensure!(tracked == expect, "tracked {tracked:?} != model {expect:?}");
        prop_ensure!(
            t.alert_needed() == (tracked.1 >= 10_000),
            "alert_needed mismatch at {tracked:?}"
        );
        Ok(())
    });
}

#[test]
fn checker_never_flags_below_threshold() {
    prop_check("checker_never_flags_below_threshold", 128, |rng| {
        let n = rng.below(400) as usize;
        let acts: Vec<u32> = (0..n).map(|_| rng.below(16) as u32).collect();
        let t_rh = 100 + rng.below(9_900) as u32;
        let mut ck = RowhammerChecker::new(16, t_rh);
        let mut per_row = [0u32; 16];
        for &r in &acts {
            ck.on_activate(r);
            per_row[r as usize] += 1;
        }
        if per_row.iter().all(|&c| c <= t_rh) {
            prop_ensure!(ck.violations() == 0, "{} violations below T_RH", ck.violations());
        }
        prop_ensure!(
            ck.max_exposure() == per_row.iter().copied().max().unwrap_or(0),
            "max exposure mismatch"
        );
        Ok(())
    });
}

#[test]
fn checker_mitigation_clears_both_sides() {
    prop_check("checker_mitigation_clears_both_sides", 128, |rng| {
        let row = 2 + rng.below(12) as u32;
        let n = 1 + rng.below(499) as u32;
        let mut ck = RowhammerChecker::new(16, 1_000_000);
        for _ in 0..n {
            ck.on_activate(row);
        }
        ck.on_mitigate(row, 2);
        // After mitigation the only residual exposure is from the
        // victim-refresh activations themselves (1 each).
        prop_ensure!(
            ck.max_exposure() <= 1,
            "residual exposure {} after mitigating row {row}",
            ck.max_exposure()
        );
        Ok(())
    });
}
