//! Property tests for the mitigation building blocks: SRQ invariants,
//! MINT window guarantees, MOAT tracking, and the security oracle.

use mopac::checker::RowhammerChecker;
use mopac::mint::MintSampler;
use mopac::moat::MoatTracker;
use mopac::srq::{Srq, SrqInsert};
use mopac_types::check::prop_check;
use mopac_types::prop_ensure;
use mopac_types::rng::DetRng;

#[test]
fn srq_never_exceeds_capacity_and_never_duplicates() {
    prop_check("srq_never_exceeds_capacity_and_never_duplicates", 128, |rng| {
        let cap = 1 + rng.below(31) as usize;
        let n = rng.below(200) as usize;
        let rows: Vec<u32> = (0..n).map(|_| rng.below(64) as u32).collect();
        let mut q = Srq::new(cap);
        for &r in &rows {
            let _ = q.insert(r);
            prop_ensure!(q.len() <= cap, "len {} > cap {cap}", q.len());
        }
        let mut seen = std::collections::HashSet::new();
        for e in q.iter() {
            prop_ensure!(seen.insert(e.row), "duplicate row {}", e.row);
        }
        Ok(())
    });
}

#[test]
fn srq_selection_accounting_is_conserved() {
    prop_check("srq_selection_accounting_is_conserved", 128, |rng| {
        // Every accepted selection is represented as 1 + SCtr across
        // entries; overflows are the only losses.
        let n = 1 + rng.below(99) as usize;
        let rows: Vec<u32> = (0..n).map(|_| rng.below(16) as u32).collect();
        let mut q = Srq::new(8);
        let mut overflows = 0u64;
        for &r in &rows {
            if let SrqInsert::Overflowed = q.insert(r) {
                overflows += 1;
            }
        }
        let represented: u64 = q.iter().map(|e| 1 + u64::from(e.sctr)).sum();
        prop_ensure!(
            represented + overflows == rows.len() as u64,
            "represented {represented} + overflows {overflows} != {}",
            rows.len()
        );
        Ok(())
    });
}

#[test]
fn mint_selects_exactly_once_per_window() {
    prop_check("mint_selects_exactly_once_per_window", 128, |rng| {
        let window = 1 + rng.below(63) as u32;
        let seed = rng.next_u64();
        let total_windows = 1 + rng.below(49) as u32;
        let mut s = MintSampler::new(window, DetRng::from_seed(seed));
        let mut selections = 0;
        for act in 0..window * total_windows {
            if s.on_activate(act).is_some() {
                selections += 1;
            }
        }
        prop_ensure!(
            selections == total_windows,
            "window {window}: {selections} selections over {total_windows} windows"
        );
        Ok(())
    });
}

#[test]
fn moat_always_tracks_the_maximum() {
    prop_check("moat_always_tracks_the_maximum", 128, |rng| {
        let n = 1 + rng.below(99) as usize;
        let observations: Vec<(u32, u32)> = (0..n)
            .map(|_| (rng.below(32) as u32, 1 + rng.below(999) as u32))
            .collect();
        let mut t = MoatTracker::new(10_000, 5_000);
        let mut best: Option<(u32, u32)> = None;
        for &(row, count) in &observations {
            t.observe(row, count);
            // Model: same-row updates replace, higher counts replace.
            best = match best {
                Some((br, bc)) if br == row || count > bc => Some((row, count)),
                None => Some((row, count)),
                keep => keep,
            };
        }
        let Some(tracked) = t.tracked() else {
            return Err("observed at least once but nothing tracked".into());
        };
        // The tracked count can never be below the running maximum seen
        // for the tracked row; and alert fires iff count >= ATH.
        let expect = best.ok_or_else(|| "no observations".to_string())?;
        prop_ensure!(tracked == expect, "tracked {tracked:?} != model {expect:?}");
        prop_ensure!(
            t.alert_needed() == (tracked.1 >= 10_000),
            "alert_needed mismatch at {tracked:?}"
        );
        Ok(())
    });
}

#[test]
fn checker_never_flags_below_threshold() {
    prop_check("checker_never_flags_below_threshold", 128, |rng| {
        let n = rng.below(400) as usize;
        let acts: Vec<u32> = (0..n).map(|_| rng.below(16) as u32).collect();
        let t_rh = 100 + rng.below(9_900) as u32;
        let mut ck = RowhammerChecker::new(16, t_rh);
        let mut per_row = [0u32; 16];
        for &r in &acts {
            ck.on_activate(r);
            per_row[r as usize] += 1;
        }
        if per_row.iter().all(|&c| c <= t_rh) {
            prop_ensure!(ck.violations() == 0, "{} violations below T_RH", ck.violations());
        }
        prop_ensure!(
            ck.max_exposure() == per_row.iter().copied().max().unwrap_or(0),
            "max exposure mismatch"
        );
        Ok(())
    });
}

/// Naive reference model of the oracle, written directly from the
/// DESIGN.md semantics: per-row up/dn budgets, violations only toward
/// victims that physically exist, refresh of `V` clears `up[V-1]` /
/// `dn[V+1]`, mitigation refreshes-then-activates each victim in the
/// (edge-clipped) blast zone.
struct NaiveChecker {
    rows: usize,
    t_rh: u32,
    up: Vec<u32>,
    dn: Vec<u32>,
    violations: u64,
    victims: Vec<u32>,
}

impl NaiveChecker {
    fn new(rows: usize, t_rh: u32) -> Self {
        Self {
            rows,
            t_rh,
            up: vec![0; rows],
            dn: vec![0; rows],
            violations: 0,
            victims: Vec::new(),
        }
    }

    fn activate(&mut self, row: usize) {
        self.up[row] = self.up[row].saturating_add(1);
        self.dn[row] = self.dn[row].saturating_add(1);
        if self.up[row] > self.t_rh && row + 1 < self.rows {
            self.violations += 1;
            self.victims.push(row as u32 + 1);
        }
        if self.dn[row] > self.t_rh && row > 0 {
            self.violations += 1;
            self.victims.push(row as u32 - 1);
        }
    }

    fn refresh(&mut self, row: usize) {
        if row > 0 {
            self.up[row - 1] = 0;
        }
        if row + 1 < self.rows {
            self.dn[row + 1] = 0;
        }
    }

    fn mitigate(&mut self, row: usize, blast: u32) {
        for d in 1..=blast as usize {
            if row >= d {
                self.refresh(row - d);
                self.activate(row - d);
            }
            if row + d < self.rows {
                self.refresh(row + d);
                self.activate(row + d);
            }
        }
    }

    fn max_exposure(&self) -> u32 {
        // Only budgets toward real victims count: up[last] and dn[0]
        // point past the bank's edges.
        let up = self.up[..self.rows - 1].iter().copied().max().unwrap_or(0);
        let dn = self.dn[1..].iter().copied().max().unwrap_or(0);
        up.max(dn)
    }
}

/// Edge-row property: on random banks (down to 1 row) with random
/// activate/refresh/mitigate streams biased toward row 0 and the last
/// row, the checker matches the naive model exactly — violation count,
/// victim sequence, and exposure — and never names a victim outside
/// the bank.
#[test]
fn checker_matches_naive_model_at_bank_edges() {
    prop_check("checker_matches_naive_model_at_bank_edges", 256, |rng| {
        let rows = 1 + rng.below(8) as usize;
        let t_rh = 1 + rng.below(12) as u32;
        let mut ck = RowhammerChecker::new(rows as u32, t_rh);
        let mut naive = NaiveChecker::new(rows, t_rh);
        let ops = rng.below(300) as usize;
        for _ in 0..ops {
            // Bias row choice toward the edges, where the bug lived.
            let row = match rng.below(4) {
                0 => 0,
                1 => rows - 1,
                _ => rng.below(rows as u64) as usize,
            };
            match rng.below(8) {
                0 => {
                    ck.on_refresh_row(row as u32);
                    naive.refresh(row);
                }
                1 => {
                    let blast = 1 + rng.below(3) as u32;
                    ck.on_mitigate(row as u32, blast);
                    naive.mitigate(row, blast);
                }
                _ => {
                    ck.on_activate(row as u32);
                    naive.activate(row);
                }
            }
        }
        prop_ensure!(
            ck.violations() == naive.violations,
            "violations {} != model {}",
            ck.violations(),
            naive.violations
        );
        prop_ensure!(
            ck.max_exposure() == naive.max_exposure(),
            "exposure {} != model {}",
            ck.max_exposure(),
            naive.max_exposure()
        );
        for (i, v) in ck.violation_records().iter().enumerate() {
            prop_ensure!(
                (v.victim as usize) < rows,
                "victim {} outside {rows}-row bank",
                v.victim
            );
            prop_ensure!(
                v.victim == naive.victims[i],
                "victim {} != model {}",
                v.victim,
                naive.victims[i]
            );
        }
        Ok(())
    });
}

#[test]
fn checker_mitigation_clears_both_sides() {
    prop_check("checker_mitigation_clears_both_sides", 128, |rng| {
        let row = 2 + rng.below(12) as u32;
        let n = 1 + rng.below(499) as u32;
        let mut ck = RowhammerChecker::new(16, 1_000_000);
        for _ in 0..n {
            ck.on_activate(row);
        }
        ck.on_mitigate(row, 2);
        // After mitigation the only residual exposure is from the
        // victim-refresh activations themselves (1 each).
        prop_ensure!(
            ck.max_exposure() <= 1,
            "residual exposure {} after mitigating row {row}",
            ck.max_exposure()
        );
        Ok(())
    });
}
