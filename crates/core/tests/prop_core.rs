//! Property tests for the mitigation building blocks: SRQ invariants,
//! MINT window guarantees, MOAT tracking, and the security oracle.

use mopac::checker::RowhammerChecker;
use mopac::mint::MintSampler;
use mopac::moat::MoatTracker;
use mopac::srq::{Srq, SrqInsert};
use mopac_types::rng::DetRng;
use proptest::prelude::*;

proptest! {
    #[test]
    fn srq_never_exceeds_capacity_and_never_duplicates(
        cap in 1usize..32,
        rows in prop::collection::vec(0u32..64, 0..200),
    ) {
        let mut q = Srq::new(cap);
        for &r in &rows {
            let _ = q.insert(r);
            prop_assert!(q.len() <= cap);
        }
        let mut seen = std::collections::HashSet::new();
        for e in q.iter() {
            prop_assert!(seen.insert(e.row), "duplicate row {}", e.row);
        }
    }

    #[test]
    fn srq_selection_accounting_is_conserved(
        rows in prop::collection::vec(0u32..16, 1..100),
    ) {
        // Every accepted selection is represented as 1 + SCtr across
        // entries; overflows are the only losses.
        let mut q = Srq::new(8);
        let mut overflows = 0u64;
        for &r in &rows {
            match q.insert(r) {
                SrqInsert::Overflowed => overflows += 1,
                _ => {}
            }
        }
        let represented: u64 = q.iter().map(|e| 1 + u64::from(e.sctr)).sum();
        prop_assert_eq!(represented + overflows, rows.len() as u64);
    }

    #[test]
    fn mint_selects_exactly_once_per_window(
        window in 1u32..64,
        seed in any::<u64>(),
        total_windows in 1u32..50,
    ) {
        let mut s = MintSampler::new(window, DetRng::from_seed(seed));
        let mut selections = 0;
        for act in 0..window * total_windows {
            if s.on_activate(act).is_some() {
                selections += 1;
            }
        }
        prop_assert_eq!(selections, total_windows);
    }

    #[test]
    fn moat_always_tracks_the_maximum(
        observations in prop::collection::vec((0u32..32, 1u32..1000), 1..100),
    ) {
        let mut t = MoatTracker::new(10_000, 5_000);
        let mut best: Option<(u32, u32)> = None;
        for &(row, count) in &observations {
            t.observe(row, count);
            // Model: same-row updates replace, higher counts replace.
            best = match best {
                Some((br, bc)) if br == row || count > bc => Some((row, count)),
                None => Some((row, count)),
                keep => keep,
            };
        }
        let tracked = t.tracked().expect("observed at least once");
        // The tracked count can never be below the running maximum seen
        // for the tracked row; and alert fires iff count >= ATH.
        prop_assert_eq!(tracked, best.unwrap());
        prop_assert_eq!(t.alert_needed(), tracked.1 >= 10_000);
    }

    #[test]
    fn checker_never_flags_below_threshold(
        acts in prop::collection::vec(0u32..16, 0..400),
        t_rh in 100u32..10_000,
    ) {
        let mut ck = RowhammerChecker::new(16, t_rh);
        let mut per_row = [0u32; 16];
        for &r in &acts {
            ck.on_activate(r);
            per_row[r as usize] += 1;
        }
        if per_row.iter().all(|&c| c <= t_rh) {
            prop_assert_eq!(ck.violations(), 0);
        }
        prop_assert_eq!(ck.max_exposure(), per_row.iter().copied().max().unwrap_or(0));
    }

    #[test]
    fn checker_mitigation_clears_both_sides(
        row in 2u32..14,
        n in 1u32..500,
    ) {
        let mut ck = RowhammerChecker::new(16, 1_000_000);
        for _ in 0..n {
            ck.on_activate(row);
        }
        ck.on_mitigate(row, 2);
        // After mitigation the only residual exposure is from the
        // victim-refresh activations themselves (1 each).
        prop_assert!(ck.max_exposure() <= 1);
    }
}
