//! The built-in [`MitigationEngine`](crate::engine::MitigationEngine)
//! implementations.
//!
//! * [`BaselineEngine`] — no mitigation (the performance reference);
//! * [`PracEngine`] — command-synchronous counting, serving both PRAC
//!   (every precharge) and MoPAC-C (the controller's coin selects
//!   precharges, each update counting `1/p`);
//! * [`MopacDEngine`] — in-DRAM MINT sampling into per-chip SRQs;
//! * [`QpracEngine`] — exact counting plus proactive per-REF
//!   mitigation from a priority queue (Woo et al., HPCA 2025);
//! * [`CncPracEngine`] — base timings with counter write-backs
//!   coalesced in a pending queue (Lin et al., 2025);
//! * [`PracticalEngine`] — PRAC counting with subarray-level update
//!   timing and bank-isolated ABO recovery (Nazaraliyev et al., 2025).

mod baseline;
mod cnc_prac;
mod mopac_d;
mod prac;
mod practical;
mod qprac;

pub use baseline::BaselineEngine;
pub use cnc_prac::CncPracEngine;
pub use mopac_d::MopacDEngine;
pub use prac::PracEngine;
pub use practical::PracticalEngine;
pub use qprac::QpracEngine;

use crate::counters::PracCounters;
use crate::moat::MoatTracker;

/// Refreshes the victims of aggressor `row` out to `blast` rows on each
/// side: each victim's counter gains the refresh activation (footnote 5
/// of the paper) and the tracker observes the new value.
pub(crate) fn refresh_victims(
    counters: &mut PracCounters,
    moat: &mut MoatTracker,
    row: u32,
    blast: u32,
) {
    let rows = counters.rows();
    for d in 1..=blast {
        if row >= d {
            let v = row - d;
            let c = counters.add(v, 1);
            moat.observe(v, c);
        }
        let v = row + d;
        if v < rows {
            let c = counters.add(v, 1);
            moat.observe(v, c);
        }
    }
}
