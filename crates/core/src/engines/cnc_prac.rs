//! CnC-PRAC: coalescing counter write-backs (Lin et al., "Chronus /
//! CnC-PRAC: Coalescing counter updates for practical PRAC", 2025).
//!
//! Plain PRAC pays the stretched precharge on *every* row close. CnC
//! observes that the read-modify-write need not be synchronous: each
//! precharge instead deposits a pending update into a small per-bank
//! coalescing queue, where repeated closes of the same row merge into
//! one entry with a pending count. Precharges therefore run at base
//! DDR5 timings; the deferred write-backs are performed in bulk inside
//! REF windows (and under ABO stalls), each entry costing a single
//! read-modify-write regardless of how many activations it coalesced.
//!
//! Security: accounting stays exact — an activation is either already
//! in the counters or pending in the queue (a full queue falls back to
//! an inline write-back, so nothing is ever dropped). What the MOAT
//! tracker sees can lag the true count by at most the per-entry
//! pending cap `TTH` (a tardy entry forces an ALERT and is drained
//! first), so the design alerts at `ATH* = ATH - TTH` — the same
//! deferred-visibility argument as MoPAC-D's `A' = ATH - TTH`
//! (Equation 8) with `p = 1`.

use crate::bank::{AboService, AlertCause, MitigationStats};
use crate::config::MitigationConfig;
use crate::counters::PracCounters;
use crate::engine::MitigationEngine;
use crate::engines::refresh_victims;
use crate::moat::MoatTracker;
use std::ops::Range;

/// One coalesced write-back: `pending` activations of `row` not yet
/// applied to the PRAC counters.
#[derive(Debug, Clone, Copy)]
struct PendingUpdate {
    row: u32,
    pending: u32,
}

/// CnC-PRAC's per-bank engine.
#[derive(Debug, Clone)]
pub struct CncPracEngine {
    cfg: MitigationConfig,
    counters: PracCounters,
    moat: MoatTracker,
    /// The coalescing queue, at most `cfg.srq_capacity` entries.
    queue: Vec<PendingUpdate>,
    stats: MitigationStats,
}

impl CncPracEngine {
    /// Creates the engine for a bank with `rows` rows.
    #[must_use]
    pub fn new(cfg: &MitigationConfig, rows: u32) -> Self {
        Self {
            cfg: *cfg,
            counters: PracCounters::new(rows),
            moat: MoatTracker::new(cfg.alert_threshold, cfg.eligibility_threshold),
            queue: Vec::with_capacity(cfg.srq_capacity),
            stats: MitigationStats::default(),
        }
    }

    /// Applies the queued entry with the most pending activations to
    /// the counters, up to `n` entries. Hottest-first ordering gets
    /// the likeliest aggressor in front of the MOAT tracker soonest.
    fn drain(&mut self, n: u32, out: &mut AboService) {
        let mut done = 0u32;
        for _ in 0..n {
            let Some((idx, _)) = self
                .queue
                .iter()
                .enumerate()
                .max_by_key(|&(_, e)| e.pending)
            else {
                break;
            };
            let e = self.queue.swap_remove(idx);
            let count = self.counters.add(e.row, e.pending);
            self.moat.observe(e.row, count);
            done += 1;
        }
        out.counter_updates += done;
        self.stats.counter_updates += u64::from(done);
    }

    fn max_pending(&self) -> u32 {
        self.queue.iter().map(|e| e.pending).max().unwrap_or(0)
    }
}

impl MitigationEngine for CncPracEngine {
    fn config(&self) -> &MitigationConfig {
        &self.cfg
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn on_activate(&mut self, _row: u32, _open_ns: f64) {
        self.stats.activations += 1;
    }

    fn on_precharge(&mut self, row: u32, _counter_update: bool, _open_ns: f64) {
        // Defer the counter update: coalesce with a pending entry for
        // the same row, start a new entry while there is room, or —
        // queue full and no entry to merge with — fall back to an
        // inline write-back so the activation is never lost.
        if let Some(e) = self.queue.iter_mut().find(|e| e.row == row) {
            e.pending += 1;
            self.stats.srq_insertions += 1;
        } else if self.queue.len() < self.cfg.srq_capacity {
            self.queue.push(PendingUpdate { row, pending: 1 });
            self.stats.srq_insertions += 1;
        } else {
            self.stats.srq_overflows += 1;
            self.stats.update_precharges += 1;
            self.stats.counter_updates += 1;
            let count = self.counters.add(row, 1);
            self.moat.observe(row, count);
        }
    }

    fn on_ref(&mut self, _refreshed_rows: Range<u32>) -> AboService {
        // Bulk write-back window: drain `drain_on_ref` entries.
        let mut out = AboService::default();
        let before = out.counter_updates;
        self.drain(self.cfg.drain_on_ref, &mut out);
        self.stats.ref_drained_updates += u64::from(out.counter_updates - before);
        out
    }

    fn alert_cause(&self) -> Option<AlertCause> {
        if self.moat.alert_needed() {
            return Some(AlertCause::Mitigation);
        }
        if self.queue.len() >= self.cfg.srq_capacity {
            return Some(AlertCause::SrqFull);
        }
        if self.cfg.tth > 0 && self.max_pending() > self.cfg.tth {
            return Some(AlertCause::Tardiness);
        }
        None
    }

    fn service_abo(&mut self) -> AboService {
        // Same priority shape as MoPAC-D (Section 6.1): relieve queue
        // pressure first unless a mitigation is actually due.
        let mut out = AboService::default();
        let full = self.queue.len() >= self.cfg.srq_capacity;
        let alert = self.moat.alert_needed();
        if full || (!alert && !self.queue.is_empty()) {
            self.drain(self.cfg.updates_per_abo, &mut out);
        } else if let Some(row) = self.moat.take_mitigation_candidate() {
            // Mitigation cures the row's pending activations too: the
            // victims are refreshed, so drop its queue entry.
            self.queue.retain(|e| e.row != row);
            self.counters.reset(row);
            refresh_victims(&mut self.counters, &mut self.moat, row, self.cfg.blast_radius);
            self.stats.mitigations += 1;
            self.stats.abo_mitigations += 1;
            out.mitigated_rows.push(row);
        }
        out
    }

    fn counter(&self, row: u32) -> u32 {
        self.counters.get(row)
    }

    fn corrupt_counter(&mut self, row: u32, bit: u32) {
        self.counters.flip_bit(row, bit);
    }

    fn srq_occupancy(&self) -> Vec<usize> {
        vec![self.queue.len()]
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        use mopac_types::snapshot::Snapshottable;
        self.counters.save_state(w);
        self.moat.save_state(w);
        // Queue order is serialized verbatim: `drain` breaks pending
        // ties by position and removal uses `swap_remove`, so any
        // reordering would change future behavior.
        w.put_usize(self.queue.len());
        for e in &self.queue {
            w.put_u32(e.row);
            w.put_u32(e.pending);
        }
        self.stats.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        use mopac_types::snapshot::Snapshottable;
        self.counters.load_state(r)?;
        self.moat.load_state(r)?;
        let n = r.take_usize()?;
        if n > self.cfg.srq_capacity {
            return Err(mopac_types::MopacError::snapshot(format!(
                "CnC queue holds {n} entries but capacity is {}",
                self.cfg.srq_capacity
            )));
        }
        self.queue.clear();
        for _ in 0..n {
            self.queue.push(PendingUpdate {
                row: r.take_u32()?,
                pending: r.take_u32()?,
            });
        }
        self.stats.load_state(r)
    }

    fn clone_box(&self) -> Box<dyn MitigationEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hammer(b: &mut CncPracEngine, row: u32, n: u32) {
        for _ in 0..n {
            b.on_activate(row, 0.0);
            b.on_precharge(row, false, 40.0);
        }
    }

    #[test]
    fn same_row_precharges_coalesce_into_one_entry() {
        let cfg = MitigationConfig::cnc_prac(500);
        let mut b = CncPracEngine::new(&cfg, 64);
        hammer(&mut b, 3, 10);
        assert_eq!(b.srq_occupancy(), vec![1]);
        assert_eq!(b.counter(3), 0, "write-back still pending");
        // One REF drain applies the whole coalesced batch as a single
        // read-modify-write.
        let svc = b.on_ref(0..8);
        assert_eq!(svc.counter_updates, 1);
        assert_eq!(b.counter(3), 10);
        assert_eq!(b.stats().ref_drained_updates, 1);
    }

    #[test]
    fn tardy_entry_alerts_and_drains_first() {
        let cfg = MitigationConfig::cnc_prac(500); // TTH = 32
        let mut b = CncPracEngine::new(&cfg, 64);
        hammer(&mut b, 5, 2);
        hammer(&mut b, 7, 33);
        assert_eq!(b.alert_cause(), Some(AlertCause::Tardiness));
        let svc = b.service_abo();
        assert!(svc.counter_updates >= 1);
        assert_eq!(b.counter(7), 33, "hottest entry drained first");
        assert!(b.alert_cause().is_none());
    }

    #[test]
    fn full_queue_alerts_and_overflows_write_inline() {
        let cfg = MitigationConfig::cnc_prac(500).with_srq_capacity(4);
        let mut b = CncPracEngine::new(&cfg, 64);
        for row in 0..4 {
            hammer(&mut b, row, 1);
        }
        assert_eq!(b.alert_cause(), Some(AlertCause::SrqFull));
        // A fifth distinct row cannot queue: exact accounting falls
        // back to an inline write-back.
        hammer(&mut b, 40, 1);
        assert_eq!(b.counter(40), 1);
        assert_eq!(b.stats().srq_overflows, 1);
        // ABO relieves the pressure.
        let svc = b.service_abo();
        assert_eq!(svc.counter_updates, 4);
        assert!(b.alert_cause().is_none());
    }

    #[test]
    fn moat_alert_mitigates_at_reduced_threshold() {
        let cfg = MitigationConfig::cnc_prac(500); // ATH* = 440
        let mut b = CncPracEngine::new(&cfg, 1024);
        // Alternate with REF drains so the counters (not the queue cap)
        // drive the alert.
        for _ in 0..44 {
            hammer(&mut b, 7, 10);
            b.on_ref(0..8);
        }
        assert_eq!(b.counter(7), 440);
        assert_eq!(b.alert_cause(), Some(AlertCause::Mitigation));
        let svc = b.service_abo();
        assert_eq!(svc.mitigated_rows, vec![7]);
        assert_eq!(b.counter(7), 0);
        assert_eq!(b.counter(6), 1, "victims refreshed");
        assert_eq!(b.stats().abo_mitigations, 1);
    }

    #[test]
    fn threshold_margin_covers_the_pending_cap() {
        let cfg = MitigationConfig::cnc_prac(500);
        assert_eq!(cfg.alert_threshold, 440); // 472 - 32
        assert!(u64::from(cfg.alert_threshold + cfg.tth) < cfg.t_rh);
    }
}
