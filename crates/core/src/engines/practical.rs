//! PRACtical (Nazaraliyev et al., 2025): subarray-level counter
//! updates with bank-isolated recovery.
//!
//! The design keeps PRAC's exact per-row counting and MOAT tracker but
//! removes its two system-level serialization points:
//!
//! * the counter read-modify-write completes *inside the closed row's
//!   subarray* — the bank returns to base precharge timings and only a
//!   back-to-back activation into the same subarray waits for the
//!   update, so updates to different subarrays of one bank overlap;
//! * an ALERT back-off stalls only the alerting bank(s), not the whole
//!   sub-channel ([`RecoveryScope::Bank`]).
//!
//! Both reliefs are *timing* properties delivered through
//! [`TimingDemands`]; the counter state itself stays
//! command-synchronous (applied at `on_precharge` like PRAC), so the
//! MOAT security argument carries over unchanged. The engine
//! additionally accounts how many deferred updates each subarray
//! absorbed, which the device surfaces through the
//! `dram.subarray_parallel_updates` metric.
//!
//! [`RecoveryScope::Bank`]: crate::engine::RecoveryScope::Bank
//! [`TimingDemands`]: crate::engine::TimingDemands

use crate::bank::{AboService, AlertCause, MitigationStats};
use crate::config::MitigationConfig;
use crate::counters::PracCounters;
use crate::engine::MitigationEngine;
use crate::engines::refresh_victims;
use crate::moat::MoatTracker;
use std::ops::Range;

/// PRACtical: PRAC counting, subarray-deferred updates, bank-scoped
/// recovery.
#[derive(Debug, Clone)]
pub struct PracticalEngine {
    cfg: MitigationConfig,
    counters: PracCounters,
    moat: MoatTracker,
    stats: MitigationStats,
    /// Deferred counter updates posted per subarray. Grows on demand:
    /// the engine learns the bank's subarray count from the indices the
    /// device reports, so the geometry never leaks into construction.
    subarray_updates: Vec<u64>,
}

impl PracticalEngine {
    /// Creates the engine for a bank with `rows` rows.
    #[must_use]
    pub fn new(cfg: &MitigationConfig, rows: u32) -> Self {
        Self {
            cfg: *cfg,
            counters: PracCounters::new(rows),
            moat: MoatTracker::new(cfg.alert_threshold, cfg.eligibility_threshold),
            stats: MitigationStats::default(),
            subarray_updates: Vec::new(),
        }
    }

    /// Deferred updates posted per subarray so far (indices past the
    /// end are zero).
    #[must_use]
    pub fn subarray_update_counts(&self) -> &[u64] {
        &self.subarray_updates
    }
}

impl MitigationEngine for PracticalEngine {
    fn config(&self) -> &MitigationConfig {
        &self.cfg
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn on_activate(&mut self, _row: u32, _open_ns: f64) {
        self.stats.activations += 1;
    }

    fn on_precharge(&mut self, row: u32, counter_update: bool, _open_ns: f64) {
        if counter_update {
            self.stats.update_precharges += 1;
            self.stats.counter_updates += 1;
            let count = self.counters.add(row, self.cfg.sample_denominator);
            self.moat.observe(row, count);
        }
    }

    fn on_ref(&mut self, _refreshed_rows: Range<u32>) -> AboService {
        // PRAC counters survive refresh (see `PracEngine::on_ref`).
        AboService::default()
    }

    fn alert_cause(&self) -> Option<AlertCause> {
        self.moat.alert_needed().then_some(AlertCause::Mitigation)
    }

    fn service_abo(&mut self) -> AboService {
        let mut out = AboService::default();
        if let Some(row) = self.moat.take_mitigation_candidate() {
            self.counters.reset(row);
            refresh_victims(&mut self.counters, &mut self.moat, row, self.cfg.blast_radius);
            self.stats.mitigations += 1;
            self.stats.abo_mitigations += 1;
            out.mitigated_rows.push(row);
        }
        out
    }

    fn on_subarray_update(&mut self, subarray: u32) {
        let idx = subarray as usize;
        if idx >= self.subarray_updates.len() {
            self.subarray_updates.resize(idx + 1, 0);
        }
        self.subarray_updates[idx] += 1;
    }

    fn counter(&self, row: u32) -> u32 {
        self.counters.get(row)
    }

    fn corrupt_counter(&mut self, row: u32, bit: u32) {
        self.counters.flip_bit(row, bit);
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        use mopac_types::snapshot::Snapshottable;
        self.counters.save_state(w);
        self.moat.save_state(w);
        self.stats.save_state(w);
        w.put_usize(self.subarray_updates.len());
        for &v in &self.subarray_updates {
            w.put_u64(v);
        }
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        use mopac_types::snapshot::Snapshottable;
        self.counters.load_state(r)?;
        self.moat.load_state(r)?;
        self.stats.load_state(r)?;
        let n = r.take_usize()?;
        self.subarray_updates.clear();
        self.subarray_updates.reserve(n.min(1 << 16));
        for _ in 0..n {
            self.subarray_updates.push(r.take_u64()?);
        }
        Ok(())
    }

    fn clone_box(&self) -> Box<dyn MitigationEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bank::AlertCause;

    #[test]
    fn counts_like_prac_and_alerts_at_ath() {
        let cfg = MitigationConfig::practical(500); // ATH = 472
        let mut e = PracticalEngine::new(&cfg, 1024);
        for _ in 0..471 {
            e.on_activate(7, 0.0);
            e.on_precharge(7, true, 40.0);
        }
        assert!(e.alert_cause().is_none());
        e.on_activate(7, 0.0);
        e.on_precharge(7, true, 40.0);
        assert_eq!(e.alert_cause(), Some(AlertCause::Mitigation));
        let svc = e.service_abo();
        assert_eq!(svc.mitigated_rows, vec![7]);
        assert_eq!(e.counter(7), 0);
        assert_eq!(e.counter(6), 1, "victims refreshed");
    }

    #[test]
    fn subarray_update_hook_accounts_per_subarray() {
        let cfg = MitigationConfig::practical(500);
        let mut e = PracticalEngine::new(&cfg, 1024);
        e.on_subarray_update(2);
        e.on_subarray_update(2);
        e.on_subarray_update(0);
        assert_eq!(e.subarray_update_counts(), &[1, 0, 2]);
    }

    #[test]
    fn snapshot_round_trips_subarray_accounting() {
        let cfg = MitigationConfig::practical(500);
        let mut e = PracticalEngine::new(&cfg, 128);
        for i in 0..50u32 {
            e.on_activate(i % 128, 0.0);
            e.on_precharge(i % 128, true, 40.0);
            e.on_subarray_update(i % 4);
        }
        let mut w = mopac_types::snapshot::SnapshotWriter::new();
        e.save_state(&mut w);
        let bytes = w.finish();
        let mut restored = PracticalEngine::new(&cfg, 128);
        let mut r = mopac_types::snapshot::SnapshotReader::new(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(restored.subarray_update_counts(), e.subarray_update_counts());
        assert_eq!(restored.counter(3), e.counter(3));
        assert_eq!(restored.stats(), e.stats());
    }
}
