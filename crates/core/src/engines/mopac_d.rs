//! MoPAC-D: in-DRAM MINT sampling into per-chip SRQs (Section 6).
//!
//! Each chip of the DIMM samples the activation stream independently
//! (Appendix B): a MINT window sampler selects one activation per
//! `1/p`-ACT window, the selected row is buffered in the chip's SRQ,
//! and entries drain into the PRAC counters on ABO and REF. Any chip
//! can pull ALERT — for a needed mitigation, a full SRQ, or a buffered
//! row growing tardy.

use crate::bank::{AboService, AlertCause, MitigationStats};
use crate::config::MitigationConfig;
use crate::counters::PracCounters;
use crate::engine::MitigationEngine;
use crate::engines::refresh_victims;
use crate::mint::MintSampler;
use crate::moat::MoatTracker;
use crate::srq::{Srq, SrqInsert};
use mopac_types::rng::DetRng;
use std::ops::Range;

/// One chip's independent probabilistic state.
#[derive(Debug, Clone)]
struct ChipState {
    counters: PracCounters,
    moat: MoatTracker,
    mint: MintSampler,
    srq: Srq,
    rng: DetRng,
}

impl ChipState {
    fn srq_alert(&self, tth: u32) -> Option<AlertCause> {
        if self.srq.is_full() {
            return Some(AlertCause::SrqFull);
        }
        if tth > 0 && self.srq.max_actr() > tth {
            return Some(AlertCause::Tardiness);
        }
        None
    }
}

/// MoPAC-D's per-bank engine: one `ChipState` per modelled chip.
#[derive(Debug, Clone)]
pub struct MopacDEngine {
    cfg: MitigationConfig,
    chips: Vec<ChipState>,
    stats: MitigationStats,
}

impl MopacDEngine {
    /// Creates the engine for a bank with `rows` rows. `rng` seeds the
    /// per-chip MINT and NUP streams.
    #[must_use]
    pub fn new(cfg: &MitigationConfig, rows: u32, rng: DetRng) -> Self {
        let chips = (0..cfg.chips as usize)
            .map(|i| {
                let chip_rng = rng.fork(i as u64);
                let mint_rng = chip_rng.fork(0xA);
                ChipState {
                    counters: PracCounters::new(rows),
                    moat: MoatTracker::new(cfg.alert_threshold, cfg.eligibility_threshold),
                    mint: MintSampler::new(cfg.sample_denominator, mint_rng),
                    srq: Srq::new(cfg.srq_capacity),
                    rng: chip_rng.fork(0xB),
                }
            })
            .collect();
        Self {
            cfg: *cfg,
            chips,
            stats: MitigationStats::default(),
        }
    }
}

impl MitigationEngine for MopacDEngine {
    fn config(&self) -> &MitigationConfig {
        &self.cfg
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn on_activate(&mut self, row: u32, _open_ns: f64) {
        self.stats.activations += 1;
        let nup = self.cfg.nup;
        let mut insertions = 0u64;
        let mut overflows = 0u64;
        for chip in &mut self.chips {
            chip.srq.on_activate(row);
            if let Some(sel_row) = chip.mint.on_activate(row) {
                // NUP gate (Section 8.1): rows whose PRAC counter is
                // still zero are accepted with probability 1/2, yielding
                // an effective sampling probability of p/2 for cold rows.
                let accept = if nup && chip.counters.get(sel_row) == 0 {
                    chip.rng.bernoulli(0.5)
                } else {
                    true
                };
                if accept {
                    match chip.srq.insert(sel_row) {
                        SrqInsert::Inserted | SrqInsert::Coalesced => insertions += 1,
                        SrqInsert::Overflowed => overflows += 1,
                    }
                }
            }
        }
        self.stats.srq_insertions += insertions;
        self.stats.srq_overflows += overflows;
    }

    fn on_precharge(&mut self, row: u32, _counter_update: bool, open_ns: f64) {
        if self.cfg.row_press && open_ns > 180.0 {
            // Appendix A: a row held open for tON does ceil(tON/180ns)
            // activations worth of damage; the first unit is the
            // activation itself, the rest are folded into the SCtr of
            // the buffered entry.
            let extra = (open_ns / 180.0).ceil() as u32 - 1;
            if extra > 0 {
                for chip in &mut self.chips {
                    chip.srq.add_sctr(row, extra);
                }
            }
        }
    }

    fn on_ref(&mut self, _refreshed_rows: Range<u32>) -> AboService {
        // Drain `drain_on_ref` SRQ entries per chip inside the refresh
        // window (Section 6.2). PRAC counters themselves survive REF.
        let mut out = AboService::default();
        let drain_n = self.cfg.drain_on_ref;
        let denom = self.cfg.sample_denominator;
        let mut total_updates = 0u64;
        for chip in &mut self.chips {
            if drain_n > 0 {
                let n = drain_srq(chip, drain_n, denom);
                total_updates += u64::from(n);
                out.counter_updates += n;
            }
        }
        self.stats.counter_updates += total_updates;
        self.stats.ref_drained_updates += total_updates;
        out
    }

    fn alert_cause(&self) -> Option<AlertCause> {
        for chip in &self.chips {
            if chip.moat.alert_needed() {
                return Some(AlertCause::Mitigation);
            }
            if let Some(cause) = chip.srq_alert(self.cfg.tth) {
                return Some(cause);
            }
        }
        None
    }

    fn service_abo(&mut self) -> AboService {
        // Section 6.1 priority rules. Every chip uses the stall in
        // parallel: a chip with a full SRQ drains up to
        // `updates_per_abo` entries; otherwise, if its tracked row
        // needs mitigation it mitigates; otherwise it drains whatever
        // the SRQ holds (or mitigates an eligible tracked row if the
        // SRQ is empty).
        let mut out = AboService::default();
        let updates_per_abo = self.cfg.updates_per_abo;
        let denom = self.cfg.sample_denominator;
        let blast = self.cfg.blast_radius;
        let mut total_updates = 0u64;
        let mut mitigations = 0u64;
        for chip in &mut self.chips {
            let srq_full = chip.srq.is_full();
            let alert = chip.moat.alert_needed();
            let srq_nonempty = !chip.srq.is_empty();
            if srq_full || (!alert && srq_nonempty) {
                let n = drain_srq(chip, updates_per_abo, denom);
                total_updates += u64::from(n);
                out.counter_updates += n;
            } else if let Some(row) = chip.moat.take_mitigation_candidate() {
                chip.counters.reset(row);
                chip.srq.remove_row(row);
                refresh_victims(&mut chip.counters, &mut chip.moat, row, blast);
                out.mitigated_rows.push(row);
                mitigations += 1;
            }
        }
        self.stats.counter_updates += total_updates;
        self.stats.mitigations += mitigations;
        self.stats.abo_mitigations += mitigations;
        out
    }

    fn counter(&self, row: u32) -> u32 {
        self.chips[0].counters.get(row)
    }

    fn corrupt_counter(&mut self, row: u32, bit: u32) {
        self.chips[0].counters.flip_bit(row, bit);
    }

    fn srq_occupancy(&self) -> Vec<usize> {
        self.chips.iter().map(|c| c.srq.len()).collect()
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        use mopac_types::snapshot::Snapshottable;
        w.put_usize(self.chips.len());
        for chip in &self.chips {
            chip.counters.save_state(w);
            chip.moat.save_state(w);
            chip.mint.save_state(w);
            chip.srq.save_state(w);
            chip.rng.save_state(w);
        }
        self.stats.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        use mopac_types::snapshot::Snapshottable;
        let n = r.take_usize()?;
        if n != self.chips.len() {
            return Err(mopac_types::MopacError::snapshot(format!(
                "chip count mismatch: snapshot {n}, configured {}",
                self.chips.len()
            )));
        }
        for chip in &mut self.chips {
            chip.counters.load_state(r)?;
            chip.moat.load_state(r)?;
            chip.mint.load_state(r)?;
            chip.srq.load_state(r)?;
            chip.rng.load_state(r)?;
        }
        self.stats.load_state(r)
    }

    fn clone_box(&self) -> Box<dyn MitigationEngine> {
        Box::new(self.clone())
    }
}

/// Drains up to `n` entries of a chip's SRQ into its PRAC counters
/// (increment `1 + total_selections / p`, Section 6.4) and returns the
/// number of updates performed.
fn drain_srq(chip: &mut ChipState, n: u32, denom: u32) -> u32 {
    let mut done = 0;
    for _ in 0..n {
        let Some(entry) = chip.srq.pop_highest_actr() else {
            break;
        };
        // The entry stands for 1 + SCtr selections, each worth 1/p,
        // plus 1 for the activation performing the write-back.
        let inc = 1 + (1 + entry.sctr) * denom;
        let count = chip.counters.add(entry.row, inc);
        chip.moat.observe(entry.row, count);
        done += 1;
    }
    done
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multi_chip_states_are_independent() {
        let cfg = MitigationConfig::mopac_d(500)
            .with_chips(4)
            .with_drain_on_ref(0);
        let mut b = MopacDEngine::new(&cfg, 4096, DetRng::from_seed(42));
        for act in 0..4096u32 {
            b.on_activate(act, 0.0);
            if b.alert_cause().is_some() {
                b.service_abo();
            }
        }
        let occ = b.srq_occupancy();
        assert_eq!(occ.len(), 4);
        // With unique rows every window inserts exactly one entry in
        // every chip, so occupancies stay in lockstep — but each chip's
        // MINT selects different rows. Verify the buffered row sets
        // differ between chips.
        let sets: Vec<Vec<u32>> = b
            .chips
            .iter()
            .map(|c| {
                let mut rows: Vec<u32> = c.srq.iter().map(|e| e.row).collect();
                rows.sort_unstable();
                rows
            })
            .collect();
        assert!(
            sets.windows(2).any(|w| w[0] != w[1]),
            "all chips selected identical rows: {sets:?}"
        );
    }

    #[test]
    fn ref_drain_counts_into_ref_drained_stat() {
        let cfg = MitigationConfig::mopac_d(500).with_chips(1); // drain 2
        let mut b = MopacDEngine::new(&cfg, 4096, DetRng::from_seed(42));
        for act in 0..64u32 {
            b.on_activate(act, 0.0);
        }
        let svc = b.on_ref(0..8);
        assert_eq!(svc.counter_updates, 2);
        assert_eq!(b.stats().ref_drained_updates, 2);
        assert_eq!(b.stats().counter_updates, 2);
    }
}
