//! Command-synchronous precharge counting: PRAC and MoPAC-C.
//!
//! Both designs update the in-row counter during (selected) precharges
//! and secure the bank with the MOAT single-entry tracker. They differ
//! only in *which* precharges update — every one for PRAC, the memory
//! controller's coin flips for MoPAC-C (each update counting `1/p`) —
//! and that difference arrives through the `counter_update` flag and
//! `cfg.sample_denominator`, so one engine serves both kinds. Updates
//! are command-synchronous across chips, so a single state models the
//! whole rank.

use crate::bank::{AboService, AlertCause, MitigationStats};
use crate::config::MitigationConfig;
use crate::counters::PracCounters;
use crate::engine::MitigationEngine;
use crate::engines::refresh_victims;
use crate::moat::MoatTracker;
use std::ops::Range;

/// PRAC / MoPAC-C: counter updates ride on (selected) precharges.
#[derive(Debug, Clone)]
pub struct PracEngine {
    cfg: MitigationConfig,
    counters: PracCounters,
    moat: MoatTracker,
    stats: MitigationStats,
}

impl PracEngine {
    /// Creates the engine for a bank with `rows` rows.
    #[must_use]
    pub fn new(cfg: &MitigationConfig, rows: u32) -> Self {
        Self {
            cfg: *cfg,
            counters: PracCounters::new(rows),
            moat: MoatTracker::new(cfg.alert_threshold, cfg.eligibility_threshold),
            stats: MitigationStats::default(),
        }
    }
}

impl MitigationEngine for PracEngine {
    fn config(&self) -> &MitigationConfig {
        &self.cfg
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn on_activate(&mut self, _row: u32, _open_ns: f64) {
        self.stats.activations += 1;
    }

    fn on_precharge(&mut self, row: u32, counter_update: bool, _open_ns: f64) {
        if counter_update {
            self.stats.update_precharges += 1;
            self.stats.counter_updates += 1;
            let count = self.counters.add(row, self.cfg.sample_denominator);
            self.moat.observe(row, count);
        }
    }

    fn on_ref(&mut self, _refreshed_rows: Range<u32>) -> AboService {
        // PRAC counters survive refresh: resetting them would let an
        // aggressor escape (its victims were not refreshed).
        AboService::default()
    }

    fn alert_cause(&self) -> Option<AlertCause> {
        self.moat.alert_needed().then_some(AlertCause::Mitigation)
    }

    fn service_abo(&mut self) -> AboService {
        let mut out = AboService::default();
        if let Some(row) = self.moat.take_mitigation_candidate() {
            self.counters.reset(row);
            refresh_victims(&mut self.counters, &mut self.moat, row, self.cfg.blast_radius);
            self.stats.mitigations += 1;
            self.stats.abo_mitigations += 1;
            out.mitigated_rows.push(row);
        }
        out
    }

    fn counter(&self, row: u32) -> u32 {
        self.counters.get(row)
    }

    fn corrupt_counter(&mut self, row: u32, bit: u32) {
        self.counters.flip_bit(row, bit);
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        use mopac_types::snapshot::Snapshottable;
        self.counters.save_state(w);
        self.moat.save_state(w);
        self.stats.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        use mopac_types::snapshot::Snapshottable;
        self.counters.load_state(r)?;
        self.moat.load_state(r)?;
        self.stats.load_state(r)
    }

    fn clone_box(&self) -> Box<dyn MitigationEngine> {
        Box::new(self.clone())
    }
}
