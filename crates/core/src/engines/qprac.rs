//! QPRAC: exact counting with proactive per-REF mitigation from a
//! priority queue (Woo et al., "QPRAC: Towards Secure and Practical
//! PRAC-based Rowhammer Mitigation using Priority Queues", HPCA 2025).
//!
//! QPRAC keeps PRAC's exact per-row counting (every precharge pays the
//! PRAC timing) but adds a small per-bank priority queue of the
//! hottest rows. At every REF the queue's head — the row with the
//! highest activation count — is mitigated *proactively* inside the
//! refresh window, which costs nothing extra. The ALERT/ABO path
//! remains as a rare backstop: with proactive service the tracked
//! count almost never reaches `ATH`, so benign workloads see PRAC's
//! timing overhead but essentially zero ALERT stalls, and attacks are
//! absorbed by the per-REF mitigations instead of back-offs.
//!
//! Security: counting is exact and the MOAT backstop uses the same
//! `ATH` as plain PRAC, so the design inherits PRAC's guarantee;
//! proactive mitigations only ever *lower* counts.

use crate::bank::{AboService, AlertCause, MitigationStats};
use crate::config::MitigationConfig;
use crate::counters::PracCounters;
use crate::engine::MitigationEngine;
use crate::engines::refresh_victims;
use crate::moat::MoatTracker;
use std::ops::Range;

/// QPRAC's per-bank engine.
#[derive(Debug, Clone)]
pub struct QpracEngine {
    cfg: MitigationConfig,
    counters: PracCounters,
    moat: MoatTracker,
    /// Candidate rows for proactive mitigation, at most
    /// `cfg.srq_capacity`. Priorities are the live counter values, so
    /// the queue stores only row ids.
    queue: Vec<u32>,
    stats: MitigationStats,
}

impl QpracEngine {
    /// Creates the engine for a bank with `rows` rows.
    #[must_use]
    pub fn new(cfg: &MitigationConfig, rows: u32) -> Self {
        Self {
            cfg: *cfg,
            counters: PracCounters::new(rows),
            moat: MoatTracker::new(cfg.alert_threshold, cfg.eligibility_threshold),
            queue: Vec::with_capacity(cfg.srq_capacity),
            stats: MitigationStats::default(),
        }
    }

    /// Tracks `row` in the priority queue: inserted while there is
    /// room, otherwise it evicts the coldest entry if hotter.
    fn enqueue(&mut self, row: u32) {
        if self.queue.contains(&row) {
            return;
        }
        if self.queue.len() < self.cfg.srq_capacity {
            self.queue.push(row);
            self.stats.srq_insertions += 1;
            return;
        }
        let Some((idx, coldest)) = self
            .queue
            .iter()
            .enumerate()
            .map(|(i, &r)| (i, self.counters.get(r)))
            .min_by_key(|&(_, c)| c)
        else {
            return; // capacity 0: queue-less QPRAC degrades to PRAC
        };
        if self.counters.get(row) > coldest {
            self.queue[idx] = row;
            self.stats.srq_insertions += 1;
        } else {
            self.stats.srq_overflows += 1;
        }
    }

    /// Removes and returns the queued row with the highest live
    /// counter, or `None` if every queued row is already cold.
    fn pop_hottest(&mut self) -> Option<u32> {
        let (idx, count) = self
            .queue
            .iter()
            .enumerate()
            .map(|(i, &r)| (i, self.counters.get(r)))
            .max_by_key(|&(_, c)| c)?;
        if count == 0 {
            return None;
        }
        Some(self.queue.swap_remove(idx))
    }

    /// Mitigates aggressor `row`: resets its counter, forgets it in
    /// the tracker and queue, and refreshes its victims.
    fn mitigate(&mut self, row: u32, out: &mut AboService) {
        self.counters.reset(row);
        self.moat.invalidate_row(row);
        self.queue.retain(|&r| r != row);
        refresh_victims(&mut self.counters, &mut self.moat, row, self.cfg.blast_radius);
        self.stats.mitigations += 1;
        out.mitigated_rows.push(row);
    }
}

impl MitigationEngine for QpracEngine {
    fn config(&self) -> &MitigationConfig {
        &self.cfg
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn on_activate(&mut self, _row: u32, _open_ns: f64) {
        self.stats.activations += 1;
    }

    fn on_precharge(&mut self, row: u32, counter_update: bool, _open_ns: f64) {
        // QPRAC demands PRAC timings, so every precharge carries the
        // counter read-modify-write.
        if !counter_update {
            return;
        }
        self.stats.update_precharges += 1;
        self.stats.counter_updates += 1;
        let count = self.counters.add(row, 1);
        self.moat.observe(row, count);
        self.enqueue(row);
    }

    fn on_ref(&mut self, _refreshed_rows: Range<u32>) -> AboService {
        // Proactive service: mitigate the hottest queued rows inside
        // the refresh window (`drain_on_ref` of them, 1 by default).
        let mut out = AboService::default();
        for _ in 0..self.cfg.drain_on_ref {
            let Some(row) = self.pop_hottest() else { break };
            self.mitigate(row, &mut out);
            self.stats.proactive_mitigations += 1;
        }
        out
    }

    fn alert_cause(&self) -> Option<AlertCause> {
        self.moat.alert_needed().then_some(AlertCause::Mitigation)
    }

    fn service_abo(&mut self) -> AboService {
        // The ABO backstop — identical to PRAC's mitigation path.
        let mut out = AboService::default();
        if let Some(row) = self.moat.take_mitigation_candidate() {
            self.mitigate(row, &mut out);
            self.stats.abo_mitigations += 1;
        }
        out
    }

    fn counter(&self, row: u32) -> u32 {
        self.counters.get(row)
    }

    fn corrupt_counter(&mut self, row: u32, bit: u32) {
        self.counters.flip_bit(row, bit);
    }

    fn srq_occupancy(&self) -> Vec<usize> {
        vec![self.queue.len()]
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        use mopac_types::snapshot::Snapshottable;
        self.counters.save_state(w);
        self.moat.save_state(w);
        // Queue order is serialized verbatim: `pop_hottest` and
        // `enqueue` break count ties by position and removal uses
        // `swap_remove`, so any reordering would change future behavior.
        w.put_usize(self.queue.len());
        for &row in &self.queue {
            w.put_u32(row);
        }
        self.stats.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        use mopac_types::snapshot::Snapshottable;
        self.counters.load_state(r)?;
        self.moat.load_state(r)?;
        let n = r.take_usize()?;
        if n > self.cfg.srq_capacity {
            return Err(mopac_types::MopacError::snapshot(format!(
                "QPRAC queue holds {n} entries but capacity is {}",
                self.cfg.srq_capacity
            )));
        }
        self.queue.clear();
        for _ in 0..n {
            self.queue.push(r.take_u32()?);
        }
        self.stats.load_state(r)
    }

    fn clone_box(&self) -> Box<dyn MitigationEngine> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hammer(b: &mut QpracEngine, row: u32, n: u32) {
        for _ in 0..n {
            b.on_activate(row, 0.0);
            b.on_precharge(row, true, 40.0);
        }
    }

    #[test]
    fn proactive_ref_mitigates_hottest_row_before_alert() {
        let cfg = MitigationConfig::qprac(500); // ATH = 472
        let mut b = QpracEngine::new(&cfg, 1024);
        hammer(&mut b, 7, 100);
        hammer(&mut b, 9, 40);
        assert!(b.alert_cause().is_none());
        let svc = b.on_ref(0..8);
        assert_eq!(svc.mitigated_rows, vec![7], "hottest row first");
        assert_eq!(b.counter(7), 0);
        assert_eq!(b.stats().proactive_mitigations, 1);
        assert_eq!(b.stats().abo_mitigations, 0);
        // The next REF serves the runner-up.
        let svc = b.on_ref(0..8);
        assert_eq!(svc.mitigated_rows, vec![9]);
    }

    #[test]
    fn abo_backstop_matches_prac() {
        let cfg = MitigationConfig::qprac(500);
        let mut b = QpracEngine::new(&cfg, 1024);
        hammer(&mut b, 7, 472);
        assert_eq!(b.alert_cause(), Some(AlertCause::Mitigation));
        let svc = b.service_abo();
        assert_eq!(svc.mitigated_rows, vec![7]);
        assert!(b.alert_cause().is_none());
        assert_eq!(b.counter(6), 1, "victims refreshed");
        assert_eq!(b.stats().abo_mitigations, 1);
    }

    #[test]
    fn queue_evicts_coldest_when_full() {
        let cfg = MitigationConfig::qprac(500).with_srq_capacity(2);
        let mut b = QpracEngine::new(&cfg, 64);
        hammer(&mut b, 1, 5);
        hammer(&mut b, 2, 3);
        hammer(&mut b, 3, 8); // hotter than row 2: evicts it
        let svc = b.on_ref(0..8);
        assert_eq!(svc.mitigated_rows, vec![3]);
        let svc = b.on_ref(0..8);
        assert_eq!(svc.mitigated_rows, vec![1]);
    }

    #[test]
    fn idle_ref_mitigates_nothing() {
        let cfg = MitigationConfig::qprac(500);
        let mut b = QpracEngine::new(&cfg, 64);
        let svc = b.on_ref(0..8);
        assert!(svc.mitigated_rows.is_empty());
        assert_eq!(b.stats().proactive_mitigations, 0);
    }
}
