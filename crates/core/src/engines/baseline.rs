//! The unprotected baseline: counts activations for the statistics and
//! does nothing else.

use crate::bank::{AboService, AlertCause, MitigationStats};
use crate::config::MitigationConfig;
use crate::counters::PracCounters;
use crate::engine::MitigationEngine;
use std::ops::Range;

/// No mitigation. The counter storage still exists (so the fault
/// injector's `corrupt_counter` path behaves uniformly) but is never
/// updated by activity.
#[derive(Debug, Clone)]
pub struct BaselineEngine {
    cfg: MitigationConfig,
    counters: PracCounters,
    stats: MitigationStats,
}

impl BaselineEngine {
    /// Creates the inert engine for a bank with `rows` rows.
    #[must_use]
    pub fn new(cfg: &MitigationConfig, rows: u32) -> Self {
        Self {
            cfg: *cfg,
            counters: PracCounters::new(rows),
            stats: MitigationStats::default(),
        }
    }
}

impl MitigationEngine for BaselineEngine {
    fn config(&self) -> &MitigationConfig {
        &self.cfg
    }

    fn stats(&self) -> MitigationStats {
        self.stats
    }

    fn on_activate(&mut self, _row: u32, _open_ns: f64) {
        self.stats.activations += 1;
    }

    fn on_precharge(&mut self, _row: u32, _counter_update: bool, _open_ns: f64) {}

    fn on_ref(&mut self, _refreshed_rows: Range<u32>) -> AboService {
        AboService::default()
    }

    fn alert_cause(&self) -> Option<AlertCause> {
        None
    }

    fn service_abo(&mut self) -> AboService {
        AboService::default()
    }

    fn counter(&self, row: u32) -> u32 {
        self.counters.get(row)
    }

    fn corrupt_counter(&mut self, row: u32, bit: u32) {
        self.counters.flip_bit(row, bit);
    }

    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        use mopac_types::snapshot::Snapshottable;
        self.counters.save_state(w);
        self.stats.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        use mopac_types::snapshot::Snapshottable;
        self.counters.load_state(r)?;
        self.stats.load_state(r)
    }

    fn clone_box(&self) -> Box<dyn MitigationEngine> {
        Box::new(self.clone())
    }
}
