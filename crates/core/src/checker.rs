//! The Rowhammer security oracle.
//!
//! Per the paper's threat model (Section 2.1): *"We declare an attack to
//! be successful when any row receives more than the threshold number of
//! activations without any intervening mitigation or refresh."*
//!
//! We make the oracle rigorous by tracking, for every row `R`, the
//! damage it has inflicted on each adjacent victim separately:
//!
//! * `up[R]` — activations of `R` since the row above (`R+1`) was last
//!   refreshed;
//! * `dn[R]` — activations of `R` since the row below (`R-1`) was last
//!   refreshed.
//!
//! A violation is recorded when either counter exceeds `T_RH`. Refreshing
//! a row `V` (periodic REF or a victim refresh during mitigation) resets
//! `up[V-1]` and `dn[V+1]`, because `V`'s accumulated disturbance is
//! restored. This oracle is independent of the mitigation engines — it
//! observes the same event stream and cross-checks them.

use std::ops::Range;

/// A recorded security violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// The aggressor row.
    pub row: u32,
    /// The victim row whose budget was exceeded.
    pub victim: u32,
    /// The activation count reached.
    pub count: u32,
}

/// Security oracle for one bank.
///
/// # Examples
///
/// ```
/// use mopac::checker::RowhammerChecker;
///
/// let mut ck = RowhammerChecker::new(64, 10);
/// for _ in 0..10 {
///     ck.on_activate(5);
/// }
/// assert_eq!(ck.violations(), 0);
/// ck.on_activate(5); // 11th activation without any refresh
/// assert_eq!(ck.violations(), 2); // both neighbours of row 5 overexposed
/// ```
#[derive(Debug, Clone)]
pub struct RowhammerChecker {
    t_rh: u32,
    up: Box<[u32]>,
    dn: Box<[u32]>,
    violations: u64,
    first_violations: Vec<Violation>,
}

/// How many distinct violation records to keep for diagnostics.
const MAX_RECORDED: usize = 16;

impl RowhammerChecker {
    /// Creates a checker for a bank with `rows` rows and threshold
    /// `t_rh`.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `t_rh` is zero.
    #[must_use]
    pub fn new(rows: u32, t_rh: u32) -> Self {
        assert!(rows > 0 && t_rh > 0, "rows and threshold must be positive");
        Self {
            t_rh,
            up: vec![0; rows as usize].into_boxed_slice(),
            dn: vec![0; rows as usize].into_boxed_slice(),
            violations: 0,
            first_violations: Vec::new(),
        }
    }

    /// The threshold being enforced.
    #[must_use]
    pub fn t_rh(&self) -> u32 {
        self.t_rh
    }

    /// Records an activation of `row` (including victim-refresh
    /// activations, which disturb *their* neighbours too).
    ///
    /// Both sides are recorded only when the victim physically exists:
    /// the top row has no `row + 1` neighbour and row 0 has no
    /// `row - 1`. (The edge slots still accumulate — keeping the
    /// counter stream identical across configurations — but they can
    /// never produce a violation or exposure report.) Increments
    /// saturate so a multi-billion-activation soak can't wrap a `u32`
    /// and silently reset a victim's budget.
    pub fn on_activate(&mut self, row: u32) {
        let i = row as usize;
        self.up[i] = self.up[i].saturating_add(1);
        self.dn[i] = self.dn[i].saturating_add(1);
        if self.up[i] > self.t_rh && i + 1 < self.up.len() {
            self.record(row, row + 1, self.up[i]);
        }
        if self.dn[i] > self.t_rh && row > 0 {
            self.record(row, row - 1, self.dn[i]);
        }
    }

    /// Records that `row` itself was refreshed (periodic REF or victim
    /// refresh): its accumulated disturbance is restored, so its
    /// neighbours' budgets toward it reset.
    pub fn on_refresh_row(&mut self, row: u32) {
        if row > 0 {
            self.up[row as usize - 1] = 0;
        }
        if (row as usize) + 1 < self.dn.len() {
            self.dn[row as usize + 1] = 0;
        }
    }

    /// Records a periodic REF covering `rows`.
    pub fn on_refresh_range(&mut self, rows: Range<u32>) {
        for r in rows {
            self.on_refresh_row(r);
        }
    }

    /// Records a mitigation of aggressor `row` with the given blast
    /// radius: victims on both sides are refreshed. The victim-refresh
    /// activations themselves are counted as activations of the victims.
    pub fn on_mitigate(&mut self, row: u32, blast_radius: u32) {
        for d in 1..=blast_radius {
            if row >= d {
                let v = row - d;
                self.on_refresh_row(v);
                self.on_activate(v);
            }
            let v = row + d;
            if (v as usize) < self.up.len() {
                self.on_refresh_row(v);
                self.on_activate(v);
            }
        }
    }

    /// Number of violation events recorded so far.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// The first few distinct violations, for diagnostics.
    #[must_use]
    pub fn violation_records(&self) -> &[Violation] {
        &self.first_violations
    }

    /// The maximum per-victim exposure currently accumulated anywhere in
    /// the bank.
    ///
    /// Excludes the top row's `up` slot and row 0's `dn` slot: those
    /// point at rows that don't exist, so whatever they accumulated is
    /// not exposure of any real victim.
    #[must_use]
    pub fn max_exposure(&self) -> u32 {
        let last = self.up.len() - 1;
        self.up[..last]
            .iter()
            .chain(self.dn[1..].iter())
            .copied()
            .max()
            .unwrap_or(0)
    }

    fn record(&mut self, row: u32, victim: u32, count: u32) {
        self.violations += 1;
        if self.first_violations.len() < MAX_RECORDED {
            self.first_violations.push(Violation { row, victim, count });
        }
    }
}

impl mopac_types::snapshot::Snapshottable for RowhammerChecker {
    /// The exposure arrays serialize sparsely (non-zero entries only),
    /// like the PRAC counters they mirror.
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_u32(self.t_rh);
        w.put_usize(self.up.len());
        for side in [&self.up, &self.dn] {
            let nonzero = side.iter().filter(|&&c| c != 0).count();
            w.put_usize(nonzero);
            for (i, &c) in side.iter().enumerate() {
                if c != 0 {
                    w.put_u32(i as u32);
                    w.put_u32(c);
                }
            }
        }
        w.put_u64(self.violations);
        w.put_usize(self.first_violations.len());
        for v in &self.first_violations {
            w.put_u32(v.row);
            w.put_u32(v.victim);
            w.put_u32(v.count);
        }
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        let err = mopac_types::MopacError::snapshot;
        let t_rh = r.take_u32()?;
        let rows = r.take_usize()?;
        if t_rh != self.t_rh || rows != self.up.len() {
            return Err(err(format!(
                "checker shape mismatch: snapshot t_rh={t_rh}/rows={rows}, \
                 configured t_rh={}/rows={}",
                self.t_rh,
                self.up.len()
            )));
        }
        for side in [&mut self.up, &mut self.dn] {
            side.fill(0);
            let n = r.take_usize()?;
            for _ in 0..n {
                let i = r.take_u32()? as usize;
                let c = r.take_u32()?;
                let slot = side
                    .get_mut(i)
                    .ok_or_else(|| err(format!("checker row {i} out of range")))?;
                *slot = c;
            }
        }
        self.violations = r.take_u64()?;
        let n = r.take_usize()?;
        if n > MAX_RECORDED {
            return Err(err(format!("checker holds {n} violation records, max {MAX_RECORDED}")));
        }
        self.first_violations.clear();
        for _ in 0..n {
            self.first_violations.push(Violation {
                row: r.take_u32()?,
                victim: r.take_u32()?,
                count: r.take_u32()?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violation_at_threshold() {
        let mut ck = RowhammerChecker::new(16, 100);
        for _ in 0..100 {
            ck.on_activate(8);
        }
        assert_eq!(ck.violations(), 0);
        assert_eq!(ck.max_exposure(), 100);
    }

    #[test]
    fn violation_past_threshold() {
        let mut ck = RowhammerChecker::new(16, 100);
        for _ in 0..101 {
            ck.on_activate(8);
        }
        assert_eq!(ck.violations(), 2);
        let v = ck.violation_records()[0];
        assert_eq!((v.row, v.count), (8, 101));
    }

    #[test]
    fn mitigation_resets_exposure() {
        let mut ck = RowhammerChecker::new(16, 100);
        for _ in 0..100 {
            ck.on_activate(8);
        }
        ck.on_mitigate(8, 2);
        for _ in 0..100 {
            ck.on_activate(8);
        }
        assert_eq!(ck.violations(), 0);
    }

    #[test]
    fn one_sided_refresh_resets_only_that_side() {
        let mut ck = RowhammerChecker::new(16, 100);
        for _ in 0..60 {
            ck.on_activate(8);
        }
        // Refresh only the upper victim (row 9).
        ck.on_refresh_row(9);
        for _ in 0..60 {
            ck.on_activate(8);
        }
        // Lower victim (row 7) accumulated 120 > 100; upper only 60.
        assert!(ck.violations() > 0);
        assert!(ck
            .violation_records()
            .iter()
            .all(|v| v.victim == 7), "{:?}", ck.violation_records());
    }

    #[test]
    fn periodic_refresh_range() {
        let mut ck = RowhammerChecker::new(16, 100);
        for _ in 0..90 {
            ck.on_activate(8);
        }
        ck.on_refresh_range(0..16);
        for _ in 0..90 {
            ck.on_activate(8);
        }
        assert_eq!(ck.violations(), 0);
    }

    #[test]
    fn victim_refresh_counts_as_activation_of_victim() {
        let mut ck = RowhammerChecker::new(16, 100);
        // Mitigating row 8 activates rows 6, 7, 9, 10 once each.
        ck.on_mitigate(8, 2);
        assert_eq!(ck.max_exposure(), 1);
    }

    #[test]
    fn edge_rows_do_not_panic() {
        let mut ck = RowhammerChecker::new(4, 5);
        for _ in 0..10 {
            ck.on_activate(0);
            ck.on_activate(3);
        }
        ck.on_mitigate(0, 2);
        ck.on_mitigate(3, 2);
        assert!(ck.violations() > 0);
    }

    #[test]
    fn top_row_records_no_phantom_victim() {
        // Hammering the last row of the bank can only endanger the row
        // below it; the `up` side points past the end of the array.
        let mut ck = RowhammerChecker::new(8, 5);
        for _ in 0..20 {
            ck.on_activate(7);
        }
        assert!(ck.violations() > 0);
        assert!(
            ck.violation_records().iter().all(|v| v.victim == 6),
            "phantom victim recorded: {:?}",
            ck.violation_records()
        );
    }

    #[test]
    fn row_zero_records_only_upper_victim() {
        let mut ck = RowhammerChecker::new(8, 5);
        for _ in 0..20 {
            ck.on_activate(0);
        }
        assert!(ck.violations() > 0);
        assert!(ck.violation_records().iter().all(|v| v.victim == 1));
    }

    #[test]
    fn interior_rows_count_both_sides_exactly_as_before() {
        // The phantom fix must not change interior-row accounting: one
        // activation past T_RH records both neighbours.
        let mut ck = RowhammerChecker::new(8, 5);
        for _ in 0..6 {
            ck.on_activate(4);
        }
        assert_eq!(ck.violations(), 2);
        let victims: Vec<u32> = ck.violation_records().iter().map(|v| v.victim).collect();
        assert_eq!(victims, vec![5, 3]);
    }

    #[test]
    fn max_exposure_ignores_edge_slots_toward_nonexistent_victims() {
        let mut ck = RowhammerChecker::new(4, 100);
        // Top row: up-slot charges toward nonexistent row 4.
        for _ in 0..50 {
            ck.on_activate(3);
        }
        // Its real (dn) victim is row 2, exposure 50.
        assert_eq!(ck.max_exposure(), 50);
        // Refresh row 2: only the phantom up-slot retains a count, which
        // must not be reported as exposure.
        ck.on_refresh_row(2);
        assert_eq!(ck.max_exposure(), 0);
        // Symmetric at row 0.
        for _ in 0..30 {
            ck.on_activate(0);
        }
        assert_eq!(ck.max_exposure(), 30);
        ck.on_refresh_row(1);
        assert_eq!(ck.max_exposure(), 0);
    }

    #[test]
    fn single_row_bank_never_violates() {
        // Degenerate geometry: no neighbours exist at all.
        let mut ck = RowhammerChecker::new(1, 2);
        for _ in 0..10 {
            ck.on_activate(0);
        }
        assert_eq!(ck.violations(), 0);
        assert_eq!(ck.max_exposure(), 0);
    }

    #[test]
    fn exposure_saturates_instead_of_wrapping() {
        use mopac_types::snapshot::{SnapshotReader, SnapshotWriter, Snapshottable};
        // Preload a near-wrap exposure via the snapshot seam (activating
        // u32::MAX times for real is infeasible in a test).
        let mut ck = RowhammerChecker::new(4, u32::MAX - 10);
        let mut w = SnapshotWriter::new();
        w.put_u32(u32::MAX - 10); // t_rh
        w.put_usize(4); // rows
        w.put_usize(1); // up: one nonzero entry
        w.put_u32(1);
        w.put_u32(u32::MAX - 1);
        w.put_usize(0); // dn: empty
        w.put_u64(0); // violations
        w.put_usize(0); // records
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        ck.load_state(&mut r).unwrap();
        for _ in 0..8 {
            ck.on_activate(1);
        }
        // Wrapping would have reset the budget below T_RH and reported
        // zero violations; saturation pins it at u32::MAX.
        assert_eq!(ck.max_exposure(), u32::MAX);
        assert!(ck.violations() > 0);
    }
}
