//! Mitigation configuration presets.
//!
//! A [`MitigationConfig`] fully determines the behaviour of a bank's
//! mitigation engine and which DRAM timing set the memory controller
//! must use. Presets derive their parameters (`p`, `ATH*`, drain rates)
//! from `mopac-analysis` so that a config built from just a Rowhammer
//! threshold is secure by construction.

use mopac_analysis::markov::nup_params;
use mopac_analysis::moat::{moat_ath, moat_eth};
use mopac_analysis::params::{
    cnc_prac_ath_star, mopac_c_params, mopac_d_params, row_press_params, MopacDesign,
    CNC_DRAIN_ON_REF, CNC_QUEUE_ENTRIES, CNC_WRITEBACK_TTH, DEFAULT_SRQ_ENTRIES,
    QPRAC_MITIGATIONS_PER_REF, QPRAC_QUEUE_ENTRIES,
};

/// Which Rowhammer mitigation the system runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MitigationKind {
    /// No mitigation and base DDR5 timings (the performance baseline).
    None,
    /// PRAC + ABO with the MOAT tracker: every activation pays the PRAC
    /// timing overhead (counter update on every precharge).
    Prac,
    /// MoPAC-C: the memory controller flips a coin per activation and
    /// closes selected rows with the long-latency `PREcu`.
    MopacC,
    /// MoPAC-D: in-DRAM MINT sampling into a per-bank SRQ, drained by
    /// ABO and REF; the memory controller always uses base timings.
    MopacD,
    /// QPRAC (Woo et al., HPCA 2025): exact counting under PRAC
    /// timings, plus a per-bank priority queue whose hottest row is
    /// mitigated proactively at every REF; ABO remains as a backstop.
    Qprac,
    /// CnC-PRAC (Lin et al., 2025): base timings; counter write-backs
    /// are coalesced in a per-bank pending queue and drained in bulk at
    /// REF and under ABO.
    CncPrac,
    /// PRACtical (Nazaraliyev et al., 2025): per-row counting like
    /// PRAC, but counter read-modify-writes complete at subarray level
    /// (the bank keeps base timings; only the closed row's subarray is
    /// briefly gated) and ABO recovery blocks only the alerting
    /// bank(s), not the whole sub-channel.
    Practical,
}

impl std::fmt::Display for MitigationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Self::None => "baseline",
            Self::Prac => "PRAC",
            Self::MopacC => "MoPAC-C",
            Self::MopacD => "MoPAC-D",
            Self::Qprac => "QPRAC",
            Self::CncPrac => "CnC-PRAC",
            Self::Practical => "PRACtical",
        };
        f.write_str(s)
    }
}

/// Narrows a derived `u64` threshold into the `u32` the engines store.
/// Every real derivation is far below `u32::MAX`; saturating (instead
/// of unwrapping) keeps the core crate free of panicking conversions.
fn threshold_u32(v: u64) -> u32 {
    u32::try_from(v).unwrap_or(u32::MAX)
}

/// Full configuration of the mitigation engine for one experiment.
///
/// Construct via the presets ([`MitigationConfig::prac`],
/// [`MitigationConfig::mopac_c`], [`MitigationConfig::mopac_d`],
/// [`MitigationConfig::mopac_d_nup`], [`MitigationConfig::qprac`],
/// [`MitigationConfig::cnc_prac`], [`MitigationConfig::practical`]) and
/// customize with the `with_*` methods. The designs are enumerable by name through
/// [`crate::engine::EngineRegistry`].
///
/// # Examples
///
/// ```
/// use mopac::config::MitigationConfig;
///
/// let cfg = MitigationConfig::mopac_d(500).with_srq_capacity(32);
/// assert_eq!(cfg.alert_threshold, 152); // ATH* from Table 8
/// assert_eq!(cfg.sample_denominator, 8); // p = 1/8
/// assert_eq!(cfg.srq_capacity, 32);
/// assert_eq!(cfg.drain_on_ref, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationConfig {
    /// The mitigation design.
    pub kind: MitigationKind,
    /// The Rowhammer threshold this configuration targets.
    pub t_rh: u64,
    /// ALERT threshold on the PRAC counter: `ATH` for PRAC, `ATH*` for
    /// MoPAC.
    pub alert_threshold: u32,
    /// Eligibility threshold for mitigation on ABO (`ETH`).
    pub eligibility_threshold: u32,
    /// `1/p`: the sampling denominator (1 for PRAC — every activation).
    pub sample_denominator: u32,
    /// Non-uniform probability (Section 8): sample at `p/2` while the
    /// row's counter is zero. Only meaningful for MoPAC-D.
    pub nup: bool,
    /// SRQ capacity in entries (MoPAC-D).
    pub srq_capacity: usize,
    /// Tardiness threshold (MoPAC-D): max activations to a buffered row
    /// before a forced ABO.
    pub tth: u32,
    /// SRQ entries drained (counter-updated) at each REF (MoPAC-D).
    pub drain_on_ref: u32,
    /// Number of independent DRAM chips modelled (MoPAC-D samples
    /// independently per chip; the paper's default is 4 per sub-channel).
    pub chips: u32,
    /// Row-Press hardening (Appendix A): damage-weighted thresholds and,
    /// for MoPAC-C, a 180 ns row-open cap at the memory controller.
    pub row_press: bool,
    /// Counter updates performed per ABO stall (5 in the paper).
    pub updates_per_abo: u32,
    /// Rows on each side refreshed when mitigating an aggressor (blast
    /// radius; 2 in the paper, i.e. 4 victim refreshes).
    pub blast_radius: u32,
}

impl MitigationConfig {
    /// The unprotected baseline: base timings, no tracking.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            kind: MitigationKind::None,
            t_rh: u64::MAX,
            alert_threshold: u32::MAX,
            eligibility_threshold: u32::MAX,
            sample_denominator: 1,
            nup: false,
            srq_capacity: DEFAULT_SRQ_ENTRIES,
            tth: 0,
            drain_on_ref: 0,
            chips: 1,
            row_press: false,
            updates_per_abo: 5,
            blast_radius: 2,
        }
    }

    /// PRAC + ABO secured by MOAT (Section 2.6): deterministic counting,
    /// PRAC timings on every access.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh <= 64` (outside the MOAT model's domain) or the
    /// derived threshold exceeds `u32::MAX`.
    #[must_use]
    pub fn prac(t_rh: u64) -> Self {
        let ath = moat_ath(t_rh);
        Self {
            kind: MitigationKind::Prac,
            t_rh,
            alert_threshold: threshold_u32(ath),
            eligibility_threshold: threshold_u32(moat_eth(ath)),
            sample_denominator: 1,
            ..Self::baseline()
        }
    }

    /// MoPAC-C at the given threshold (Section 5, Table 7).
    ///
    /// # Panics
    ///
    /// Panics if `t_rh <= 64`.
    #[must_use]
    pub fn mopac_c(t_rh: u64) -> Self {
        let p = mopac_c_params(t_rh);
        Self {
            kind: MitigationKind::MopacC,
            t_rh,
            alert_threshold: threshold_u32(p.ath_star),
            eligibility_threshold: threshold_u32(p.ath_star / 2),
            sample_denominator: p.update_prob_denominator,
            ..Self::baseline()
        }
    }

    /// MoPAC-D at the given threshold (Section 6, Table 8), with the
    /// paper's defaults: 16-entry SRQ, TTH = 32, drain-on-REF from
    /// Table 8, 4 chips.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh <= 64`.
    #[must_use]
    pub fn mopac_d(t_rh: u64) -> Self {
        let p = mopac_d_params(t_rh);
        Self {
            kind: MitigationKind::MopacD,
            t_rh,
            alert_threshold: threshold_u32(p.ath_star),
            eligibility_threshold: threshold_u32(p.ath_star / 2),
            sample_denominator: p.update_prob_denominator,
            tth: p.tth,
            drain_on_ref: p.drain_on_ref,
            chips: 4,
            ..Self::baseline()
        }
    }

    /// MoPAC-D with non-uniform probability (Section 8, Table 11).
    ///
    /// # Panics
    ///
    /// Panics if `t_rh <= 64`.
    #[must_use]
    pub fn mopac_d_nup(t_rh: u64) -> Self {
        let p = nup_params(t_rh);
        Self {
            nup: true,
            alert_threshold: threshold_u32(p.ath_star),
            eligibility_threshold: threshold_u32(p.ath_star / 2),
            ..Self::mopac_d(t_rh)
        }
    }

    /// QPRAC at the given threshold (Woo et al., HPCA 2025): exact
    /// counting with PRAC's `ATH`/`ETH` (the ABO backstop is plain
    /// PRAC), an 8-entry priority queue, and one proactive mitigation
    /// per REF. `srq_capacity` holds the queue depth and `drain_on_ref`
    /// the mitigations-per-REF rate.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh <= 64` (outside the MOAT model's domain).
    #[must_use]
    pub fn qprac(t_rh: u64) -> Self {
        let ath = moat_ath(t_rh);
        Self {
            kind: MitigationKind::Qprac,
            t_rh,
            alert_threshold: threshold_u32(ath),
            eligibility_threshold: threshold_u32(moat_eth(ath)),
            sample_denominator: 1,
            srq_capacity: QPRAC_QUEUE_ENTRIES,
            drain_on_ref: QPRAC_MITIGATIONS_PER_REF,
            ..Self::baseline()
        }
    }

    /// CnC-PRAC at the given threshold (Lin et al., 2025): exact
    /// counting at base timings with write-backs coalesced in a
    /// 32-entry queue; alerts at `ATH* = ATH - TTH` to cover the
    /// deferred-visibility lag. `srq_capacity` holds the queue depth,
    /// `tth` the per-entry pending cap, and `drain_on_ref` the bulk
    /// write-backs per REF.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh <= 64`.
    #[must_use]
    pub fn cnc_prac(t_rh: u64) -> Self {
        let ath_star = cnc_prac_ath_star(t_rh);
        Self {
            kind: MitigationKind::CncPrac,
            t_rh,
            alert_threshold: threshold_u32(ath_star),
            eligibility_threshold: threshold_u32(ath_star / 2),
            sample_denominator: 1,
            srq_capacity: CNC_QUEUE_ENTRIES,
            tth: CNC_WRITEBACK_TTH,
            drain_on_ref: CNC_DRAIN_ON_REF,
            ..Self::baseline()
        }
    }

    /// PRACtical at the given threshold (Nazaraliyev et al., 2025):
    /// exact per-row counting like PRAC, but the counter
    /// read-modify-write is performed inside the closed row's subarray
    /// while the bank itself returns to base timings, and ALERT
    /// recovery stalls only the alerting bank(s). Counter state is
    /// command-synchronous in the model (only the update's *timing* is
    /// subarray-local), so the thresholds are PRAC's MOAT `ATH`/`ETH`
    /// and the security argument carries over unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `t_rh <= 64` (outside the MOAT model's domain).
    #[must_use]
    pub fn practical(t_rh: u64) -> Self {
        let ath = moat_ath(t_rh);
        Self {
            kind: MitigationKind::Practical,
            t_rh,
            alert_threshold: threshold_u32(ath),
            eligibility_threshold: threshold_u32(moat_eth(ath)),
            sample_denominator: 1,
            ..Self::baseline()
        }
    }

    /// Overrides the SRQ capacity (Figure 13's sensitivity study).
    #[must_use]
    pub fn with_srq_capacity(mut self, entries: usize) -> Self {
        self.srq_capacity = entries;
        self
    }

    /// Overrides the drain-on-REF rate (Figure 12's sensitivity study).
    #[must_use]
    pub fn with_drain_on_ref(mut self, entries: u32) -> Self {
        self.drain_on_ref = entries;
        self
    }

    /// Overrides the number of modelled chips (Appendix B, Figure 19).
    ///
    /// # Panics
    ///
    /// Panics if `chips` is zero.
    #[must_use]
    pub fn with_chips(mut self, chips: u32) -> Self {
        assert!(chips > 0, "need at least one chip");
        self.chips = chips;
        self
    }

    /// Enables Row-Press hardening (Appendix A, Table 14): re-derives
    /// the alert threshold with damage weighting.
    ///
    /// # Panics
    ///
    /// Panics if called on a baseline or PRAC configuration.
    #[must_use]
    pub fn with_row_press(mut self) -> Self {
        let design = match self.kind {
            MitigationKind::MopacC => MopacDesign::ControllerSide,
            MitigationKind::MopacD => MopacDesign::DramSide,
            _ => panic!("Row-Press hardening applies to MoPAC designs only"),
        };
        let p = row_press_params(design, self.t_rh);
        self.row_press = true;
        self.alert_threshold = threshold_u32(p.ath_star);
        self.eligibility_threshold = threshold_u32(p.ath_star / 2);
        self
    }

    /// Overrides the alert threshold directly (failure-injection tests
    /// deliberately weaken the design with this).
    #[must_use]
    pub fn with_alert_threshold(mut self, ath: u32) -> Self {
        self.alert_threshold = ath;
        self.eligibility_threshold = ath / 2;
        self
    }

    /// The per-activation sampling probability `p`.
    #[must_use]
    pub fn p(&self) -> f64 {
        1.0 / f64::from(self.sample_denominator)
    }

    /// Whether this configuration needs any per-bank tracking state.
    #[must_use]
    pub fn tracks(&self) -> bool {
        self.kind != MitigationKind::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prac_preset_uses_moat_ath() {
        let c = MitigationConfig::prac(500);
        assert_eq!(c.alert_threshold, 472);
        assert_eq!(c.eligibility_threshold, 236);
        assert_eq!(c.sample_denominator, 1);
    }

    #[test]
    fn mopac_c_preset_matches_table7() {
        let c = MitigationConfig::mopac_c(500);
        assert_eq!(c.alert_threshold, 176);
        assert_eq!(c.sample_denominator, 8);
        assert_eq!(c.chips, 1);
    }

    #[test]
    fn mopac_d_preset_matches_table8() {
        let c = MitigationConfig::mopac_d(250);
        assert_eq!(c.alert_threshold, 60);
        assert_eq!(c.sample_denominator, 4);
        assert_eq!(c.drain_on_ref, 4);
        assert_eq!(c.tth, 32);
        assert_eq!(c.srq_capacity, 16);
        assert_eq!(c.chips, 4);
    }

    #[test]
    fn nup_preset_matches_table11() {
        let c = MitigationConfig::mopac_d_nup(500);
        assert!(c.nup);
        assert_eq!(c.alert_threshold, 136);
        assert_eq!(c.sample_denominator, 8);
    }

    #[test]
    fn row_press_rederives_threshold() {
        let c = MitigationConfig::mopac_c(500).with_row_press();
        assert_eq!(c.alert_threshold, 80);
        let d = MitigationConfig::mopac_d(500).with_row_press();
        assert_eq!(d.alert_threshold, 64);
    }

    #[test]
    #[should_panic(expected = "Row-Press")]
    fn row_press_rejects_prac() {
        let _ = MitigationConfig::prac(500).with_row_press();
    }

    #[test]
    fn display_names() {
        assert_eq!(MitigationKind::MopacD.to_string(), "MoPAC-D");
        assert_eq!(MitigationKind::None.to_string(), "baseline");
        assert_eq!(MitigationKind::Qprac.to_string(), "QPRAC");
        assert_eq!(MitigationKind::CncPrac.to_string(), "CnC-PRAC");
        assert_eq!(MitigationKind::Practical.to_string(), "PRACtical");
    }

    #[test]
    fn qprac_preset_keeps_prac_backstop_thresholds() {
        let c = MitigationConfig::qprac(500);
        let p = MitigationConfig::prac(500);
        assert_eq!(c.alert_threshold, p.alert_threshold);
        assert_eq!(c.eligibility_threshold, p.eligibility_threshold);
        assert_eq!(c.sample_denominator, 1);
        assert_eq!(c.srq_capacity, 8);
        assert_eq!(c.drain_on_ref, 1);
    }

    #[test]
    fn practical_preset_keeps_prac_thresholds() {
        let c = MitigationConfig::practical(500);
        let p = MitigationConfig::prac(500);
        assert_eq!(c.alert_threshold, p.alert_threshold);
        assert_eq!(c.eligibility_threshold, p.eligibility_threshold);
        assert_eq!(c.sample_denominator, 1);
        assert!(c.tracks());
    }

    #[test]
    fn cnc_prac_preset_reserves_tardiness_margin() {
        let c = MitigationConfig::cnc_prac(500);
        assert_eq!(c.alert_threshold, 440); // ATH 472 - TTH 32
        assert_eq!(c.eligibility_threshold, 220);
        assert_eq!(c.tth, 32);
        assert_eq!(c.srq_capacity, 32);
        assert_eq!(c.drain_on_ref, 8);
        assert_eq!(c.sample_denominator, 1);
    }
}
