//! The MOAT single-entry tracker (Section 2.6).
//!
//! MOAT keeps, per bank, the single row with the highest PRAC counter
//! value observed since the last mitigation. When that count reaches the
//! ALERT threshold (`ATH`, or MoPAC's revised `ATH*`), the bank asserts
//! ALERT; on the subsequent ABO the tracked row is mitigated if its count
//! reached the eligibility threshold `ETH = ATH/2`.

/// Per-bank MOAT tracker state.
///
/// # Examples
///
/// ```
/// use mopac::moat::MoatTracker;
///
/// let mut t = MoatTracker::new(100, 50);
/// t.observe(7, 60);
/// assert!(!t.alert_needed());
/// t.observe(9, 120);
/// assert!(t.alert_needed());
/// assert_eq!(t.take_mitigation_candidate(), Some(9));
/// assert!(!t.alert_needed());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MoatTracker {
    ath: u32,
    eth: u32,
    tracked: Option<(u32, u32)>, // (row, count)
}

impl MoatTracker {
    /// Creates a tracker with alert threshold `ath` and eligibility
    /// threshold `eth`.
    ///
    /// # Panics
    ///
    /// Panics if `eth > ath` or `ath == 0`.
    #[must_use]
    pub fn new(ath: u32, eth: u32) -> Self {
        assert!(ath > 0, "ATH must be positive");
        assert!(eth <= ath, "ETH {eth} must not exceed ATH {ath}");
        Self {
            ath,
            eth,
            tracked: None,
        }
    }

    /// The ALERT threshold.
    #[must_use]
    pub fn ath(&self) -> u32 {
        self.ath
    }

    /// The eligibility threshold.
    #[must_use]
    pub fn eth(&self) -> u32 {
        self.eth
    }

    /// Reports a row's freshly updated PRAC counter value. The row
    /// replaces the tracked entry if its count is higher.
    pub fn observe(&mut self, row: u32, count: u32) {
        match self.tracked {
            Some((tr, tc)) if tr == row || count > tc => self.tracked = Some((row, count)),
            None => self.tracked = Some((row, count)),
            _ => {}
        }
    }

    /// Whether the tracked row has reached `ATH` and the bank must
    /// assert ALERT.
    #[must_use]
    pub fn alert_needed(&self) -> bool {
        self.tracked.is_some_and(|(_, c)| c >= self.ath)
    }

    /// The tracked row and count, if any.
    #[must_use]
    pub fn tracked(&self) -> Option<(u32, u32)> {
        self.tracked
    }

    /// On ABO: returns the tracked row for mitigation if it reached
    /// `ETH`, invalidating the tracker either way (the process restarts
    /// after every ABO the bank participates in).
    pub fn take_mitigation_candidate(&mut self) -> Option<u32> {
        let candidate = self
            .tracked
            .filter(|&(_, c)| c >= self.eth)
            .map(|(r, _)| r);
        if candidate.is_some() {
            self.tracked = None;
        }
        candidate
    }

    /// Forgets the tracked row if it is `row` (e.g. that row was just
    /// mitigated or refreshed through another path).
    pub fn invalidate_row(&mut self, row: u32) {
        if self.tracked.is_some_and(|(r, _)| r == row) {
            self.tracked = None;
        }
    }
}

impl mopac_types::snapshot::Snapshottable for MoatTracker {
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        // ATH/ETH are configuration; only the tracked entry is runtime
        // state. They are written anyway as a shape check.
        w.put_u32(self.ath);
        w.put_u32(self.eth);
        match self.tracked {
            Some((row, count)) => {
                w.put_bool(true);
                w.put_u32(row);
                w.put_u32(count);
            }
            None => w.put_bool(false),
        }
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        let ath = r.take_u32()?;
        let eth = r.take_u32()?;
        if ath != self.ath || eth != self.eth {
            return Err(mopac_types::MopacError::snapshot(format!(
                "MOAT threshold mismatch: snapshot ATH={ath}/ETH={eth}, \
                 configured ATH={}/ETH={}",
                self.ath, self.eth
            )));
        }
        self.tracked = if r.take_bool()? {
            Some((r.take_u32()?, r.take_u32()?))
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_highest_count() {
        let mut t = MoatTracker::new(100, 50);
        t.observe(1, 10);
        t.observe(2, 5);
        assert_eq!(t.tracked(), Some((1, 10)));
        t.observe(2, 30);
        assert_eq!(t.tracked(), Some((2, 30)));
    }

    #[test]
    fn same_row_updates_even_if_lower() {
        // A mitigated-and-re-hammered row must refresh its own entry.
        let mut t = MoatTracker::new(100, 50);
        t.observe(1, 40);
        t.observe(1, 41);
        assert_eq!(t.tracked(), Some((1, 41)));
    }

    #[test]
    fn eligibility_gates_mitigation() {
        let mut t = MoatTracker::new(100, 50);
        t.observe(3, 49);
        assert_eq!(t.take_mitigation_candidate(), None);
        // Not eligible: entry retained for the next ABO.
        assert_eq!(t.tracked(), Some((3, 49)));
        t.observe(3, 50);
        assert_eq!(t.take_mitigation_candidate(), Some(3));
        assert_eq!(t.tracked(), None);
    }

    #[test]
    fn invalidate_row_only_if_tracked() {
        let mut t = MoatTracker::new(100, 50);
        t.observe(3, 60);
        t.invalidate_row(4);
        assert_eq!(t.tracked(), Some((3, 60)));
        t.invalidate_row(3);
        assert_eq!(t.tracked(), None);
    }

    #[test]
    #[should_panic(expected = "ETH")]
    fn rejects_eth_above_ath() {
        let _ = MoatTracker::new(10, 11);
    }
}
