//! The per-bank mitigation engine.
//!
//! [`BankMitigation`] composes the PRAC counters, the MOAT tracker and —
//! for MoPAC-D — the MINT sampler and SRQ, replicated per chip
//! (Appendix B: MoPAC-D's probabilistic structures are independent in
//! each chip of the DIMM; any chip can pull ALERT).
//!
//! The DRAM model drives this engine with four events:
//!
//! * [`BankMitigation::on_activate`] — every ACT;
//! * [`BankMitigation::on_precharge`] — every PRE, with a flag saying
//!   whether this precharge performs a counter update (always for PRAC,
//!   the MC's coin flip for MoPAC-C, never for MoPAC-D) and the row-open
//!   time for Row-Press accounting;
//! * [`BankMitigation::service_abo`] — when an ABO reaches this bank;
//! * [`BankMitigation::on_ref`] — at every REF (MoPAC-D's drain-on-REF;
//!   PRAC counters themselves survive refresh).
//!
//! After any event, [`BankMitigation::alert_cause`] says whether this
//! bank needs to pull the ALERT pin, and why.

use crate::config::{MitigationConfig, MitigationKind};
use crate::counters::PracCounters;
use crate::mint::MintSampler;
use crate::moat::MoatTracker;
use crate::srq::{Srq, SrqInsert};
use mopac_types::rng::DetRng;
use std::ops::Range;

/// Why a bank is pulling ALERT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertCause {
    /// A tracked row reached the alert threshold: Rowhammer mitigation
    /// needed.
    Mitigation,
    /// The SRQ is full and must be drained (MoPAC-D).
    SrqFull,
    /// A buffered row's ACtr exceeded the tardiness threshold (MoPAC-D).
    Tardiness,
}

/// What one ABO (or REF drain) did in this bank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AboService {
    /// Aggressor rows mitigated (victims of these rows were refreshed).
    pub mitigated_rows: Vec<u32>,
    /// Number of deferred PRAC-counter updates performed.
    pub counter_updates: u32,
}

/// Counters exposed for the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MitigationStats {
    /// Total activations observed.
    pub activations: u64,
    /// PRAC counter read-modify-writes performed (all paths).
    pub counter_updates: u64,
    /// SRQ insertions (new entries + coalesced), summed over chips.
    pub srq_insertions: u64,
    /// Insertions lost to a full SRQ.
    pub srq_overflows: u64,
    /// Aggressor mitigations performed.
    pub mitigations: u64,
    /// Precharges that carried a counter update (PRAC / MoPAC-C).
    pub update_precharges: u64,
}

/// Per-chip probabilistic state (MoPAC-D replicates this per chip; PRAC
/// and MoPAC-C use exactly one, as their updates are command-synchronous
/// across chips).
#[derive(Debug, Clone)]
struct ChipState {
    counters: PracCounters,
    moat: MoatTracker,
    mint: Option<MintSampler>,
    srq: Option<Srq>,
    rng: DetRng,
}

impl ChipState {
    fn srq_alert(&self, tth: u32) -> Option<AlertCause> {
        let srq = self.srq.as_ref()?;
        if srq.is_full() {
            return Some(AlertCause::SrqFull);
        }
        if tth > 0 && srq.max_actr() > tth {
            return Some(AlertCause::Tardiness);
        }
        None
    }
}

/// The mitigation engine embedded in one simulated DRAM bank.
#[derive(Debug, Clone)]
pub struct BankMitigation {
    cfg: MitigationConfig,
    chips: Vec<ChipState>,
    stats: MitigationStats,
}

impl BankMitigation {
    /// Creates the engine for a bank with `rows` rows.
    ///
    /// `rng` seeds all per-chip random streams; fork it per bank so that
    /// banks are independent.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    #[must_use]
    pub fn new(cfg: &MitigationConfig, rows: u32, rng: DetRng) -> Self {
        assert!(rows > 0, "bank must have rows");
        let chip_count = if cfg.kind == MitigationKind::MopacD {
            cfg.chips as usize
        } else {
            1
        };
        let chips = (0..chip_count)
            .map(|i| {
                let chip_rng = rng.fork(i as u64);
                let mint_rng = chip_rng.fork(0xA);
                ChipState {
                    counters: PracCounters::new(rows),
                    moat: MoatTracker::new(cfg.alert_threshold, cfg.eligibility_threshold),
                    mint: (cfg.kind == MitigationKind::MopacD)
                        .then(|| MintSampler::new(cfg.sample_denominator, mint_rng)),
                    srq: (cfg.kind == MitigationKind::MopacD)
                        .then(|| Srq::new(cfg.srq_capacity)),
                    rng: chip_rng.fork(0xB),
                }
            })
            .collect();
        Self {
            cfg: *cfg,
            chips,
            stats: MitigationStats::default(),
        }
    }

    /// The configuration this engine runs.
    #[must_use]
    pub fn config(&self) -> &MitigationConfig {
        &self.cfg
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> MitigationStats {
        self.stats
    }

    /// Handles an activation of `row`. `open_ns` is unused here (open
    /// time is only known at precharge) but kept for symmetry; pass 0.
    pub fn on_activate(&mut self, row: u32, _open_ns: f64) {
        self.stats.activations += 1;
        if self.cfg.kind != MitigationKind::MopacD {
            return;
        }
        let nup = self.cfg.nup;
        let denom = self.cfg.sample_denominator;
        let mut insertions = 0u64;
        let mut overflows = 0u64;
        for chip in &mut self.chips {
            if let Some(srq) = chip.srq.as_mut() {
                srq.on_activate(row);
            }
            let selected = chip.mint.as_mut().and_then(|m| m.on_activate(row));
            if let Some(sel_row) = selected {
                // NUP gate (Section 8.1): rows whose PRAC counter is
                // still zero are accepted with probability 1/2, yielding
                // an effective sampling probability of p/2 for cold rows.
                let accept = if nup && chip.counters.get(sel_row) == 0 {
                    chip.rng.bernoulli(0.5)
                } else {
                    true
                };
                if accept {
                    match chip.srq.as_mut().expect("MoPAC-D has SRQ").insert(sel_row) {
                        SrqInsert::Inserted | SrqInsert::Coalesced => insertions += 1,
                        SrqInsert::Overflowed => overflows += 1,
                    }
                }
            }
            let _ = denom;
        }
        self.stats.srq_insertions += insertions;
        self.stats.srq_overflows += overflows;
    }

    /// Handles a precharge of `row`.
    ///
    /// `counter_update` — whether this precharge performs the PRAC
    /// read-modify-write (PRAC: always; MoPAC-C: the MC's coin flip;
    /// MoPAC-D: never). `open_ns` — how long the row was open, for
    /// Row-Press accounting.
    pub fn on_precharge(&mut self, row: u32, counter_update: bool, open_ns: f64) {
        match self.cfg.kind {
            MitigationKind::None => {}
            MitigationKind::Prac | MitigationKind::MopacC => {
                if counter_update {
                    self.stats.update_precharges += 1;
                    self.stats.counter_updates += 1;
                    let inc = self.cfg.sample_denominator;
                    // PRAC and MoPAC-C counters are command-synchronous
                    // across chips; one ChipState models them all.
                    let chip = &mut self.chips[0];
                    let count = chip.counters.add(row, inc);
                    chip.moat.observe(row, count);
                }
            }
            MitigationKind::MopacD => {
                if self.cfg.row_press && open_ns > 180.0 {
                    // Appendix A: a row held open for tON does
                    // ceil(tON/180ns) activations worth of damage; the
                    // first unit is the activation itself, the rest are
                    // folded into the SCtr of the buffered entry.
                    let extra = (open_ns / 180.0).ceil() as u32 - 1;
                    if extra > 0 {
                        for chip in &mut self.chips {
                            if let Some(srq) = chip.srq.as_mut() {
                                srq.add_sctr(row, extra);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Whether (and why) this bank needs ALERT right now.
    #[must_use]
    pub fn alert_cause(&self) -> Option<AlertCause> {
        for chip in &self.chips {
            if chip.moat.alert_needed() {
                return Some(AlertCause::Mitigation);
            }
            if let Some(cause) = chip.srq_alert(self.cfg.tth) {
                return Some(cause);
            }
        }
        None
    }

    /// Services one ABO reaching this bank (Section 6.1 priority rules).
    ///
    /// Every chip uses the stall in parallel: a chip with a full SRQ
    /// drains up to `updates_per_abo` entries; otherwise, if its tracked
    /// row needs mitigation it mitigates; otherwise it drains whatever
    /// the SRQ holds (or mitigates an eligible tracked row if the SRQ is
    /// empty).
    pub fn service_abo(&mut self) -> AboService {
        let mut out = AboService::default();
        if self.cfg.kind == MitigationKind::None {
            return out;
        }
        let updates_per_abo = self.cfg.updates_per_abo;
        let denom = self.cfg.sample_denominator;
        let blast = self.cfg.blast_radius;
        let mut total_updates = 0u64;
        let mut mitigations = 0u64;
        for chip in &mut self.chips {
            let srq_full = chip.srq.as_ref().is_some_and(Srq::is_full);
            let alert = chip.moat.alert_needed();
            let srq_nonempty = chip.srq.as_ref().is_some_and(|s| !s.is_empty());
            if srq_full || (!alert && srq_nonempty) {
                let n = drain_srq(chip, updates_per_abo, denom);
                total_updates += u64::from(n);
                out.counter_updates += n;
            } else if let Some(row) = chip.moat.take_mitigation_candidate() {
                mitigate(chip, row, blast, &mut out.mitigated_rows);
                mitigations += 1;
            }
        }
        self.stats.counter_updates += total_updates;
        self.stats.mitigations += mitigations;
        out
    }

    /// Handles a REF command: MoPAC-D drains `drain_on_ref` SRQ entries
    /// per chip (Section 6.2).
    ///
    /// PRAC counters are *not* reset by periodic refresh: the counter is
    /// stored with the row and survives the restore. Resetting it would
    /// be insecure — refreshing an aggressor protects the aggressor's
    /// own cells, not its victims, so its accumulated count must stand
    /// until the row is actually mitigated.
    pub fn on_ref(&mut self, refreshed_rows: Range<u32>) -> AboService {
        let _ = refreshed_rows;
        let mut out = AboService::default();
        if self.cfg.kind != MitigationKind::MopacD {
            return out;
        }
        let drain_n = self.cfg.drain_on_ref;
        let denom = self.cfg.sample_denominator;
        let mut total_updates = 0u64;
        for chip in &mut self.chips {
            if drain_n > 0 {
                let n = drain_srq(chip, drain_n, denom);
                total_updates += u64::from(n);
                out.counter_updates += n;
            }
        }
        self.stats.counter_updates += total_updates;
        out
    }

    /// Direct read of a row's PRAC counter on chip 0 (tests and
    /// diagnostics).
    #[must_use]
    pub fn counter(&self, row: u32) -> u32 {
        self.chips[0].counters.get(row)
    }

    /// Fault hook: flips one bit of `row`'s PRAC counter on chip 0 (a
    /// counter-table soft error). The MOAT tracker is deliberately not
    /// re-observed — hardware would not notice a silent bit flip either —
    /// so an undercount can only be caught by the security oracle.
    pub fn corrupt_counter(&mut self, row: u32, bit: u32) {
        self.chips[0].counters.flip_bit(row, bit);
    }

    /// Current SRQ occupancy per chip (empty for non-MoPAC-D designs).
    #[must_use]
    pub fn srq_occupancy(&self) -> Vec<usize> {
        self.chips
            .iter()
            .filter_map(|c| c.srq.as_ref().map(Srq::len))
            .collect()
    }
}

/// Drains up to `n` entries of a chip's SRQ into its PRAC counters
/// (increment `1 + total_selections / p`, Section 6.4) and returns the
/// number of updates performed.
fn drain_srq(chip: &mut ChipState, n: u32, denom: u32) -> u32 {
    let mut done = 0;
    for _ in 0..n {
        let Some(srq) = chip.srq.as_mut() else { break };
        let Some(entry) = srq.pop_highest_actr() else {
            break;
        };
        // The entry stands for 1 + SCtr selections, each worth 1/p,
        // plus 1 for the activation performing the write-back.
        let inc = 1 + (1 + entry.sctr) * denom;
        let count = chip.counters.add(entry.row, inc);
        chip.moat.observe(entry.row, count);
        done += 1;
    }
    done
}

/// Mitigates aggressor `row` in one chip: resets its counter, purges it
/// from the SRQ, and refreshes `blast` victims on each side (whose
/// counters gain the victim-refresh activation, footnote 5).
fn mitigate(chip: &mut ChipState, row: u32, blast: u32, mitigated: &mut Vec<u32>) {
    chip.counters.reset(row);
    if let Some(srq) = chip.srq.as_mut() {
        srq.remove_row(row);
    }
    let rows = chip.counters.rows();
    for d in 1..=blast {
        if row >= d {
            let v = row - d;
            let c = chip.counters.add(v, 1);
            chip.moat.observe(v, c);
        }
        let v = row + d;
        if v < rows {
            let c = chip.counters.add(v, 1);
            chip.moat.observe(v, c);
        }
    }
    mitigated.push(row);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::from_seed(42)
    }

    #[test]
    fn prac_updates_every_precharge_and_alerts_at_ath() {
        let cfg = MitigationConfig::prac(500); // ATH = 472
        let mut b = BankMitigation::new(&cfg, 1024, rng());
        for i in 0..471 {
            b.on_activate(7, 0.0);
            b.on_precharge(7, true, 40.0);
            assert!(b.alert_cause().is_none(), "premature alert at {i}");
        }
        b.on_activate(7, 0.0);
        b.on_precharge(7, true, 40.0);
        assert_eq!(b.alert_cause(), Some(AlertCause::Mitigation));
        let svc = b.service_abo();
        assert_eq!(svc.mitigated_rows, vec![7]);
        assert!(b.alert_cause().is_none());
        assert_eq!(b.counter(7), 0);
        // Victims got their refresh activation counted.
        assert_eq!(b.counter(6), 1);
        assert_eq!(b.counter(9), 1);
    }

    #[test]
    fn mopac_c_counts_in_units_of_denominator() {
        let cfg = MitigationConfig::mopac_c(500); // 1/p = 8, ATH* = 176
        let mut b = BankMitigation::new(&cfg, 64, rng());
        // 21 selected precharges: counter 168, below ATH*.
        for _ in 0..21 {
            b.on_activate(3, 0.0);
            b.on_precharge(3, true, 40.0);
        }
        assert_eq!(b.counter(3), 168);
        assert!(b.alert_cause().is_none());
        // One more reaches 176 = ATH*.
        b.on_activate(3, 0.0);
        b.on_precharge(3, true, 40.0);
        assert_eq!(b.alert_cause(), Some(AlertCause::Mitigation));
    }

    #[test]
    fn mopac_c_skipped_precharges_do_not_count() {
        let cfg = MitigationConfig::mopac_c(500);
        let mut b = BankMitigation::new(&cfg, 64, rng());
        for _ in 0..1000 {
            b.on_activate(3, 0.0);
            b.on_precharge(3, false, 40.0);
        }
        assert_eq!(b.counter(3), 0);
        assert!(b.alert_cause().is_none());
    }

    #[test]
    fn mopac_d_srq_fills_and_alerts() {
        let cfg = MitigationConfig::mopac_d(500).with_chips(1).with_drain_on_ref(0);
        let mut b = BankMitigation::new(&cfg, 4096, rng());
        // Unique rows, one per activation: every MINT window inserts one
        // entry; after 16 windows the SRQ is full.
        let mut act = 0u32;
        while b.alert_cause().is_none() {
            b.on_activate(act % 4096, 0.0);
            act += 1;
            assert!(act < 16 * 8 + 8 + 1, "SRQ never filled");
        }
        assert_eq!(b.alert_cause(), Some(AlertCause::SrqFull));
        let svc = b.service_abo();
        assert_eq!(svc.counter_updates, 5);
        assert!(svc.mitigated_rows.is_empty());
        assert!(b.alert_cause().is_none());
        assert_eq!(b.srq_occupancy(), vec![11]);
    }

    #[test]
    fn mopac_d_tardiness_alert() {
        let cfg = MitigationConfig::mopac_d(500).with_chips(1).with_drain_on_ref(0);
        let mut b = BankMitigation::new(&cfg, 64, rng());
        // Hammer a single row; once it enters the SRQ its ACtr climbs
        // to TTH = 32 within at most 8 (window) + 32 activations.
        let mut acts = 0;
        while b.alert_cause().is_none() {
            b.on_activate(5, 0.0);
            acts += 1;
            assert!(acts < 8 + 33 + 1, "tardiness alert never fired");
        }
        assert_eq!(b.alert_cause(), Some(AlertCause::Tardiness));
        // Draining clears the condition.
        let svc = b.service_abo();
        assert!(svc.counter_updates >= 1);
        assert!(b.alert_cause().is_none());
    }

    #[test]
    fn mopac_d_drain_on_ref_updates_counters() {
        let cfg = MitigationConfig::mopac_d(500).with_chips(1); // drain 2
        let mut b = BankMitigation::new(&cfg, 4096, rng());
        for act in 0..64u32 {
            b.on_activate(act, 0.0); // unique rows -> 8 insertions
        }
        let occupancy_before = b.srq_occupancy()[0];
        assert!(occupancy_before >= 6, "got {occupancy_before}");
        let svc = b.on_ref(0..8);
        assert_eq!(svc.counter_updates, 2);
        assert_eq!(b.srq_occupancy()[0], occupancy_before - 2);
    }

    #[test]
    fn ref_preserves_prac_counters() {
        // Periodic refresh restores the row (and its in-row counter);
        // resetting the count would let an aggressor escape (its
        // victims were not refreshed).
        let cfg = MitigationConfig::prac(500);
        let mut b = BankMitigation::new(&cfg, 64, rng());
        for _ in 0..10 {
            b.on_activate(3, 0.0);
            b.on_precharge(3, true, 40.0);
        }
        assert_eq!(b.counter(3), 10);
        b.on_ref(0..8);
        assert_eq!(b.counter(3), 10);
    }

    #[test]
    fn multi_chip_states_are_independent() {
        let cfg = MitigationConfig::mopac_d(500).with_chips(4).with_drain_on_ref(0);
        let mut b = BankMitigation::new(&cfg, 4096, rng());
        for act in 0..4096u32 {
            b.on_activate(act, 0.0);
            if b.alert_cause().is_some() {
                b.service_abo();
            }
        }
        let occ = b.srq_occupancy();
        assert_eq!(occ.len(), 4);
        // With unique rows every window inserts exactly one entry in
        // every chip, so occupancies stay in lockstep — but each chip's
        // MINT selects different rows. Verify the buffered row sets
        // differ between chips.
        let sets: Vec<Vec<u32>> = b
            .chips
            .iter()
            .map(|c| {
                let mut rows: Vec<u32> =
                    c.srq.as_ref().unwrap().iter().map(|e| e.row).collect();
                rows.sort_unstable();
                rows
            })
            .collect();
        assert!(
            sets.windows(2).any(|w| w[0] != w[1]),
            "all chips selected identical rows: {sets:?}"
        );
    }

    #[test]
    fn baseline_is_inert() {
        let cfg = MitigationConfig::baseline();
        let mut b = BankMitigation::new(&cfg, 64, rng());
        for _ in 0..100_000 {
            b.on_activate(1, 0.0);
            b.on_precharge(1, false, 40.0);
        }
        assert!(b.alert_cause().is_none());
        assert!(b.service_abo().mitigated_rows.is_empty());
    }
}
