//! The per-bank mitigation host.
//!
//! [`BankMitigation`] owns one boxed [`MitigationEngine`] — the design
//! selected by the [`MitigationConfig`] — and forwards the lifecycle
//! events the DRAM model drives:
//!
//! * [`BankMitigation::on_activate`] — every ACT;
//! * [`BankMitigation::on_precharge`] — every PRE, with a flag saying
//!   whether this precharge performs a counter update (driven by the
//!   engine's [`TimingDemands`]) and the row-open time for Row-Press
//!   accounting;
//! * [`BankMitigation::service_abo`] — when an ABO reaches this bank;
//! * [`BankMitigation::on_ref`] — at every REF (deferred-work drains
//!   and proactive mitigations; PRAC counters themselves survive
//!   refresh).
//!
//! After any event, [`BankMitigation::alert_cause`] says whether this
//! bank needs to pull the ALERT pin, and why. The concrete engines live
//! in [`crate::engines`]; the trait and registry in [`crate::engine`].

use crate::config::MitigationConfig;
use crate::engine::{build_engine, MitigationEngine, TimingDemands};
use mopac_types::obs::{Counter, MetricsRegistry, MetricsSink};
use mopac_types::rng::DetRng;
use std::ops::Range;

/// Why a bank is pulling ALERT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlertCause {
    /// A tracked row reached the alert threshold: Rowhammer mitigation
    /// needed.
    Mitigation,
    /// A deferred-work queue is full and must be drained (MoPAC-D's
    /// SRQ, CnC-PRAC's coalescing queue).
    SrqFull,
    /// A buffered row's deferred work exceeded the tardiness threshold
    /// (MoPAC-D's ACtr, CnC-PRAC's pending write-back count).
    Tardiness,
}

/// What one ABO (or REF drain) did in this bank.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AboService {
    /// Aggressor rows mitigated (victims of these rows were refreshed).
    pub mitigated_rows: Vec<u32>,
    /// Number of deferred PRAC-counter updates performed.
    pub counter_updates: u32,
}

/// Counters exposed for the experiment harness.
///
/// The original aggregate fields (`counter_updates`, `mitigations`) are
/// kept with their historical names and meanings so CSV consumers don't
/// break; the per-cause fields below them split the same events by
/// *why* they happened.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MitigationStats {
    /// Total activations observed.
    pub activations: u64,
    /// PRAC counter read-modify-writes performed (all paths; equals
    /// the update precharges plus drained/deferred write-backs).
    pub counter_updates: u64,
    /// Deferred-queue insertions (new entries + coalesced), summed
    /// over chips.
    pub srq_insertions: u64,
    /// Insertions refused by a full queue (MoPAC-D drops the sample;
    /// CnC-PRAC and QPRAC fall back to inline handling).
    pub srq_overflows: u64,
    /// Aggressor mitigations performed (all causes; equals
    /// `abo_mitigations + proactive_mitigations`).
    pub mitigations: u64,
    /// Precharges that carried an inline counter update.
    pub update_precharges: u64,
    /// Mitigations forced by an ALERT back-off (the reactive path).
    pub abo_mitigations: u64,
    /// Mitigations performed proactively inside REF windows (QPRAC).
    pub proactive_mitigations: u64,
    /// Deferred counter write-backs drained during REF windows
    /// (MoPAC-D's SRQ drain, CnC-PRAC's bulk write-back).
    pub ref_drained_updates: u64,
}

impl mopac_types::snapshot::Snapshottable for MitigationStats {
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_u64(self.activations);
        w.put_u64(self.counter_updates);
        w.put_u64(self.srq_insertions);
        w.put_u64(self.srq_overflows);
        w.put_u64(self.mitigations);
        w.put_u64(self.update_precharges);
        w.put_u64(self.abo_mitigations);
        w.put_u64(self.proactive_mitigations);
        w.put_u64(self.ref_drained_updates);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        self.activations = r.take_u64()?;
        self.counter_updates = r.take_u64()?;
        self.srq_insertions = r.take_u64()?;
        self.srq_overflows = r.take_u64()?;
        self.mitigations = r.take_u64()?;
        self.update_precharges = r.take_u64()?;
        self.abo_mitigations = r.take_u64()?;
        self.proactive_mitigations = r.take_u64()?;
        self.ref_drained_updates = r.take_u64()?;
        Ok(())
    }
}

impl MitigationStats {
    /// Field-wise accumulation: folds another engine set's counters
    /// into this one (multi-channel totals).
    pub fn accumulate(&mut self, o: &MitigationStats) {
        self.activations += o.activations;
        self.counter_updates += o.counter_updates;
        self.srq_insertions += o.srq_insertions;
        self.srq_overflows += o.srq_overflows;
        self.mitigations += o.mitigations;
        self.update_precharges += o.update_precharges;
        self.abo_mitigations += o.abo_mitigations;
        self.proactive_mitigations += o.proactive_mitigations;
        self.ref_drained_updates += o.ref_drained_updates;
    }

    /// Publishes these counters onto a metrics registry under the
    /// `engine.*` namespace. The struct stays the source of truth; the
    /// registry copy exists for unified snapshot export (DESIGN.md
    /// §11), so this overwrites rather than accumulates.
    pub fn export_metrics(&self, reg: &mut MetricsRegistry) {
        reg.set_counter(Counter::EngineActivations, self.activations);
        reg.set_counter(Counter::EngineCounterUpdates, self.counter_updates);
        reg.set_counter(Counter::EngineSrqInsertions, self.srq_insertions);
        reg.set_counter(Counter::EngineSrqOverflows, self.srq_overflows);
        reg.set_counter(Counter::EngineMitigations, self.mitigations);
        reg.set_counter(Counter::EngineUpdatePrecharges, self.update_precharges);
        reg.set_counter(Counter::EngineAboMitigations, self.abo_mitigations);
        reg.set_counter(Counter::EngineProactiveMitigations, self.proactive_mitigations);
        reg.set_counter(Counter::EngineRefDrainedUpdates, self.ref_drained_updates);
    }
}

/// The mitigation host embedded in one simulated DRAM bank.
#[derive(Debug, Clone)]
pub struct BankMitigation {
    engine: Box<dyn MitigationEngine>,
}

impl BankMitigation {
    /// Creates the engine for a bank with `rows` rows.
    ///
    /// `rng` seeds all per-chip random streams; fork it per bank so that
    /// banks are independent.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    #[must_use]
    pub fn new(cfg: &MitigationConfig, rows: u32, rng: DetRng) -> Self {
        Self {
            engine: build_engine(cfg, rows, rng),
        }
    }

    /// The configuration this engine runs.
    #[must_use]
    pub fn config(&self) -> &MitigationConfig {
        self.engine.config()
    }

    /// What the engine demands of the controller and timing model.
    #[must_use]
    pub fn timing_demands(&self) -> TimingDemands {
        self.engine.timing_demands()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> MitigationStats {
        self.engine.stats()
    }

    /// Handles an activation of `row`. `open_ns` is unused here (open
    /// time is only known at precharge) but kept for symmetry; pass 0.
    pub fn on_activate(&mut self, row: u32, open_ns: f64) {
        self.engine.on_activate(row, open_ns);
    }

    /// Handles a precharge of `row`.
    ///
    /// `counter_update` — whether this precharge performs the PRAC
    /// read-modify-write (per the engine's
    /// [`TimingDemands`]: always for PRAC/QPRAC, the MC's coin flip for
    /// MoPAC-C, never otherwise). `open_ns` — how long the row was
    /// open, for Row-Press accounting.
    pub fn on_precharge(&mut self, row: u32, counter_update: bool, open_ns: f64) {
        self.engine.on_precharge(row, counter_update, open_ns);
    }

    /// Whether (and why) this bank needs ALERT right now.
    #[must_use]
    pub fn alert_cause(&self) -> Option<AlertCause> {
        self.engine.alert_cause()
    }

    /// Services one ABO reaching this bank (the engine's priority
    /// rules decide between mitigation and deferred-work drains).
    pub fn service_abo(&mut self) -> AboService {
        self.engine.service_abo()
    }

    /// Reports a deferred counter update posted into `subarray` (see
    /// [`crate::engine::MitigationEngine::on_subarray_update`]).
    pub fn on_subarray_update(&mut self, subarray: u32) {
        self.engine.on_subarray_update(subarray);
    }

    /// Handles a REF command: engines drain deferred work or mitigate
    /// proactively inside the refresh window.
    ///
    /// PRAC counters are *not* reset by periodic refresh: the counter is
    /// stored with the row and survives the restore. Resetting it would
    /// be insecure — refreshing an aggressor protects the aggressor's
    /// own cells, not its victims, so its accumulated count must stand
    /// until the row is actually mitigated.
    pub fn on_ref(&mut self, refreshed_rows: Range<u32>) -> AboService {
        self.engine.on_ref(refreshed_rows)
    }

    /// Direct read of a row's PRAC counter on chip 0 (tests and
    /// diagnostics).
    #[must_use]
    pub fn counter(&self, row: u32) -> u32 {
        self.engine.counter(row)
    }

    /// Fault hook: flips one bit of `row`'s PRAC counter on chip 0 (a
    /// counter-table soft error). Trackers are deliberately not
    /// re-observed — hardware would not notice a silent bit flip either —
    /// so an undercount can only be caught by the security oracle.
    pub fn corrupt_counter(&mut self, row: u32, bit: u32) {
        self.engine.corrupt_counter(row, bit);
    }

    /// Current deferred-queue occupancy per chip (empty for designs
    /// without queues).
    #[must_use]
    pub fn srq_occupancy(&self) -> Vec<usize> {
        self.engine.srq_occupancy()
    }

    /// Generation counter of the engine's [`TimingDemands`]; the device
    /// re-queries the demands whenever this changes (see
    /// [`crate::engine::MitigationEngine::demands_epoch`]).
    #[must_use]
    pub fn demands_epoch(&self) -> u64 {
        self.engine.demands_epoch()
    }

    /// Publishes the engine's observability metrics onto `sink` (see
    /// [`crate::engine::MitigationEngine::record_metrics`]).
    pub fn record_metrics(&self, flat_bank: u32, sink: &mut MetricsSink) {
        self.engine.record_metrics(flat_bank, sink);
    }
}

impl mopac_types::snapshot::Snapshottable for BankMitigation {
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        self.engine.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        self.engine.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::from_seed(42)
    }

    #[test]
    fn prac_updates_every_precharge_and_alerts_at_ath() {
        let cfg = MitigationConfig::prac(500); // ATH = 472
        let mut b = BankMitigation::new(&cfg, 1024, rng());
        for i in 0..471 {
            b.on_activate(7, 0.0);
            b.on_precharge(7, true, 40.0);
            assert!(b.alert_cause().is_none(), "premature alert at {i}");
        }
        b.on_activate(7, 0.0);
        b.on_precharge(7, true, 40.0);
        assert_eq!(b.alert_cause(), Some(AlertCause::Mitigation));
        let svc = b.service_abo();
        assert_eq!(svc.mitigated_rows, vec![7]);
        assert!(b.alert_cause().is_none());
        assert_eq!(b.counter(7), 0);
        // Victims got their refresh activation counted.
        assert_eq!(b.counter(6), 1);
        assert_eq!(b.counter(9), 1);
        // ABO-forced mitigation shows up in the per-cause split.
        assert_eq!(b.stats().abo_mitigations, 1);
        assert_eq!(b.stats().mitigations, 1);
    }

    #[test]
    fn mopac_c_counts_in_units_of_denominator() {
        let cfg = MitigationConfig::mopac_c(500); // 1/p = 8, ATH* = 176
        let mut b = BankMitigation::new(&cfg, 64, rng());
        // 21 selected precharges: counter 168, below ATH*.
        for _ in 0..21 {
            b.on_activate(3, 0.0);
            b.on_precharge(3, true, 40.0);
        }
        assert_eq!(b.counter(3), 168);
        assert!(b.alert_cause().is_none());
        // One more reaches 176 = ATH*.
        b.on_activate(3, 0.0);
        b.on_precharge(3, true, 40.0);
        assert_eq!(b.alert_cause(), Some(AlertCause::Mitigation));
    }

    #[test]
    fn mopac_c_skipped_precharges_do_not_count() {
        let cfg = MitigationConfig::mopac_c(500);
        let mut b = BankMitigation::new(&cfg, 64, rng());
        for _ in 0..1000 {
            b.on_activate(3, 0.0);
            b.on_precharge(3, false, 40.0);
        }
        assert_eq!(b.counter(3), 0);
        assert!(b.alert_cause().is_none());
    }

    #[test]
    fn mopac_d_srq_fills_and_alerts() {
        let cfg = MitigationConfig::mopac_d(500).with_chips(1).with_drain_on_ref(0);
        let mut b = BankMitigation::new(&cfg, 4096, rng());
        // Unique rows, one per activation: every MINT window inserts one
        // entry; after 16 windows the SRQ is full.
        let mut act = 0u32;
        while b.alert_cause().is_none() {
            b.on_activate(act % 4096, 0.0);
            act += 1;
            assert!(act < 16 * 8 + 8 + 1, "SRQ never filled");
        }
        assert_eq!(b.alert_cause(), Some(AlertCause::SrqFull));
        let svc = b.service_abo();
        assert_eq!(svc.counter_updates, 5);
        assert!(svc.mitigated_rows.is_empty());
        assert!(b.alert_cause().is_none());
        assert_eq!(b.srq_occupancy(), vec![11]);
    }

    #[test]
    fn mopac_d_tardiness_alert() {
        let cfg = MitigationConfig::mopac_d(500).with_chips(1).with_drain_on_ref(0);
        let mut b = BankMitigation::new(&cfg, 64, rng());
        // Hammer a single row; once it enters the SRQ its ACtr climbs
        // to TTH = 32 within at most 8 (window) + 32 activations.
        let mut acts = 0;
        while b.alert_cause().is_none() {
            b.on_activate(5, 0.0);
            acts += 1;
            assert!(acts < 8 + 33 + 1, "tardiness alert never fired");
        }
        assert_eq!(b.alert_cause(), Some(AlertCause::Tardiness));
        // Draining clears the condition.
        let svc = b.service_abo();
        assert!(svc.counter_updates >= 1);
        assert!(b.alert_cause().is_none());
    }

    #[test]
    fn mopac_d_drain_on_ref_updates_counters() {
        let cfg = MitigationConfig::mopac_d(500).with_chips(1); // drain 2
        let mut b = BankMitigation::new(&cfg, 4096, rng());
        for act in 0..64u32 {
            b.on_activate(act, 0.0); // unique rows -> 8 insertions
        }
        let occupancy_before = b.srq_occupancy()[0];
        assert!(occupancy_before >= 6, "got {occupancy_before}");
        let svc = b.on_ref(0..8);
        assert_eq!(svc.counter_updates, 2);
        assert_eq!(b.srq_occupancy()[0], occupancy_before - 2);
    }

    #[test]
    fn ref_preserves_prac_counters() {
        // Periodic refresh restores the row (and its in-row counter);
        // resetting the count would let an aggressor escape (its
        // victims were not refreshed).
        let cfg = MitigationConfig::prac(500);
        let mut b = BankMitigation::new(&cfg, 64, rng());
        for _ in 0..10 {
            b.on_activate(3, 0.0);
            b.on_precharge(3, true, 40.0);
        }
        assert_eq!(b.counter(3), 10);
        b.on_ref(0..8);
        assert_eq!(b.counter(3), 10);
    }

    #[test]
    fn baseline_is_inert() {
        let cfg = MitigationConfig::baseline();
        let mut b = BankMitigation::new(&cfg, 64, rng());
        for _ in 0..100_000 {
            b.on_activate(1, 0.0);
            b.on_precharge(1, false, 40.0);
        }
        assert!(b.alert_cause().is_none());
        assert!(b.service_abo().mitigated_rows.is_empty());
    }

    #[test]
    fn aggregate_stats_equal_per_cause_splits() {
        // `mitigations` stays the sum of the per-cause fields, and REF
        // drains are included in `counter_updates` — the alias contract
        // for existing CSV consumers.
        for cfg in [
            MitigationConfig::prac(500),
            MitigationConfig::mopac_d(500),
            MitigationConfig::qprac(500),
            MitigationConfig::cnc_prac(500),
        ] {
            let mut b = BankMitigation::new(&cfg, 256, rng());
            for i in 0..3000u32 {
                let row = (i * 7) % 256;
                b.on_activate(row, 0.0);
                b.on_precharge(row, b.timing_demands().always_prac_timings, 40.0);
                if i % 64 == 63 {
                    b.on_ref(0..8);
                }
                if b.alert_cause().is_some() {
                    b.service_abo();
                }
            }
            let s = b.stats();
            assert_eq!(
                s.mitigations,
                s.abo_mitigations + s.proactive_mitigations,
                "{:?}",
                cfg.kind
            );
            assert!(s.counter_updates >= s.ref_drained_updates, "{:?}", cfg.kind);
            assert!(s.counter_updates >= s.update_precharges, "{:?}", cfg.kind);
        }
    }
}
