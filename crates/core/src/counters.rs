//! Per-row PRAC activation counters.
//!
//! PRAC extends every DRAM row with a (2-byte) activation counter that is
//! read, incremented and written back during precharge. This module
//! models one bank's worth of counters. Under plain PRAC each update adds
//! 1; under MoPAC each (probabilistic) update adds `1/p`, and MoPAC-D's
//! deferred updates add `1 + SCtr/p` when an SRQ entry drains.

/// One bank's per-row activation counters.
///
/// # Examples
///
/// ```
/// use mopac::counters::PracCounters;
///
/// let mut c = PracCounters::new(1024);
/// c.add(7, 8); // one MoPAC update at p = 1/8
/// assert_eq!(c.get(7), 8);
/// c.reset(7);
/// assert_eq!(c.get(7), 0);
/// ```
#[derive(Debug, Clone)]
pub struct PracCounters {
    counts: Box<[u32]>,
}

impl PracCounters {
    /// Creates counters for a bank with `rows` rows, all zero.
    #[must_use]
    pub fn new(rows: u32) -> Self {
        Self {
            counts: vec![0u32; rows as usize].into_boxed_slice(),
        }
    }

    /// Number of rows covered.
    #[must_use]
    pub fn rows(&self) -> u32 {
        self.counts.len() as u32
    }

    /// Current counter value of `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn get(&self, row: u32) -> u32 {
        self.counts[row as usize]
    }

    /// Adds `amount` to the counter of `row`, saturating, and returns the
    /// new value.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn add(&mut self, row: u32, amount: u32) -> u32 {
        let c = &mut self.counts[row as usize];
        *c = c.saturating_add(amount);
        *c
    }

    /// Resets the counter of `row` to zero (mitigation or refresh).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn reset(&mut self, row: u32) {
        self.counts[row as usize] = 0;
    }

    /// Flips one bit of the counter of `row` (fault injection: a soft
    /// error in the in-row counter storage) and returns the new value.
    /// Bits above 31 wrap onto the stored word.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn flip_bit(&mut self, row: u32, bit: u32) -> u32 {
        let c = &mut self.counts[row as usize];
        *c ^= 1u32 << (bit % 32);
        *c
    }

    /// Iterates over `(row, count)` pairs with non-zero counts.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(r, &c)| (r as u32, c))
    }
}

impl mopac_types::snapshot::Snapshottable for PracCounters {
    /// Serializes sparsely: only non-zero counters are written, so a
    /// mostly-idle 64 K-row bank costs a few bytes instead of 256 KB.
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_u32(self.rows());
        let nonzero = self.counts.iter().filter(|&&c| c != 0).count();
        w.put_usize(nonzero);
        for (row, count) in self.iter_nonzero() {
            w.put_u32(row);
            w.put_u32(count);
        }
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        let rows = r.take_u32()?;
        if rows != self.rows() {
            return Err(mopac_types::MopacError::snapshot(format!(
                "PRAC counter row-count mismatch: snapshot {rows}, configured {}",
                self.rows()
            )));
        }
        self.counts.fill(0);
        let n = r.take_usize()?;
        for _ in 0..n {
            let row = r.take_u32()?;
            let count = r.take_u32()?;
            let slot = self.counts.get_mut(row as usize).ok_or_else(|| {
                mopac_types::MopacError::snapshot(format!("PRAC counter row {row} out of range"))
            })?;
            *slot = count;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_reset() {
        let mut c = PracCounters::new(8);
        assert_eq!(c.add(3, 1), 1);
        assert_eq!(c.add(3, 16), 17);
        assert_eq!(c.get(3), 17);
        c.reset(3);
        assert_eq!(c.get(3), 0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut c = PracCounters::new(2);
        c.add(0, u32::MAX);
        assert_eq!(c.add(0, 10), u32::MAX);
    }

    #[test]
    fn iter_nonzero_only_touched_rows() {
        let mut c = PracCounters::new(100);
        c.add(5, 2);
        c.add(99, 7);
        let v: Vec<_> = c.iter_nonzero().collect();
        assert_eq!(v, vec![(5, 2), (99, 7)]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_panics() {
        let c = PracCounters::new(4);
        let _ = c.get(4);
    }
}
