//! MoPAC: probabilistic activation counting for Rowhammer mitigation.
//!
//! This crate implements the paper's contribution — the in-DRAM and
//! memory-controller-side mechanisms that track aggressor rows and decide
//! when to trigger ALERT-back-off (ABO):
//!
//! * [`counters`] — per-row PRAC activation counters;
//! * [`moat`] — the MOAT single-entry tracker (the baseline secure
//!   implementation of PRAC+ABO);
//! * [`mint`] — the MINT window sampler used by MoPAC-D;
//! * [`srq`] — MoPAC-D's Selected-Row Queue with ACtr/SCtr coalescing;
//! * [`config`] — mitigation configuration presets (PRAC, MoPAC-C,
//!   MoPAC-D, NUP, QPRAC, CnC-PRAC, Row-Press hardening, multi-chip);
//! * [`engine`] — the pluggable [`engine::MitigationEngine`] trait, the
//!   [`engine::TimingDemands`] capability query the memory controller
//!   reads, and the string-keyed [`engine::EngineRegistry`];
//! * [`engines`] — the built-in engine implementations;
//! * [`bank`] — the per-bank host that embeds one boxed engine into
//!   each simulated DRAM bank;
//! * [`checker`] — the security oracle that verifies no row ever receives
//!   `T_RH` activations without an intervening mitigation or refresh.
//!
//! The mathematical derivation of the parameters (`p`, `C`, `ATH*`) lives
//! in the sibling crate `mopac-analysis`; the DRAM timing model that
//! hosts these engines lives in `mopac-dram`.
//!
//! # Examples
//!
//! ```
//! use mopac::config::MitigationConfig;
//! use mopac::bank::BankMitigation;
//! use mopac_types::rng::DetRng;
//!
//! // A MoPAC-D bank engine at the paper's default threshold of 500.
//! let cfg = MitigationConfig::mopac_d(500);
//! let mut bank = BankMitigation::new(&cfg, 64 * 1024, DetRng::from_seed(1));
//! for act in 0..100u32 {
//!     bank.on_activate(act % 8, 0.0);
//! }
//! assert!(bank.stats().activations >= 100);
//! ```

// Robustness contract (see ci.sh): no unwrap/expect in non-test core
// code — promoted to errors by clippy -D warnings in CI.
#![warn(clippy::unwrap_used, clippy::expect_used)]

pub mod bank;
pub mod checker;
pub mod config;
pub mod counters;
pub mod engine;
pub mod engines;
pub mod mint;
pub mod moat;
pub mod srq;

pub use bank::{AboService, AlertCause, BankMitigation, MitigationStats};
pub use checker::RowhammerChecker;
pub use config::{MitigationConfig, MitigationKind};
pub use engine::{build_engine, EngineRegistry, EngineSpec, MitigationEngine, TimingDemands};
