//! The pluggable mitigation-engine seam.
//!
//! Every Rowhammer mitigation modelled by this workspace implements
//! [`MitigationEngine`]: the full per-bank lifecycle the DRAM model
//! drives (`on_activate` / `on_precharge` / `on_ref` / `alert_cause` /
//! `service_abo`) plus the fault hooks (`corrupt_counter`) and a
//! [`TimingDemands`] capability query that tells the memory controller
//! and device which timing behaviour the design requires — replacing
//! the old `MitigationKind` sniffing that was duplicated across
//! `mopac-dram` and `mopac-memctrl`.
//!
//! [`BankMitigation`](crate::bank::BankMitigation) hosts a
//! `Box<dyn MitigationEngine>` per bank, so the DRAM bank FSM and the
//! fault injector never see a concrete engine type. Engines are
//! constructed from a [`MitigationConfig`] via [`build_engine`], and
//! enumerated by name through the string-keyed [`EngineRegistry`] —
//! campaign drivers, the attack suite, and benches iterate the registry
//! instead of hard-coding design lists.
//!
//! To add a new engine, see DESIGN.md §9: implement the trait (usually
//! in a new `crate::engines` submodule), give it a `MitigationKind`
//! variant and a preset, add a `build_engine` arm, and append an
//! [`EngineSpec`] to [`EngineRegistry::builtin`]. Everything downstream
//! — `run_workload`, `AttackConfig` suites, the fault campaign, the
//! kernel-equivalence matrix — picks it up from the registry.

use crate::bank::{AboService, AlertCause, MitigationStats};
use crate::config::{MitigationConfig, MitigationKind};
use crate::engines::{
    BaselineEngine, CncPracEngine, MopacDEngine, PracEngine, PracticalEngine, QpracEngine,
};
use mopac_types::obs::{Hist, MetricsSink};
use mopac_types::rng::DetRng;
use std::ops::Range;
use std::sync::OnceLock;

/// How much of a sub-channel an ABO/RFM recovery stall blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryScope {
    /// The whole sub-channel stalls while recovery runs (JEDEC ABO;
    /// every design that predates bank isolation).
    SubChannel,
    /// Only the alerting bank(s) stall; sibling banks keep issuing
    /// (PRACtical's bank-isolated recovery).
    Bank,
}

/// What a mitigation design demands of the memory controller and the
/// DRAM timing model.
///
/// This is the only channel through which timing behaviour may depend
/// on the mitigation: the controller and device read these capabilities
/// once at construction and never inspect `MitigationKind` again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingDemands {
    /// Every precharge performs the PRAC counter read-modify-write, so
    /// the device uses the PRAC timing set unconditionally (PRAC,
    /// QPRAC).
    pub always_prac_timings: bool,
    /// The controller flips a coin with this probability per activation
    /// and closes selected rows with the long-latency `PREcu`
    /// (MoPAC-C). `None` — no controller-side sampling, no coin drawn.
    pub precu_probability: Option<f64>,
    /// The controller force-closes any row held open this long
    /// (Row-Press hardening for controller-side designs). `None` — no
    /// cap.
    pub row_open_cap_ns: Option<f64>,
    /// How much of the sub-channel an ABO/RFM recovery stall blocks.
    /// Under [`RecoveryScope::Bank`] the controller keeps scheduling
    /// sibling banks while the alerting bank(s) recover.
    pub recovery_scope: RecoveryScope,
    /// Every precharge's counter read-modify-write is deferred into the
    /// closed row's subarray: the bank returns to base timings
    /// immediately and only back-to-back activations into the *same*
    /// subarray wait for the update (PRACtical). Updates to different
    /// subarrays of one bank proceed in parallel.
    pub subarray_parallel_updates: bool,
}

impl TimingDemands {
    /// Base DDR5 timings, no controller-side involvement (baseline,
    /// MoPAC-D, CnC-PRAC).
    #[must_use]
    pub fn base() -> Self {
        Self {
            always_prac_timings: false,
            precu_probability: None,
            row_open_cap_ns: None,
            recovery_scope: RecoveryScope::SubChannel,
            subarray_parallel_updates: false,
        }
    }

    /// The demands of the design selected by `cfg`.
    #[must_use]
    pub fn for_config(cfg: &MitigationConfig) -> Self {
        match cfg.kind {
            MitigationKind::None | MitigationKind::MopacD | MitigationKind::CncPrac => Self::base(),
            MitigationKind::Prac | MitigationKind::Qprac => Self {
                always_prac_timings: true,
                ..Self::base()
            },
            MitigationKind::MopacC => Self {
                precu_probability: Some(cfg.p()),
                row_open_cap_ns: cfg.row_press.then_some(180.0),
                ..Self::base()
            },
            MitigationKind::Practical => Self {
                recovery_scope: RecoveryScope::Bank,
                subarray_parallel_updates: true,
                ..Self::base()
            },
        }
    }
}

/// One Rowhammer mitigation design, embedded per bank.
///
/// The DRAM model drives the lifecycle events; the engine owns all
/// tracking state (counters, trackers, queues) and reports when the
/// bank must pull ALERT. Engines must be deterministic: any randomness
/// comes from the forked [`DetRng`] passed at construction.
pub trait MitigationEngine: std::fmt::Debug + Send {
    /// The configuration this engine was built from.
    fn config(&self) -> &MitigationConfig;

    /// What this design demands of the controller and timing model.
    fn timing_demands(&self) -> TimingDemands {
        TimingDemands::for_config(self.config())
    }

    /// Accumulated statistics.
    fn stats(&self) -> MitigationStats;

    /// An ACT hit `row`. `open_ns` is unused at activation time (open
    /// time is only known at precharge) but kept for symmetry; pass 0.
    fn on_activate(&mut self, row: u32, open_ns: f64);

    /// A PRE closed `row`. `counter_update` — whether this precharge
    /// carries the PRAC read-modify-write (driven by
    /// [`TimingDemands`]: always for PRAC/QPRAC, the controller's coin
    /// for MoPAC-C, never otherwise). `open_ns` — how long the row was
    /// open, for Row-Press accounting.
    fn on_precharge(&mut self, row: u32, counter_update: bool, open_ns: f64);

    /// A REF refreshed `refreshed_rows`. Engines may drain deferred
    /// work or mitigate proactively inside the refresh window; whatever
    /// they did is reported back so the device can inform the security
    /// oracle.
    fn on_ref(&mut self, refreshed_rows: Range<u32>) -> AboService;

    /// Whether (and why) this bank needs ALERT right now.
    fn alert_cause(&self) -> Option<AlertCause>;

    /// One ABO (RFM) reached this bank: perform the highest-priority
    /// pending work (mitigation or deferred counter updates).
    fn service_abo(&mut self) -> AboService;

    /// A deferred counter update was posted into `subarray` (only
    /// called for engines whose [`TimingDemands`] set
    /// `subarray_parallel_updates`). The counter *state* was already
    /// applied by [`MitigationEngine::on_precharge`]; this hook lets
    /// the engine account per-subarray update pressure. The default
    /// ignores it.
    fn on_subarray_update(&mut self, _subarray: u32) {}

    /// Direct read of a row's activation counter (chip 0 for
    /// replicated designs).
    fn counter(&self, row: u32) -> u32;

    /// Fault hook: flips one bit of `row`'s counter storage. Trackers
    /// are deliberately not re-observed — hardware would not notice a
    /// silent bit flip either.
    fn corrupt_counter(&mut self, row: u32, bit: u32);

    /// Occupancy of any deferred-work queues, one entry per replicated
    /// instance (empty for designs without queues).
    fn srq_occupancy(&self) -> Vec<usize> {
        Vec::new()
    }

    /// Generation counter for [`MitigationEngine::timing_demands`].
    ///
    /// The device caches the demands at construction; an engine whose
    /// demands can change at runtime (e.g. an adaptive design switching
    /// timing sets under attack pressure) must bump this after every
    /// change. The device re-queries the demands when it observes a new
    /// value, and the memory controller treats the change as a
    /// scheduler-index invalidation event (its cached wake and
    /// `TimingDemands`-derived knobs — PREcu coin, row-open cap — are
    /// refreshed). All shipped engines have static demands, hence the
    /// constant default.
    fn demands_epoch(&self) -> u64 {
        0
    }

    /// Publishes this engine's observability metrics onto `sink`
    /// (called by the device at snapshot time, never on the command
    /// path). `flat_bank` labels per-bank series. The default
    /// implementation samples any deferred-work queue occupancies into
    /// the [`Hist::SrqOccupancy`] histogram; engines with richer
    /// internal state (tracker pressure, per-chip skew) may record
    /// additional series. A disabled sink makes every record call a
    /// no-op, so implementations need no enablement check.
    fn record_metrics(&self, flat_bank: u32, sink: &mut MetricsSink) {
        for occ in self.srq_occupancy() {
            sink.record(Hist::SrqOccupancy, flat_bank, occ as u64);
        }
    }

    /// Serializes all runtime state (counters, trackers, queues,
    /// per-chip RNG streams) into `w`. Together with
    /// [`MitigationEngine::load_state`] this must round-trip exactly:
    /// restoring into a freshly built engine of the same configuration
    /// and then driving any event sequence must behave bit-identically
    /// to the original engine.
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter);

    /// Restores runtime state previously written by
    /// [`MitigationEngine::save_state`] into a freshly built engine of
    /// the same configuration. Configuration-derived shape (row count,
    /// thresholds, queue capacities) is validated, not restored;
    /// mismatches are reported as [`mopac_types::MopacError::Snapshot`].
    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()>;

    /// Clones the engine behind the trait object
    /// ([`crate::bank::BankMitigation`] and the DRAM device derive
    /// `Clone`).
    fn clone_box(&self) -> Box<dyn MitigationEngine>;
}

impl Clone for Box<dyn MitigationEngine> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Builds the engine for `cfg` for a bank with `rows` rows.
///
/// `rng` seeds any per-chip random streams; fork it per bank so banks
/// are independent. This is the only `MitigationKind` dispatch in the
/// workspace.
///
/// # Panics
///
/// Panics if `rows` is zero.
#[must_use]
pub fn build_engine(cfg: &MitigationConfig, rows: u32, rng: DetRng) -> Box<dyn MitigationEngine> {
    assert!(rows > 0, "bank must have rows");
    match cfg.kind {
        MitigationKind::None => Box::new(BaselineEngine::new(cfg, rows)),
        MitigationKind::Prac | MitigationKind::MopacC => Box::new(PracEngine::new(cfg, rows)),
        MitigationKind::MopacD => Box::new(MopacDEngine::new(cfg, rows, rng)),
        MitigationKind::Qprac => Box::new(QpracEngine::new(cfg, rows)),
        MitigationKind::CncPrac => Box::new(CncPracEngine::new(cfg, rows)),
        MitigationKind::Practical => Box::new(PracticalEngine::new(cfg, rows)),
    }
}

/// A registered mitigation design: a stable string key, display
/// metadata, and a preset constructor parameterized by the Rowhammer
/// threshold.
#[derive(Debug, Clone, Copy)]
pub struct EngineSpec {
    /// Stable registry key (CSV column values, CLI arguments).
    pub name: &'static str,
    /// Human-readable name (matches `MitigationKind`'s `Display`).
    pub display: &'static str,
    /// One-line description for docs and tables.
    pub summary: &'static str,
    /// Builds the design's default configuration at a threshold.
    pub preset: fn(u64) -> MitigationConfig,
}

impl EngineSpec {
    /// Whether this design tracks activations at all (everything but
    /// the baseline).
    #[must_use]
    pub fn tracks(&self) -> bool {
        // The preset's kind is threshold-independent; probe at the
        // paper's default.
        (self.preset)(500).tracks()
    }
}

/// The string-keyed registry of every mitigation design in the
/// workspace. Campaign drivers, attack suites, and benches enumerate
/// this instead of hard-coding design lists.
#[derive(Debug)]
pub struct EngineRegistry {
    specs: Vec<EngineSpec>,
}

impl EngineRegistry {
    /// The built-in designs, in canonical order (baseline first, then
    /// paper designs, then related-work plug-ins).
    pub fn builtin() -> &'static Self {
        static REGISTRY: OnceLock<EngineRegistry> = OnceLock::new();
        REGISTRY.get_or_init(|| Self {
            specs: vec![
                EngineSpec {
                    name: "baseline",
                    display: "baseline",
                    summary: "No mitigation, base DDR5 timings (performance reference).",
                    preset: |_| MitigationConfig::baseline(),
                },
                EngineSpec {
                    name: "prac",
                    display: "PRAC",
                    summary: "Per-row counting on every precharge, MOAT tracker, ABO (JEDEC PRAC).",
                    preset: MitigationConfig::prac,
                },
                EngineSpec {
                    name: "mopac-c",
                    display: "MoPAC-C",
                    summary: "Controller-side coin: probabilistic PREcu counter updates (Section 5).",
                    preset: MitigationConfig::mopac_c,
                },
                EngineSpec {
                    name: "mopac-d",
                    display: "MoPAC-D",
                    summary: "In-DRAM MINT sampling into a per-chip SRQ, drained by ABO/REF (Section 6).",
                    preset: MitigationConfig::mopac_d,
                },
                EngineSpec {
                    name: "mopac-d-nup",
                    display: "MoPAC-D",
                    summary: "MoPAC-D with non-uniform sampling of cold rows (Section 8).",
                    preset: MitigationConfig::mopac_d_nup,
                },
                EngineSpec {
                    name: "qprac",
                    display: "QPRAC",
                    summary: "Exact counting plus a priority queue mitigated proactively at REF \
                              (Woo et al., HPCA 2025).",
                    preset: MitigationConfig::qprac,
                },
                EngineSpec {
                    name: "cnc-prac",
                    display: "CnC-PRAC",
                    summary: "Base timings; counter write-backs coalesced in a queue and drained \
                              at REF/ABO (Lin et al., 2025).",
                    preset: MitigationConfig::cnc_prac,
                },
                EngineSpec {
                    name: "practical",
                    display: "PRACtical",
                    summary: "Subarray-level counter updates at base bank timings; ABO recovery \
                              stalls only the alerting bank (Nazaraliyev et al., 2025).",
                    preset: MitigationConfig::practical,
                },
            ],
        })
    }

    /// Every registered design, in canonical order.
    #[must_use]
    pub fn specs(&self) -> &[EngineSpec] {
        &self.specs
    }

    /// Looks a design up by its registry key.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&EngineSpec> {
        self.specs.iter().find(|s| s.name == name)
    }

    /// Every registry key, in canonical order.
    #[must_use]
    pub fn names(&self) -> Vec<&'static str> {
        self.specs.iter().map(|s| s.name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_resolve() {
        let reg = EngineRegistry::builtin();
        let names = reg.names();
        for name in &names {
            assert_eq!(reg.get(name).unwrap().name, *name);
        }
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate registry keys");
        assert!(reg.get("no-such-engine").is_none());
    }

    #[test]
    fn every_preset_constructs_an_engine() {
        for spec in EngineRegistry::builtin().specs() {
            let cfg = (spec.preset)(500);
            let engine = build_engine(&cfg, 128, DetRng::from_seed(7));
            assert_eq!(engine.config().kind, cfg.kind, "{}", spec.name);
            assert_eq!(engine.counter(0), 0, "{}", spec.name);
        }
    }

    #[test]
    fn demands_match_design_contracts() {
        let prac = TimingDemands::for_config(&MitigationConfig::prac(500));
        assert!(prac.always_prac_timings);
        assert_eq!(prac.precu_probability, None);

        let qprac = TimingDemands::for_config(&MitigationConfig::qprac(500));
        assert!(qprac.always_prac_timings);

        let mc = TimingDemands::for_config(&MitigationConfig::mopac_c(500));
        assert!(!mc.always_prac_timings);
        assert_eq!(mc.precu_probability, Some(0.125));
        assert_eq!(mc.row_open_cap_ns, None);
        let mc_rp = TimingDemands::for_config(&MitigationConfig::mopac_c(500).with_row_press());
        assert_eq!(mc_rp.row_open_cap_ns, Some(180.0));

        for base in [
            MitigationConfig::baseline(),
            MitigationConfig::mopac_d(500),
            MitigationConfig::cnc_prac(500),
        ] {
            assert_eq!(TimingDemands::for_config(&base), TimingDemands::base());
        }

        let practical = TimingDemands::for_config(&MitigationConfig::practical(500));
        assert!(!practical.always_prac_timings, "bank timings stay base");
        assert_eq!(practical.recovery_scope, RecoveryScope::Bank);
        assert!(practical.subarray_parallel_updates);
        assert_eq!(TimingDemands::base().recovery_scope, RecoveryScope::SubChannel);
    }

    #[test]
    fn boxed_engine_clone_is_independent() {
        let cfg = MitigationConfig::prac(500);
        let mut a = build_engine(&cfg, 64, DetRng::from_seed(1));
        let mut b = a.clone();
        a.on_activate(3, 0.0);
        a.on_precharge(3, true, 40.0);
        assert_eq!(a.counter(3), 1);
        assert_eq!(b.counter(3), 0);
        b.corrupt_counter(5, 0);
        assert_eq!(a.counter(5), 0);
    }
}
