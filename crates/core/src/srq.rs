//! MoPAC-D's Selected-Row Queue (SRQ, Section 6.1).
//!
//! Each bank buffers rows selected for deferred PRAC-counter updates in a
//! small (default 16-entry) queue. Each entry carries two counters:
//!
//! * `ACtr` — activations to the buffered row since it entered the SRQ,
//!   used to bound *tardiness* (Section 6.3): when `ACtr` exceeds `TTH`
//!   the bank forces an ABO;
//! * `SCtr` — additional selections coalesced into the entry; on drain
//!   the PRAC counter receives `1 + SCtr/p` worth of activations
//!   (Section 6.4).
//!
//! Entries drain in priority order of highest `ACtr` first.

/// One SRQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrqEntry {
    /// The buffered row address.
    pub row: u32,
    /// Activations to this row while buffered.
    pub actr: u32,
    /// Coalesced additional selections.
    pub sctr: u32,
}

/// Outcome of an SRQ insertion attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SrqInsert {
    /// A new entry was created.
    Inserted,
    /// The row was already buffered; its `SCtr` was incremented.
    Coalesced,
    /// The queue was full and the row was not present; the selection is
    /// lost (the caller should already be asserting ALERT).
    Overflowed,
}

/// A per-bank (or per-chip) Selected-Row Queue.
///
/// # Examples
///
/// ```
/// use mopac::srq::{Srq, SrqInsert};
///
/// let mut q = Srq::new(2);
/// assert_eq!(q.insert(10), SrqInsert::Inserted);
/// assert_eq!(q.insert(10), SrqInsert::Coalesced);
/// assert_eq!(q.insert(11), SrqInsert::Inserted);
/// assert!(q.is_full());
/// assert_eq!(q.insert(12), SrqInsert::Overflowed);
/// q.on_activate(10); // row 10 now has the highest ACtr
/// let e = q.pop_highest_actr().unwrap();
/// assert_eq!((e.row, e.actr, e.sctr), (10, 1, 1));
/// ```
#[derive(Debug, Clone)]
pub struct Srq {
    capacity: usize,
    entries: Vec<SrqEntry>,
}

impl Srq {
    /// Creates an empty queue with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "SRQ capacity must be positive");
        Self {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Queue capacity in entries.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of buffered entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the queue is at capacity (ABO trigger condition).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Inserts a selected row, coalescing if already present.
    pub fn insert(&mut self, row: u32) -> SrqInsert {
        if let Some(e) = self.entries.iter_mut().find(|e| e.row == row) {
            e.sctr = e.sctr.saturating_add(1);
            return SrqInsert::Coalesced;
        }
        if self.is_full() {
            return SrqInsert::Overflowed;
        }
        self.entries.push(SrqEntry {
            row,
            actr: 0,
            sctr: 0,
        });
        SrqInsert::Inserted
    }

    /// Notes an activation to `row`; increments its `ACtr` if buffered
    /// and returns the new value.
    pub fn on_activate(&mut self, row: u32) -> Option<u32> {
        let e = self.entries.iter_mut().find(|e| e.row == row)?;
        e.actr = e.actr.saturating_add(1);
        Some(e.actr)
    }

    /// The largest `ACtr` currently buffered (0 if empty).
    #[must_use]
    pub fn max_actr(&self) -> u32 {
        self.entries.iter().map(|e| e.actr).max().unwrap_or(0)
    }

    /// Removes and returns the entry with the highest `ACtr` (drain
    /// priority order).
    pub fn pop_highest_actr(&mut self) -> Option<SrqEntry> {
        let idx = self
            .entries
            .iter()
            .enumerate()
            .max_by_key(|(_, e)| e.actr)?
            .0;
        Some(self.entries.swap_remove(idx))
    }

    /// Adds `amount` to the `SCtr` of `row` if it is buffered (Row-Press
    /// damage accounting, Appendix A). Returns `true` if the row was
    /// found.
    pub fn add_sctr(&mut self, row: u32, amount: u32) -> bool {
        if let Some(e) = self.entries.iter_mut().find(|e| e.row == row) {
            e.sctr = e.sctr.saturating_add(amount);
            true
        } else {
            false
        }
    }

    /// Removes the entry for `row`, if buffered (e.g. the row was just
    /// mitigated through MOAT).
    pub fn remove_row(&mut self, row: u32) -> Option<SrqEntry> {
        let idx = self.entries.iter().position(|e| e.row == row)?;
        Some(self.entries.swap_remove(idx))
    }

    /// Iterates over buffered entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &SrqEntry> {
        self.entries.iter()
    }
}

impl mopac_types::snapshot::Snapshottable for Srq {
    /// Entry *order* is serialized verbatim: `pop_highest_actr` breaks
    /// ACtr ties by position (`max_by_key` returns the last maximum) and
    /// removal uses `swap_remove`, so re-inserting in any other order
    /// would change future drain behavior.
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_usize(self.capacity);
        w.put_usize(self.entries.len());
        for e in &self.entries {
            w.put_u32(e.row);
            w.put_u32(e.actr);
            w.put_u32(e.sctr);
        }
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        let capacity = r.take_usize()?;
        if capacity != self.capacity {
            return Err(mopac_types::MopacError::snapshot(format!(
                "SRQ capacity mismatch: snapshot {capacity}, configured {}",
                self.capacity
            )));
        }
        let n = r.take_usize()?;
        if n > capacity {
            return Err(mopac_types::MopacError::snapshot(format!(
                "SRQ holds {n} entries but capacity is {capacity}"
            )));
        }
        self.entries.clear();
        for _ in 0..n {
            self.entries.push(SrqEntry {
                row: r.take_u32()?,
                actr: r.take_u32()?,
                sctr: r.take_u32()?,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescing_increments_sctr() {
        let mut q = Srq::new(4);
        q.insert(5);
        q.insert(5);
        q.insert(5);
        assert_eq!(q.len(), 1);
        assert_eq!(q.iter().next().unwrap().sctr, 2);
    }

    #[test]
    fn actr_tracks_only_buffered_rows() {
        let mut q = Srq::new(4);
        q.insert(1);
        assert_eq!(q.on_activate(1), Some(1));
        assert_eq!(q.on_activate(1), Some(2));
        assert_eq!(q.on_activate(2), None);
        assert_eq!(q.max_actr(), 2);
    }

    #[test]
    fn drain_order_is_highest_actr_first() {
        let mut q = Srq::new(4);
        q.insert(1);
        q.insert(2);
        q.insert(3);
        q.on_activate(2);
        q.on_activate(2);
        q.on_activate(3);
        let order: Vec<u32> = std::iter::from_fn(|| q.pop_highest_actr().map(|e| e.row)).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn overflow_reported_when_full() {
        let mut q = Srq::new(1);
        assert_eq!(q.insert(1), SrqInsert::Inserted);
        assert_eq!(q.insert(2), SrqInsert::Overflowed);
        // Coalescing still works at capacity.
        assert_eq!(q.insert(1), SrqInsert::Coalesced);
    }

    #[test]
    fn remove_row_clears_entry() {
        let mut q = Srq::new(4);
        q.insert(9);
        assert!(q.remove_row(9).is_some());
        assert!(q.remove_row(9).is_none());
        assert!(q.is_empty());
    }
}
