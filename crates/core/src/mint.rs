//! The MINT window sampler (used by MoPAC-D, Section 6.1 footnote 6).
//!
//! MINT divides the activation stream into windows of `1/p` activations
//! and selects *exactly one* activation per window, chosen uniformly at
//! random at the start of the window. MoPAC-D inserts the selected row
//! into the SRQ **at the end of the window** — this closes the
//! PARA-style vulnerability where an attacker who just filled the SRQ
//! would get guaranteed-unsampled activations during the ABO window.

use mopac_types::rng::DetRng;

/// A MINT sampler for one bank (or one chip's view of a bank).
///
/// # Examples
///
/// ```
/// use mopac::mint::MintSampler;
/// use mopac_types::rng::DetRng;
///
/// let mut s = MintSampler::new(4, DetRng::from_seed(3));
/// let mut selected = 0;
/// for act in 0..400u32 {
///     if s.on_activate(act % 7).is_some() {
///         selected += 1;
///     }
/// }
/// assert_eq!(selected, 100); // exactly one selection per 4-ACT window
/// ```
#[derive(Debug, Clone)]
pub struct MintSampler {
    window: u32,
    pos: u32,
    chosen_pos: u32,
    pending: Option<u32>,
    rng: DetRng,
}

impl MintSampler {
    /// Creates a sampler with the given window length (`1/p`).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: u32, mut rng: DetRng) -> Self {
        assert!(window > 0, "window must be positive");
        let chosen_pos = rng.below(u64::from(window)) as u32;
        Self {
            window,
            pos: 0,
            chosen_pos,
            pending: None,
            rng,
        }
    }

    /// The window length `1/p`.
    #[must_use]
    pub fn window(&self) -> u32 {
        self.window
    }

    /// Feeds one activation. Returns `Some(row)` when a window closes and
    /// its selected row should be inserted into the SRQ.
    pub fn on_activate(&mut self, row: u32) -> Option<u32> {
        if self.pos == self.chosen_pos {
            self.pending = Some(row);
        }
        self.pos += 1;
        if self.pos == self.window {
            self.pos = 0;
            self.chosen_pos = self.rng.below(u64::from(self.window)) as u32;
            return self.pending.take();
        }
        None
    }
}

impl mopac_types::snapshot::Snapshottable for MintSampler {
    fn save_state(&self, w: &mut mopac_types::snapshot::SnapshotWriter) {
        w.put_u32(self.window);
        w.put_u32(self.pos);
        w.put_u32(self.chosen_pos);
        w.put_opt_u32(self.pending);
        self.rng.save_state(w);
    }

    fn load_state(
        &mut self,
        r: &mut mopac_types::snapshot::SnapshotReader<'_>,
    ) -> mopac_types::MopacResult<()> {
        let window = r.take_u32()?;
        if window != self.window {
            return Err(mopac_types::MopacError::snapshot(format!(
                "MINT window mismatch: snapshot {window}, configured {}",
                self.window
            )));
        }
        self.pos = r.take_u32()?;
        self.chosen_pos = r.take_u32()?;
        self.pending = r.take_opt_u32()?;
        self.rng.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_selection_per_window() {
        for window in [1u32, 2, 8, 16, 64] {
            let mut s = MintSampler::new(window, DetRng::from_seed(u64::from(window)));
            let windows = 200;
            let mut selections = 0;
            for act in 0..window * windows {
                if s.on_activate(act).is_some() {
                    selections += 1;
                }
            }
            assert_eq!(selections, windows, "window = {window}");
        }
    }

    #[test]
    fn selection_emitted_only_at_window_end() {
        let mut s = MintSampler::new(8, DetRng::from_seed(1));
        for act in 0..800u32 {
            let sel = s.on_activate(act);
            if sel.is_some() {
                // Window boundaries are at act = 7, 15, 23, ...
                assert_eq!(act % 8, 7, "selection at non-boundary act {act}");
            }
        }
    }

    #[test]
    fn uniform_position_within_window() {
        // Each position within the window should be selected roughly
        // uniformly across many windows.
        let window = 8u32;
        let mut s = MintSampler::new(window, DetRng::from_seed(11));
        let mut hits = [0u32; 8];
        let windows = 16_000u32;
        for w in 0..windows {
            for posn in 0..window {
                // Use the position as the row id so the returned value
                // identifies which slot was selected.
                if let Some(row) = s.on_activate(posn) {
                    hits[row as usize] += 1;
                }
                let _ = w;
            }
        }
        let expected = windows as f64 / 8.0;
        for (i, &h) in hits.iter().enumerate() {
            let rel = (f64::from(h) - expected).abs() / expected;
            assert!(rel < 0.08, "slot {i}: {h} vs {expected}");
        }
    }

    #[test]
    fn window_of_one_selects_everything() {
        let mut s = MintSampler::new(1, DetRng::from_seed(2));
        for act in 0..10u32 {
            assert_eq!(s.on_activate(act), Some(act));
        }
    }
}
