//! Deterministic, allocation-light collections for hot paths and
//! reproducible accumulators.
//!
//! `std::collections::HashMap` seeds its hasher from process-global
//! randomness, so iteration order — and therefore any accumulator that
//! folds in iteration order — varies run to run. The simulator's
//! determinism contract (bit-identical results for a given seed) bans
//! that. [`DetMap`] is a fixed-hash, open-addressed replacement for the
//! `u64`-keyed maps on simulator hot paths (prefetcher line tracking),
//! and [`DetCounter`] is the shared accumulator used by workload
//! statistics in tests and bench binaries.
//!
//! # Examples
//!
//! ```
//! use mopac_types::collections::{DetCounter, DetMap};
//!
//! let mut m: DetMap<&str> = DetMap::new();
//! m.insert(7, "seven");
//! assert_eq!(m.get(7), Some(&"seven"));
//! assert_eq!(m.remove(7), Some("seven"));
//!
//! let mut c = DetCounter::new();
//! c.bump(3);
//! c.bump(3);
//! assert_eq!(c.get(3), 2);
//! ```

/// Multiplicative (Fibonacci) hash: the fixed odd constant is
/// `2^64 / phi`, giving good bit diffusion for sequential keys without
/// any per-process randomness.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// Minimum number of slots; always a power of two.
const MIN_CAP: usize = 16;

/// A deterministic open-addressed hash map with `u64` keys.
///
/// Linear probing with backward-shift deletion (no tombstones), capacity
/// always a power of two, resized at 3/4 load. Hashing is a fixed
/// multiplicative hash, so layout and iteration order depend only on the
/// sequence of operations — never on process state.
#[derive(Debug, Clone)]
pub struct DetMap<V> {
    slots: Vec<Option<(u64, V)>>,
    len: usize,
    shift: u32,
}

impl<V> Default for DetMap<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> DetMap<V> {
    /// An empty map with the minimum capacity.
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(MIN_CAP)
    }

    /// An empty map able to hold at least `cap` entries before resizing.
    #[must_use]
    pub fn with_capacity(cap: usize) -> Self {
        let slots = (cap.max(MIN_CAP) * 4 / 3 + 1).next_power_of_two();
        let mut v = Vec::new();
        v.resize_with(slots, || None);
        Self {
            slots: v,
            len: 0,
            // `slots` is a power of two >= 16, so this never underflows.
            shift: 64 - slots.trailing_zeros(),
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn home(&self, key: u64) -> usize {
        (key.wrapping_mul(FIB) >> self.shift) as usize
    }

    /// Slot holding `key`, if present.
    fn find(&self, key: u64) -> Option<usize> {
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            match &self.slots[i] {
                None => return None,
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// True if `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Shared reference to the value for `key`.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).and_then(|i| self.slots[i].as_ref()).map(|(_, v)| v)
    }

    /// Mutable reference to the value for `key`.
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find(key)?;
        self.slots[i].as_mut().map(|(_, v)| v)
    }

    /// Insert `value` under `key`, returning any previous value.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = self.home(key);
        loop {
            match &mut self.slots[i] {
                slot @ None => {
                    *slot = Some((key, value));
                    self.len += 1;
                    return None;
                }
                Some((k, v)) if *k == key => {
                    return Some(std::mem::replace(v, value));
                }
                Some(_) => i = (i + 1) & mask,
            }
        }
    }

    /// Remove `key`, returning its value. Uses backward-shift deletion so
    /// probe chains stay contiguous without tombstones.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut i = self.find(key)?;
        let (_, value) = self.slots[i].take()?;
        self.len -= 1;
        let mask = self.mask();
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let Some((k, _)) = &self.slots[j] else {
                break;
            };
            let home = self.home(*k);
            // The entry at `j` may slide back to the hole at `i` only if
            // `i` lies on its probe path, i.e. cyclically in [home, j).
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                self.slots[i] = self.slots[j].take();
                i = j;
            }
        }
        Some(value)
    }

    /// Remove all entries, keeping the allocation.
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s = None;
        }
        self.len = 0;
    }

    /// Iterate entries in slot order — a pure function of the operation
    /// history, identical across runs and platforms.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    fn grow(&mut self) {
        let mut bigger = Self::with_capacity(self.slots.len());
        for (k, v) in self.slots.drain(..).flatten() {
            bigger.insert(k, v);
        }
        *self = bigger;
    }

    /// Serializes the map for a snapshot, including the exact slot
    /// layout.
    ///
    /// Layout is a pure function of operation history (probe chains and
    /// backward-shift deletions), so re-inserting entries on restore
    /// would diverge from the original map's future behavior. Instead
    /// the raw `(slot, key, value)` triples are written so restore
    /// reproduces the layout bit-for-bit. `save_value` serializes one
    /// `V`.
    pub fn save_state_with(
        &self,
        w: &mut crate::snapshot::SnapshotWriter,
        mut save_value: impl FnMut(&V, &mut crate::snapshot::SnapshotWriter),
    ) {
        w.put_usize(self.slots.len());
        w.put_u32(self.shift);
        w.put_usize(self.len);
        for (i, slot) in self.slots.iter().enumerate() {
            if let Some((k, v)) = slot {
                w.put_usize(i);
                w.put_u64(*k);
                save_value(v, w);
            }
        }
    }

    /// Restores a map written by [`DetMap::save_state_with`], replacing
    /// `self` entirely. `load_value` deserializes one `V`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::MopacError::Snapshot`] on truncation, an
    /// invalid slot count, an out-of-range slot index, or a duplicate
    /// slot.
    pub fn load_state_with(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
        mut load_value: impl FnMut(
            &mut crate::snapshot::SnapshotReader<'_>,
        ) -> crate::error::MopacResult<V>,
    ) -> crate::error::MopacResult<()> {
        let err = crate::error::MopacError::snapshot;
        let n_slots = r.take_usize()?;
        if !n_slots.is_power_of_two() || n_slots < MIN_CAP {
            return Err(err(format!("invalid DetMap slot count {n_slots}")));
        }
        let shift = r.take_u32()?;
        if shift != 64 - n_slots.trailing_zeros() {
            return Err(err(format!("DetMap shift {shift} inconsistent with {n_slots} slots")));
        }
        let len = r.take_usize()?;
        if len * 4 > n_slots * 3 {
            return Err(err(format!("DetMap len {len} over load factor for {n_slots} slots")));
        }
        let mut slots: Vec<Option<(u64, V)>> = Vec::new();
        slots.resize_with(n_slots, || None);
        for _ in 0..len {
            let i = r.take_usize()?;
            let key = r.take_u64()?;
            let value = load_value(r)?;
            let slot = slots
                .get_mut(i)
                .ok_or_else(|| err(format!("DetMap slot index {i} out of range")))?;
            if slot.is_some() {
                return Err(err(format!("DetMap slot {i} written twice")));
            }
            *slot = Some((key, value));
        }
        self.slots = slots;
        self.len = len;
        self.shift = shift;
        Ok(())
    }
}

/// A deterministic counting accumulator over `u64` keys.
///
/// The shared replacement for ad-hoc `HashMap<_, u32>` tallies in
/// workload tests and bench binaries: same counts, but iteration is in
/// ascending key order, so any fold over the counts is reproducible.
#[derive(Debug, Clone, Default)]
pub struct DetCounter {
    map: DetMap<u32>,
}

impl DetCounter {
    /// An empty counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Increment the count for `key`, returning the new count.
    pub fn bump(&mut self, key: u64) -> u32 {
        if let Some(c) = self.map.get_mut(key) {
            *c += 1;
            *c
        } else {
            self.map.insert(key, 1);
            1
        }
    }

    /// Current count for `key` (0 when never bumped).
    #[must_use]
    pub fn get(&self, key: u64) -> u32 {
        self.map.get(key).copied().unwrap_or(0)
    }

    /// Number of distinct keys seen.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no key has been bumped.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// `(key, count)` pairs in ascending key order.
    #[must_use]
    pub fn entries(&self) -> Vec<(u64, u32)> {
        let mut v: Vec<(u64, u32)> = self.map.iter().map(|(k, c)| (k, *c)).collect();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Counts in ascending key order.
    #[must_use]
    pub fn counts(&self) -> Vec<u32> {
        self.entries().into_iter().map(|(_, c)| c).collect()
    }
}

/// Pack a `(bank, row)` coordinate into a `DetCounter`/`DetMap` key.
#[must_use]
pub fn bank_row_key(flat_bank: u32, row: u32) -> u64 {
    (u64::from(flat_bank) << 32) | u64::from(row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::DetRng;

    #[test]
    fn basic_ops() {
        let mut m: DetMap<u32> = DetMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(0, 10), None);
        assert_eq!(m.insert(0, 11), Some(10));
        assert_eq!(m.get(0), Some(&11));
        assert!(m.contains_key(0));
        assert_eq!(m.remove(0), Some(11));
        assert_eq!(m.remove(0), None);
        assert!(m.is_empty());
    }

    #[test]
    fn grows_past_load_factor() {
        let mut m: DetMap<usize> = DetMap::new();
        for i in 0..10_000u64 {
            m.insert(i, i as usize);
        }
        assert_eq!(m.len(), 10_000);
        for i in 0..10_000u64 {
            assert_eq!(m.get(i), Some(&(i as usize)));
        }
    }

    /// Fuzz insert/remove/get against the std map (std is fine as a test
    /// oracle; only simulator results must be hasher-independent).
    #[test]
    fn matches_std_hashmap_under_fuzz() {
        let mut rng = DetRng::from_seed(0xC0_11EC);
        let mut det: DetMap<u64> = DetMap::new();
        let mut std_map: std::collections::HashMap<u64, u64> = Default::default();
        for _ in 0..50_000 {
            let key = rng.below(512);
            match rng.below(10) {
                0..=4 => {
                    let v = rng.next_u64();
                    assert_eq!(det.insert(key, v), std_map.insert(key, v));
                }
                5..=7 => assert_eq!(det.remove(key), std_map.remove(&key)),
                8 => assert_eq!(det.get(key), std_map.get(&key)),
                _ => assert_eq!(det.contains_key(key), std_map.contains_key(&key)),
            }
            assert_eq!(det.len(), std_map.len());
        }
        let mut det_entries: Vec<(u64, u64)> = det.iter().map(|(k, v)| (k, *v)).collect();
        det_entries.sort_unstable();
        let mut std_entries: Vec<(u64, u64)> = std_map.iter().map(|(k, v)| (*k, *v)).collect();
        std_entries.sort_unstable();
        assert_eq!(det_entries, std_entries);
    }

    #[test]
    fn iteration_is_deterministic() {
        let build = || {
            let mut m: DetMap<u64> = DetMap::new();
            for i in 0..200u64 {
                m.insert(i * 37, i);
            }
            for i in 0..100u64 {
                m.remove(i * 74);
            }
            m.iter().map(|(k, v)| (k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn counter_entries_sorted() {
        let mut c = DetCounter::new();
        for k in [5u64, 3, 5, 9, 3, 5] {
            c.bump(k);
        }
        assert_eq!(c.entries(), vec![(3, 2), (5, 3), (9, 1)]);
        assert_eq!(c.counts(), vec![2, 3, 1]);
        assert_eq!(c.get(5), 3);
        assert_eq!(c.get(42), 0);
    }

    /// The property that forces raw-slot serialization: after a restore,
    /// the map must behave bit-identically under *future* operations,
    /// which depend on probe-chain layout, not just contents.
    #[test]
    fn snapshot_round_trip_preserves_slot_layout() {
        use crate::snapshot::{SnapshotReader, SnapshotWriter};
        let mut rng = DetRng::from_seed(0x51A9);
        let mut m: DetMap<u64> = DetMap::new();
        for _ in 0..5_000 {
            let key = rng.below(256);
            if rng.below(3) == 0 {
                m.remove(key);
            } else {
                m.insert(key, rng.next_u64());
            }
        }
        let mut w = SnapshotWriter::new();
        m.save_state_with(&mut w, |v, w| w.put_u64(*v));
        let bytes = w.finish();

        let mut restored: DetMap<u64> = DetMap::new();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        restored
            .load_state_with(&mut r, |r| r.take_u64())
            .unwrap();

        // Identical iteration (slot) order, not just identical contents.
        let orig: Vec<(u64, u64)> = m.iter().map(|(k, v)| (k, *v)).collect();
        let rest: Vec<(u64, u64)> = restored.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(orig, rest);

        // Identical behavior under further mutation.
        let mut rng2 = rng.clone();
        for _ in 0..2_000 {
            let key = rng.below(256);
            let key2 = rng2.below(256);
            assert_eq!(key, key2);
            if rng.below(3) == 0 {
                let _ = rng2.below(3);
                assert_eq!(m.remove(key), restored.remove(key));
            } else {
                let _ = rng2.below(3);
                let v = rng.next_u64();
                let v2 = rng2.next_u64();
                assert_eq!(v, v2);
                assert_eq!(m.insert(key, v), restored.insert(key, v));
            }
        }
        let orig: Vec<(u64, u64)> = m.iter().map(|(k, v)| (k, *v)).collect();
        let rest: Vec<(u64, u64)> = restored.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(orig, rest);
    }

    #[test]
    fn bank_row_key_is_injective() {
        assert_ne!(bank_row_key(1, 0), bank_row_key(0, 1));
        assert_eq!(bank_row_key(2, 7) >> 32, 2);
        assert_eq!(bank_row_key(2, 7) & 0xFFFF_FFFF, 7);
    }
}
