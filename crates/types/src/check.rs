//! A tiny deterministic property-testing harness.
//!
//! The workspace's property tests originally used an external framework;
//! to keep the build self-contained they now run on this module. A
//! property is a closure that derives its inputs from a [`DetRng`] and
//! returns `Err(reason)` on failure. [`prop_check`] runs it for a fixed
//! number of cases with seeds derived deterministically from the property
//! name, so failures reproduce exactly and report the offending seed.
//!
//! Set `MOPAC_PROP_CASES` to scale the case count (e.g. `=1000` for a
//! deeper local run).
//!
//! # Examples
//!
//! ```
//! use mopac_types::check::prop_check;
//!
//! prop_check("addition commutes", 64, |rng| {
//!     let (a, b) = (rng.next_u64() >> 1, rng.next_u64() >> 1);
//!     if a + b == b + a {
//!         Ok(())
//!     } else {
//!         Err(format!("{a} + {b} mismatch"))
//!     }
//! });
//! ```

use crate::rng::DetRng;

/// Derives a stable 64-bit seed from a property name (FNV-1a).
#[must_use]
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Number of cases to run: `cases` scaled by `MOPAC_PROP_CASES` if set.
#[must_use]
fn case_count(cases: u32) -> u32 {
    match std::env::var("MOPAC_PROP_CASES") {
        Ok(v) => v.parse().unwrap_or(cases),
        Err(_) => cases,
    }
}

/// Runs `property` for `cases` deterministic cases.
///
/// Each case gets an independent [`DetRng`] forked from a seed derived
/// from `name`, so adding or reordering other properties never perturbs
/// this one's inputs.
///
/// # Panics
///
/// Panics with the case index, seed, and the property's reason on the
/// first failing case — the panic message is everything needed to
/// reproduce (`DetRng::from_seed(<seed>)`).
pub fn prop_check<F>(name: &str, cases: u32, mut property: F)
where
    F: FnMut(&mut DetRng) -> Result<(), String>,
{
    let root = DetRng::from_seed(name_seed(name));
    for case in 0..case_count(cases) {
        let mut rng = root.fork(u64::from(case));
        let seed = rng.seed();
        if let Err(reason) = property(&mut rng) {
            panic!("property '{name}' failed on case {case} (seed {seed:#x}): {reason}");
        }
    }
}

/// Asserts a condition inside a property, formatting a reason on failure.
///
/// Mirrors `prop_assert!` from the external framework: returns early with
/// `Err` instead of panicking so the harness can attach seed context.
#[macro_export]
macro_rules! prop_ensure {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
    ($cond:expr) => {
        if !$cond {
            return Err(format!("condition failed: {}", stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passes_trivial_property() {
        prop_check("trivially true", 32, |_rng| Ok(()));
    }

    #[test]
    #[should_panic(expected = "seed")]
    fn reports_seed_on_failure() {
        prop_check("always fails", 4, |_rng| Err("nope".into()));
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first: Vec<u64> = Vec::new();
        prop_check("collect", 8, |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second: Vec<u64> = Vec::new();
        prop_check("collect", 8, |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }

    #[test]
    fn ensure_macro_formats() {
        let f = |x: u64| -> Result<(), String> {
            prop_ensure!(x < 10, "x was {x}");
            Ok(())
        };
        assert!(f(5).is_ok());
        assert_eq!(f(12).unwrap_err(), "x was 12");
    }
}
