//! DRAM organization: channels, ranks, sub-channels, banks, rows.
//!
//! The paper's baseline (Table 3) is a 32 GB DDR5 system with one
//! channel, one rank, two sub-channels, 32 banks per sub-channel, 64K
//! rows per bank and 8 KB rows. ABO (ALERT-back-off) is sub-channel
//! scoped: an ALERT from any bank stalls all 32 banks of its
//! sub-channel.
//!
//! The topology generalizes along two axes:
//!
//! * **Channels** are architecturally independent DDR5 channels; each
//!   gets its own memory controller and device instance, which is what
//!   lets the simulator shard channel simulation across threads within
//!   one run.
//! * **Ranks** share a channel's command bus. Inside the per-channel
//!   device/controller pair, ranks are flattened into the bank
//!   dimension ([`DramGeometry::channel_view`]): a sub-channel with
//!   `ranks * banks_per_subchannel` schedulable banks. The address
//!   mapping still treats rank as its own interleaving dimension.

/// Static description of the simulated DRAM organization.
///
/// # Examples
///
/// ```
/// use mopac_types::geometry::DramGeometry;
///
/// let geom = DramGeometry::ddr5_32gb();
/// assert_eq!(geom.total_banks(), 64);
/// assert_eq!(geom.capacity_bytes(), 32 * 1024 * 1024 * 1024);
/// assert_eq!(geom.lines_per_row(), 128);
///
/// let four = DramGeometry { channels: 4, ..geom };
/// assert_eq!(four.total_banks(), 256);
/// assert_eq!(four.capacity_bytes(), 128 * 1024 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Independent DDR5 channels (1 in the paper's Table 3 system).
    pub channels: u32,
    /// Ranks per channel (1 in the paper). Ranks fold into the bank
    /// dimension inside a channel ([`Self::channel_view`]).
    pub ranks: u32,
    /// Number of sub-channels per channel (ABO scope). DDR5 DIMMs have
    /// two.
    pub subchannels: u32,
    /// Banks per sub-channel per rank (32 for DDR5: 8 bank groups x 4
    /// banks).
    pub banks_per_subchannel: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Subarrays per bank (power of two dividing `rows_per_bank`).
    /// Real DDR5 banks are built from row-buffer-local subarray mats;
    /// modelling them lets PRAC-family engines overlap counter updates
    /// across subarrays (PRACtical). `1` collapses to the historical
    /// flat-bank model and is byte-identical to it in every snapshot
    /// and statistic.
    pub subarrays_per_bank: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u32,
    /// Cache-line / memory-transaction size in bytes.
    pub line_bytes: u32,
}

impl DramGeometry {
    /// The paper's Table 3 configuration: 32 GB, 1 channel x 1 rank,
    /// 2 sub-channels x 32 banks, 64K rows per bank, 8 KB rows, 64 B
    /// lines.
    #[must_use]
    pub fn ddr5_32gb() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            subchannels: 2,
            banks_per_subchannel: 32,
            rows_per_bank: 64 * 1024,
            subarrays_per_bank: 1,
            row_bytes: 8 * 1024,
            line_bytes: 64,
        }
    }

    /// A tiny geometry for fast unit tests (1 channel, 1 rank,
    /// 2 sub-channels x 4 banks, 1K rows).
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            channels: 1,
            ranks: 1,
            subchannels: 2,
            banks_per_subchannel: 4,
            rows_per_bank: 1024,
            subarrays_per_bank: 1,
            row_bytes: 8 * 1024,
            line_bytes: 64,
        }
    }

    /// Schedulable banks per sub-channel once ranks are folded in
    /// (`ranks * banks_per_subchannel`).
    #[must_use]
    pub fn banks_per_subchannel_flat(&self) -> u32 {
        self.ranks * self.banks_per_subchannel
    }

    /// Total number of banks across all channels, ranks and
    /// sub-channels.
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        self.channels * self.subchannels * self.banks_per_subchannel_flat()
    }

    /// Total addressable capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.total_banks()) * u64::from(self.rows_per_bank) * u64::from(self.row_bytes)
    }

    /// Number of cache lines per row.
    #[must_use]
    pub fn lines_per_row(&self) -> u32 {
        self.row_bytes / self.line_bytes
    }

    /// Rows per subarray (`rows_per_bank / subarrays_per_bank`).
    #[must_use]
    pub fn rows_per_subarray(&self) -> u32 {
        debug_assert!(self.subarrays_per_bank.is_power_of_two());
        (self.rows_per_bank / self.subarrays_per_bank).max(1)
    }

    /// The subarray a row lives in, in `0..subarrays_per_bank`.
    #[must_use]
    pub fn subarray_of(&self, row: u32) -> u32 {
        (row / self.rows_per_subarray()).min(self.subarrays_per_bank.saturating_sub(1))
    }

    /// Total number of cache lines in the system.
    #[must_use]
    pub fn total_lines(&self) -> u64 {
        self.capacity_bytes() / u64::from(self.line_bytes)
    }

    /// The geometry one channel's device/controller pair simulates:
    /// a single channel whose sub-channels carry the rank-folded bank
    /// count. At 1 channel x 1 rank this is the identity, which is what
    /// keeps the generalized topology bit-identical to the historical
    /// single-instance layout.
    #[must_use]
    pub fn channel_view(&self) -> Self {
        Self {
            channels: 1,
            ranks: 1,
            banks_per_subchannel: self.banks_per_subchannel_flat(),
            ..*self
        }
    }

    /// Converts a (sub-channel, rank-folded bank) pair to a flat bank
    /// index within one channel, in `0..subchannels * ranks *
    /// banks_per_subchannel`.
    #[must_use]
    pub fn flat_bank(&self, subch: u32, bank: u32) -> u32 {
        debug_assert!(subch < self.subchannels && bank < self.banks_per_subchannel_flat());
        subch * self.banks_per_subchannel_flat() + bank
    }

    /// Inverse of [`Self::flat_bank`], extended across channels: `flat`
    /// indexes `0..total_banks()` with channel as the outermost
    /// dimension.
    #[must_use]
    pub fn split_bank(&self, flat: u32) -> BankRef {
        debug_assert!(flat < self.total_banks());
        let per_sub = self.banks_per_subchannel_flat();
        let per_channel = self.subchannels * per_sub;
        BankRef {
            channel: flat / per_channel,
            subchannel: (flat % per_channel) / per_sub,
            bank: flat % per_sub,
        }
    }

    /// A bank's flat index in `0..total_banks()` with channel as the
    /// outermost dimension (inverse of [`Self::split_bank`]).
    #[must_use]
    pub fn flat_bank_global(&self, r: BankRef) -> u32 {
        debug_assert!(r.channel < self.channels);
        r.channel * self.subchannels * self.banks_per_subchannel_flat()
            + self.flat_bank(r.subchannel, r.bank)
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::ddr5_32gb()
    }
}

/// Identifies one bank: its channel, its sub-channel, and its
/// (rank-folded) index within the sub-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BankRef {
    /// Channel index.
    pub channel: u32,
    /// Sub-channel index within the channel.
    pub subchannel: u32,
    /// Bank index within the sub-channel (ranks folded in:
    /// `rank * banks_per_subchannel + bank_in_rank`).
    pub bank: u32,
}

impl BankRef {
    /// Creates a channel-0 bank reference (the historical constructor;
    /// every pre-topology call site is a single-channel context).
    #[must_use]
    pub fn new(subchannel: u32, bank: u32) -> Self {
        Self {
            channel: 0,
            subchannel,
            bank,
        }
    }

    /// Creates a bank reference on an explicit channel.
    #[must_use]
    pub fn on_channel(channel: u32, subchannel: u32, bank: u32) -> Self {
        Self {
            channel,
            subchannel,
            bank,
        }
    }
}

impl std::fmt::Display for BankRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.channel != 0 {
            write!(f, "ch{}.", self.channel)?;
        }
        write!(f, "sc{}.b{}", self.subchannel, self.bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_geometry() {
        let g = DramGeometry::ddr5_32gb();
        assert_eq!(g.total_banks(), 64);
        assert_eq!(g.capacity_bytes(), 32 << 30);
        assert_eq!(g.lines_per_row(), 128);
        assert_eq!(g.total_lines(), (32u64 << 30) / 64);
    }

    #[test]
    fn flat_bank_round_trip() {
        let g = DramGeometry::ddr5_32gb();
        for flat in 0..g.total_banks() {
            let r = g.split_bank(flat);
            assert_eq!(g.flat_bank(r.subchannel, r.bank), flat);
            assert_eq!(g.flat_bank_global(r), flat);
        }
    }

    #[test]
    fn flat_bank_round_trip_multi_channel() {
        let g = DramGeometry {
            channels: 4,
            ranks: 2,
            ..DramGeometry::tiny()
        };
        assert_eq!(g.total_banks(), 4 * 2 * 2 * 4);
        for flat in 0..g.total_banks() {
            let r = g.split_bank(flat);
            assert_eq!(g.flat_bank_global(r), flat);
            assert!(r.channel < g.channels);
            assert!(r.bank < g.banks_per_subchannel_flat());
        }
    }

    #[test]
    fn channel_view_folds_ranks_and_preserves_identity() {
        let base = DramGeometry::tiny();
        assert_eq!(base.channel_view(), base, "1x1 view is the identity");
        let g = DramGeometry {
            channels: 2,
            ranks: 2,
            ..base
        };
        let view = g.channel_view();
        assert_eq!(view.channels, 1);
        assert_eq!(view.ranks, 1);
        assert_eq!(view.banks_per_subchannel, 8);
        assert_eq!(view.total_banks() * g.channels, g.total_banks());
    }

    #[test]
    fn bank_ref_display() {
        assert_eq!(BankRef::new(1, 7).to_string(), "sc1.b7");
        assert_eq!(BankRef::on_channel(2, 1, 7).to_string(), "ch2.sc1.b7");
        assert_eq!(BankRef::on_channel(0, 1, 7).to_string(), "sc1.b7");
    }
}
