//! DRAM organization: channels, sub-channels, banks, rows.
//!
//! The paper's baseline (Table 3) is a 32 GB DDR5 system with one rank,
//! two sub-channels, 32 banks per sub-channel, 64K rows per bank and
//! 8 KB rows. ABO (ALERT-back-off) is sub-channel scoped: an ALERT from
//! any bank stalls all 32 banks of its sub-channel.

/// Static description of the simulated DRAM organization.
///
/// # Examples
///
/// ```
/// use mopac_types::geometry::DramGeometry;
///
/// let geom = DramGeometry::ddr5_32gb();
/// assert_eq!(geom.total_banks(), 64);
/// assert_eq!(geom.capacity_bytes(), 32 * 1024 * 1024 * 1024);
/// assert_eq!(geom.lines_per_row(), 128);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramGeometry {
    /// Number of sub-channels (ABO scope). DDR5 DIMMs have two.
    pub subchannels: u32,
    /// Banks per sub-channel (32 for DDR5: 8 bank groups x 4 banks).
    pub banks_per_subchannel: u32,
    /// Rows per bank.
    pub rows_per_bank: u32,
    /// Row (page) size in bytes.
    pub row_bytes: u32,
    /// Cache-line / memory-transaction size in bytes.
    pub line_bytes: u32,
}

impl DramGeometry {
    /// The paper's Table 3 configuration: 32 GB, 2 sub-channels x 32 banks,
    /// 64K rows per bank, 8 KB rows, 64 B lines.
    #[must_use]
    pub fn ddr5_32gb() -> Self {
        Self {
            subchannels: 2,
            banks_per_subchannel: 32,
            rows_per_bank: 64 * 1024,
            row_bytes: 8 * 1024,
            line_bytes: 64,
        }
    }

    /// A tiny geometry for fast unit tests (2 sub-channels x 4 banks,
    /// 1K rows).
    #[must_use]
    pub fn tiny() -> Self {
        Self {
            subchannels: 2,
            banks_per_subchannel: 4,
            rows_per_bank: 1024,
            row_bytes: 8 * 1024,
            line_bytes: 64,
        }
    }

    /// Total number of banks across all sub-channels.
    #[must_use]
    pub fn total_banks(&self) -> u32 {
        self.subchannels * self.banks_per_subchannel
    }

    /// Total addressable capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.total_banks()) * u64::from(self.rows_per_bank) * u64::from(self.row_bytes)
    }

    /// Number of cache lines per row.
    #[must_use]
    pub fn lines_per_row(&self) -> u32 {
        self.row_bytes / self.line_bytes
    }

    /// Total number of cache lines in the system.
    #[must_use]
    pub fn total_lines(&self) -> u64 {
        self.capacity_bytes() / u64::from(self.line_bytes)
    }

    /// Converts a (sub-channel, bank-in-subchannel) pair to a flat bank
    /// index in `0..total_banks()`.
    #[must_use]
    pub fn flat_bank(&self, subch: u32, bank: u32) -> u32 {
        debug_assert!(subch < self.subchannels && bank < self.banks_per_subchannel);
        subch * self.banks_per_subchannel + bank
    }

    /// Inverse of [`Self::flat_bank`].
    #[must_use]
    pub fn split_bank(&self, flat: u32) -> BankRef {
        debug_assert!(flat < self.total_banks());
        BankRef {
            subchannel: flat / self.banks_per_subchannel,
            bank: flat % self.banks_per_subchannel,
        }
    }
}

impl Default for DramGeometry {
    fn default() -> Self {
        Self::ddr5_32gb()
    }
}

/// Identifies one bank: its sub-channel and its index within the
/// sub-channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BankRef {
    /// Sub-channel index.
    pub subchannel: u32,
    /// Bank index within the sub-channel.
    pub bank: u32,
}

impl BankRef {
    /// Creates a bank reference.
    #[must_use]
    pub fn new(subchannel: u32, bank: u32) -> Self {
        Self { subchannel, bank }
    }
}

impl std::fmt::Display for BankRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sc{}.b{}", self.subchannel, self.bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_geometry() {
        let g = DramGeometry::ddr5_32gb();
        assert_eq!(g.total_banks(), 64);
        assert_eq!(g.capacity_bytes(), 32 << 30);
        assert_eq!(g.lines_per_row(), 128);
        assert_eq!(g.total_lines(), (32u64 << 30) / 64);
    }

    #[test]
    fn flat_bank_round_trip() {
        let g = DramGeometry::ddr5_32gb();
        for flat in 0..g.total_banks() {
            let r = g.split_bank(flat);
            assert_eq!(g.flat_bank(r.subchannel, r.bank), flat);
        }
    }

    #[test]
    fn bank_ref_display() {
        assert_eq!(BankRef::new(1, 7).to_string(), "sc1.b7");
    }
}
