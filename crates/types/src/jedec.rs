//! JEDEC DDR5 timing specifications from the paper's Table 1, in
//! nanoseconds, for both the base DDR5-6000AN device and the PRAC-enabled
//! device (JESD79-5C).
//!
//! These are the ground-truth constants every other crate converts into
//! clock cycles. The PRAC column reflects the counter read-modify-write
//! folded into precharge: tRP grows 14 -> 36 ns (2.57x), tRC 46 -> 52 ns,
//! while tRAS shrinks 32 -> 16 ns (the row can close earlier because the
//! restore completes during the longer precharge).

/// DRAM timing parameters in nanoseconds (one row of the paper's Table 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingNs {
    /// Time for performing ACT (row activation to column command).
    pub t_rcd: f64,
    /// Time to precharge an open row.
    pub t_rp: f64,
    /// Minimum time a row must be kept open (ACT to PRE).
    pub t_ras: f64,
    /// Time between successive ACTs to the same bank.
    pub t_rc: f64,
    /// Refresh period in nanoseconds (32 ms).
    pub t_refw: f64,
    /// Time between successive REF commands.
    pub t_refi: f64,
    /// Execution time of one REF command.
    pub t_rfc: f64,
}

impl TimingNs {
    /// Base DDR5-6000AN timings (Table 1, "Base" column).
    #[must_use]
    pub const fn ddr5_base() -> Self {
        Self {
            t_rcd: 14.0,
            t_rp: 14.0,
            t_ras: 32.0,
            t_rc: 46.0,
            t_refw: 32.0e6,
            t_refi: 3900.0,
            t_rfc: 410.0,
        }
    }

    /// PRAC timings (Table 1, "PRAC" column): precharge performs the
    /// counter read-modify-write.
    #[must_use]
    pub const fn ddr5_prac() -> Self {
        Self {
            t_rcd: 16.0,
            t_rp: 36.0,
            t_ras: 16.0,
            t_rc: 52.0,
            t_refw: 32.0e6,
            t_refi: 3900.0,
            t_rfc: 410.0,
        }
    }
}

/// ABO (ALERT-back-off) protocol constants from Table 3 and Section 2.5.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AboSpec {
    /// Time the memory controller may keep operating normally after
    /// ALERT is asserted (ns).
    pub normal_window_ns: f64,
    /// Stall time once the MC issues the RFM (ns). With 1 RFM per ABO the
    /// DRAM is unavailable for 350 ns.
    pub stall_ns: f64,
    /// Time to perform one PRAC-counter read-modify-write for a row under
    /// ABO (ns); each ABO drains up to `stall_ns / row_update_ns = 5` rows.
    pub row_update_ns: f64,
}

impl AboSpec {
    /// The paper's configuration: 180 ns normal window + 350 ns stall
    /// (mitigation level 1, one RFM per ABO), 70 ns per row update.
    #[must_use]
    pub const fn paper_default() -> Self {
        Self {
            normal_window_ns: 180.0,
            stall_ns: 350.0,
            row_update_ns: 70.0,
        }
    }

    /// Total ALERT cost seen by the memory controller (530 ns in Table 3).
    #[must_use]
    pub fn total_alert_ns(&self) -> f64 {
        self.normal_window_ns + self.stall_ns
    }

    /// Number of row counter-updates that fit in one ABO stall (5 in the
    /// paper).
    #[must_use]
    pub fn updates_per_abo(&self) -> u32 {
        (self.stall_ns / self.row_update_ns) as u32
    }
}

impl Default for AboSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let base = TimingNs::ddr5_base();
        let prac = TimingNs::ddr5_prac();
        assert_eq!(base.t_rp, 14.0);
        assert_eq!(prac.t_rp, 36.0);
        assert_eq!(base.t_rc, 46.0);
        assert_eq!(prac.t_rc, 52.0);
        assert_eq!(base.t_ras, 32.0);
        assert_eq!(prac.t_ras, 16.0);
        // tREFW/tREFI/tRFC identical across columns.
        assert_eq!(base.t_refi, prac.t_refi);
        assert_eq!(base.t_rfc, prac.t_rfc);
    }

    #[test]
    fn abo_spec() {
        let abo = AboSpec::paper_default();
        assert_eq!(abo.total_alert_ns(), 530.0);
        assert_eq!(abo.updates_per_abo(), 5);
    }
}
