//! Simulation time: DRAM-clock cycles and nanosecond conversion.
//!
//! The whole simulator runs in the DRAM command-clock domain. For
//! DDR5-6000 the data rate is 6000 MT/s, so the command clock runs at
//! 3 GHz (one cycle = 1/3 ns). Timing parameters from the JEDEC tables are
//! specified in nanoseconds and converted (rounding up, as hardware must)
//! with [`MemClock::ns_to_cycles`].

/// A point in (or duration of) simulated time, in DRAM clock cycles.
pub type Cycle = u64;

/// Converts between nanoseconds and DRAM clock cycles for a fixed clock.
///
/// # Examples
///
/// ```
/// use mopac_types::time::MemClock;
///
/// let clk = MemClock::ddr5_6000();
/// assert_eq!(clk.ns_to_cycles(14.0), 42); // tRP = 14ns -> 42 cycles at 3GHz
/// assert_eq!(clk.ns_to_cycles(46.0), 138); // tRC = 46ns
/// assert!((clk.cycles_to_ns(42) - 14.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemClock {
    /// Clock frequency in GHz (cycles per nanosecond).
    freq_ghz: f64,
}

impl MemClock {
    /// Creates a clock with the given frequency in GHz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_ghz` is not finite and positive.
    #[must_use]
    pub fn new(freq_ghz: f64) -> Self {
        assert!(
            freq_ghz.is_finite() && freq_ghz > 0.0,
            "clock frequency must be finite and positive, got {freq_ghz}"
        );
        Self { freq_ghz }
    }

    /// The DDR5-6000 command clock (3 GHz), used throughout the paper.
    #[must_use]
    pub fn ddr5_6000() -> Self {
        Self::new(3.0)
    }

    /// Clock frequency in GHz.
    #[must_use]
    pub fn freq_ghz(&self) -> f64 {
        self.freq_ghz
    }

    /// Converts a duration in nanoseconds to clock cycles, rounding up.
    ///
    /// Hardware timing constraints must be met or exceeded, hence the
    /// ceiling. A tiny epsilon absorbs floating-point noise so that an
    /// exact multiple (e.g. 14 ns at 3 GHz) maps to exactly 42 cycles.
    #[must_use]
    pub fn ns_to_cycles(&self, ns: f64) -> Cycle {
        debug_assert!(ns >= 0.0, "negative duration {ns}");
        (ns * self.freq_ghz - 1e-9).ceil().max(0.0) as Cycle
    }

    /// Converts a cycle count back to nanoseconds.
    #[must_use]
    pub fn cycles_to_ns(&self, cycles: Cycle) -> f64 {
        cycles as f64 / self.freq_ghz
    }
}

impl Default for MemClock {
    fn default() -> Self {
        Self::ddr5_6000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_multiples_round_trip() {
        let clk = MemClock::ddr5_6000();
        assert_eq!(clk.ns_to_cycles(0.0), 0);
        assert_eq!(clk.ns_to_cycles(1.0), 3);
        assert_eq!(clk.ns_to_cycles(32.0), 96); // tRAS
        assert_eq!(clk.ns_to_cycles(36.0), 108); // PRAC tRP
        assert_eq!(clk.ns_to_cycles(52.0), 156); // PRAC tRC
        assert_eq!(clk.ns_to_cycles(3900.0), 11_700); // tREFI
        assert_eq!(clk.ns_to_cycles(410.0), 1230); // tRFC
    }

    #[test]
    fn non_multiples_round_up() {
        let clk = MemClock::ddr5_6000();
        // 0.5 ns = 1.5 cycles -> 2
        assert_eq!(clk.ns_to_cycles(0.5), 2);
        // 180 ns = 540 exactly
        assert_eq!(clk.ns_to_cycles(180.0), 540);
        // 350 ns = 1050 exactly
        assert_eq!(clk.ns_to_cycles(350.0), 1050);
        // 70 ns (per-row counter update under ABO) = 210
        assert_eq!(clk.ns_to_cycles(70.0), 210);
    }

    #[test]
    #[should_panic(expected = "clock frequency")]
    fn rejects_zero_frequency() {
        let _ = MemClock::new(0.0);
    }
}
