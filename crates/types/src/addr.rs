//! Physical addresses and their DRAM decomposition.
//!
//! The memory controller maps a [`PhysAddr`] to a [`DecodedAddr`]
//! (sub-channel, bank, row, column). The mapping policy itself (MOP etc.)
//! lives in `mopac-memctrl`; this module only defines the address types.

use crate::geometry::BankRef;

/// A byte-granular physical address.
///
/// # Examples
///
/// ```
/// use mopac_types::addr::PhysAddr;
///
/// let a = PhysAddr::new(0x1000);
/// assert_eq!(a.get(), 0x1000);
/// assert_eq!(a.line_index(64), 0x40);
/// assert_eq!(a.align_down(64), PhysAddr::new(0x1000));
/// assert_eq!(PhysAddr::new(0x1003).align_down(64), PhysAddr::new(0x1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    #[must_use]
    pub const fn new(addr: u64) -> Self {
        Self(addr)
    }

    /// Returns the raw byte address.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the cache-line index of this address (address divided by
    /// the line size).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `line_bytes` is not a power of two.
    #[must_use]
    pub fn line_index(self, line_bytes: u32) -> u64 {
        debug_assert!(line_bytes.is_power_of_two());
        self.0 >> line_bytes.trailing_zeros()
    }

    /// Rounds the address down to a multiple of `align` (a power of two).
    #[must_use]
    pub fn align_down(self, align: u32) -> Self {
        debug_assert!(align.is_power_of_two());
        Self(self.0 & !u64::from(align - 1))
    }

    /// Constructs an address from a cache-line index.
    #[must_use]
    pub fn from_line_index(line: u64, line_bytes: u32) -> Self {
        Self(line << line_bytes.trailing_zeros())
    }
}

impl From<u64> for PhysAddr {
    fn from(v: u64) -> Self {
        Self(v)
    }
}

impl From<PhysAddr> for u64 {
    fn from(a: PhysAddr) -> Self {
        a.0
    }
}

impl std::fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl std::fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A physical address decoded into DRAM coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecodedAddr {
    /// The bank (sub-channel + bank-in-subchannel) this address maps to.
    pub bank: BankRef,
    /// Row within the bank.
    pub row: u32,
    /// Column within the row, in cache-line units.
    pub col: u32,
}

impl DecodedAddr {
    /// Creates a decoded address.
    #[must_use]
    pub fn new(bank: BankRef, row: u32, col: u32) -> Self {
        Self { bank, row, col }
    }
}

impl std::fmt::Display for DecodedAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.r{}.c{}", self.bank, self.row, self.col)
    }
}

impl crate::snapshot::Snapshottable for DecodedAddr {
    fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u32(self.bank.channel);
        w.put_u32(self.bank.subchannel);
        w.put_u32(self.bank.bank);
        w.put_u32(self.row);
        w.put_u32(self.col);
    }

    fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> crate::error::MopacResult<()> {
        self.bank.channel = r.take_u32()?;
        self.bank.subchannel = r.take_u32()?;
        self.bank.bank = r.take_u32()?;
        self.row = r.take_u32()?;
        self.col = r.take_u32()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_index_and_back() {
        let a = PhysAddr::new(0xdead_bec0);
        let li = a.line_index(64);
        assert_eq!(PhysAddr::from_line_index(li, 64), a.align_down(64));
    }

    #[test]
    fn display_formats() {
        let d = DecodedAddr::new(BankRef::new(0, 3), 42, 7);
        assert_eq!(d.to_string(), "sc0.b3.r42.c7");
        assert_eq!(PhysAddr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", PhysAddr::new(255)), "ff");
    }
}
