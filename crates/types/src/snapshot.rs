//! Versioned, self-describing binary snapshot format.
//!
//! Checkpointed campaigns (ROADMAP item 5) need to persist the full
//! mutable state of a `System` mid-run and restore it bit-identically —
//! RNG streams included. This module is the wire format those snapshots
//! use: a hand-rolled writer/reader pair with no external dependencies,
//! so the workspace stays dependency-free.
//!
//! # Layout
//!
//! ```text
//! magic  "MPSN"          4 bytes
//! version u32 LE         4 bytes
//! sections...            (tag u32 LE, body-len u64 LE, body bytes) — nestable
//! checksum u64 LE        FNV-1a-64 over everything before it
//! ```
//!
//! All integers are little-endian and fixed-width; `f64` values travel as
//! their IEEE-754 bit patterns so NaN payloads and signed zeros survive.
//! Section tags make the format self-describing enough that a reader can
//! fail loudly (instead of misinterpreting bytes) when the writer and
//! reader disagree about structure — the common failure when a snapshot
//! from an older build is fed to a newer one.
//!
//! # Examples
//!
//! ```
//! use mopac_types::snapshot::{SnapshotReader, SnapshotWriter};
//!
//! let mut w = SnapshotWriter::new();
//! w.begin_section(0x1001);
//! w.put_u64(42);
//! w.put_f64(1.5);
//! w.end_section();
//! let bytes = w.finish();
//!
//! let mut r = SnapshotReader::new(&bytes).unwrap();
//! r.begin_section(0x1001).unwrap();
//! assert_eq!(r.take_u64().unwrap(), 42);
//! assert_eq!(r.take_f64().unwrap(), 1.5);
//! r.end_section().unwrap();
//! ```

use crate::error::{MopacError, MopacResult};

/// File magic: `"MPSN"` (MoPAC SNapshot).
pub const MAGIC: [u8; 4] = *b"MPSN";

/// Current format version. Bump on any layout change; readers reject
/// mismatched versions rather than guessing.
pub const VERSION: u32 = 1;

/// FNV-1a 64-bit hash — the snapshot checksum and the digest used by the
/// campaign manifest. Small, dependency-free, and stable across
/// platforms.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Anything whose runtime-mutable state can be captured into a snapshot
/// section and later restored bit-identically.
///
/// The contract: `load_state` on a freshly constructed value (same
/// configuration) followed by any sequence of operations must behave
/// bit-identically to the original value under that same sequence.
/// Configuration-derived state is *not* serialized — restore always
/// starts from a fresh construction.
pub trait Snapshottable {
    /// Appends this component's mutable state to the snapshot.
    fn save_state(&self, w: &mut SnapshotWriter);

    /// Restores this component's mutable state from the snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] when the snapshot bytes do not
    /// match what `save_state` wrote (wrong tag, truncated section, or a
    /// shape mismatch against the current configuration).
    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> MopacResult<()>;
}

/// Serializer for the snapshot format. Append-only; call [`finish`] to
/// seal the buffer with its checksum.
///
/// [`finish`]: SnapshotWriter::finish
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
    /// Byte offsets of the length fields of currently open sections.
    open: Vec<usize>,
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotWriter {
    /// Starts a snapshot: writes the magic and version header.
    #[must_use]
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        Self { buf, open: Vec::new() }
    }

    /// Opens a section tagged `tag`. Sections nest; every open section
    /// must be closed with [`end_section`](Self::end_section) before
    /// [`finish`](Self::finish).
    pub fn begin_section(&mut self, tag: u32) {
        self.buf.extend_from_slice(&tag.to_le_bytes());
        self.open.push(self.buf.len());
        self.buf.extend_from_slice(&0u64.to_le_bytes());
    }

    /// Closes the most recently opened section, backpatching its length.
    ///
    /// # Panics
    ///
    /// Panics if no section is open — always a programming error in a
    /// `save_state` implementation, never a data-dependent condition.
    pub fn end_section(&mut self) {
        let len_at = self.open.pop().unwrap_or_else(|| {
            panic!("end_section with no open section");
        });
        let body_len = (self.buf.len() - len_at - 8) as u64;
        self.buf[len_at..len_at + 8].copy_from_slice(&body_len.to_le_bytes());
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Appends an `f64` as its IEEE-754 bit pattern, so restore is
    /// bit-exact (NaN payloads and `-0.0` included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends `Some`/`None` as a presence byte plus the value.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends `Some`/`None` as a presence byte plus the value.
    pub fn put_opt_u32(&mut self, v: Option<u32>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u32(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends `Some`/`None` as a presence byte plus the bit pattern.
    pub fn put_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_f64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }

    /// Seals the snapshot: appends the FNV-1a-64 checksum and returns the
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if a section is still open (a `save_state` bug).
    #[must_use]
    pub fn finish(mut self) -> Vec<u8> {
        assert!(self.open.is_empty(), "finish with {} open section(s)", self.open.len());
        let sum = fnv1a64(&self.buf);
        self.buf.extend_from_slice(&sum.to_le_bytes());
        self.buf
    }
}

/// Deserializer for the snapshot format. Verifies the magic, version,
/// and checksum up front, then replays sections in writer order.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    pos: usize,
    /// End offsets of currently open sections (innermost last).
    ends: Vec<usize>,
}

fn snap_err(message: impl Into<String>) -> MopacError {
    MopacError::Snapshot { message: message.into() }
}

impl<'a> SnapshotReader<'a> {
    /// Validates the header and checksum and positions the reader at the
    /// first section.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on a short buffer, bad magic,
    /// version mismatch, or checksum failure.
    pub fn new(bytes: &'a [u8]) -> MopacResult<Self> {
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(snap_err(format!("snapshot too short: {} bytes", bytes.len())));
        }
        if bytes[..4] != MAGIC {
            return Err(snap_err("bad snapshot magic"));
        }
        let body = &bytes[..bytes.len() - 8];
        let mut sum = [0u8; 8];
        sum.copy_from_slice(&bytes[bytes.len() - 8..]);
        let expect = u64::from_le_bytes(sum);
        let got = fnv1a64(body);
        if got != expect {
            return Err(snap_err(format!(
                "snapshot checksum mismatch: stored {expect:#018x}, computed {got:#018x}"
            )));
        }
        let mut ver = [0u8; 4];
        ver.copy_from_slice(&bytes[4..8]);
        let version = u32::from_le_bytes(ver);
        if version != VERSION {
            return Err(snap_err(format!(
                "snapshot version {version} unsupported (reader speaks {VERSION})"
            )));
        }
        Ok(Self { buf: body, pos: 8, ends: Vec::new() })
    }

    fn take(&mut self, n: usize) -> MopacResult<&'a [u8]> {
        let limit = self.ends.last().copied().unwrap_or(self.buf.len());
        if self.pos + n > limit {
            return Err(snap_err(format!(
                "snapshot truncated: need {n} bytes at offset {}, section ends at {limit}",
                self.pos
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Opens the next section, verifying its tag is `tag`.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on a tag mismatch or a section
    /// body that overruns its parent.
    pub fn begin_section(&mut self, tag: u32) -> MopacResult<()> {
        let raw = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(raw);
        let got = u32::from_le_bytes(b);
        if got != tag {
            return Err(snap_err(format!(
                "section tag mismatch: expected {tag:#010x}, found {got:#010x}"
            )));
        }
        let len = self.take_u64()? as usize;
        let limit = self.ends.last().copied().unwrap_or(self.buf.len());
        let end = self.pos.checked_add(len).filter(|&e| e <= limit).ok_or_else(|| {
            snap_err(format!("section {tag:#010x} length {len} overruns enclosing scope"))
        })?;
        self.ends.push(end);
        Ok(())
    }

    /// Closes the innermost section, verifying it was fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] when bytes remain unread (a
    /// writer/reader shape mismatch) or no section is open.
    pub fn end_section(&mut self) -> MopacResult<()> {
        let end = self
            .ends
            .pop()
            .ok_or_else(|| snap_err("end_section with no open section"))?;
        if self.pos != end {
            return Err(snap_err(format!(
                "section not fully consumed: {} byte(s) left",
                end - self.pos
            )));
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on truncation.
    pub fn take_u8(&mut self) -> MopacResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on truncation.
    pub fn take_u32(&mut self) -> MopacResult<u32> {
        let raw = self.take(4)?;
        let mut b = [0u8; 4];
        b.copy_from_slice(raw);
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on truncation.
    pub fn take_u64(&mut self) -> MopacResult<u64> {
        let raw = self.take(8)?;
        let mut b = [0u8; 8];
        b.copy_from_slice(raw);
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `usize` written with [`SnapshotWriter::put_usize`].
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on truncation or a value that
    /// does not fit this platform's `usize`.
    pub fn take_usize(&mut self) -> MopacResult<usize> {
        let v = self.take_u64()?;
        usize::try_from(v).map_err(|_| snap_err(format!("usize value {v} out of range")))
    }

    /// Reads a `bool`.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on truncation or a byte that is
    /// neither 0 nor 1.
    pub fn take_bool(&mut self) -> MopacResult<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(snap_err(format!("invalid bool byte {b:#04x}"))),
        }
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on truncation.
    pub fn take_f64(&mut self) -> MopacResult<f64> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads an `Option<u64>`.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on truncation or a bad presence
    /// byte.
    pub fn take_opt_u64(&mut self) -> MopacResult<Option<u64>> {
        if self.take_bool()? {
            Ok(Some(self.take_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an `Option<u32>`.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on truncation or a bad presence
    /// byte.
    pub fn take_opt_u32(&mut self) -> MopacResult<Option<u32>> {
        if self.take_bool()? {
            Ok(Some(self.take_u32()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an `Option<f64>`.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on truncation or a bad presence
    /// byte.
    pub fn take_opt_f64(&mut self) -> MopacResult<Option<f64>> {
        if self.take_bool()? {
            Ok(Some(self.take_f64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on truncation.
    pub fn take_bytes(&mut self) -> MopacResult<&'a [u8]> {
        let len = self.take_usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// Returns [`MopacError::Snapshot`] on truncation or invalid UTF-8.
    pub fn take_str(&mut self) -> MopacResult<&'a str> {
        let raw = self.take_bytes()?;
        std::str::from_utf8(raw).map_err(|e| snap_err(format!("invalid UTF-8 in snapshot: {e}")))
    }

    /// True once every byte (checksum excluded) has been consumed and no
    /// section remains open.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.ends.is_empty() && self.pos == self.buf.len()
    }
}

/// Validates that a reader consumed its snapshot completely — the
/// end-of-restore check every `load_state` driver should make.
///
/// # Errors
///
/// Returns [`MopacError::Snapshot`] when trailing bytes remain.
pub fn expect_exhausted(r: &SnapshotReader<'_>) -> MopacResult<()> {
    if r.is_exhausted() {
        Ok(())
    } else {
        Err(snap_err("snapshot has trailing unread bytes"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_primitives() {
        let mut w = SnapshotWriter::new();
        w.begin_section(1);
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_usize(12345);
        w.put_bool(true);
        w.put_bool(false);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_opt_u64(Some(9));
        w.put_opt_u64(None);
        w.put_opt_u32(Some(3));
        w.put_str("héllo");
        w.end_section();
        let bytes = w.finish();

        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.begin_section(1).unwrap();
        assert_eq!(r.take_u8().unwrap(), 7);
        assert_eq!(r.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64().unwrap(), u64::MAX);
        assert_eq!(r.take_usize().unwrap(), 12345);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.take_f64().unwrap().is_nan());
        assert_eq!(r.take_opt_u64().unwrap(), Some(9));
        assert_eq!(r.take_opt_u64().unwrap(), None);
        assert_eq!(r.take_opt_u32().unwrap(), Some(3));
        assert_eq!(r.take_str().unwrap(), "héllo");
        r.end_section().unwrap();
        assert!(r.is_exhausted());
        expect_exhausted(&r).unwrap();
    }

    #[test]
    fn nested_sections() {
        let mut w = SnapshotWriter::new();
        w.begin_section(0xA);
        w.put_u64(1);
        w.begin_section(0xB);
        w.put_u64(2);
        w.end_section();
        w.put_u64(3);
        w.end_section();
        let bytes = w.finish();

        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.begin_section(0xA).unwrap();
        assert_eq!(r.take_u64().unwrap(), 1);
        r.begin_section(0xB).unwrap();
        assert_eq!(r.take_u64().unwrap(), 2);
        r.end_section().unwrap();
        assert_eq!(r.take_u64().unwrap(), 3);
        r.end_section().unwrap();
        assert!(r.is_exhausted());
    }

    #[test]
    fn corruption_is_detected() {
        let mut w = SnapshotWriter::new();
        w.begin_section(5);
        w.put_u64(0x1234);
        w.end_section();
        let mut bytes = w.finish();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let err = SnapshotReader::new(&bytes).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
    }

    #[test]
    fn tag_mismatch_is_detected() {
        let mut w = SnapshotWriter::new();
        w.begin_section(5);
        w.end_section();
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        let err = r.begin_section(6).unwrap_err();
        assert!(err.to_string().contains("tag mismatch"), "{err}");
    }

    #[test]
    fn underconsumed_section_is_detected() {
        let mut w = SnapshotWriter::new();
        w.begin_section(5);
        w.put_u64(1);
        w.end_section();
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.begin_section(5).unwrap();
        let err = r.end_section().unwrap_err();
        assert!(err.to_string().contains("not fully consumed"), "{err}");
    }

    #[test]
    fn section_cannot_read_past_its_end() {
        let mut w = SnapshotWriter::new();
        w.begin_section(5);
        w.put_u32(1);
        w.end_section();
        w.begin_section(6);
        w.put_u64(2);
        w.end_section();
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        r.begin_section(5).unwrap();
        // The section holds only 4 bytes; a u64 read must fail instead of
        // bleeding into the next section.
        assert!(r.take_u64().is_err());
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut w = SnapshotWriter::new();
        w.begin_section(1);
        w.end_section();
        let mut bytes = w.finish();
        // Patch the version field and re-seal the checksum.
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let n = bytes.len();
        let sum = fnv1a64(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = SnapshotReader::new(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn fnv_reference_values() {
        // Published FNV-1a-64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
