//! Observability layer: a typed metrics registry plus a structured
//! event-trace ring, both designed around one invariant — **with the
//! sink disabled, instrumented code is bit-identical to uninstrumented
//! code** (no allocation, no RNG draws, no floating-point, nothing but
//! one branch per call site).
//!
//! The paper's entire evaluation (Figs. 7–13, Table 4) is a story told
//! through counters; this module gives every layer of the simulator one
//! vocabulary for them:
//!
//! * [`Counter`] / [`Gauge`] — *typed* scalar metrics. Names are enum
//!   variants, not strings, so the hot-path increment is an array index
//!   and a registry can never be polluted by a typo'd key.
//! * [`Log2Histogram`] — fixed-bucket (power-of-two) histograms for
//!   latency- and gap-shaped quantities; 65 buckets cover the full
//!   `u64` range with no allocation after construction.
//! * [`Hist`] — the typed histogram names, labeled by a small integer
//!   (sub-channel, flat bank, or engine index) at record time.
//! * [`TraceRing`] — a bounded ring of cycle-stamped
//!   [`TraceEvent`]s (ACT/PRE/REF/RFM/ALERT/mitigation); memory use is
//!   capped, old events are dropped (and counted) once full.
//! * [`MetricsSink`] — the handle threaded through the controller, the
//!   DRAM device and the system. Constructed disabled by default;
//!   every record method is an inlined no-op until
//!   [`MetricsSink::enabled`] replaces it.
//! * [`MetricsSnapshot`] — a plain-data, `Send` export of a sink
//!   (counters, gauges, histogram percentiles, trace events) that can
//!   cross campaign threads and serialize to CSV or JSONL.
//!
//! The legacy stats structs (`McStats`, `DramStats`, …) remain the
//! source of truth for their public fields — which is what makes the
//! disabled-mode bit-identity invariant trivial — and export themselves
//! onto a registry via `Counter` entries when a snapshot is taken. See
//! DESIGN.md §11.

use crate::error::{MopacError, MopacResult};
use crate::snapshot::{SnapshotReader, SnapshotWriter, Snapshottable};
use crate::time::Cycle;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Typed scalar counters. One variant per metric; the registry stores
/// them in a fixed array indexed by discriminant, so incrementing is
/// O(1) with no hashing and no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Counter {
    /// MC: reads completed.
    McReadsDone,
    /// MC: writes accepted.
    McWritesDone,
    /// MC: sum of read latencies (cycles).
    McReadLatencySum,
    /// MC: RFMs issued in response to ALERT.
    McRfmsIssued,
    /// MC: cycles stalled for ABO.
    McAboStallCycles,
    /// MC: cycles with queued work but no command issued.
    McIdleWithWork,
    /// MC: cycles in refresh-drain mode.
    McRefreshModeCycles,
    /// DRAM: activations.
    DramActivates,
    /// DRAM: reads.
    DramReads,
    /// DRAM: writes.
    DramWrites,
    /// DRAM: normal precharges.
    DramPrecharges,
    /// DRAM: counter-update precharges (PRAC / PREcu).
    DramPrechargesCu,
    /// DRAM: REF commands.
    DramRefreshes,
    /// DRAM: RFM commands.
    DramRfms,
    /// DRAM: ALERTs caused by mitigation need.
    DramAlertsMitigation,
    /// DRAM: ALERTs caused by a full SRQ.
    DramAlertsSrqFull,
    /// DRAM: ALERTs caused by tardiness.
    DramAlertsTardiness,
    /// DRAM: aggressor-row mitigations.
    DramMitigations,
    /// DRAM: deferred counter updates.
    DramDeferredUpdates,
    /// DRAM: injected faults.
    DramInjectedFaults,
    /// DRAM: bank-cycles spent blocked by ABO/RFM recovery (the stall
    /// window times the number of banks it blocked — sub-channel-scoped
    /// recovery charges every bank, bank-scoped recovery only the
    /// alerting ones).
    DramBlockedBankCycles,
    /// DRAM: activations issued while a deferred counter update was
    /// still in flight in a *different* subarray of the same bank (the
    /// parallelism PRACtical's subarray-level update unlocks — PRAC
    /// would have serialized these behind the long tRP).
    DramSubarrayParallelUpdates,
    /// DRAM: victim-word bits flipped by disturbance (flip plane).
    DramBitFlips,
    /// DRAM: single-bit flips scrubbed by on-die SEC ECC on read/REF.
    DramEccCorrections,
    /// DRAM: reads that returned corrupted (uncorrectable) victim data.
    DramCorruptedReads,
    /// Engines: activations observed.
    EngineActivations,
    /// Engines: counter updates performed.
    EngineCounterUpdates,
    /// Engines: SRQ insertions.
    EngineSrqInsertions,
    /// Engines: SRQ overflows.
    EngineSrqOverflows,
    /// Engines: mitigations performed.
    EngineMitigations,
    /// Engines: update precharges.
    EngineUpdatePrecharges,
    /// Engines: ABO-forced mitigations.
    EngineAboMitigations,
    /// Engines: proactive (REF-piggybacked) mitigations.
    EngineProactiveMitigations,
    /// Engines: deferred updates drained at REF.
    EngineRefDrainedUpdates,
    /// LLC: accesses.
    LlcAccesses,
    /// LLC: misses.
    LlcMisses,
    /// LLC: writebacks.
    LlcWritebacks,
    /// Prefetcher: requests issued.
    PrefetchIssued,
    /// Prefetcher: demand reads fully absorbed.
    PrefetchHits,
    /// Prefetcher: demand reads that piggybacked on an in-flight line.
    PrefetchLateHits,
    /// Trace ring: events dropped because the ring was full.
    TraceEventsDropped,
    /// Event kernel: channel-tick synchronization rounds (one per
    /// per-cycle fork-join, one per macro batch).
    KernelSyncRounds,
}

impl Counter {
    /// Every counter, in declaration order (export order).
    pub const ALL: [Counter; 42] = [
        Counter::McReadsDone,
        Counter::McWritesDone,
        Counter::McReadLatencySum,
        Counter::McRfmsIssued,
        Counter::McAboStallCycles,
        Counter::McIdleWithWork,
        Counter::McRefreshModeCycles,
        Counter::DramActivates,
        Counter::DramReads,
        Counter::DramWrites,
        Counter::DramPrecharges,
        Counter::DramPrechargesCu,
        Counter::DramRefreshes,
        Counter::DramRfms,
        Counter::DramAlertsMitigation,
        Counter::DramAlertsSrqFull,
        Counter::DramAlertsTardiness,
        Counter::DramMitigations,
        Counter::DramDeferredUpdates,
        Counter::DramInjectedFaults,
        Counter::DramBlockedBankCycles,
        Counter::DramSubarrayParallelUpdates,
        Counter::DramBitFlips,
        Counter::DramEccCorrections,
        Counter::DramCorruptedReads,
        Counter::EngineActivations,
        Counter::EngineCounterUpdates,
        Counter::EngineSrqInsertions,
        Counter::EngineSrqOverflows,
        Counter::EngineMitigations,
        Counter::EngineUpdatePrecharges,
        Counter::EngineAboMitigations,
        Counter::EngineProactiveMitigations,
        Counter::EngineRefDrainedUpdates,
        Counter::LlcAccesses,
        Counter::LlcMisses,
        Counter::LlcWritebacks,
        Counter::PrefetchIssued,
        Counter::PrefetchHits,
        Counter::PrefetchLateHits,
        Counter::TraceEventsDropped,
        Counter::KernelSyncRounds,
    ];

    /// Stable export name (`layer.metric`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::McReadsDone => "mc.reads_done",
            Counter::McWritesDone => "mc.writes_done",
            Counter::McReadLatencySum => "mc.read_latency_sum",
            Counter::McRfmsIssued => "mc.rfms_issued",
            Counter::McAboStallCycles => "mc.abo_stall_cycles",
            Counter::McIdleWithWork => "mc.idle_with_work",
            Counter::McRefreshModeCycles => "mc.refresh_mode_cycles",
            Counter::DramActivates => "dram.activates",
            Counter::DramReads => "dram.reads",
            Counter::DramWrites => "dram.writes",
            Counter::DramPrecharges => "dram.precharges",
            Counter::DramPrechargesCu => "dram.precharges_cu",
            Counter::DramRefreshes => "dram.refreshes",
            Counter::DramRfms => "dram.rfms",
            Counter::DramAlertsMitigation => "dram.alerts_mitigation",
            Counter::DramAlertsSrqFull => "dram.alerts_srq_full",
            Counter::DramAlertsTardiness => "dram.alerts_tardiness",
            Counter::DramMitigations => "dram.mitigations",
            Counter::DramDeferredUpdates => "dram.deferred_updates",
            Counter::DramInjectedFaults => "dram.injected_faults",
            Counter::DramBlockedBankCycles => "dram.blocked_bank_cycles",
            Counter::DramSubarrayParallelUpdates => "dram.subarray_parallel_updates",
            Counter::DramBitFlips => "dram.bit_flips",
            Counter::DramEccCorrections => "dram.ecc_corrections",
            Counter::DramCorruptedReads => "dram.corrupted_reads",
            Counter::EngineActivations => "engine.activations",
            Counter::EngineCounterUpdates => "engine.counter_updates",
            Counter::EngineSrqInsertions => "engine.srq_insertions",
            Counter::EngineSrqOverflows => "engine.srq_overflows",
            Counter::EngineMitigations => "engine.mitigations",
            Counter::EngineUpdatePrecharges => "engine.update_precharges",
            Counter::EngineAboMitigations => "engine.abo_mitigations",
            Counter::EngineProactiveMitigations => "engine.proactive_mitigations",
            Counter::EngineRefDrainedUpdates => "engine.ref_drained_updates",
            Counter::LlcAccesses => "llc.accesses",
            Counter::LlcMisses => "llc.misses",
            Counter::LlcWritebacks => "llc.writebacks",
            Counter::PrefetchIssued => "prefetch.issued",
            Counter::PrefetchHits => "prefetch.hits",
            Counter::PrefetchLateHits => "prefetch.late_hits",
            Counter::TraceEventsDropped => "trace.events_dropped",
            Counter::KernelSyncRounds => "kernel.sync_rounds",
        }
    }
}

/// Typed gauges (point-in-time values, overwritten on set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(usize)]
pub enum Gauge {
    /// Total cycles simulated at snapshot time.
    Cycles,
    /// Requests queued in the MC at snapshot time.
    McQueued,
    /// SRQ occupancy of one engine instance (labeled use goes through
    /// [`Hist::SrqOccupancy`]; this gauge holds the max across banks).
    EngineSrqOccupancyMax,
    /// Rowhammer-oracle violations at snapshot time.
    OracleViolations,
}

impl Gauge {
    /// Every gauge, in declaration order.
    pub const ALL: [Gauge; 4] = [
        Gauge::Cycles,
        Gauge::McQueued,
        Gauge::EngineSrqOccupancyMax,
        Gauge::OracleViolations,
    ];

    /// Stable export name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Gauge::Cycles => "sim.cycles",
            Gauge::McQueued => "mc.queued",
            Gauge::EngineSrqOccupancyMax => "engine.srq_occupancy_max",
            Gauge::OracleViolations => "sim.oracle_violations",
        }
    }
}

/// Typed histogram names. Each recording carries a small integer label
/// (sub-channel, flat bank, or engine index), so distributions stay
/// per-bank / per-engine without string keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Hist {
    /// Read latency, enqueue to data completion (cycles); labeled by
    /// sub-channel.
    ReadLatency,
    /// Gap between consecutive ACTs on a sub-channel (cycles).
    InterActGap,
    /// ALERT assertion to RFM service (cycles); labeled by sub-channel.
    AboServiceTime,
    /// SRQ occupancy sampled at engine export; labeled by flat bank.
    SrqOccupancy,
    /// Open time of a row at precharge (cycles); labeled by
    /// sub-channel.
    RowOpenTime,
    /// Cycles covered per macro batch in the batched channel-shard
    /// handoff (label 0; the system records one sample per batch).
    KernelBatchLen,
}

impl Hist {
    /// Stable export name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Hist::ReadLatency => "mc.read_latency",
            Hist::InterActGap => "dram.inter_act_gap",
            Hist::AboServiceTime => "dram.abo_service_time",
            Hist::SrqOccupancy => "engine.srq_occupancy",
            Hist::RowOpenTime => "dram.row_open_time",
            Hist::KernelBatchLen => "kernel.batch_len",
        }
    }

    /// Stable on-disk tag for snapshots (the `#[repr(u8)]`
    /// discriminant).
    #[must_use]
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Hist::tag`].
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Hist::ReadLatency),
            1 => Some(Hist::InterActGap),
            2 => Some(Hist::AboServiceTime),
            3 => Some(Hist::SrqOccupancy),
            4 => Some(Hist::RowOpenTime),
            5 => Some(Hist::KernelBatchLen),
            _ => None,
        }
    }
}

/// A log2-bucketed histogram over `u64` values: bucket 0 holds the
/// value 0, bucket `k` (1..=64) holds values in `[2^(k-1), 2^k)`. The
/// bucket count is fixed, so recording never allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// Bucket index for `value` (0 for 0, else `64 - leading_zeros`).
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `idx` (`2^idx - 1`, saturating).
    #[must_use]
    pub fn bucket_upper(idx: usize) -> u64 {
        if idx >= 64 {
            u64::MAX
        } else {
            (1u64 << idx) - 1
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 if empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0.0 if empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts (index = [`Log2Histogram::bucket_of`]).
    #[must_use]
    pub fn buckets(&self) -> &[u64; 65] {
        &self.buckets
    }

    /// Approximate quantile `q` in `[0, 1]`: the inclusive upper bound
    /// of the bucket containing the `ceil(q * count)`-th observation
    /// (clamped to the observed max). Exact to within one power of two
    /// — the resolution the fixed buckets buy.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(idx).min(self.max);
            }
        }
        self.max
    }
}

/// What kind of DRAM-protocol event a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Row activation (`value` = row).
    Act,
    /// Normal precharge (`value` = row).
    Pre,
    /// Counter-update precharge (`value` = row).
    PreCu,
    /// All-bank refresh (`value` = first refreshed row).
    Ref,
    /// RFM / ABO service (`value` = ALERT-to-service cycles, 0 if no
    /// ALERT was pending).
    Rfm,
    /// ALERT assertion (`value` = cause: 0 mitigation, 1 SRQ-full,
    /// 2 tardiness).
    Alert,
    /// Aggressor-row mitigation batch (`value` = rows mitigated).
    Mitigation,
    /// Victim-word bit flips injected by the flip plane (`value` =
    /// bits flipped by this activation's disturbance).
    BitFlip,
}

impl TraceEventKind {
    /// Stable export name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::Act => "ACT",
            TraceEventKind::Pre => "PRE",
            TraceEventKind::PreCu => "PRECU",
            TraceEventKind::Ref => "REF",
            TraceEventKind::Rfm => "RFM",
            TraceEventKind::Alert => "ALERT",
            TraceEventKind::Mitigation => "MITIGATION",
            TraceEventKind::BitFlip => "BITFLIP",
        }
    }

    /// Stable on-disk tag for snapshots.
    #[must_use]
    pub fn tag(self) -> u8 {
        match self {
            TraceEventKind::Act => 0,
            TraceEventKind::Pre => 1,
            TraceEventKind::PreCu => 2,
            TraceEventKind::Ref => 3,
            TraceEventKind::Rfm => 4,
            TraceEventKind::Alert => 5,
            TraceEventKind::Mitigation => 6,
            TraceEventKind::BitFlip => 7,
        }
    }

    /// Inverse of [`TraceEventKind::tag`].
    #[must_use]
    pub fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(TraceEventKind::Act),
            1 => Some(TraceEventKind::Pre),
            2 => Some(TraceEventKind::PreCu),
            3 => Some(TraceEventKind::Ref),
            4 => Some(TraceEventKind::Rfm),
            5 => Some(TraceEventKind::Alert),
            6 => Some(TraceEventKind::Mitigation),
            7 => Some(TraceEventKind::BitFlip),
            _ => None,
        }
    }
}

/// One cycle-stamped protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle the event happened at.
    pub cycle: Cycle,
    /// What happened.
    pub kind: TraceEventKind,
    /// Channel.
    pub channel: u32,
    /// Sub-channel.
    pub subchannel: u32,
    /// Bank (0 for sub-channel-wide events: REF, RFM, ALERT).
    pub bank: u32,
    /// Kind-specific payload (see [`TraceEventKind`]).
    pub value: u64,
    /// Subarray within the bank (schema v2). Populated for row-level
    /// events (ACT, PRE, PREcu) on subarray-aware geometries; `0` for
    /// bank- and sub-channel-wide events and on flat-bank geometries.
    pub subarray: u32,
}

impl TraceEvent {
    /// CSV row matching [`TraceRing::CSV_HEADER`].
    #[must_use]
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{}",
            self.cycle,
            self.kind.name(),
            self.channel,
            self.subchannel,
            self.bank,
            self.value,
            self.subarray
        )
    }

    /// One JSONL line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        format!(
            "{{\"cycle\":{},\"kind\":\"{}\",\"ch\":{},\"sc\":{},\"bank\":{},\"value\":{},\"subarray\":{}}}",
            self.cycle,
            self.kind.name(),
            self.channel,
            self.subchannel,
            self.bank,
            self.value,
            self.subarray
        )
    }
}

/// A bounded ring of [`TraceEvent`]s. Pushing past the capacity drops
/// the *oldest* event (the recent tail is what post-mortems need) and
/// counts the drop, so memory stays bounded no matter how long the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRing {
    buf: std::collections::VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    /// Trace export schema version. Version 2 appended the `subarray`
    /// column; all version-1 columns kept their name and position, so
    /// v1 consumers that index columns by name keep working.
    pub const SCHEMA_VERSION: u32 = 2;

    /// CSV header for [`TraceEvent::to_csv_row`].
    pub const CSV_HEADER: &'static str = "cycle,kind,channel,subchannel,bank,value,subarray";

    /// A ring holding at most `capacity` events (0 disables recording).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            buf: std::collections::VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() >= self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Events held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted or refused because of the bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The configured bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Renders the ring as CSV (header + one row per event).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(Self::CSV_HEADER);
        out.push('\n');
        for e in &self.buf {
            out.push_str(&e.to_csv_row());
            out.push('\n');
        }
        out
    }

    /// Renders the ring as JSONL (one object per line).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.buf {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }
}

/// The registry: typed counters, gauges, and labeled histograms.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRegistry {
    counters: [u64; Counter::ALL.len()],
    gauges: [u64; Gauge::ALL.len()],
    /// Labeled histograms, keyed `(histogram, label)`. A `BTreeMap`
    /// keeps export order deterministic.
    hists: BTreeMap<(Hist, u32), Log2Histogram>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self {
            counters: [0; Counter::ALL.len()],
            gauges: [0; Gauge::ALL.len()],
            hists: BTreeMap::new(),
        }
    }
}

impl MetricsRegistry {
    /// Adds `v` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, v: u64) {
        self.counters[c as usize] += v;
    }

    /// Overwrites a counter (used when exporting an externally
    /// maintained stats struct onto the registry).
    #[inline]
    pub fn set_counter(&mut self, c: Counter, v: u64) {
        self.counters[c as usize] = v;
    }

    /// Reads a counter.
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&mut self, g: Gauge, v: u64) {
        self.gauges[g as usize] = v;
    }

    /// Reads a gauge.
    #[must_use]
    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g as usize]
    }

    /// Records one observation into histogram `h` under `label`.
    #[inline]
    pub fn record(&mut self, h: Hist, label: u32, value: u64) {
        self.hists.entry((h, label)).or_default().record(value);
    }

    /// The histogram for `(h, label)`, if anything was recorded.
    #[must_use]
    pub fn hist(&self, h: Hist, label: u32) -> Option<&Log2Histogram> {
        self.hists.get(&(h, label))
    }

    /// All histograms, in deterministic key order.
    pub fn hists(&self) -> impl Iterator<Item = (&(Hist, u32), &Log2Histogram)> {
        self.hists.iter()
    }

    /// A merged view of one histogram across all labels (e.g. the
    /// device-wide read-latency distribution).
    #[must_use]
    pub fn hist_merged(&self, h: Hist) -> Log2Histogram {
        let mut merged = Log2Histogram::default();
        for ((hh, _), src) in &self.hists {
            if *hh != h {
                continue;
            }
            for (idx, &n) in src.buckets.iter().enumerate() {
                merged.buckets[idx] += n;
            }
            merged.count += src.count;
            merged.sum = merged.sum.saturating_add(src.sum);
            if src.count > 0 {
                merged.min = merged.min.min(src.min);
                merged.max = merged.max.max(src.max);
            }
        }
        merged
    }
}

/// Sink configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkConfig {
    /// Trace-ring bound (events). 0 disables event tracing while
    /// keeping counters and histograms live.
    pub trace_capacity: usize,
}

impl Default for SinkConfig {
    fn default() -> Self {
        Self {
            trace_capacity: 65_536,
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct SinkInner {
    registry: MetricsRegistry,
    ring: TraceRing,
}

/// The recording handle threaded through the simulator layers.
///
/// Disabled (the default), every record method reduces to a branch on
/// a `None` — no allocation, no hashing, no floating point — which is
/// what keeps instrumented runs bit-identical and within noise of
/// uninstrumented ones. [`MetricsSink::enabled`] swaps in a live
/// [`MetricsRegistry`] + [`TraceRing`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSink(Option<Box<SinkInner>>);

impl MetricsSink {
    /// A disabled sink (all record calls are no-ops).
    #[must_use]
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A live sink.
    #[must_use]
    pub fn enabled(cfg: SinkConfig) -> Self {
        Self(Some(Box::new(SinkInner {
            registry: MetricsRegistry::default(),
            ring: TraceRing::new(cfg.trace_capacity),
        })))
    }

    /// Whether this sink records anything.
    #[inline]
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `v` to a counter.
    #[inline]
    pub fn add(&mut self, c: Counter, v: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            inner.registry.add(c, v);
        }
    }

    /// Sets a gauge.
    #[inline]
    pub fn set_gauge(&mut self, g: Gauge, v: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            inner.registry.set_gauge(g, v);
        }
    }

    /// Records a histogram observation under `label`.
    #[inline]
    pub fn record(&mut self, h: Hist, label: u32, value: u64) {
        if let Some(inner) = self.0.as_deref_mut() {
            inner.registry.record(h, label, value);
        }
    }

    /// Appends a trace event.
    #[inline]
    pub fn event(&mut self, event: TraceEvent) {
        if let Some(inner) = self.0.as_deref_mut() {
            inner.ring.push(event);
        }
    }

    /// The live registry, if enabled.
    #[must_use]
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.0.as_deref().map(|i| &i.registry)
    }

    /// Mutable access to the live registry, if enabled (stats-struct
    /// export at snapshot time).
    pub fn registry_mut(&mut self) -> Option<&mut MetricsRegistry> {
        self.0.as_deref_mut().map(|i| &mut i.registry)
    }

    /// The live trace ring, if enabled.
    #[must_use]
    pub fn ring(&self) -> Option<&TraceRing> {
        self.0.as_deref().map(|i| &i.ring)
    }

    /// Exports the sink as plain data (`None` if disabled). The dropped
    /// trace-event count is folded in as
    /// [`Counter::TraceEventsDropped`].
    #[must_use]
    pub fn snapshot(&self) -> Option<MetricsSnapshot> {
        let inner = self.0.as_deref()?;
        let mut registry = inner.registry.clone();
        registry.set_counter(Counter::TraceEventsDropped, inner.ring.dropped());
        Some(MetricsSnapshot::from_parts(
            &registry,
            inner.ring.events().copied().collect(),
        ))
    }

    /// Merges another sink's registry and ring into this one (used to
    /// combine the controller's and device's sinks into one export).
    pub fn absorb(&mut self, other: &MetricsSink) {
        let Some(inner) = self.0.as_deref_mut() else {
            return;
        };
        let Some(src) = other.0.as_deref() else {
            return;
        };
        for c in Counter::ALL {
            inner.registry.add(c, src.registry.counter(c));
        }
        for g in Gauge::ALL {
            let v = src.registry.gauge(g);
            if v != 0 {
                inner.registry.set_gauge(g, v);
            }
        }
        for (&(h, label), hist) in src.registry.hists() {
            let dst = inner.registry.hists.entry((h, label)).or_default();
            for (idx, &n) in hist.buckets.iter().enumerate() {
                dst.buckets[idx] += n;
            }
            dst.count += hist.count;
            dst.sum = dst.sum.saturating_add(hist.sum);
            if hist.count > 0 {
                dst.min = dst.min.min(hist.min);
                dst.max = dst.max.max(hist.max);
            }
        }
        for e in src.ring.events() {
            inner.ring.push(*e);
        }
        inner.ring.dropped += src.ring.dropped();
    }
}

impl Snapshottable for Log2Histogram {
    fn save_state(&self, w: &mut SnapshotWriter) {
        for &b in &self.buckets {
            w.put_u64(b);
        }
        w.put_u64(self.count);
        w.put_u64(self.sum);
        w.put_u64(self.min);
        w.put_u64(self.max);
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> MopacResult<()> {
        for b in &mut self.buckets {
            *b = r.take_u64()?;
        }
        self.count = r.take_u64()?;
        self.sum = r.take_u64()?;
        self.min = r.take_u64()?;
        self.max = r.take_u64()?;
        Ok(())
    }
}

impl Snapshottable for MetricsRegistry {
    fn save_state(&self, w: &mut SnapshotWriter) {
        for &c in &self.counters {
            w.put_u64(c);
        }
        for &g in &self.gauges {
            w.put_u64(g);
        }
        w.put_usize(self.hists.len());
        for (&(h, label), hist) in &self.hists {
            w.put_u8(h.tag());
            w.put_u32(label);
            hist.save_state(w);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> MopacResult<()> {
        for c in &mut self.counters {
            *c = r.take_u64()?;
        }
        for g in &mut self.gauges {
            *g = r.take_u64()?;
        }
        let n = r.take_usize()?;
        self.hists.clear();
        for _ in 0..n {
            let tag = r.take_u8()?;
            let h = Hist::from_tag(tag)
                .ok_or_else(|| MopacError::snapshot(format!("unknown histogram tag {tag}")))?;
            let label = r.take_u32()?;
            let mut hist = Log2Histogram::default();
            hist.load_state(r)?;
            self.hists.insert((h, label), hist);
        }
        Ok(())
    }
}

impl Snapshottable for TraceRing {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(self.capacity);
        w.put_u64(self.dropped);
        w.put_usize(self.buf.len());
        for e in &self.buf {
            w.put_u64(e.cycle);
            w.put_u8(e.kind.tag());
            w.put_u32(e.channel);
            w.put_u32(e.subchannel);
            w.put_u32(e.bank);
            w.put_u64(e.value);
            w.put_u32(e.subarray);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> MopacResult<()> {
        let capacity = r.take_usize()?;
        if capacity != self.capacity {
            return Err(MopacError::snapshot(format!(
                "trace-ring capacity mismatch: snapshot {capacity}, configured {}",
                self.capacity
            )));
        }
        self.dropped = r.take_u64()?;
        let n = r.take_usize()?;
        if n > capacity {
            return Err(MopacError::snapshot(format!(
                "trace ring holds {n} events but capacity is {capacity}"
            )));
        }
        self.buf.clear();
        for _ in 0..n {
            let cycle = r.take_u64()?;
            let tag = r.take_u8()?;
            let kind = TraceEventKind::from_tag(tag)
                .ok_or_else(|| MopacError::snapshot(format!("unknown trace-event tag {tag}")))?;
            let channel = r.take_u32()?;
            let subchannel = r.take_u32()?;
            let bank = r.take_u32()?;
            let value = r.take_u64()?;
            let subarray = r.take_u32()?;
            self.buf.push_back(TraceEvent {
                cycle,
                kind,
                channel,
                subchannel,
                bank,
                value,
                subarray,
            });
        }
        Ok(())
    }
}

impl Snapshottable for MetricsSink {
    fn save_state(&self, w: &mut SnapshotWriter) {
        match self.0.as_deref() {
            None => w.put_bool(false),
            Some(inner) => {
                w.put_bool(true);
                inner.registry.save_state(w);
                inner.ring.save_state(w);
            }
        }
    }

    /// Restores a sink saved by [`Snapshottable::save_state`]. The sink
    /// must already be in the same enabled/disabled mode (that is
    /// configuration, not runtime state).
    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> MopacResult<()> {
        let was_enabled = r.take_bool()?;
        match (was_enabled, self.0.as_deref_mut()) {
            (false, None) => Ok(()),
            (true, Some(inner)) => {
                inner.registry.load_state(r)?;
                inner.ring.load_state(r)
            }
            (snap, _) => Err(MopacError::snapshot(format!(
                "metrics-sink mode mismatch: snapshot enabled={snap}, configured enabled={}",
                self.is_enabled()
            ))),
        }
    }
}

/// Percentile summary of one labeled histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSnapshot {
    /// Histogram name ([`Hist::name`]).
    pub name: &'static str,
    /// Label (sub-channel / flat bank / engine index).
    pub label: u32,
    /// Observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation.
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Mean observation.
    pub mean: f64,
    /// Median (bucket-resolution upper bound).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Non-empty buckets as `(bucket_upper_bound, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    fn from_hist(name: &'static str, label: u32, h: &Log2Histogram) -> Self {
        Self {
            name,
            label,
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.quantile(0.50),
            p95: h.quantile(0.95),
            p99: h.quantile(0.99),
            buckets: h
                .buckets()
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(idx, &n)| (Log2Histogram::bucket_upper(idx), n))
                .collect(),
        }
    }

    /// One JSONL line.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut buckets = String::new();
        for (i, (upper, n)) in self.buckets.iter().enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            let _ = write!(buckets, "[{upper},{n}]");
        }
        format!(
            "{{\"hist\":\"{}\",\"label\":{},\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
             \"mean\":{:.3},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[{}]}}",
            self.name,
            self.label,
            self.count,
            self.sum,
            self.min,
            self.max,
            self.mean,
            self.p50,
            self.p95,
            self.p99,
            buckets
        )
    }
}

/// Plain-data export of a sink: safe to move across campaign threads
/// and to serialize.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` for every counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// `(name, value)` for every gauge, in [`Gauge::ALL`] order.
    pub gauges: Vec<(&'static str, u64)>,
    /// Histogram summaries, in deterministic key order.
    pub hists: Vec<HistSnapshot>,
    /// The trace-ring contents, oldest first.
    pub events: Vec<TraceEvent>,
}

impl MetricsSnapshot {
    /// CSV header for [`MetricsSnapshot::hists_to_csv`].
    pub const HIST_CSV_HEADER: &'static str =
        "hist,label,count,sum,min,max,mean,p50,p95,p99";

    fn from_parts(registry: &MetricsRegistry, events: Vec<TraceEvent>) -> Self {
        Self {
            counters: Counter::ALL
                .iter()
                .map(|&c| (c.name(), registry.counter(c)))
                .collect(),
            gauges: Gauge::ALL
                .iter()
                .map(|&g| (g.name(), registry.gauge(g)))
                .collect(),
            hists: registry
                .hists()
                .map(|(&(h, label), hist)| HistSnapshot::from_hist(h.name(), label, hist))
                .collect(),
            events,
        }
    }

    /// Looks a counter up by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// The snapshot for one histogram + label.
    #[must_use]
    pub fn hist(&self, h: Hist, label: u32) -> Option<&HistSnapshot> {
        self.hists
            .iter()
            .find(|s| s.name == h.name() && s.label == label)
    }

    /// Merges every label of `h` into one summary (label `u32::MAX`),
    /// or `None` if no label recorded anything. Buckets add exactly;
    /// the percentiles keep the same power-of-two resolution as a
    /// single histogram.
    #[must_use]
    pub fn hist_merged(&self, h: Hist) -> Option<HistSnapshot> {
        let mut merged = Log2Histogram::default();
        for s in self.hists.iter().filter(|s| s.name == h.name() && s.count > 0) {
            merged.count += s.count;
            merged.sum = merged.sum.saturating_add(s.sum);
            merged.min = merged.min.min(s.min);
            merged.max = merged.max.max(s.max);
            for &(upper, n) in &s.buckets {
                merged.buckets[Log2Histogram::bucket_of(upper)] += n;
            }
        }
        (merged.count > 0).then(|| HistSnapshot::from_hist(h.name(), u32::MAX, &merged))
    }

    /// Histogram summaries as CSV (header + one row per labeled
    /// histogram).
    #[must_use]
    pub fn hists_to_csv(&self) -> String {
        let mut out = String::from(Self::HIST_CSV_HEADER);
        out.push('\n');
        for h in &self.hists {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{:.3},{},{},{}",
                h.name, h.label, h.count, h.sum, h.min, h.max, h.mean, h.p50, h.p95, h.p99
            );
        }
        out
    }

    /// Full JSONL export: one line per counter, gauge, histogram and
    /// trace event.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "{{\"counter\":\"{name}\",\"value\":{v}}}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "{{\"gauge\":\"{name}\",\"value\":{v}}}");
        }
        for h in &self.hists {
            out.push_str(&h.to_jsonl());
            out.push('\n');
        }
        for e in &self.events {
            out.push_str(&e.to_jsonl());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_buckets_partition_the_range() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        // Each bucket's values fall at or below its upper bound and
        // above the previous bucket's.
        for k in 1..64usize {
            let lo = 1u64 << (k - 1);
            assert_eq!(Log2Histogram::bucket_of(lo), k);
            assert!(lo > Log2Histogram::bucket_upper(k - 1));
            assert!(Log2Histogram::bucket_upper(k) >= (1u64 << k) - 1);
        }
    }

    #[test]
    fn histogram_quantiles_are_bucket_resolution() {
        let mut h = Log2Histogram::default();
        for v in [1u64, 2, 3, 4, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 1110);
        // p50: 3rd of 6 observations lives in bucket_of(3) = 2
        // (upper 3).
        assert_eq!(h.quantile(0.5), 3);
        // p99 -> last observation's bucket, clamped to max.
        assert_eq!(h.quantile(0.99), 1000);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Log2Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn trace_ring_bounds_memory_and_counts_drops() {
        let mut ring = TraceRing::new(3);
        for i in 0..5u64 {
            ring.push(TraceEvent {
                cycle: i,
                channel: 0,
                kind: TraceEventKind::Act,
                subchannel: 0,
                bank: 0,
                value: i,
                subarray: 0,
            });
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let cycles: Vec<Cycle> = ring.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "oldest events evicted first");
        let csv = ring.to_csv();
        assert!(csv.starts_with(TraceRing::CSV_HEADER));
        assert_eq!(csv.lines().count(), 4);
        let jsonl = ring.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"kind\":\"ACT\""));
    }

    #[test]
    fn disabled_sink_is_inert() {
        let mut sink = MetricsSink::disabled();
        sink.add(Counter::DramActivates, 5);
        sink.record(Hist::ReadLatency, 0, 92);
        sink.event(TraceEvent {
            cycle: 1,
            channel: 0,
            kind: TraceEventKind::Pre,
            subchannel: 0,
            bank: 1,
            value: 7,
            subarray: 0,
        });
        assert!(!sink.is_enabled());
        assert!(sink.snapshot().is_none());
        assert!(sink.registry().is_none());
    }

    #[test]
    fn enabled_sink_snapshots_counters_hists_and_events() {
        let mut sink = MetricsSink::enabled(SinkConfig { trace_capacity: 8 });
        sink.add(Counter::DramActivates, 3);
        sink.add(Counter::DramActivates, 2);
        sink.set_gauge(Gauge::Cycles, 1234);
        for v in [10u64, 20, 400] {
            sink.record(Hist::ReadLatency, 1, v);
        }
        sink.event(TraceEvent {
            cycle: 9,
            channel: 0,
            kind: TraceEventKind::Alert,
            subchannel: 1,
            bank: 0,
            value: 0,
            subarray: 0,
        });
        let snap = sink.snapshot().unwrap();
        assert_eq!(snap.counter("dram.activates"), Some(5));
        assert_eq!(snap.counter("mc.reads_done"), Some(0));
        let h = snap.hist(Hist::ReadLatency, 1).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.max, 400);
        assert_eq!(snap.events.len(), 1);
        let jsonl = snap.to_jsonl();
        assert!(jsonl.contains("\"counter\":\"dram.activates\",\"value\":5"));
        assert!(jsonl.contains("\"hist\":\"mc.read_latency\""));
        assert!(jsonl.contains("\"kind\":\"ALERT\""));
        let csv = snap.hists_to_csv();
        assert!(csv.starts_with(MetricsSnapshot::HIST_CSV_HEADER));
        assert!(csv.contains("mc.read_latency,1,3,"));
    }

    #[test]
    fn absorb_merges_registries_and_rings() {
        let cfg = SinkConfig { trace_capacity: 8 };
        let mut a = MetricsSink::enabled(cfg);
        let mut b = MetricsSink::enabled(cfg);
        a.add(Counter::DramReads, 1);
        b.add(Counter::DramReads, 2);
        a.record(Hist::InterActGap, 0, 8);
        b.record(Hist::InterActGap, 0, 16);
        b.event(TraceEvent {
            cycle: 3,
            channel: 0,
            kind: TraceEventKind::Rfm,
            subchannel: 0,
            bank: 0,
            value: 100,
            subarray: 0,
        });
        a.absorb(&b);
        let snap = a.snapshot().unwrap();
        assert_eq!(snap.counter("dram.reads"), Some(3));
        let h = snap.hist(Hist::InterActGap, 0).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.max, 16);
        assert_eq!(snap.events.len(), 1);
        // Absorbing into a disabled sink stays a no-op.
        let mut d = MetricsSink::disabled();
        d.absorb(&a);
        assert!(d.snapshot().is_none());
    }

    #[test]
    fn sink_snapshot_round_trip_is_exact() {
        let cfg = SinkConfig { trace_capacity: 4 };
        let mut sink = MetricsSink::enabled(cfg);
        sink.add(Counter::DramActivates, 7);
        sink.set_gauge(Gauge::Cycles, 99);
        sink.record(Hist::ReadLatency, 2, 300);
        for i in 0..6u64 {
            sink.event(TraceEvent {
                cycle: i,
                channel: 0,
                kind: TraceEventKind::Alert,
                subchannel: 0,
                bank: 0,
                value: i,
                subarray: 0,
            });
        }
        let mut w = crate::snapshot::SnapshotWriter::new();
        sink.save_state(&mut w);
        let bytes = w.finish();

        let mut restored = MetricsSink::enabled(cfg);
        let mut r = crate::snapshot::SnapshotReader::new(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        assert_eq!(restored, sink);
        assert_eq!(restored.ring().unwrap().dropped(), 2);

        // Mode mismatch is a loud error, not silent divergence.
        let mut disabled = MetricsSink::disabled();
        let mut r = crate::snapshot::SnapshotReader::new(&bytes).unwrap();
        assert!(disabled.load_state(&mut r).is_err());
    }

    #[test]
    fn merged_hist_folds_labels() {
        let mut reg = MetricsRegistry::default();
        reg.record(Hist::ReadLatency, 0, 10);
        reg.record(Hist::ReadLatency, 1, 1000);
        reg.record(Hist::AboServiceTime, 0, 5);
        let merged = reg.hist_merged(Hist::ReadLatency);
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.min(), 10);
        assert_eq!(merged.max(), 1000);
    }
}
