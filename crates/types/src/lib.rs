//! Shared foundation types for the MoPAC Rowhammer-mitigation simulator.
//!
//! This crate holds the vocabulary used by every other crate in the
//! workspace: DRAM geometry and component identifiers ([`geometry`]),
//! physical addresses ([`addr`]), simulation time ([`time`]), deterministic
//! random-number generation ([`rng`]), and lightweight statistics
//! ([`stats`]).
//!
//! # Examples
//!
//! ```
//! use mopac_types::geometry::DramGeometry;
//! use mopac_types::addr::PhysAddr;
//!
//! let geom = DramGeometry::ddr5_32gb();
//! assert_eq!(geom.banks_per_subchannel, 32);
//! assert_eq!(geom.rows_per_bank, 64 * 1024);
//! let addr = PhysAddr::new(0x1234_5678);
//! assert_eq!(addr.line_index(64), 0x1234_5678 / 64);
//! ```

pub mod addr;
pub mod bankmask;
pub mod check;
pub mod collections;
pub mod error;
pub mod geometry;
pub mod jedec;
pub mod obs;
pub mod persist;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod time;

pub use addr::{DecodedAddr, PhysAddr};
pub use error::{MopacError, MopacResult};
pub use geometry::{BankRef, DramGeometry};
pub use obs::{MetricsSink, MetricsSnapshot, SinkConfig};
pub use rng::DetRng;
pub use snapshot::{SnapshotReader, SnapshotWriter, Snapshottable};
pub use time::{Cycle, MemClock};
