//! A multi-word per-bank bitmask.
//!
//! The scheduler index and the DRAM device keep per-bank occupancy /
//! row-hit / open-row sets as bitmasks so classification questions
//! ("any bank with a queued hit?", "all banks closed?") are word-wide
//! operations instead of per-bank loops. Those masks were raw `u64`s,
//! which capped the topology at 64 banks per sub-channel; [`BankMask`]
//! lifts that to [`BankMask::CAPACITY`] while staying `Copy` — a fixed
//! array of words, no allocation on the hot path.

use crate::error::{MopacError, MopacResult};
use crate::snapshot::{SnapshotReader, SnapshotWriter, Snapshottable};

/// Words in a [`BankMask`].
const WORDS: usize = 8;

/// A fixed-capacity bank bitmask (bit `b` = bank `b`).
///
/// # Examples
///
/// ```
/// use mopac_types::bankmask::BankMask;
///
/// let mut m = BankMask::empty();
/// m.set(3);
/// m.set(130);
/// assert!(m.test(3) && m.test(130) && !m.test(4));
/// assert_eq!(m.ones().collect::<Vec<_>>(), vec![3, 130]);
/// m.clear(3);
/// assert_eq!(m.first_set(), Some(130));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct BankMask {
    words: [u64; WORDS],
}

impl BankMask {
    /// Highest bank count a mask can represent.
    pub const CAPACITY: u32 = (WORDS * 64) as u32;

    /// The empty mask.
    #[must_use]
    pub const fn empty() -> Self {
        Self { words: [0; WORDS] }
    }

    /// A mask with exactly `bit` set.
    #[must_use]
    pub fn single(bit: u32) -> Self {
        let mut m = Self::empty();
        m.set(bit);
        m
    }

    /// A mask whose first word is `w` (test convenience; bits 0..64).
    #[must_use]
    pub fn from_u64(w: u64) -> Self {
        let mut m = Self::empty();
        m.words[0] = w;
        m
    }

    /// Sets `bit`.
    #[inline]
    pub fn set(&mut self, bit: u32) {
        debug_assert!(bit < Self::CAPACITY);
        self.words[(bit / 64) as usize] |= 1u64 << (bit % 64);
    }

    /// Clears `bit`.
    #[inline]
    pub fn clear(&mut self, bit: u32) {
        debug_assert!(bit < Self::CAPACITY);
        self.words[(bit / 64) as usize] &= !(1u64 << (bit % 64));
    }

    /// Whether `bit` is set.
    #[inline]
    #[must_use]
    pub fn test(&self, bit: u32) -> bool {
        debug_assert!(bit < Self::CAPACITY);
        (self.words[(bit / 64) as usize] >> (bit % 64)) & 1 == 1
    }

    /// Whether no bit is set.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Number of set bits.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Lowest set bit, if any.
    #[inline]
    #[must_use]
    pub fn first_set(&self) -> Option<u32> {
        for (i, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some((i * 64) as u32 + w.trailing_zeros());
            }
        }
        None
    }

    /// Intersection.
    #[inline]
    #[must_use]
    pub fn and(mut self, other: Self) -> Self {
        for (a, b) in self.words.iter_mut().zip(other.words) {
            *a &= b;
        }
        self
    }

    /// Union.
    #[inline]
    #[must_use]
    pub fn or(mut self, other: Self) -> Self {
        for (a, b) in self.words.iter_mut().zip(other.words) {
            *a |= b;
        }
        self
    }

    /// Set difference (`self & !other`) — the replacement for the old
    /// `mask & !other` idiom, which a true `Not` would break by setting
    /// every bit past the bank count.
    #[inline]
    #[must_use]
    pub fn and_not(mut self, other: Self) -> Self {
        for (a, b) in self.words.iter_mut().zip(other.words) {
            *a &= !b;
        }
        self
    }

    /// Iterates set bits in ascending order.
    #[inline]
    pub fn ones(&self) -> Ones {
        Ones {
            words: self.words,
            word: 0,
        }
    }
}

/// Ascending set-bit iterator for [`BankMask`].
#[derive(Debug, Clone)]
pub struct Ones {
    words: [u64; WORDS],
    word: usize,
}

impl Iterator for Ones {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        while self.word < WORDS {
            let w = self.words[self.word];
            if w != 0 {
                let bit = w.trailing_zeros();
                self.words[self.word] = w & (w - 1);
                return Some((self.word * 64) as u32 + bit);
            }
            self.word += 1;
        }
        None
    }
}

impl Snapshottable for BankMask {
    fn save_state(&self, w: &mut SnapshotWriter) {
        w.put_usize(WORDS);
        for &word in &self.words {
            w.put_u64(word);
        }
    }

    fn load_state(&mut self, r: &mut SnapshotReader<'_>) -> MopacResult<()> {
        let n = r.take_usize()?;
        if n != WORDS {
            return Err(MopacError::snapshot(format!(
                "bank-mask width mismatch: snapshot has {n} words, this build uses {WORDS}"
            )));
        }
        for word in &mut self.words {
            *word = r.take_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_clear_test_across_words() {
        let mut m = BankMask::empty();
        assert!(m.is_empty());
        for bit in [0u32, 1, 63, 64, 65, 127, 128, BankMask::CAPACITY - 1] {
            m.set(bit);
            assert!(m.test(bit), "bit {bit}");
        }
        assert_eq!(m.count(), 8);
        m.clear(64);
        assert!(!m.test(64));
        assert!(m.test(63) && m.test(65), "neighbors survive a clear");
    }

    #[test]
    fn ones_iterates_ascending() {
        let mut m = BankMask::empty();
        for bit in [200u32, 0, 77, 64, 511] {
            m.set(bit);
        }
        assert_eq!(m.ones().collect::<Vec<_>>(), vec![0, 64, 77, 200, 511]);
        assert_eq!(m.first_set(), Some(0));
        assert_eq!(BankMask::empty().first_set(), None);
    }

    #[test]
    fn boolean_ops() {
        let a = BankMask::from_u64(0b1101).or(BankMask::single(70));
        let b = BankMask::from_u64(0b0110).or(BankMask::single(70));
        assert_eq!(a.and(b).ones().collect::<Vec<_>>(), vec![2, 70]);
        assert_eq!(a.or(b).ones().collect::<Vec<_>>(), vec![0, 1, 2, 3, 70]);
        assert_eq!(a.and_not(b).ones().collect::<Vec<_>>(), vec![0, 3]);
        assert!(a.and_not(a).is_empty());
    }

    #[test]
    fn matches_u64_semantics_on_word_zero() {
        // The old controller masks were raw u64s; word 0 must behave
        // identically so the swap is bit-preserving for <= 64 banks.
        let mut reference: u64 = 0;
        let mut m = BankMask::empty();
        let mut rng = crate::rng::DetRng::from_seed(99);
        for _ in 0..1000 {
            let bit = (rng.next_u64() % 64) as u32;
            if rng.next_u64() & 1 == 0 {
                reference |= 1 << bit;
                m.set(bit);
            } else {
                reference &= !(1 << bit);
                m.clear(bit);
            }
            assert_eq!(m.is_empty(), reference == 0);
            assert_eq!(
                m.first_set(),
                (reference != 0).then(|| reference.trailing_zeros())
            );
        }
    }

    #[test]
    fn snapshot_round_trip_and_width_check() {
        let m = BankMask::from_u64(0xDEAD_BEEF).or(BankMask::single(300));
        let mut w = SnapshotWriter::new();
        m.save_state(&mut w);
        let bytes = w.finish();
        let mut restored = BankMask::empty();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        assert_eq!(restored, m);

        let mut w = SnapshotWriter::new();
        w.put_usize(2);
        w.put_u64(0);
        w.put_u64(0);
        let bytes = w.finish();
        let mut r = SnapshotReader::new(&bytes).unwrap();
        assert!(BankMask::empty().load_state(&mut r).is_err());
    }
}
