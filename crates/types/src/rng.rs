//! Deterministic random-number generation.
//!
//! Every stochastic component in the simulator (MoPAC coin flips, MINT
//! window selection, workload generators, Monte-Carlo analysis) draws from
//! a [`DetRng`] seeded from an experiment-level master seed. Sub-streams
//! are derived with [`DetRng::fork`] using a SplitMix64 hash of the parent
//! seed and a stream label, so per-bank / per-chip / per-core streams are
//! independent and reproducible regardless of construction order.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna),
//! seeded through SplitMix64 as its authors recommend. Keeping the
//! implementation in-tree makes the workspace build with no external
//! dependencies and pins the exact sequences across toolchain updates.

/// SplitMix64 step: turns a 64-bit state into a well-mixed 64-bit output.
///
/// Public as [`mix64`] for *stateless* hash-based randomness — code
/// that derives a decision purely from identifiers (seed, bank, row,
/// count) rather than from a stream position, so the outcome is
/// independent of execution interleaving (the flip plane's per-cell
/// thresholds and flip draws).
#[must_use]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Alias used internally where the SplitMix64 name matters.
#[must_use]
fn splitmix64(z: u64) -> u64 {
    mix64(z)
}

/// xoshiro256++ core state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into the 256-bit state via a SplitMix64
    /// stream (the seeding procedure recommended by the generator's
    /// authors; guarantees a non-zero state).
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            *slot = z ^ (z >> 31);
        }
        Self { s }
    }

    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A deterministic, forkable PRNG.
///
/// # Examples
///
/// ```
/// use mopac_types::rng::DetRng;
///
/// let mut a = DetRng::from_seed(42);
/// let mut b = DetRng::from_seed(42);
/// assert_eq!(a.next_u64(), b.next_u64());
///
/// // Forked streams are independent of the parent's draw position.
/// let fork1 = DetRng::from_seed(42).fork(7);
/// let mut parent = DetRng::from_seed(42);
/// let _ = parent.next_u64();
/// let fork2 = parent.fork(7);
/// let mut f1 = fork1;
/// let mut f2 = fork2;
/// assert_eq!(f1.next_u64(), f2.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct DetRng {
    seed: u64,
    inner: Xoshiro256pp,
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self {
            seed,
            inner: Xoshiro256pp::seed_from_u64(splitmix64(seed)),
        }
    }

    /// Derives an independent child stream labelled `stream`.
    ///
    /// Forking depends only on the seed and label, never on how many
    /// values have been drawn from `self`.
    #[must_use]
    pub fn fork(&self, stream: u64) -> Self {
        Self::from_seed(splitmix64(self.seed ^ splitmix64(stream.wrapping_add(1))))
    }

    /// Returns the seed this generator was created with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Draws a uniformly random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Draws a uniform value in `0..bound`.
    ///
    /// Uses Lemire's widening-multiply rejection method, so the result is
    /// exactly uniform.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire (2019): multiply-shift with rejection of the biased zone.
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(bound);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(bound);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Draws a uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits scaled by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `p` is outside `[0, 1]`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        self.unit_f64() < p
    }

    /// Draws a geometric gap: the number of failures before the first
    /// success of a Bernoulli(`p`) process. Used for inter-miss gaps in
    /// workload generation.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric requires p in (0,1], got {p}");
        if p >= 1.0 {
            return 0;
        }
        let u = self.unit_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }
}

impl crate::snapshot::Snapshottable for DetRng {
    fn save_state(&self, w: &mut crate::snapshot::SnapshotWriter) {
        w.put_u64(self.seed);
        for word in &self.inner.s {
            w.put_u64(*word);
        }
    }

    fn load_state(
        &mut self,
        r: &mut crate::snapshot::SnapshotReader<'_>,
    ) -> crate::error::MopacResult<()> {
        self.seed = r.take_u64()?;
        for word in &mut self.inner.s {
            *word = r.take_u64()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproducible() {
        let mut a = DetRng::from_seed(1);
        let mut b = DetRng::from_seed(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn matches_xoshiro256pp_reference_vector() {
        // Reference sequence for xoshiro256++ from the canonical C code
        // with state seeded by splitmix64 starting at 0: the first state
        // words are splitmix64(0x9e3779b97f4a7c15-chain) and the outputs
        // below were produced by this implementation once verified against
        // the published algorithm. Pinning them guards against accidental
        // changes to the generator.
        let mut r = Xoshiro256pp::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = Xoshiro256pp::seed_from_u64(0);
        let again: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(first, again);
        // The seeding stream itself is splitmix64: state[0] for seed 0 is
        // splitmix64(0) with the canonical constant.
        assert_eq!(Xoshiro256pp::seed_from_u64(0).s[0], splitmix64(0));
    }

    #[test]
    fn forks_differ_from_parent_and_each_other() {
        let parent = DetRng::from_seed(9);
        let mut f0 = parent.fork(0);
        let mut f1 = parent.fork(1);
        let mut p = parent.clone();
        let (a, b, c) = (f0.next_u64(), f1.next_u64(), p.next_u64());
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn bernoulli_mean_close() {
        let mut rng = DetRng::from_seed(3);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.bernoulli(0.125)).count() as f64;
        let mean = hits / n as f64;
        assert!((mean - 0.125).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn geometric_mean_close() {
        let mut rng = DetRng::from_seed(4);
        let p = 0.1;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let mean = total as f64 / n as f64;
        // E[geometric failures] = (1-p)/p = 9
        assert!((mean - 9.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DetRng::from_seed(5);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut rng = DetRng::from_seed(6);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = DetRng::from_seed(7);
        for _ in 0..10_000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_stream_position() {
        use crate::snapshot::{SnapshotReader, SnapshotWriter, Snapshottable};
        let mut original = DetRng::from_seed(0xFEED);
        for _ in 0..17 {
            let _ = original.next_u64();
        }
        let mut w = SnapshotWriter::new();
        original.save_state(&mut w);
        let bytes = w.finish();

        // Restore into a generator with a completely different state.
        let mut restored = DetRng::from_seed(1);
        let mut r = SnapshotReader::new(&bytes).unwrap();
        restored.load_state(&mut r).unwrap();
        assert_eq!(restored.seed(), original.seed());
        for _ in 0..100 {
            assert_eq!(restored.next_u64(), original.next_u64());
        }
        // Forks derived after restore match too (fork depends on seed).
        assert_eq!(restored.fork(3).next_u64(), original.fork(3).next_u64());
    }
}
