//! Torn-write-safe file persistence.
//!
//! A campaign killed mid-write (SIGKILL, OOM) must never leave a
//! truncated CSV, JSONL export, or benchmark summary behind — resume
//! logic and downstream plotting both assume an artifact either exists
//! complete or not at all. [`atomic_write`] gives that guarantee the
//! standard way: write to a temporary file in the *same directory* (so
//! the final step is a same-filesystem rename, which POSIX makes
//! atomic), flush, then rename over the destination.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Writes `bytes` to `path` atomically: all-or-nothing even under
/// SIGKILL. An existing file at `path` is replaced atomically.
///
/// # Errors
///
/// Returns any I/O error from creating, writing, syncing, or renaming
/// the temporary file; the temporary is removed on failure.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = tmp_sibling(path);
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        // Make the data durable before the rename publishes it; a rename
        // that survives a crash must not point at unflushed blocks.
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, path)?;
        if let Some(d) = dir {
            // Best effort: persist the directory entry too. Failure here
            // (e.g. an unsyncable filesystem) does not lose data.
            if let Ok(dirf) = std::fs::File::open(d) {
                let _ = dirf.sync_all();
            }
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Writes a UTF-8 string to `path` atomically. See [`atomic_write`].
///
/// # Errors
///
/// Propagates I/O errors from [`atomic_write`].
pub fn atomic_write_str(path: &Path, text: &str) -> std::io::Result<()> {
    atomic_write(path, text.as_bytes())
}

/// Names a temporary sibling of `path` in the same directory.
///
/// Uses the process id plus a per-process counter so concurrent writers
/// in the same directory never collide, without needing a randomness
/// source.
fn tmp_sibling(path: &Path) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let pid = std::process::id();
    let name = path
        .file_name()
        .map_or_else(|| "out".to_string(), |f| f.to_string_lossy().into_owned());
    path.with_file_name(format!(".{name}.tmp.{pid}.{n}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces() {
        let dir = std::env::temp_dir().join(format!("mopac-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.csv");
        atomic_write_str(&path, "first").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "first");
        atomic_write_str(&path, "second").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "second");
        // No temp litter left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tmp_siblings_are_unique() {
        let p = Path::new("/some/dir/file.json");
        let a = tmp_sibling(p);
        let b = tmp_sibling(p);
        assert_ne!(a, b);
        assert_eq!(a.parent(), p.parent());
    }
}
