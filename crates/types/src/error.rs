//! The workspace-wide typed error layer.
//!
//! Every fallible public API in `mopac-dram`, `mopac-memctrl`, and
//! `mopac-sim` returns [`MopacResult`]. The variants separate the
//! failure domains a campaign driver cares about: bad configuration
//! (caller error, not retryable), timing-protocol misuse (a command was
//! issued before the device allowed it — a simulator bug or an injected
//! fault surfacing), forward-progress failures (livelock, cycle-cap,
//! wall-clock timeout — retryable with a bumped seed), and structured
//! diagnostics from the Rowhammer oracle under fault injection.

use crate::time::Cycle;

/// Convenience alias used by all fallible MoPAC APIs.
pub type MopacResult<T> = Result<T, MopacError>;

/// The workspace error type.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MopacError {
    /// A configuration was inconsistent or out of the supported domain.
    Config {
        /// What was wrong.
        message: String,
    },
    /// A DRAM command was issued before its timing constraints allowed.
    ///
    /// In a healthy simulation this indicates a scheduler bug; under
    /// fault injection it is the structured surface of a fault that
    /// pushed a command past its window.
    TimingProtocol {
        /// The offending command mnemonic (`"ACT"`, `"RD"`, ...).
        command: &'static str,
        /// Sub-channel the command targeted.
        subchannel: u32,
        /// Bank the command targeted (`None` for channel-wide commands).
        bank: Option<u32>,
        /// Cycle the command was issued at.
        at: Cycle,
        /// Earliest legal issue cycle, if one exists.
        earliest: Option<Cycle>,
    },
    /// A trace record could not be produced or decoded.
    Trace {
        /// What was wrong.
        message: String,
    },
    /// A workload or mix name did not match any registered spec.
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
        /// Every valid workload/mix name, for the error message.
        valid: Vec<String>,
    },
    /// The system stopped retiring instructions for a full watchdog
    /// window while work was still outstanding.
    Livelock {
        /// Cycle at which the watchdog fired.
        cycle: Cycle,
        /// Cycles since the last retired instruction.
        stalled_for: Cycle,
        /// Instructions retired before progress stopped.
        retired: u64,
    },
    /// The run hit the configured `max_cycles` cap before every core
    /// finished.
    CycleCapExceeded {
        /// The configured cap.
        cap: Cycle,
        /// Cores that had finished when the cap was hit.
        finished_cores: usize,
        /// Total cores in the run.
        total_cores: usize,
    },
    /// An experiment exceeded its wall-clock budget.
    Timeout {
        /// The budget in seconds.
        seconds: u64,
        /// The experiment label.
        experiment: String,
    },
    /// A deliberately injected fault made the run unrecoverable.
    InjectedFault {
        /// Description of the fault.
        description: String,
        /// Cycle at which the fault was applied.
        cycle: Cycle,
    },
    /// The Rowhammer oracle observed an escape (a row crossed the
    /// threshold without mitigation). Carried as data so fault campaigns
    /// can report it instead of aborting.
    OracleViolation {
        /// Number of distinct violations observed.
        violations: u64,
        /// Human-readable summary of the first recorded violations.
        detail: String,
    },
    /// An internal invariant failed in release mode.
    Internal {
        /// What was violated.
        message: String,
    },
    /// An I/O failure (persisting campaign results, reading traces).
    Io {
        /// The rendered `std::io::Error`.
        message: String,
    },
    /// A snapshot could not be written or restored (bad magic, version
    /// mismatch, checksum failure, or a shape mismatch against the
    /// current configuration).
    Snapshot {
        /// What was wrong.
        message: String,
    },
    /// Every retry attempt of an isolated experiment failed.
    ///
    /// Carries the final underlying error so campaign reports keep the
    /// root cause while callers can still distinguish "ran out of
    /// retries" from a single hard failure.
    RetriesExhausted {
        /// The experiment label.
        label: String,
        /// Total attempts made (initial try plus retries).
        attempts: u32,
        /// The error from the final attempt.
        last: Box<MopacError>,
    },
}

impl MopacError {
    /// Shorthand constructor for [`MopacError::Config`].
    #[must_use]
    pub fn config(message: impl Into<String>) -> Self {
        Self::Config {
            message: message.into(),
        }
    }

    /// Shorthand constructor for [`MopacError::Internal`].
    #[must_use]
    pub fn internal(message: impl Into<String>) -> Self {
        Self::Internal {
            message: message.into(),
        }
    }

    /// Shorthand constructor for [`MopacError::Trace`].
    #[must_use]
    pub fn trace(message: impl Into<String>) -> Self {
        Self::Trace {
            message: message.into(),
        }
    }

    /// Shorthand constructor for [`MopacError::Snapshot`].
    #[must_use]
    pub fn snapshot(message: impl Into<String>) -> Self {
        Self::Snapshot {
            message: message.into(),
        }
    }

    /// Whether a retry with a bumped seed could plausibly succeed.
    ///
    /// Configuration and unknown-workload errors are deterministic caller
    /// errors; retrying them wastes a campaign slot.
    #[must_use]
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            Self::Livelock { .. }
                | Self::CycleCapExceeded { .. }
                | Self::Timeout { .. }
                | Self::InjectedFault { .. }
        )
    }
}

impl std::fmt::Display for MopacError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Config { message } => write!(f, "configuration error: {message}"),
            Self::TimingProtocol {
                command,
                subchannel,
                bank,
                at,
                earliest,
            } => {
                write!(f, "timing violation: {command} on sc{subchannel}")?;
                if let Some(b) = bank {
                    write!(f, " bank{b}")?;
                }
                write!(f, " at cycle {at}")?;
                match earliest {
                    Some(e) => write!(f, " (earliest legal: {e})"),
                    None => write!(f, " (no legal issue slot in this state)"),
                }
            }
            Self::Trace { message } => write!(f, "trace error: {message}"),
            Self::UnknownWorkload { name, valid } => {
                write!(f, "unknown workload '{name}'; valid names: {}", valid.join(", "))
            }
            Self::Livelock {
                cycle,
                stalled_for,
                retired,
            } => write!(
                f,
                "livelock: no instruction retired for {stalled_for} cycles \
                 (at cycle {cycle}, {retired} retired so far)"
            ),
            Self::CycleCapExceeded {
                cap,
                finished_cores,
                total_cores,
            } => write!(
                f,
                "cycle cap {cap} exceeded with {finished_cores}/{total_cores} cores finished"
            ),
            Self::Timeout { seconds, experiment } => {
                write!(f, "experiment '{experiment}' exceeded {seconds}s wall-clock budget")
            }
            Self::InjectedFault { description, cycle } => {
                write!(f, "injected fault at cycle {cycle}: {description}")
            }
            Self::OracleViolation { violations, detail } => {
                write!(f, "Rowhammer oracle reported {violations} violation(s): {detail}")
            }
            Self::Internal { message } => write!(f, "internal error: {message}"),
            Self::Io { message } => write!(f, "I/O error: {message}"),
            Self::Snapshot { message } => write!(f, "snapshot error: {message}"),
            Self::RetriesExhausted { label, attempts, last } => write!(
                f,
                "experiment '{label}' failed after {attempts} attempt(s); last error: {last}"
            ),
        }
    }
}

impl std::error::Error for MopacError {}

impl From<std::io::Error> for MopacError {
    fn from(e: std::io::Error) -> Self {
        Self::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_timing_protocol() {
        let e = MopacError::TimingProtocol {
            command: "ACT",
            subchannel: 1,
            bank: Some(3),
            at: 100,
            earliest: Some(138),
        };
        let s = e.to_string();
        assert!(s.contains("ACT"), "{s}");
        assert!(s.contains("bank3"), "{s}");
        assert!(s.contains("138"), "{s}");
    }

    #[test]
    fn display_unknown_workload_lists_names() {
        let e = MopacError::UnknownWorkload {
            name: "bogus".into(),
            valid: vec!["lbm".into(), "mcf".into()],
        };
        let s = e.to_string();
        assert!(s.contains("bogus") && s.contains("lbm") && s.contains("mcf"), "{s}");
    }

    #[test]
    fn retryability_partition() {
        assert!(MopacError::Livelock {
            cycle: 1,
            stalled_for: 2,
            retired: 3
        }
        .is_retryable());
        assert!(!MopacError::config("bad").is_retryable());
        assert!(!MopacError::UnknownWorkload {
            name: "x".into(),
            valid: vec![]
        }
        .is_retryable());
    }

    #[test]
    fn io_conversion() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: MopacError = ioe.into();
        assert!(matches!(e, MopacError::Io { .. }));
    }
}
